//! End-to-end checks of `dhlint` against the committed fixture trees.
//!
//! Each fixture under `fixtures/` is a miniature workspace mimicking the
//! real `crates/<name>/src` layout so the path-scoped rules fire exactly as
//! they would on the real tree. Negative fixtures must produce an error of
//! the expected rule family; waived/clean fixtures must pass.

use std::path::PathBuf;
use std::process::Command;

use dynahash_lint::{check_root, Report, Rule};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn check(name: &str) -> Report {
    check_root(&fixture(name)).expect("fixture readable")
}

fn has_error(report: &Report, rule: Rule) -> bool {
    report.errors().any(|f| f.rule == rule)
}

#[test]
fn layering_violation_is_flagged() {
    let r = check("layering_bad");
    assert!(has_error(&r, Rule::Layering), "{r:?}");
}

#[test]
fn layering_respects_the_allowed_dag() {
    let r = check("layering_clean");
    assert!(r.is_clean(), "{r:?}");
}

#[test]
fn registry_dependency_is_flagged() {
    let r = check("layering_registry");
    assert!(has_error(&r, Rule::Layering), "{r:?}");
}

#[test]
fn raw_partition_access_outside_cluster_is_flagged() {
    let r = check("session_bad");
    assert!(has_error(&r, Rule::Session), "{r:?}");
}

#[test]
fn waived_session_access_passes_with_budget() {
    let r = check("session_waived");
    assert!(r.is_clean(), "{r:?}");
    assert!(r
        .findings
        .iter()
        .any(|f| f.waived && f.rule == Rule::Session));
}

#[test]
fn production_unwrap_is_flagged() {
    let r = check("panic_bad");
    assert!(has_error(&r, Rule::Panic), "{r:?}");
}

#[test]
fn waived_unwrap_passes_with_budget() {
    let r = check("panic_waived");
    assert!(r.is_clean(), "{r:?}");
}

#[test]
fn wall_clock_and_hashmap_are_flagged() {
    let r = check("determinism_bad");
    let determinism_errors = r.errors().filter(|f| f.rule == Rule::Determinism).count();
    assert!(
        determinism_errors >= 2,
        "Instant and HashMap both flagged: {r:?}"
    );
}

#[test]
fn unregistered_lock_is_flagged() {
    let r = check("lock_order_bad");
    assert!(has_error(&r, Rule::LockOrder), "{r:?}");
}

#[test]
fn registered_lock_passes() {
    let r = check("lock_order_ok");
    assert!(r.is_clean(), "{r:?}");
}

#[test]
fn stale_lock_order_row_is_flagged() {
    let r = check("lock_order_stale");
    assert!(has_error(&r, Rule::LockOrder), "{r:?}");
}

#[test]
fn budget_ratchets_in_both_directions() {
    let over = check("budget_over");
    assert!(
        has_error(&over, Rule::Waiver),
        "more waivers than budget: {over:?}"
    );
    let stale = check("budget_stale");
    assert!(
        has_error(&stale, Rule::Waiver),
        "budget above actual use: {stale:?}"
    );
}

#[test]
fn placeholder_repository_is_flagged() {
    let r = check("metadata_bad");
    assert!(has_error(&r, Rule::Metadata), "{r:?}");
}

#[test]
fn malformed_waiver_is_flagged_not_honored() {
    let r = check("waiver_bad");
    assert!(has_error(&r, Rule::Waiver), "unknown rule in waiver: {r:?}");
    assert!(
        has_error(&r, Rule::Panic),
        "the unwrap stays unwaived: {r:?}"
    );
}

#[test]
fn binary_exits_nonzero_on_negative_fixtures() {
    for name in [
        "layering_bad",
        "session_bad",
        "panic_bad",
        "determinism_bad",
        "lock_order_bad",
        "metadata_bad",
    ] {
        let status = Command::new(env!("CARGO_BIN_EXE_dhlint"))
            .args(["--check"])
            .arg(fixture(name))
            .arg("--quiet")
            .status()
            .expect("run dhlint");
        assert_eq!(status.code(), Some(1), "fixture {name}");
    }
}

#[test]
fn binary_exits_zero_on_clean_fixtures() {
    for name in ["layering_clean", "panic_waived", "lock_order_ok"] {
        let status = Command::new(env!("CARGO_BIN_EXE_dhlint"))
            .args(["--check"])
            .arg(fixture(name))
            .arg("--quiet")
            .status()
            .expect("run dhlint");
        assert_eq!(status.code(), Some(0), "fixture {name}");
    }
}
