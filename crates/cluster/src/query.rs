//! Query execution primitives.
//!
//! AsterixDB compiles each query into a Hyracks job that runs on every
//! partition in parallel; the query time is bounded by the slowest node.
//! The simulation mirrors that structure: a [`QueryExecutor`] hands the
//! caller per-partition data (parallel scans, secondary-index searches,
//! point fetches) and charges each partition's node for the work, plus
//! serial coordinator work for final aggregation. TPC-H query programs in
//! `dynahash-tpch` are written against this API.
//!
//! Like a [`crate::session::Session`], the executor is a *client* of the
//! routing state: the first touch of each dataset caches an immutable copy
//! of its routing snapshot (Section III — a query job takes the directory
//! copy at compile time) and every per-partition dispatch goes through that
//! cache. Because the executor holds the cluster for the whole query, its
//! snapshots cannot go stale mid-job; long-lived clients that *can* go
//! stale use [`crate::cluster::Cluster::session`] and its redirect protocol
//! instead. Open an executor with [`crate::cluster::Cluster::query`].

use std::collections::BTreeMap;

use dynahash_core::{NodeId, PartitionId};
use dynahash_lsm::entry::{Entry, Key, Value};
use dynahash_lsm::{ScanOrder, SecondaryEntry};

use crate::cluster::Cluster;
use crate::dataset::{DatasetId, DatasetMeta};
use crate::sim::{NodeTimeline, SimDuration};
use crate::{ClusterError, Result};

/// The cost summary of one query execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReport {
    /// Simulated elapsed time (slowest node + coordinator).
    pub elapsed: SimDuration,
    /// Per-node busy time.
    pub per_node: Vec<(NodeId, SimDuration)>,
    /// Serial coordinator time.
    pub coordinator: SimDuration,
}

/// Executes one query against the cluster, accumulating simulated cost.
pub struct QueryExecutor<'a> {
    cluster: &'a mut Cluster,
    timeline: NodeTimeline,
    /// Per-dataset routing snapshots, taken on first touch: the query-job
    /// equivalent of a session cache.
    snapshots: BTreeMap<DatasetId, DatasetMeta>,
}

impl Cluster {
    /// Opens a query coordinator: the sanctioned entry point for analytics.
    /// The executor snapshots each dataset's routing state on first touch
    /// and dispatches all per-partition work through those snapshots.
    pub fn query(&mut self) -> QueryExecutor<'_> {
        QueryExecutor::new(self)
    }
}

impl<'a> QueryExecutor<'a> {
    /// Starts a query. The job-compilation/dispatch overhead is charged to
    /// the coordinator immediately. Equivalent to
    /// [`crate::cluster::Cluster::query`].
    pub fn new(cluster: &'a mut Cluster) -> Self {
        let overhead = cluster.cost_model().job_overhead_ns;
        let mut timeline = NodeTimeline::new();
        timeline.charge_coordinator(SimDuration::from_nanos(overhead));
        QueryExecutor {
            cluster,
            timeline,
            snapshots: BTreeMap::new(),
        }
    }

    /// Immutable access to the cluster (for routing metadata etc.).
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// The partitions a dataset's work is dispatched to, from the cached
    /// routing snapshot (taken on this executor's first touch of the
    /// dataset).
    fn partitions_of(&mut self, dataset: DatasetId) -> Result<Vec<PartitionId>> {
        if let Some(meta) = self.snapshots.get(&dataset) {
            return Ok(meta.partitions.clone());
        }
        let meta = self.cluster.controller.routing_snapshot(dataset)?;
        let partitions = meta.partitions.clone();
        self.snapshots.insert(dataset, meta);
        Ok(partitions)
    }

    fn node_of(&self, partition: PartitionId) -> Result<NodeId> {
        self.cluster.node_of_partition(partition)
    }

    /// Scans an entire dataset on every partition in parallel.
    ///
    /// `ordered` requests primary-key-ordered output, which on bucketed
    /// primary indexes requires a per-partition merge-sort across buckets —
    /// the overhead the paper observes on TPC-H q18.
    pub fn scan_table(
        &mut self,
        dataset: DatasetId,
        ordered: bool,
    ) -> Result<Vec<(PartitionId, Vec<Entry>)>> {
        let cost_model = self.cluster.cost_model();
        let mut out = Vec::new();
        for p in self.partitions_of(dataset)? {
            let part = self.cluster.partition(p)?;
            if !part.dataset_ids().contains(&dataset) {
                continue;
            }
            let ds = part.dataset(dataset)?;
            let num_buckets = ds.primary.num_buckets().max(1);
            let order = if ordered {
                ScanOrder::Ordered
            } else {
                ScanOrder::Unordered
            };
            let entries = ds.scan(order);
            let records = entries.len() as u64;
            let bytes: u64 = entries.iter().map(|e| e.size_bytes() as u64).sum();
            let node = self.node_of(p)?;
            let mut cost = cost_model.disk_read(bytes) + cost_model.query_cpu(records, 1.0);
            if ordered {
                // Merge-sort across the partition's bucket scans: cost grows
                // with the number of buckets that must be reconciled.
                let ways = (num_buckets as f64).log2().ceil().max(1.0) as u64;
                cost += cost_model.merge_sort_cpu(records * ways);
            }
            self.timeline.charge(node, cost);
            out.push((p, entries));
        }
        Ok(out)
    }

    /// Scans the whole dataset unordered and folds the result into one
    /// key → value map, also returning the raw (pre-dedup) record count.
    ///
    /// A consistent cluster yields every key on exactly one partition, so
    /// `raw_count == map.len()`; a mismatch means a record is visible twice
    /// (e.g. both a source bucket and an installed copy). The
    /// query-during-rebalance tests use this to assert that a scan between
    /// any two waves returns exactly the committed record set, never a
    /// partial or duplicated view of the moving buckets.
    pub fn collect_records(&mut self, dataset: DatasetId) -> Result<(BTreeMap<Key, Value>, usize)> {
        let scans = self.scan_table(dataset, false)?;
        let mut out = BTreeMap::new();
        let mut raw_count = 0usize;
        for (_, entries) in scans {
            for e in entries {
                if let Some(v) = e.op.value() {
                    raw_count += 1;
                    out.insert(e.key, v.clone());
                }
            }
        }
        Ok((out, raw_count))
    }

    /// Searches a secondary index on every partition in parallel, returning
    /// the matching (secondary, primary) pairs. Obsolete entries of moved
    /// buckets are validated away (lazy cleanup) but still cost read time.
    ///
    /// Buckets installed with a deferred secondary rebuild are warmed first:
    /// the first index scan after a rebalance pays the rebuild CPU the
    /// commit path skipped (charged to the partition's node), and every scan
    /// after that runs at full speed.
    pub fn index_scan(
        &mut self,
        dataset: DatasetId,
        index: &str,
        lo: Option<&Key>,
        hi: Option<&Key>,
    ) -> Result<Vec<(PartitionId, Vec<SecondaryEntry>)>> {
        let cost_model = self.cluster.cost_model();
        let mut out = Vec::new();
        for p in self.partitions_of(dataset)? {
            let node = self.node_of(p)?;
            let part = self.cluster.partition_mut(p)?;
            if !part.dataset_ids().contains(&dataset) {
                continue;
            }
            let ds = part.dataset_mut(dataset)?;
            // Validate the index name before paying for a warm: a typo'd
            // query must not consume the one-shot deferred stashes.
            if !ds.has_secondary_index(index) {
                return Err(ClusterError::UnknownIndex(index.to_string()));
            }
            let warmed = ds.warm_secondary_indexes();
            if warmed > 0 {
                self.timeline
                    .charge(node, cost_model.index_rebuild_cpu(warmed));
            }
            let idx = ds
                .secondary_mut(index)
                .ok_or_else(|| ClusterError::UnknownIndex(index.to_string()))?;
            let skipped_before = idx.obsolete_entries_skipped();
            let hits = idx.search_range(lo, hi);
            let skipped = idx.obsolete_entries_skipped() - skipped_before;
            let records = hits.len() as u64 + skipped;
            let bytes = records * 24;
            let cost = cost_model.disk_read(bytes) + cost_model.query_cpu(records, 0.5);
            self.timeline.charge(node, cost);
            out.push((p, hits));
        }
        Ok(out)
    }

    /// Fetches full records by primary key from a specific partition
    /// (the "fetch records from the bucketed primary index" half of an
    /// index-then-fetch plan).
    pub fn fetch(
        &mut self,
        dataset: DatasetId,
        partition: PartitionId,
        keys: &[Key],
    ) -> Result<Vec<Entry>> {
        let cost_model = self.cluster.cost_model();
        let node = self.node_of(partition)?;
        let part = self.cluster.partition(partition)?;
        let ds = part.dataset(dataset)?;
        let mut out = Vec::with_capacity(keys.len());
        let mut bytes = 0u64;
        for k in keys {
            if let Some(v) = ds.get(k) {
                bytes += (k.len() + v.len()) as u64;
                out.push(Entry::put(k.clone(), v));
            }
        }
        let cost = cost_model.disk_read(bytes) + cost_model.query_cpu(keys.len() as u64, 0.3);
        self.timeline.charge(node, cost);
        Ok(out)
    }

    /// Charges extra per-partition compute (joins, grouping, expensive
    /// expressions) for work over `records` records with a relative `weight`.
    pub fn charge_compute(
        &mut self,
        partition: PartitionId,
        records: u64,
        weight: f64,
    ) -> Result<()> {
        let node = self.node_of(partition)?;
        let cost = self.cluster.cost_model().query_cpu(records, weight);
        self.timeline.charge(node, cost);
        Ok(())
    }

    /// Charges serial coordinator-side compute (final merges, top-k, output).
    pub fn charge_coordinator(&mut self, records: u64, weight: f64) {
        let cost = self.cluster.cost_model().query_cpu(records, weight);
        self.timeline.charge_coordinator(cost);
    }

    /// Charges a network exchange of `bytes` received by `partition`'s node
    /// (broadcast/partitioned joins between datasets).
    pub fn charge_exchange(&mut self, partition: PartitionId, bytes: u64) -> Result<()> {
        let node = self.node_of(partition)?;
        let cost = self.cluster.cost_model().network(bytes);
        self.timeline.charge(node, cost);
        Ok(())
    }

    /// Finishes the query and returns its cost report.
    pub fn finish(self) -> QueryReport {
        QueryReport {
            elapsed: self.timeline.elapsed(),
            per_node: self.timeline.breakdown(),
            coordinator: self.timeline.coordinator_time(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetSpec, SecondaryIndexDef};
    use dynahash_core::Scheme;
    use dynahash_lsm::Bytes;

    fn setup() -> (Cluster, DatasetId) {
        let mut cluster = Cluster::new(2);
        let spec = DatasetSpec::new("orders", Scheme::StaticHash { num_buckets: 16 })
            .with_secondary_index(SecondaryIndexDef::new("idx_date", |payload| {
                if payload.len() >= 8 {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&payload[..8]);
                    Some(Key::from_u64(u64::from_be_bytes(b)))
                } else {
                    None
                }
            }));
        let ds = cluster.create_dataset(spec).unwrap();
        let records: Vec<(Key, Bytes)> = (0..2000u64)
            .map(|i| {
                let mut payload = (i % 30).to_be_bytes().to_vec();
                payload.extend_from_slice(&[1u8; 56]);
                (Key::from_u64(i), Bytes::from(payload))
            })
            .collect();
        cluster.ingest(ds, records).unwrap();
        (cluster, ds)
    }

    #[test]
    fn scan_table_returns_all_records_and_charges_nodes() {
        let (mut cluster, ds) = setup();
        let mut q = QueryExecutor::new(&mut cluster);
        let scans = q.scan_table(ds, false).unwrap();
        let total: usize = scans.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 2000);
        let report = q.finish();
        assert!(report.elapsed > SimDuration::ZERO);
        assert_eq!(report.per_node.len(), 2);
    }

    #[test]
    fn ordered_scan_costs_more_than_unordered() {
        let (mut cluster, ds) = setup();
        let unordered = {
            let mut q = QueryExecutor::new(&mut cluster);
            q.scan_table(ds, false).unwrap();
            q.finish().elapsed
        };
        let ordered = {
            let mut q = QueryExecutor::new(&mut cluster);
            let scans = q.scan_table(ds, true).unwrap();
            // ordered scans really are ordered per partition
            for (_, entries) in &scans {
                assert!(entries.windows(2).all(|w| w[0].key <= w[1].key));
            }
            q.finish().elapsed
        };
        assert!(ordered > unordered);
    }

    #[test]
    fn collect_records_dedupes_nothing_on_a_consistent_cluster() {
        let (mut cluster, ds) = setup();
        let mut q = QueryExecutor::new(&mut cluster);
        let (map, raw) = q.collect_records(ds).unwrap();
        assert_eq!(map.len(), 2000);
        assert_eq!(raw, 2000, "no key may be visible on two partitions");
        assert!(map.contains_key(&Key::from_u64(0)));
    }

    #[test]
    fn index_scan_filters_by_secondary_range() {
        let (mut cluster, ds) = setup();
        let mut q = QueryExecutor::new(&mut cluster);
        let lo = Key::from_u64(5);
        let hi = Key::from_u64(10);
        let hits = q.index_scan(ds, "idx_date", Some(&lo), Some(&hi)).unwrap();
        let total: usize = hits.iter().map(|(_, v)| v.len()).sum();
        // secondary keys are i % 30 over 2000 records: 5 values x ~66.7 records
        assert!(total > 300 && total < 350, "unexpected hit count {total}");
        assert!(q.index_scan(ds, "no_such_index", None, None).is_err());
        let report = q.finish();
        assert!(report.elapsed > SimDuration::ZERO);
    }

    #[test]
    fn fetch_returns_records_for_existing_keys() {
        let (mut cluster, ds) = setup();
        // find which partition holds key 7
        let p = cluster.route_key(ds, &Key::from_u64(7)).unwrap();
        let mut q = QueryExecutor::new(&mut cluster);
        let got = q
            .fetch(ds, p, &[Key::from_u64(7), Key::from_u64(999_999)])
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].key.as_u64(), 7);
    }

    #[test]
    fn compute_and_exchange_charges_accumulate() {
        let (mut cluster, ds) = setup();
        let p0 = cluster.topology().partitions()[0];
        let mut q = QueryExecutor::new(&mut cluster);
        q.scan_table(ds, false).unwrap();
        let before = q.timeline.elapsed();
        q.charge_compute(p0, 10_000, 2.0).unwrap();
        q.charge_exchange(p0, 1 << 20).unwrap();
        q.charge_coordinator(1000, 1.0);
        let report = q.finish();
        assert!(report.elapsed > before);
        assert!(report.coordinator > SimDuration::ZERO);
    }
}
