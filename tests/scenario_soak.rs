//! Integration tests of the scenario fleet: hand-written declarative
//! scripts and bounded seeded soak runs (the full million-key profile runs
//! as `cargo run --release --bin soak -- --quick` in CI; `--full` is the
//! manual/nightly profile).
//!
//! A failing soak prints its seed and the executed-op trace; replay it by
//! rerunning `run_soak` with the same config (the script and every random
//! choice derive from the seed alone).

mod common;

use common::{check_seeded_cases, CASES};
use dynahash::bench::scenario::{
    generate_scenario, run_scenario, run_soak, Scenario, ScenarioOp, SoakConfig,
};

/// The seeded property: bounded smoke-profile soaks across [`CASES`] seeds
/// must complete with zero invariant violations.
#[test]
fn prop_smoke_soaks_hold_every_invariant() {
    check_seeded_cases(
        "smoke soak",
        0x50a6_1000,
        CASES / 3, // each case is a whole soak run; keep the suite fast
        |seed, _rng| SoakConfig::smoke(seed),
        |_seed, cfg| {
            let report = run_soak(cfg);
            assert!(report.passed(), "{}", report.failure_banner());
            assert!(report.records_ingested >= cfg.target_ingest);
            assert!(report.churn_events >= cfg.churn_events);
            assert_eq!(report.rebalances, report.churn_events * cfg.datasets);
        },
    );
}

/// A hand-written declarative script exercising every op kind, including
/// the explicit add/remove steps the generator does not emit.
#[test]
fn hand_written_scenario_script_runs_clean() {
    let mut cfg = SoakConfig::smoke(0x5c21_0001);
    cfg.steps = 0; // the script below replaces the generated one
    let script = Scenario::new(
        "hand-written",
        vec![
            ScenarioOp::Ingest {
                dataset: 0,
                records: 4_000,
            },
            ScenarioOp::Ingest {
                dataset: 1,
                records: 3_000,
            },
            ScenarioOp::Queries {
                dataset: 0,
                ops: 200,
            },
            ScenarioOp::AddNode { max_moves: 4 },
            ScenarioOp::Queries {
                dataset: 1,
                ops: 100,
            },
            ScenarioOp::CrashRecover,
            ScenarioOp::WarmIndexes,
            ScenarioOp::ChurnStorm {
                rounds: 2,
                max_moves: 3,
                feed: 150,
            },
            ScenarioOp::RemoveNode { max_moves: 4 },
            ScenarioOp::Queries {
                dataset: 0,
                ops: 200,
            },
        ],
    );
    let report = run_scenario(&cfg, &script);
    assert!(report.passed(), "{}", report.failure_banner());
    assert_eq!(report.steps_run, script.ops.len());
    // AddNode + 2 storm rounds + RemoveNode, each rebalancing every dataset
    assert_eq!(report.churn_events, 4);
    assert_eq!(report.rebalances, 4 * cfg.datasets);
    assert!(report.crashes >= 1, "CrashRecover must crash a node");
    assert!(report.records_ingested >= 7_000);
}

/// Bound ops (AddNode at the ceiling, RemoveNode at the floor) skip instead
/// of failing, so hand-written scripts cannot wedge a cluster.
#[test]
fn explicit_churn_ops_respect_cluster_bounds() {
    let mut cfg = SoakConfig::smoke(0x5c21_0002);
    cfg.nodes = 2;
    cfg.max_nodes = 2; // AddNode is immediately at the ceiling
    cfg.steps = 0;
    let script = Scenario::new(
        "bounds",
        vec![
            ScenarioOp::Ingest {
                dataset: 0,
                records: 2_000,
            },
            ScenarioOp::Ingest {
                dataset: 1,
                records: 1_000,
            },
            ScenarioOp::AddNode { max_moves: 2 }, // skipped: at max_nodes
            ScenarioOp::RemoveNode { max_moves: 2 }, // skipped: at the floor
            ScenarioOp::Queries {
                dataset: 0,
                ops: 100,
            },
        ],
    );
    let report = run_scenario(&cfg, &script);
    assert!(report.passed(), "{}", report.failure_banner());
    assert_eq!(report.churn_events, 0, "both bound ops must skip");
    assert_eq!(report.final_nodes, 2);
}

/// The generator is a pure function of the config: same seed, same script;
/// different seeds, different scripts.
#[test]
fn generated_scripts_are_seed_deterministic() {
    let a = generate_scenario(&SoakConfig::smoke(1));
    let b = generate_scenario(&SoakConfig::smoke(1));
    let c = generate_scenario(&SoakConfig::smoke(2));
    assert_eq!(format!("{:?}", a.ops), format!("{:?}", b.ops));
    assert_ne!(format!("{:?}", a.ops), format!("{:?}", c.ops));
}
