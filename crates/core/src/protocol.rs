//! The online rebalance protocol state machine (Section V).
//!
//! A rebalance operation has three phases — initialization, data movement,
//! and finalization — and the finalization uses a two-phase commit so that
//! all Node Controllers reach a unanimous decision even though log
//! replication may still be active when data movement "finishes".
//!
//! The coordinator here is a pure state machine: it validates transitions and
//! records votes, while the actual work (forcing log records, scanning
//! buckets, shipping data) is driven by `dynahash-cluster`. Keeping the
//! protocol pure makes the six failure cases of Section V-D directly
//! testable.

use std::collections::BTreeMap;

use dynahash_lsm::wal::RebalanceId;

use crate::topology::NodeId;
use crate::{CoreError, Result};

/// The phases of a rebalance operation, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RebalancePhase {
    /// BEGIN has been forced; the CC is refreshing directories, computing the
    /// plan, and the NCs are flushing the moving buckets' memory components.
    Initialization,
    /// Buckets are being scanned, shipped, and loaded; concurrent writes are
    /// replicated as log records.
    DataMovement,
    /// The CC is waiting for every NC to finish log replication and flush the
    /// rebalance memory components (the "prepare" half of 2PC). Reads and
    /// writes on the dataset are briefly blocked.
    Prepare,
    /// COMMIT has been forced; NCs install received buckets and clean up
    /// moved buckets.
    Commit,
    /// DONE has been produced; the rebalance can be forgotten.
    Done,
    /// The rebalance aborted; intermediate results must be cleaned up.
    Aborted,
}

/// A participant's vote in the prepare phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeVote {
    /// The NC completed log replication and flushed rebalance writes.
    Yes,
    /// The NC failed to prepare; the rebalance must abort.
    No,
}

/// How the data-movement phase transfers a bucket between partitions
/// (Section IV of the paper argues for component-level movement: sealed LSM
/// components are immutable, so a bucket can move as whole files).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MovePolicy {
    /// Scan the bucket into records at the source and re-materialise them at
    /// the destination (merge, re-sort, rebuild Bloom filters, rebuild every
    /// index). The static-hash-era baseline; kept as a correctness oracle
    /// and benchmark reference.
    Records,
    /// Ship the bucket's sealed components whole: Bloom filters and sorted
    /// runs travel with the component files, and the destination rebuilds
    /// only its secondary indexes. The default, and the source of the
    /// paper's rebalance-efficiency claim.
    #[default]
    Components,
}

impl MovePolicy {
    /// Stable label used by reports and benchmarks.
    pub fn name(&self) -> &'static str {
        match self {
            MovePolicy::Records => "Records",
            MovePolicy::Components => "Components",
        }
    }
}

/// When the destination of a component-level bucket move rebuilds its
/// secondary-index entries for the received records.
///
/// Secondary indexes never travel with a moved bucket (they store all
/// buckets together, Section IV); the destination derives their entries from
/// the shipped primary data. Doing that on the commit path puts an
/// O(records) CPU charge into every wave's makespan even though the workload
/// may never query those indexes — the same pay-lazily argument the dynamic
/// hybrid hash join work (Jahangiri et al., arXiv:2112.02480) makes for
/// partition builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SecondaryRebuild {
    /// Rebuild secondary entries while installing the shipped components
    /// (the PR 3/PR 4 behaviour; kept as the makespan baseline).
    Eager,
    /// Record the received bucket as `SecondaryState::Deferred` and build
    /// its secondary entries on the first `index_scan` touching the dataset
    /// (or an explicit `warm_indexes` admin call). The default: the rebuild
    /// cost moves off the wave-commit path.
    #[default]
    Deferred,
}

impl SecondaryRebuild {
    /// Stable label used by reports and benchmarks.
    pub fn name(&self) -> &'static str {
        match self {
            SecondaryRebuild::Eager => "Eager",
            SecondaryRebuild::Deferred => "Deferred",
        }
    }
}

/// When and whether a wave speculatively re-executes a straggling transfer.
///
/// A slow-node fault stretches a transfer without failing it, so the retry
/// machinery never reacts and the whole wave makespan absorbs the stall. The
/// classic answer (MapReduce-style speculative execution) is to ship the
/// laggard's move *again* once it has run long past its peers and take the
/// first finisher. The slow factor models a transient environmental stall
/// (background compaction, a GC pause, a hot disk) pinned to the first
/// attempt; the backup, launched later from the live source, runs at nominal
/// speed and wins exactly when the stall is long enough to pay for the late
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeculationPolicy {
    /// Whether stragglers are speculatively re-executed at all.
    pub enabled: bool,
    /// A transfer qualifies as a straggler when its leg exceeds this multiple
    /// of the wave's median leg. Single-move waves never qualify (the only
    /// leg *is* the median).
    pub straggler_multiple: u32,
}

impl Default for SpeculationPolicy {
    fn default() -> Self {
        SpeculationPolicy {
            enabled: true,
            straggler_multiple: 2,
        }
    }
}

impl SpeculationPolicy {
    /// Speculation switched off: stragglers run to completion unchallenged.
    pub fn disabled() -> Self {
        SpeculationPolicy {
            enabled: false,
            ..SpeculationPolicy::default()
        }
    }

    /// True when a transfer leg of `leg_ns` against a wave median of
    /// `median_ns` qualifies as a straggler worth re-executing.
    pub fn is_straggler(&self, leg_ns: u64, median_ns: u64) -> bool {
        self.enabled
            && median_ns > 0
            && leg_ns > median_ns.saturating_mul(u64::from(self.straggler_multiple.max(1)))
    }
}

/// The final outcome of a rebalance operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceOutcome {
    /// The rebalance committed: the new directory is installed.
    Committed,
    /// The rebalance aborted: the dataset is left unchanged.
    Aborted,
}

/// Failure-injection points corresponding to the six cases of Section V-D.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePoint {
    /// Case 1: an NC fails before voting "prepared".
    NcBeforePrepared(NodeId),
    /// Case 2: an NC fails after voting "prepared".
    NcAfterPrepared(NodeId),
    /// Case 3: the CC fails before forcing the COMMIT log record.
    CcBeforeCommitLog,
    /// Case 4: an NC fails before responding "committed".
    NcBeforeCommitted(NodeId),
    /// Case 5: the CC fails after forcing COMMIT but before DONE.
    CcAfterCommitBeforeDone,
    /// Case 6: the CC fails after DONE is persisted.
    CcAfterDone,
}

/// The CC-side coordinator of one rebalance operation.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceCoordinator {
    /// The rebalance operation id.
    pub rebalance_id: RebalanceId,
    phase: RebalancePhase,
    participants: Vec<NodeId>,
    votes: BTreeMap<NodeId, NodeVote>,
    committed_acks: BTreeMap<NodeId, bool>,
    outcome: Option<RebalanceOutcome>,
}

impl RebalanceCoordinator {
    /// Starts a rebalance: the caller must already have forced the BEGIN log
    /// record (the coordinator starts in the initialization phase).
    pub fn new(rebalance_id: RebalanceId, participants: Vec<NodeId>) -> Self {
        RebalanceCoordinator {
            rebalance_id,
            phase: RebalancePhase::Initialization,
            participants,
            votes: BTreeMap::new(),
            committed_acks: BTreeMap::new(),
            outcome: None,
        }
    }

    /// The current phase.
    pub fn phase(&self) -> RebalancePhase {
        self.phase
    }

    /// The participating node controllers.
    pub fn participants(&self) -> &[NodeId] {
        &self.participants
    }

    /// The final outcome, once decided.
    pub fn outcome(&self) -> Option<RebalanceOutcome> {
        self.outcome
    }

    /// Removes a participant that was permanently lost mid-rebalance: its
    /// vote and ack (if any) are discarded, and it no longer counts toward
    /// `all_voted` / `unanimous_yes` / `all_committed`. Only meaningful
    /// before the decision — re-planning around a loss happens during data
    /// movement; after the commit decision the outcome already stands.
    pub fn remove_participant(&mut self, node: NodeId) {
        self.participants.retain(|n| *n != node);
        self.votes.remove(&node);
        self.committed_acks.remove(&node);
    }

    fn expect_phase(&self, expected: RebalancePhase, action: &'static str) -> Result<()> {
        if self.phase == expected {
            Ok(())
        } else {
            Err(CoreError::InvalidTransition {
                from: self.phase,
                action,
            })
        }
    }

    /// Initialization complete: the CC requests data movement from all NCs.
    pub fn start_data_movement(&mut self) -> Result<()> {
        self.expect_phase(RebalancePhase::Initialization, "start_data_movement")?;
        self.phase = RebalancePhase::DataMovement;
        Ok(())
    }

    /// All data movement finished: the CC enters the prepare phase, which
    /// blocks incoming reads and writes on the rebalancing dataset while NCs
    /// finish log replication.
    pub fn start_prepare(&mut self) -> Result<()> {
        self.expect_phase(RebalancePhase::DataMovement, "start_prepare")?;
        self.phase = RebalancePhase::Prepare;
        Ok(())
    }

    /// Records an NC's prepare vote.
    pub fn record_vote(&mut self, node: NodeId, vote: NodeVote) -> Result<()> {
        self.expect_phase(RebalancePhase::Prepare, "record_vote")?;
        self.votes.insert(node, vote);
        Ok(())
    }

    /// True once every participant has voted.
    pub fn all_voted(&self) -> bool {
        self.participants.iter().all(|n| self.votes.contains_key(n))
    }

    /// True if every participant voted yes.
    pub fn unanimous_yes(&self) -> bool {
        self.all_voted() && self.votes.values().all(|v| *v == NodeVote::Yes)
    }

    /// Decides the outcome. If all votes are yes the coordinator moves to the
    /// commit phase (the caller must force the COMMIT log record *before*
    /// calling this); otherwise it aborts.
    pub fn decide(&mut self) -> Result<RebalanceOutcome> {
        self.expect_phase(RebalancePhase::Prepare, "decide")?;
        if self.unanimous_yes() {
            self.phase = RebalancePhase::Commit;
            self.outcome = Some(RebalanceOutcome::Committed);
            Ok(RebalanceOutcome::Committed)
        } else {
            self.phase = RebalancePhase::Aborted;
            self.outcome = Some(RebalanceOutcome::Aborted);
            Ok(RebalanceOutcome::Aborted)
        }
    }

    /// Aborts the rebalance from any phase before commit (node failure,
    /// operator cancellation, CC recovery seeing BEGIN without COMMIT).
    /// Aborting after the commit decision is invalid — the outcome of a
    /// rebalance is determined solely by whether COMMIT was forced.
    pub fn abort(&mut self) -> Result<()> {
        match self.phase {
            RebalancePhase::Commit | RebalancePhase::Done => Err(CoreError::InvalidTransition {
                from: self.phase,
                action: "abort",
            }),
            RebalancePhase::Aborted => Ok(()),
            _ => {
                self.phase = RebalancePhase::Aborted;
                self.outcome = Some(RebalanceOutcome::Aborted);
                Ok(())
            }
        }
    }

    /// Records that an NC finished its commit tasks (installing received
    /// buckets and cleaning up moved buckets).
    pub fn record_committed(&mut self, node: NodeId) -> Result<()> {
        self.expect_phase(RebalancePhase::Commit, "record_committed")?;
        self.committed_acks.insert(node, true);
        Ok(())
    }

    /// True once every participant acknowledged the commit.
    pub fn all_committed(&self) -> bool {
        self.participants
            .iter()
            .all(|n| self.committed_acks.get(n).copied().unwrap_or(false))
    }

    /// Finishes the rebalance (the caller produces the DONE log record).
    pub fn finish(&mut self) -> Result<()> {
        match self.phase {
            RebalancePhase::Commit => {
                self.phase = RebalancePhase::Done;
                Ok(())
            }
            RebalancePhase::Aborted => {
                // An aborted rebalance is also "done" once cleanup finished;
                // keep the Aborted phase but accept the call (idempotent).
                Ok(())
            }
            _ => Err(CoreError::InvalidTransition {
                from: self.phase,
                action: "finish",
            }),
        }
    }

    /// True if the rebalance reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(self.phase, RebalancePhase::Done | RebalancePhase::Aborted)
    }
}

// -------------------------------------------------- control-plane protocol

/// Decayed load counters for one bucket (or, aggregated, one partition), as
/// tracked by the cluster's heat map and reported to the control plane.
///
/// `reads`/`writes` are exponentially decayed operation counters fed from
/// the session data paths; `records` and `resident_bytes` are refreshed
/// from storage reporting when a heat snapshot is taken, so a snapshot
/// always reflects current residency even though the op counters decay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BucketHeat {
    /// Decayed point-read operations that touched the bucket.
    pub reads: u64,
    /// Decayed write operations (inserts and deletes) that hit the bucket.
    pub writes: u64,
    /// Live records resident in the bucket at snapshot time.
    pub records: u64,
    /// Logical bytes resident in the bucket at snapshot time.
    pub resident_bytes: u64,
}

impl BucketHeat {
    /// Total decayed operations, read and write.
    pub fn ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Applies one decay step: both op counters are halved, so heat from k
    /// ticks ago contributes `2^-k` of its original weight.
    pub fn decay(&mut self) {
        self.reads >>= 1;
        self.writes >>= 1;
    }

    /// Folds another counter set into this one (partition aggregation).
    pub fn absorb(&mut self, other: &BucketHeat) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.records += other.records;
        self.resident_bytes += other.resident_bytes;
    }
}

/// Maximum-deviation imbalance over a set of per-partition loads:
/// `max_p |load(p) - avg| / avg`, the detection metric of the reference
/// shard rebalancer (SNIPPETS.md Snippet 3). Zero for an empty set or an
/// all-zero load vector — an empty cluster is perfectly balanced.
pub fn max_deviation_imbalance(loads: impl IntoIterator<Item = u64>) -> f64 {
    let loads: Vec<u64> = loads.into_iter().collect();
    if loads.is_empty() {
        return 0.0;
    }
    let total: u64 = loads.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let avg = total as f64 / loads.len() as f64;
    loads
        .iter()
        .map(|&l| (l as f64 - avg).abs() / avg)
        .fold(0.0, f64::max)
}

/// A throttle on automatic data movement: at most `max_buckets_per_window`
/// bucket moves and `max_bytes_per_window` shipped bytes may start inside
/// one window of `window_ticks` control-plane ticks (the
/// `max_migrations_per_hour` knob of the reference rebalancer, expressed in
/// sim-time ticks). Moves that do not fit are deferred to a later window,
/// spreading a large rebalance over time instead of letting it saturate the
/// cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationBudget {
    /// Bucket moves admitted per window.
    pub max_buckets_per_window: usize,
    /// Shipped bytes admitted per window.
    pub max_bytes_per_window: u64,
    /// Window length in control-plane ticks.
    pub window_ticks: u64,
}

impl Default for MigrationBudget {
    fn default() -> Self {
        MigrationBudget {
            max_buckets_per_window: 8,
            max_bytes_per_window: 4 * 1024 * 1024,
            window_ticks: 4,
        }
    }
}

impl MigrationBudget {
    /// True when a wave of `buckets` moves shipping `bytes` still fits the
    /// window that has already admitted `used_buckets` / `used_bytes`.
    pub fn admits(&self, used_buckets: usize, used_bytes: u64, buckets: usize, bytes: u64) -> bool {
        used_buckets + buckets <= self.max_buckets_per_window
            && used_bytes.saturating_add(bytes) <= self.max_bytes_per_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn happy_path_commits() {
        let mut c = RebalanceCoordinator::new(1, nodes(3));
        assert_eq!(c.phase(), RebalancePhase::Initialization);
        c.start_data_movement().unwrap();
        c.start_prepare().unwrap();
        for n in nodes(3) {
            c.record_vote(n, NodeVote::Yes).unwrap();
        }
        assert!(c.unanimous_yes());
        assert_eq!(c.decide().unwrap(), RebalanceOutcome::Committed);
        for n in nodes(3) {
            c.record_committed(n).unwrap();
        }
        assert!(c.all_committed());
        c.finish().unwrap();
        assert_eq!(c.phase(), RebalancePhase::Done);
        assert!(c.is_terminal());
    }

    #[test]
    fn a_single_no_vote_aborts() {
        let mut c = RebalanceCoordinator::new(2, nodes(3));
        c.start_data_movement().unwrap();
        c.start_prepare().unwrap();
        c.record_vote(NodeId(0), NodeVote::Yes).unwrap();
        c.record_vote(NodeId(1), NodeVote::No).unwrap();
        c.record_vote(NodeId(2), NodeVote::Yes).unwrap();
        assert!(!c.unanimous_yes());
        assert_eq!(c.decide().unwrap(), RebalanceOutcome::Aborted);
        assert_eq!(c.phase(), RebalancePhase::Aborted);
        assert!(c.is_terminal());
    }

    #[test]
    fn missing_votes_prevent_commit_decision() {
        let mut c = RebalanceCoordinator::new(3, nodes(2));
        c.start_data_movement().unwrap();
        c.start_prepare().unwrap();
        c.record_vote(NodeId(0), NodeVote::Yes).unwrap();
        assert!(!c.all_voted());
        // deciding with a missing vote aborts (it is not unanimous)
        assert_eq!(c.decide().unwrap(), RebalanceOutcome::Aborted);
    }

    #[test]
    fn out_of_order_transitions_are_rejected() {
        let mut c = RebalanceCoordinator::new(4, nodes(2));
        assert!(c.start_prepare().is_err());
        assert!(c.record_vote(NodeId(0), NodeVote::Yes).is_err());
        assert!(c.record_committed(NodeId(0)).is_err());
        assert!(c.finish().is_err());
        c.start_data_movement().unwrap();
        assert!(c.start_data_movement().is_err());
    }

    #[test]
    fn abort_is_allowed_before_commit_but_not_after() {
        let mut c = RebalanceCoordinator::new(5, nodes(2));
        c.start_data_movement().unwrap();
        c.abort().unwrap();
        assert_eq!(c.outcome(), Some(RebalanceOutcome::Aborted));
        // idempotent
        c.abort().unwrap();

        let mut c2 = RebalanceCoordinator::new(6, nodes(1));
        c2.start_data_movement().unwrap();
        c2.start_prepare().unwrap();
        c2.record_vote(NodeId(0), NodeVote::Yes).unwrap();
        c2.decide().unwrap();
        assert!(c2.abort().is_err(), "cannot abort after COMMIT decision");
    }

    #[test]
    fn finish_requires_commit_or_abort() {
        let mut c = RebalanceCoordinator::new(7, nodes(1));
        c.start_data_movement().unwrap();
        c.start_prepare().unwrap();
        c.record_vote(NodeId(0), NodeVote::No).unwrap();
        c.decide().unwrap();
        // aborted rebalance accepts finish (cleanup done)
        c.finish().unwrap();
        assert_eq!(c.phase(), RebalancePhase::Aborted);
    }

    #[test]
    fn speculation_policy_straggler_threshold() {
        let p = SpeculationPolicy::default();
        assert!(p.enabled);
        // at or below the multiple: not a straggler (strictly greater wins)
        assert!(!p.is_straggler(200, 100));
        assert!(p.is_straggler(201, 100));
        // a single-move wave (leg == median) never qualifies
        assert!(!p.is_straggler(100, 100));
        // a zero median (empty wave) never qualifies
        assert!(!p.is_straggler(100, 0));
        assert!(!SpeculationPolicy::disabled().is_straggler(1_000_000, 1));
        // a zero multiple is clamped to 1 rather than flagging everything
        let eager = SpeculationPolicy {
            enabled: true,
            straggler_multiple: 0,
        };
        assert!(!eager.is_straggler(100, 100));
        assert!(eager.is_straggler(101, 100));
    }

    #[test]
    fn bucket_heat_decays_and_aggregates() {
        let mut h = BucketHeat {
            reads: 8,
            writes: 5,
            records: 10,
            resident_bytes: 100,
        };
        h.decay();
        assert_eq!((h.reads, h.writes), (4, 2));
        assert_eq!((h.records, h.resident_bytes), (10, 100), "decay is op-only");
        let mut total = BucketHeat::default();
        total.absorb(&h);
        total.absorb(&h);
        assert_eq!(total.ops(), 12);
        assert_eq!(total.resident_bytes, 200);
    }

    #[test]
    fn max_deviation_matches_the_reference_shape() {
        assert_eq!(max_deviation_imbalance([]), 0.0);
        assert_eq!(max_deviation_imbalance([0, 0, 0]), 0.0);
        assert_eq!(max_deviation_imbalance([5, 5, 5, 5]), 0.0);
        // loads 10, 20, 30: avg 20, max deviation 10/20 = 0.5
        let imb = max_deviation_imbalance([10, 20, 30]);
        assert!((imb - 0.5).abs() < 1e-12, "{imb}");
        // a single hot partition dominates the metric
        assert!(max_deviation_imbalance([100, 1, 1, 1]) > 2.0);
    }

    #[test]
    fn migration_budget_caps_buckets_and_bytes() {
        let b = MigrationBudget {
            max_buckets_per_window: 4,
            max_bytes_per_window: 1000,
            window_ticks: 2,
        };
        assert!(b.admits(0, 0, 4, 1000));
        assert!(!b.admits(0, 0, 5, 10), "bucket cap");
        assert!(!b.admits(0, 500, 1, 501), "byte cap");
        assert!(b.admits(3, 999, 1, 1));
        assert!(!b.admits(4, 0, 1, 0), "window already full");
        assert!(
            !b.admits(0, u64::MAX - 1, 1, 1),
            "an over-budget window saturates instead of overflowing"
        );
    }
}
