//! End-to-end integration tests spanning every crate of the workspace:
//! storage engine → extendible hashing → cluster simulation → TPC-H workload.

use dynahash::cluster::{Cluster, DatasetSpec, RebalanceOptions, SecondaryIndexDef};
use dynahash::core::{NodeId, RebalanceOutcome, Scheme};
use dynahash::lsm::entry::Key;
use dynahash::lsm::Bytes;
use dynahash::tpch::{load_tpch, run_query, TpchScale, NUM_QUERIES};

fn record(i: u64) -> (Key, Bytes) {
    let mut payload = (i % 17).to_be_bytes().to_vec();
    payload.extend_from_slice(&[0u8; 72]);
    (Key::from_u64(i), Bytes::from(payload))
}

fn spec(scheme: Scheme) -> DatasetSpec {
    DatasetSpec::new("events", scheme).with_secondary_index(SecondaryIndexDef::new(
        "idx_mod17",
        |payload: &[u8]| {
            if payload.len() >= 8 {
                let mut b = [0u8; 8];
                b.copy_from_slice(&payload[..8]);
                Some(Key::from_u64(u64::from_be_bytes(b)))
            } else {
                None
            }
        },
    ))
}

#[test]
fn full_lifecycle_scale_out_and_in_with_queries() {
    let mut cluster = Cluster::new(2);
    let ds = cluster
        .create_dataset(spec(Scheme::dynahash(64 * 1024, 8)))
        .unwrap();
    let mut session = cluster.session(ds).unwrap();
    session
        .ingest(&mut cluster, (0..8_000u64).map(record))
        .unwrap();

    // Secondary-index query before any rebalance.
    let count_before = {
        let mut exec = cluster.query();
        let lo = Key::from_u64(3);
        let hi = Key::from_u64(4);
        let hits = exec
            .index_scan(ds, "idx_mod17", Some(&lo), Some(&hi))
            .unwrap();
        hits.iter().map(|(_, v)| v.len()).sum::<usize>()
    };
    assert!(count_before > 0);

    // Scale out to 3 nodes.
    cluster.add_node().unwrap();
    let target = cluster.topology().clone();
    let out = cluster
        .rebalance(ds, &target, RebalanceOptions::none())
        .unwrap();
    assert_eq!(out.outcome, RebalanceOutcome::Committed);
    assert!(out.moved_fraction < 0.6);
    cluster.check_dataset_consistency(ds).unwrap();

    // Scale back in to 2 nodes and decommission the node.
    let victim = NodeId(2);
    let target = cluster.topology_without(victim);
    let back = cluster
        .rebalance(ds, &target, RebalanceOptions::none())
        .unwrap();
    assert_eq!(back.outcome, RebalanceOutcome::Committed);
    cluster.decommission_node(victim).unwrap();
    cluster.check_dataset_consistency(ds).unwrap();
    assert_eq!(cluster.dataset_len(ds).unwrap(), 8_000);

    // The session opened before both rebalances is stale across two
    // directory versions; the redirect protocol converges it transparently.
    assert_eq!(
        session
            .get(&cluster, &Key::from_u64(4_242))
            .unwrap()
            .map(|v| v.len()),
        Some(80)
    );
    assert!(session.metrics().refreshes() >= 1);

    // The secondary index still answers correctly after two rebalances
    // (lazy cleanup hides entries of moved buckets).
    let count_after = {
        let mut exec = cluster.query();
        let lo = Key::from_u64(3);
        let hi = Key::from_u64(4);
        let hits = exec
            .index_scan(ds, "idx_mod17", Some(&lo), Some(&hi))
            .unwrap();
        hits.iter().map(|(_, v)| v.len()).sum::<usize>()
    };
    assert_eq!(count_before, count_after);
}

#[test]
fn concurrent_writes_survive_scale_in() {
    let mut cluster = Cluster::new(3);
    let ds = cluster
        .create_dataset(spec(Scheme::StaticHash { num_buckets: 64 }))
        .unwrap();
    let mut session = cluster.session(ds).unwrap();
    session
        .ingest(&mut cluster, (0..6_000u64).map(record))
        .unwrap();

    let concurrent: Vec<(Key, Bytes)> = (100_000..100_500u64).map(record).collect();
    let victim = NodeId(2);
    let target = cluster.topology_without(victim);
    let report = cluster
        .rebalance(
            ds,
            &target,
            RebalanceOptions::none().with_concurrent_writes(concurrent.clone()),
        )
        .unwrap();
    assert_eq!(report.outcome, RebalanceOutcome::Committed);
    assert_eq!(report.concurrent_writes_applied, 500);
    cluster.decommission_node(victim).unwrap();
    cluster.check_dataset_consistency(ds).unwrap();
    assert_eq!(cluster.dataset_len(ds).unwrap(), 6_500);
    // the pre-rebalance session reads every concurrent write through the
    // redirect protocol
    for (k, v) in concurrent.iter().step_by(37) {
        assert_eq!(session.get(&cluster, k).unwrap().as_ref(), Some(v));
    }
}

#[test]
fn every_scheme_gives_identical_query_answers_after_rebalancing() {
    // Load TPC-H under DynaHash, answer a subset of queries, rebalance the
    // cluster down a node, and check the answers do not change.
    let mut cluster = Cluster::new(3);
    let scheme = Scheme::dynahash(32 * 1024, 12);
    let (tables, _, _) = load_tpch(&mut cluster, scheme, TpchScale::tiny()).unwrap();
    let sample_queries = [1usize, 3, 6, 12, 18, 21];

    let before: Vec<f64> = sample_queries
        .iter()
        .map(|&q| {
            let mut exec = cluster.query();
            run_query(q, &mut exec, &tables).unwrap()
        })
        .collect();

    let datasets = [
        tables.lineitem,
        tables.orders,
        tables.customer,
        tables.part,
        tables.supplier,
        tables.partsupp,
        tables.nation,
        tables.region,
    ];
    let target = cluster.topology_without(NodeId(2));
    for ds in datasets {
        cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap();
        cluster.check_dataset_consistency(ds).unwrap();
    }
    cluster.decommission_node(NodeId(2)).unwrap();

    let after: Vec<f64> = sample_queries
        .iter()
        .map(|&q| {
            let mut exec = cluster.query();
            run_query(q, &mut exec, &tables).unwrap()
        })
        .collect();
    for (i, &q) in sample_queries.iter().enumerate() {
        assert!(
            (before[i] - after[i]).abs() < 1e-6 * before[i].abs().max(1.0),
            "q{q} changed its answer after rebalancing: {} vs {}",
            before[i],
            after[i]
        );
    }
}

#[test]
fn hashing_and_dynahash_agree_on_all_22_queries() {
    let answers = |scheme: Scheme| -> Vec<f64> {
        let mut cluster = Cluster::new(2);
        let (tables, _, _) = load_tpch(
            &mut cluster,
            scheme,
            TpchScale {
                orders: 80,
                seed: 7,
            },
        )
        .unwrap();
        (1..=NUM_QUERIES)
            .map(|n| {
                let mut exec = cluster.query();
                run_query(n, &mut exec, &tables).unwrap()
            })
            .collect()
    };
    let hashing = answers(Scheme::Hashing);
    let dynahash = answers(Scheme::dynahash(16 * 1024, 8));
    for (i, (a, b)) in hashing.iter().zip(&dynahash).enumerate() {
        assert!(
            (a - b).abs() < 1e-6 * a.abs().max(1.0),
            "q{} disagrees between schemes: {a} vs {b}",
            i + 1
        );
    }
}
