//! # DynaHash
//!
//! A from-scratch Rust reproduction of *"DynaHash: Efficient Data Rebalancing
//! in Apache AsterixDB"* (Luo & Carey, ICDE 2022). This umbrella crate
//! re-exports the workspace's public API:
//!
//! * [`lsm`] — the LSM-tree storage substrate (bucketed primary indexes,
//!   secondary indexes with lazy cleanup, transaction log);
//! * [`core`] — extendible hashing, the global directory, the greedy
//!   balancing algorithm, rebalancing schemes, and the rebalance protocol;
//! * [`cluster`] — the simulated shared-nothing cluster (Cluster Controller,
//!   Node Controllers, partitions, feeds, queries, the step-driven
//!   [`cluster::RebalanceJob`] executor, fault injection);
//! * [`tpch`] — the TPC-H-like workload used by the paper's evaluation;
//! * [`bench`] — the experiment harness (paper figures, regression gates)
//!   and the scenario fleet: declarative workload scripts plus the seeded
//!   soak driver ([`bench::scenario`]).
//!
//! ## Quick start
//!
//! ```
//! use dynahash::cluster::{Cluster, DatasetSpec, RebalanceOptions};
//! use dynahash::core::Scheme;
//! use dynahash::lsm::entry::Key;
//! use dynahash::lsm::Bytes;
//!
//! // A 2-node cluster with a DynaHash-partitioned dataset.
//! let mut cluster = Cluster::new(2);
//! let ds = cluster
//!     .create_dataset(DatasetSpec::new("events", Scheme::dynahash(64 * 1024, 8)))
//!     .unwrap();
//!
//! // All data I/O goes through a client session, which caches a versioned
//! // snapshot of the routing directory.
//! let mut session = cluster.session(ds).unwrap();
//! let records = (0..1000u64).map(|i| (Key::from_u64(i), Bytes::from(vec![0u8; 64])));
//! session.ingest(&mut cluster, records).unwrap();
//!
//! // Scale out and rebalance online.
//! cluster.add_node().unwrap();
//! let target = cluster.topology().clone();
//! let report = cluster.rebalance(ds, &target, RebalanceOptions::none()).unwrap();
//! assert!(report.moved_fraction < 0.5); // local rebalancing, not a full reshuffle
//!
//! // The session is now stale; its next read of a moved bucket redirects,
//! // refreshes its cached directory, and retries — transparently.
//! assert!(session.get(&cluster, &Key::from_u64(123)).unwrap().is_some());
//! cluster.check_dataset_consistency(ds).unwrap();
//! ```

pub use dynahash_bench as bench;
pub use dynahash_cluster as cluster;
pub use dynahash_core as core;
pub use dynahash_lsm as lsm;
pub use dynahash_tpch as tpch;
