//! Figure 6: ingestion time for each rebalancing scheme.
//!
//! The harness measures the wall-clock time of the simulation; the simulated
//! ingestion minutes (the quantity the paper plots) are printed by the
//! `experiments` binary.

use dynahash_bench::timing::{bench_case, bench_group, DEFAULT_ITERS};
use dynahash_bench::{fig6_ingestion, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::quick();
    bench_group("fig6_ingestion");
    for nodes in [2u32, 4] {
        bench_case(&format!("all_schemes/{nodes}_nodes"), DEFAULT_ITERS, || {
            fig6_ingestion(&cfg, &[nodes])
        });
    }
}
