//! Property-based integration tests of the rebalance invariants: whatever
//! sequence of scale-out / scale-in / ingest steps is applied, no record is
//! ever lost or misrouted, and the load balance stays bounded.

mod common;

use common::{check_seeded_cases, record, test_cluster, CASES};
use dynahash::cluster::{Cluster, DatasetSpec, RebalanceOptions};
use dynahash::core::{NodeId, RebalanceOutcome, Scheme};
use dynahash::lsm::entry::Key;
use dynahash::lsm::rng::SplitMix64;

#[derive(Debug, Clone)]
enum Step {
    Ingest(u16),
    ScaleOut,
    ScaleIn,
}

/// Draws a step with the same distribution the old proptest strategy used:
/// one of Ingest(50..400), ScaleOut, ScaleIn, uniformly.
fn random_step(rng: &mut SplitMix64) -> Step {
    match rng.gen_range(0..3) {
        0 => Step::Ingest(rng.gen_range(50..400) as u16),
        1 => Step::ScaleOut,
        _ => Step::ScaleIn,
    }
}

fn random_steps(rng: &mut SplitMix64) -> Vec<Step> {
    let n = rng.gen_range(1..8) as usize;
    (0..n).map(|_| random_step(rng)).collect()
}

/// Runs [`CASES`] seeded random step sequences against `scheme`. On failure
/// the panic message names the failing seed and the exact step sequence so
/// the case can be replayed deterministically.
fn check_never_loses_records(scheme: Scheme, seed_base: u64) {
    check_seeded_cases(
        &format!("rebalance property for scheme {scheme:?}"),
        seed_base,
        CASES,
        |_seed, rng| random_steps(rng),
        |_seed, steps| run_steps(scheme, steps),
    );
}

fn run_steps(scheme: Scheme, steps: &[Step]) {
    let mut cluster = test_cluster(2);
    let ds = cluster
        .create_dataset(DatasetSpec::new("events", scheme))
        .unwrap();
    let mut next_key = 0u64;
    let mut expected = 0usize;

    for step in steps {
        match step {
            Step::Ingest(n) => {
                let n = *n as u64;
                let mut session = cluster.session(ds).unwrap();
                session
                    .ingest(&mut cluster, (next_key..next_key + n).map(record))
                    .unwrap();
                next_key += n;
                expected += n as usize;
            }
            Step::ScaleOut => {
                if cluster.topology().num_nodes() >= 5 {
                    continue;
                }
                cluster.add_node().unwrap();
                let target = cluster.topology().clone();
                let report = cluster
                    .rebalance(ds, &target, RebalanceOptions::none())
                    .unwrap();
                assert_eq!(report.outcome, RebalanceOutcome::Committed);
            }
            Step::ScaleIn => {
                if cluster.topology().num_nodes() <= 1 {
                    continue;
                }
                let victim = *cluster.topology().nodes().last().unwrap();
                let target = cluster.topology_without(victim);
                let report = cluster
                    .rebalance(ds, &target, RebalanceOptions::none())
                    .unwrap();
                assert_eq!(report.outcome, RebalanceOutcome::Committed);
                if scheme.is_bucketed() {
                    cluster.decommission_node(victim).unwrap();
                } else {
                    // the Hashing scheme drops the old storage itself
                    cluster.decommission_node(victim).unwrap();
                }
            }
        }
        // Invariants after every step.
        cluster.check_dataset_consistency(ds).unwrap();
        assert_eq!(
            cluster.dataset_len(ds).unwrap(),
            expected,
            "records lost or duplicated"
        );
    }

    // Spot-check a sample of keys for readability at the end, through a
    // fresh client session (the sanctioned read path).
    let mut session = cluster.session(ds).unwrap();
    for k in (0..next_key).step_by(97) {
        let key = Key::from_u64(k);
        assert!(
            session.get(&cluster, &key).unwrap().is_some(),
            "key {k} unreachable after the step sequence"
        );
    }
    assert_eq!(
        session.metrics().redirects,
        0,
        "a fresh session never redirects"
    );
}

#[test]
fn prop_dynahash_never_loses_records() {
    check_never_loses_records(Scheme::dynahash(16 * 1024, 4), 0xdee0_0000);
}

#[test]
fn prop_statichash_never_loses_records() {
    check_never_loses_records(Scheme::StaticHash { num_buckets: 32 }, 0xdee1_0000);
}

#[test]
fn repeated_scale_out_keeps_load_balanced() {
    let mut cluster = Cluster::new(2);
    let scheme = Scheme::dynahash(24 * 1024, 8);
    let ds = cluster
        .create_dataset(DatasetSpec::new("events", scheme))
        .unwrap();
    let mut session = cluster.session(ds).unwrap();
    session
        .ingest(&mut cluster, (0..12_000u64).map(record))
        .unwrap();

    for _ in 0..3 {
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap();
        cluster.check_dataset_consistency(ds).unwrap();

        // Per-node record counts should stay within 2.5x of the average
        // (bucket granularity limits how perfect the balance can be).
        let dist = cluster.dataset_distribution(ds).unwrap();
        let mut per_node = std::collections::BTreeMap::new();
        for (p, n) in dist {
            let node = cluster.node_of_partition(p).unwrap();
            *per_node.entry(node).or_insert(0usize) += n;
        }
        let avg = 12_000.0 / per_node.len() as f64;
        for (node, count) in per_node {
            assert!(
                (count as f64) < avg * 2.5,
                "node {node} holds {count} records, average is {avg}"
            );
        }
    }
    assert_eq!(cluster.topology().num_nodes(), 5);
}

#[test]
fn aborted_rebalance_leaves_everything_untouched() {
    use dynahash::core::FailurePoint;
    let mut cluster = Cluster::new(2);
    let ds = cluster
        .create_dataset(DatasetSpec::new(
            "events",
            Scheme::StaticHash { num_buckets: 32 },
        ))
        .unwrap();
    cluster
        .session(ds)
        .unwrap()
        .ingest(&mut cluster, (0..4_000u64).map(record))
        .unwrap();
    let distribution_before = cluster.dataset_distribution(ds).unwrap();

    cluster.add_node().unwrap();
    let target = cluster.topology().clone();
    let report = cluster
        .rebalance(
            ds,
            &target,
            RebalanceOptions::none().with_failure(FailurePoint::NcBeforePrepared(NodeId(2))),
        )
        .unwrap();
    assert_eq!(report.outcome, RebalanceOutcome::Aborted);
    // distribution identical to before the attempt
    assert_eq!(cluster.dataset_distribution(ds).unwrap(), {
        let mut d = distribution_before;
        // the new node's partitions exist but hold nothing
        for p in cluster.topology().partitions_of_node(NodeId(2)) {
            d.insert(p, 0);
        }
        d
    });
    cluster.check_dataset_consistency(ds).unwrap();
}
