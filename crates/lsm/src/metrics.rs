//! Storage-level metrics.
//!
//! Every flush, merge, read and rebalance scan updates a shared
//! [`StorageMetrics`] instance. The cluster simulation converts these byte
//! and record counters into simulated time using its hardware cost model, so
//! keeping them accurate is what makes the reproduced figures meaningful.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Byte/record counters shared by all indexes of a partition.
#[derive(Debug, Default)]
pub struct StorageMetrics {
    /// Bytes written by memory-component flushes.
    pub bytes_flushed: AtomicU64,
    /// Bytes written by merges (write amplification).
    pub bytes_merged: AtomicU64,
    /// Bytes read by merges.
    pub bytes_merge_read: AtomicU64,
    /// Bytes read by queries (point lookups and scans).
    pub bytes_query_read: AtomicU64,
    /// Bytes read by rebalance bucket scans.
    pub bytes_rebalance_read: AtomicU64,
    /// Bytes bulk-loaded from rebalance transfers.
    pub bytes_rebalance_loaded: AtomicU64,
    /// Bytes shipped as whole sealed components during a rebalance.
    pub bytes_rebalance_shipped: AtomicU64,
    /// Sealed components shipped whole during a rebalance.
    pub components_shipped: AtomicU64,
    /// Records ingested through the write path.
    pub records_written: AtomicU64,
    /// Number of flush operations.
    pub flush_count: AtomicU64,
    /// Number of merge operations.
    pub merge_count: AtomicU64,
    /// Number of bucket splits performed.
    pub split_count: AtomicU64,
}

impl StorageMetrics {
    /// Creates a fresh, shareable metrics instance.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Returns a plain-value snapshot of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            bytes_flushed: Self::get(&self.bytes_flushed),
            bytes_merged: Self::get(&self.bytes_merged),
            bytes_merge_read: Self::get(&self.bytes_merge_read),
            bytes_query_read: Self::get(&self.bytes_query_read),
            bytes_rebalance_read: Self::get(&self.bytes_rebalance_read),
            bytes_rebalance_loaded: Self::get(&self.bytes_rebalance_loaded),
            bytes_rebalance_shipped: Self::get(&self.bytes_rebalance_shipped),
            components_shipped: Self::get(&self.components_shipped),
            records_written: Self::get(&self.records_written),
            flush_count: Self::get(&self.flush_count),
            merge_count: Self::get(&self.merge_count),
            split_count: Self::get(&self.split_count),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.bytes_flushed.store(0, Ordering::Relaxed);
        self.bytes_merged.store(0, Ordering::Relaxed);
        self.bytes_merge_read.store(0, Ordering::Relaxed);
        self.bytes_query_read.store(0, Ordering::Relaxed);
        self.bytes_rebalance_read.store(0, Ordering::Relaxed);
        self.bytes_rebalance_loaded.store(0, Ordering::Relaxed);
        self.bytes_rebalance_shipped.store(0, Ordering::Relaxed);
        self.components_shipped.store(0, Ordering::Relaxed);
        self.records_written.store(0, Ordering::Relaxed);
        self.flush_count.store(0, Ordering::Relaxed);
        self.merge_count.store(0, Ordering::Relaxed);
        self.split_count.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`StorageMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Bytes written by flushes.
    pub bytes_flushed: u64,
    /// Bytes written by merges.
    pub bytes_merged: u64,
    /// Bytes read by merges.
    pub bytes_merge_read: u64,
    /// Bytes read by queries.
    pub bytes_query_read: u64,
    /// Bytes read by rebalance scans.
    pub bytes_rebalance_read: u64,
    /// Bytes loaded from rebalance transfers.
    pub bytes_rebalance_loaded: u64,
    /// Bytes shipped as whole sealed components.
    pub bytes_rebalance_shipped: u64,
    /// Sealed components shipped whole.
    pub components_shipped: u64,
    /// Records ingested.
    pub records_written: u64,
    /// Flush operations.
    pub flush_count: u64,
    /// Merge operations.
    pub merge_count: u64,
    /// Bucket splits.
    pub split_count: u64,
}

impl MetricsSnapshot {
    /// Total bytes written to "disk" (flush + merge), the write amplification
    /// numerator.
    pub fn total_bytes_written(&self) -> u64 {
        self.bytes_flushed + self.bytes_merged
    }

    /// Difference between two snapshots (self - earlier), saturating at zero.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            bytes_flushed: self.bytes_flushed.saturating_sub(earlier.bytes_flushed),
            bytes_merged: self.bytes_merged.saturating_sub(earlier.bytes_merged),
            bytes_merge_read: self
                .bytes_merge_read
                .saturating_sub(earlier.bytes_merge_read),
            bytes_query_read: self
                .bytes_query_read
                .saturating_sub(earlier.bytes_query_read),
            bytes_rebalance_read: self
                .bytes_rebalance_read
                .saturating_sub(earlier.bytes_rebalance_read),
            bytes_rebalance_loaded: self
                .bytes_rebalance_loaded
                .saturating_sub(earlier.bytes_rebalance_loaded),
            bytes_rebalance_shipped: self
                .bytes_rebalance_shipped
                .saturating_sub(earlier.bytes_rebalance_shipped),
            components_shipped: self
                .components_shipped
                .saturating_sub(earlier.components_shipped),
            records_written: self.records_written.saturating_sub(earlier.records_written),
            flush_count: self.flush_count.saturating_sub(earlier.flush_count),
            merge_count: self.merge_count.saturating_sub(earlier.merge_count),
            split_count: self.split_count.saturating_sub(earlier.split_count),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = StorageMetrics::new_shared();
        StorageMetrics::add(&m.bytes_flushed, 100);
        StorageMetrics::add(&m.bytes_flushed, 50);
        StorageMetrics::add(&m.records_written, 3);
        let s = m.snapshot();
        assert_eq!(s.bytes_flushed, 150);
        assert_eq!(s.records_written, 3);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn delta_since_subtracts() {
        let m = StorageMetrics::new_shared();
        StorageMetrics::add(&m.bytes_flushed, 100);
        let before = m.snapshot();
        StorageMetrics::add(&m.bytes_flushed, 40);
        StorageMetrics::add(&m.bytes_merged, 7);
        let after = m.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.bytes_flushed, 40);
        assert_eq!(d.bytes_merged, 7);
        assert_eq!(d.total_bytes_written(), 47);
    }
}
