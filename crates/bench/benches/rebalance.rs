//! Figures 7a/7b: rebalance time for removing and adding a node.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynahash_bench::{fig7_rebalance, ExperimentConfig, RebalanceDirection};

fn bench_rebalance(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let mut group = c.benchmark_group("fig7_rebalance");
    group.sample_size(10);
    for (label, dir) in [
        ("remove_node", RebalanceDirection::RemoveNode),
        ("add_node", RebalanceDirection::AddNode),
    ] {
        group.bench_with_input(BenchmarkId::new(label, 2), &dir, |b, &d| {
            b.iter(|| fig7_rebalance(&cfg, &[2], d));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rebalance);
criterion_main!(benches);
