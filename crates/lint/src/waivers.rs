//! Inline waivers and the committed waiver budget.
//!
//! A finding can be waived where it occurs with
//!
//! ```text
//! some_option.expect("…") // dhlint: allow(panic) — directory keys are pre-seeded
//! ```
//!
//! or, for multi-line statements, with a comment line directly above the
//! offending line:
//!
//! ```text
//! // dhlint: allow(determinism) — bench harness measures wall-clock by design
//! let start = Instant::now();
//! ```
//!
//! Every waiver must carry a reason after the rule — the reason is the
//! documentation trail naming the invariant that justifies the exception.
//! Unused waivers and waivers naming unknown rules are findings themselves
//! (family `waiver`), so the set of waivers can only shrink or be justified.
//!
//! The total number of *used* waivers per rule family is bounded by the
//! committed budget file (`LINT_BUDGET.toml`); see [`crate::manifest`] for
//! the ratchet check.

use crate::lexer::LexedFile;
use crate::report::{Finding, Rule};

/// One parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule family it waives.
    pub rule: Rule,
    /// The 1-based source line the waiver *covers* (the comment's own line
    /// for trailing waivers; the next code line for own-line waivers).
    pub target_line: usize,
    /// The line the comment itself sits on.
    pub comment_line: usize,
    /// The justification text after the rule name.
    pub reason: String,
}

/// The result of scanning one file for waivers.
#[derive(Debug, Default)]
pub struct FileWaivers {
    /// Parsed waivers, in source order.
    pub waivers: Vec<Waiver>,
    /// Malformed waiver comments (unknown rule, missing reason), reported
    /// as `waiver` findings.
    pub malformed: Vec<Finding>,
}

const MARKER: &str = "dhlint:";

/// Extracts the waivers declared in `lexed`'s line comments.
pub fn collect_waivers(path: &str, lexed: &LexedFile) -> FileWaivers {
    let mut out = FileWaivers::default();
    for comment in &lexed.comments {
        let text = comment.text.trim_start_matches('/').trim();
        let Some(rest) = text.strip_prefix(MARKER) else {
            continue;
        };
        let rest = rest.trim();
        let Some(args) = rest.strip_prefix("allow(") else {
            out.malformed.push(Finding {
                rule: Rule::Waiver,
                file: path.to_string(),
                line: comment.line,
                message: format!("malformed dhlint comment (expected `dhlint: allow(<rule>) — <reason>`): `{text}`"),
                waived: false,
            });
            continue;
        };
        let Some(close) = args.find(')') else {
            out.malformed.push(Finding {
                rule: Rule::Waiver,
                file: path.to_string(),
                line: comment.line,
                message: "unclosed `allow(` in dhlint waiver".to_string(),
                waived: false,
            });
            continue;
        };
        let rule_name = args[..close].trim();
        let reason = args[close + 1..]
            .trim()
            .trim_start_matches(['—', '-', ':'])
            .trim()
            .to_string();
        let Some(rule) = Rule::from_name(rule_name) else {
            out.malformed.push(Finding {
                rule: Rule::Waiver,
                file: path.to_string(),
                line: comment.line,
                message: format!("unknown rule `{rule_name}` in dhlint waiver"),
                waived: false,
            });
            continue;
        };
        if !rule.waivable() {
            out.malformed.push(Finding {
                rule: Rule::Waiver,
                file: path.to_string(),
                line: comment.line,
                message: format!("rule `{rule_name}` cannot be waived inline — fix the finding"),
                waived: false,
            });
            continue;
        }
        if reason.len() < 4 {
            out.malformed.push(Finding {
                rule: Rule::Waiver,
                file: path.to_string(),
                line: comment.line,
                message: format!(
                    "dhlint waiver for `{rule_name}` needs a reason naming the invariant"
                ),
                waived: false,
            });
            continue;
        }
        let target_line = if comment.own_line {
            next_code_line(lexed, comment.line)
        } else {
            comment.line
        };
        out.waivers.push(Waiver {
            rule,
            target_line,
            comment_line: comment.line,
            reason,
        });
    }
    out
}

/// For an own-line waiver comment, the line it covers: the next line that
/// carries code (skipping blank, comment-only, and attribute-only lines).
fn next_code_line(lexed: &LexedFile, comment_line: usize) -> usize {
    let mut line = comment_line + 1;
    while line <= lexed.line_count() {
        let text = lexed.masked_line(line).trim();
        if !text.is_empty() && !text.starts_with("#[") {
            return line;
        }
        line += 1;
    }
    comment_line + 1
}

/// Marks findings covered by a waiver as waived and returns `waiver`
/// findings for waivers that covered nothing.
pub fn apply_waivers(
    path: &str,
    waivers: &FileWaivers,
    findings: &mut [Finding],
) -> (Vec<Finding>, Vec<(Rule, usize)>) {
    let mut unused = Vec::new();
    let mut used_counts: Vec<(Rule, usize)> = Vec::new();
    for waiver in &waivers.waivers {
        let mut used = false;
        for finding in findings.iter_mut() {
            if finding.rule == waiver.rule && finding.line == waiver.target_line {
                finding.waived = true;
                used = true;
            }
        }
        if used {
            match used_counts.iter_mut().find(|(r, _)| *r == waiver.rule) {
                Some((_, n)) => *n += 1,
                None => used_counts.push((waiver.rule, 1)),
            }
        } else {
            unused.push(Finding {
                rule: Rule::Waiver,
                file: path.to_string(),
                line: waiver.comment_line,
                message: format!(
                    "unused dhlint waiver for `{}` (no matching finding on line {})",
                    waiver.rule, waiver.target_line
                ),
                waived: false,
            });
        }
    }
    (unused, used_counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> LexedFile {
        LexedFile::lex(src)
    }

    #[test]
    fn trailing_waiver_targets_its_own_line() {
        let lexed = lex("x.unwrap(); // dhlint: allow(panic) — key was inserted above\n");
        let w = collect_waivers("f.rs", &lexed);
        assert_eq!(w.waivers.len(), 1);
        assert_eq!(w.waivers[0].target_line, 1);
        assert_eq!(w.waivers[0].rule, Rule::Panic);
        assert!(w.waivers[0].reason.contains("inserted"));
    }

    #[test]
    fn own_line_waiver_targets_next_code_line() {
        let lexed = lex("// dhlint: allow(determinism) — wall-clock is the point\n\n#[inline]\nlet t = now();\n");
        let w = collect_waivers("f.rs", &lexed);
        assert_eq!(w.waivers.len(), 1);
        assert_eq!(w.waivers[0].target_line, 4);
    }

    #[test]
    fn unknown_rule_and_missing_reason_are_malformed() {
        let lexed =
            lex("// dhlint: allow(bogus) — reason here\nx();\n// dhlint: allow(panic)\ny();\n");
        let w = collect_waivers("f.rs", &lexed);
        assert!(w.waivers.is_empty());
        assert_eq!(w.malformed.len(), 2);
    }

    #[test]
    fn unused_waivers_are_reported() {
        let lexed = lex("let a = 1; // dhlint: allow(panic) — nothing actually here\n");
        let w = collect_waivers("f.rs", &lexed);
        let mut findings = vec![];
        let (unused, used) = apply_waivers("f.rs", &w, &mut findings);
        assert_eq!(unused.len(), 1);
        assert!(used.is_empty());
    }

    #[test]
    fn matching_waiver_marks_finding() {
        let lexed = lex("x.unwrap(); // dhlint: allow(panic) — invariant documented\n");
        let w = collect_waivers("f.rs", &lexed);
        let mut findings = vec![Finding {
            rule: Rule::Panic,
            file: "f.rs".into(),
            line: 1,
            message: "unwrap".into(),
            waived: false,
        }];
        let (unused, used) = apply_waivers("f.rs", &w, &mut findings);
        assert!(unused.is_empty());
        assert!(findings[0].waived);
        assert_eq!(used, vec![(Rule::Panic, 1)]);
    }
}
