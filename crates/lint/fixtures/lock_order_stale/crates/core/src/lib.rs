pub fn f() {}
