pub fn f(v: Option<u32>) -> u32 {
    // dhlint: allow(speed)
    v.unwrap()
}
