//! The load-aware auto-rebalancing control plane: the monitor → decide → act
//! loop that turns operator-driven rebalancing into a continuous process.
//!
//! The subsystem has four parts:
//!
//! * **Heat tracking** — an opt-in [`HeatMap`] on the cluster accumulates
//!   per-bucket read/write counters, fed from the session data paths
//!   (`get`/`put`/`delete`/`ingest`) at the cost of one local-directory
//!   probe per armed operation. Counters decay exponentially on control
//!   ticks, so heat reflects *recent* traffic. Snapshots merge the op
//!   counters with storage residency ([`crate::cluster::Admin::heat`]).
//!   With heat tracking disarmed every data path takes its pre-control-plane
//!   code path, which the `control` experiments figure gates in CI.
//! * **Decision loop** — a [`ControlPlane`] driven by an explicit
//!   [`ControlPlane::tick`]. Each tick computes the max-deviation imbalance
//!   of every bucketed dataset from heat-weighted partition loads
//!   (`resident_bytes + ops * op_weight_bytes`), splits buckets whose
//!   decayed op count exceeds the hot-bucket budget, and plans a rebalance
//!   when a dataset stays above the imbalance threshold for
//!   `hysteresis_ticks` *consecutive* ticks — with a cooldown after every
//!   committed job so back-to-back rebalances cannot thrash. Everything is
//!   a pure function of the tick sequence and the workload: no wall clock,
//!   no ambient randomness.
//! * **Throttled execution** — an auto-planned [`RebalanceJob`] is driven
//!   wave by wave across ticks under a [`MigrationBudget`]: a window of
//!   `window_ticks` ticks admits at most `max_buckets_per_window` moves and
//!   `max_bytes_per_window` shipped bytes; waves that do not fit are
//!   deferred (and logged) until the window rolls. Health monitoring runs
//!   before every wave: a permanently lost participant triggers
//!   [`RebalanceJob::replan_wave`] from the control plane instead of
//!   letting a wave trip over the dead node.
//! * **Observable status** — every decision (triggered, suppressed by
//!   hysteresis or cooldown, deferred by budget, re-planned, committed) is
//!   logged as a [`ControlDecision`], surfaced through
//!   [`ControlPlane::status`]; in-flight job progress is published to the
//!   cluster's [`JobProgress`] registry and reported by
//!   [`crate::cluster::Admin::health`].
//!
//! Idle ticks are not wasted: with no job in flight and nothing triggered,
//! the loop drains deferred secondary-index stashes (the background
//! warm-indexes task) and the commit path pushes
//! [`dynahash_core::DirectoryDelta`]s to subscribed sessions, so clients
//! learn about auto-rebalances without paying a stale-route redirect.

use std::cell::RefCell;
use std::collections::BTreeMap;

use dynahash_core::{
    max_deviation_imbalance, BucketHeat, BucketId, DirectoryDelta, GlobalDirectory,
    MigrationBudget, NodeId, PartitionId, RebalanceOutcome,
};
use dynahash_lsm::entry::{Key, Value};
use dynahash_lsm::wal::RebalanceId;

use crate::cluster::Cluster;
use crate::dataset::{DatasetId, DatasetMeta};
use crate::job::RebalanceJob;
use crate::sim::SimDuration;
use crate::{ClusterError, Result};

/// Decision-log entries kept by the control plane (older ones are dropped).
const MAX_DECISIONS: usize = 64;

/// Pushed updates buffered per subscribed session before the outbox
/// collapses into a single full-resync marker.
const MAX_PENDING_PUSHES: usize = 8;

// ------------------------------------------------------------ heat tracking

/// Per-bucket decayed operation counters for every dataset, armed on the
/// cluster with [`Cluster::set_heat_tracking`]. Only the op counters live
/// here; residency (records, bytes) is read from storage when a snapshot is
/// taken, so the map stays a few words per active bucket.
#[derive(Debug, Clone, Default)]
pub struct HeatMap {
    ops: BTreeMap<DatasetId, BTreeMap<BucketId, BucketHeat>>,
}

impl HeatMap {
    /// Records one point read against a bucket.
    pub fn note_read(&mut self, dataset: DatasetId, bucket: BucketId) {
        self.ops
            .entry(dataset)
            .or_default()
            .entry(bucket)
            .or_default()
            .reads += 1;
    }

    /// Records one write (insert or delete) against a bucket.
    pub fn note_write(&mut self, dataset: DatasetId, bucket: BucketId) {
        self.ops
            .entry(dataset)
            .or_default()
            .entry(bucket)
            .or_default()
            .writes += 1;
    }

    /// One decay step: every op counter is halved, and buckets whose heat
    /// reached zero are forgotten so the map tracks only active buckets.
    pub fn decay(&mut self) {
        for buckets in self.ops.values_mut() {
            buckets.retain(|_, h| {
                h.decay();
                h.ops() > 0
            });
        }
        self.ops.retain(|_, buckets| !buckets.is_empty());
    }

    /// Splits a bucket's heat along with the bucket: each child inherits
    /// half of the parent's counters (the key split is a hash bit, so an
    /// even split is the best stateless estimate).
    pub fn on_split(&mut self, dataset: DatasetId, parent: BucketId, lo: BucketId, hi: BucketId) {
        let Some(buckets) = self.ops.get_mut(&dataset) else {
            return;
        };
        let Some(heat) = buckets.remove(&parent) else {
            return;
        };
        let half = BucketHeat {
            reads: heat.reads / 2,
            writes: heat.writes / 2,
            ..BucketHeat::default()
        };
        buckets.entry(lo).or_default().absorb(&half);
        buckets.entry(hi).or_default().absorb(&half);
    }

    /// A copy of the dataset's op counters (reads/writes only; residency
    /// fields are zero — [`crate::cluster::Admin::heat`] fills them in).
    pub fn ops_snapshot(&self, dataset: DatasetId) -> BTreeMap<BucketId, BucketHeat> {
        self.ops.get(&dataset).cloned().unwrap_or_default()
    }
}

/// The cluster-resident cell holding the (optional) armed [`HeatMap`].
///
/// Interior mutability lets the *read* path (`&Cluster`) feed counters; the
/// borrow is taken and released inside each method, never held across other
/// cluster calls (see LOCK_ORDER.md, rank 20).
#[derive(Debug, Default)]
pub(crate) struct HeatCell {
    inner: RefCell<Option<HeatMap>>,
}

impl HeatCell {
    /// True when heat tracking is armed. The disarmed check is the only
    /// cost the data paths pay when the control plane is not in use.
    pub(crate) fn armed(&self) -> bool {
        self.inner.borrow().is_some()
    }

    /// Arms heat tracking (keeps existing counters when already armed).
    pub(crate) fn arm(&self) {
        let mut inner = self.inner.borrow_mut();
        if inner.is_none() {
            *inner = Some(HeatMap::default());
        }
    }

    /// Disarms heat tracking and drops all counters.
    pub(crate) fn disarm(&self) {
        *self.inner.borrow_mut() = None;
    }

    pub(crate) fn note_read(&self, dataset: DatasetId, bucket: BucketId) {
        if let Some(map) = self.inner.borrow_mut().as_mut() {
            map.note_read(dataset, bucket);
        }
    }

    pub(crate) fn note_write(&self, dataset: DatasetId, bucket: BucketId) {
        if let Some(map) = self.inner.borrow_mut().as_mut() {
            map.note_write(dataset, bucket);
        }
    }

    pub(crate) fn decay(&self) {
        if let Some(map) = self.inner.borrow_mut().as_mut() {
            map.decay();
        }
    }

    pub(crate) fn on_split(
        &self,
        dataset: DatasetId,
        parent: BucketId,
        lo: BucketId,
        hi: BucketId,
    ) {
        if let Some(map) = self.inner.borrow_mut().as_mut() {
            map.on_split(dataset, parent, lo, hi);
        }
    }

    pub(crate) fn ops_snapshot(&self, dataset: DatasetId) -> BTreeMap<BucketId, BucketHeat> {
        self.inner
            .borrow()
            .as_ref()
            .map(|m| m.ops_snapshot(dataset))
            .unwrap_or_default()
    }
}

/// A merged heat snapshot for one dataset: decayed op counters joined with
/// current storage residency, per bucket and aggregated per partition.
/// Produced by [`crate::cluster::Admin::heat`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeatReport {
    /// Heat per bucket (keyed by the partitions' local bucket ids).
    pub per_bucket: BTreeMap<BucketId, BucketHeat>,
    /// Heat aggregated over each partition's resident buckets.
    pub per_partition: BTreeMap<PartitionId, BucketHeat>,
}

impl HeatReport {
    /// Heat-weighted load per partition:
    /// `resident_bytes + ops * op_weight_bytes`.
    pub fn partition_loads(&self, op_weight_bytes: u64) -> BTreeMap<PartitionId, u64> {
        self.per_partition
            .iter()
            .map(|(p, h)| {
                (
                    *p,
                    h.resident_bytes
                        .saturating_add(h.ops().saturating_mul(op_weight_bytes)),
                )
            })
            .collect()
    }

    /// Heat-weighted load per bucket (the planning input).
    pub fn bucket_loads(&self, op_weight_bytes: u64) -> BTreeMap<BucketId, u64> {
        self.per_bucket
            .iter()
            .map(|(b, h)| {
                (
                    *b,
                    h.resident_bytes
                        .saturating_add(h.ops().saturating_mul(op_weight_bytes)),
                )
            })
            .collect()
    }

    /// Max-deviation imbalance of the heat-weighted partition loads.
    pub fn imbalance(&self, op_weight_bytes: u64) -> f64 {
        max_deviation_imbalance(self.partition_loads(op_weight_bytes).into_values())
    }
}

// ------------------------------------------------------------ job progress

/// Progress of one in-flight rebalance job, published to the cluster by the
/// job's steps and surfaced through
/// [`crate::fault::ClusterHealth`]/[`crate::cluster::Admin::health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobProgress {
    /// The dataset being rebalanced.
    pub dataset: DatasetId,
    /// The rebalance operation id.
    pub rebalance: RebalanceId,
    /// The job-state name at publication time.
    pub state: &'static str,
    /// Bucket moves in the plan.
    pub buckets_total: usize,
    /// Bucket moves whose wave has run.
    pub buckets_moved: usize,
    /// Bytes the plan intends to ship.
    pub bytes_planned: u64,
    /// Bytes shipped so far.
    pub bytes_shipped: u64,
    /// Scheduled waves.
    pub waves_total: usize,
    /// Completed waves.
    pub waves_completed: usize,
    /// Estimated sim-time to finish data movement: the mean makespan of the
    /// completed waves times the waves remaining (zero before the first
    /// wave and after the last).
    pub eta: SimDuration,
}

impl JobProgress {
    /// Fraction of the planned bucket moves that have shipped, in `[0, 1]`
    /// (1 for a no-op plan).
    pub fn fraction_done(&self) -> f64 {
        if self.buckets_total == 0 {
            1.0
        } else {
            self.buckets_moved as f64 / self.buckets_total as f64
        }
    }

    /// [`JobProgress::fraction_done`] as a percentage.
    pub fn percent_done(&self) -> f64 {
        self.fraction_done() * 100.0
    }
}

impl std::fmt::Display for JobProgress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rebalance {} of dataset {}: {} — {:.0}% ({}/{} buckets, {} B shipped, \
             wave {}/{}, ETA {:.3} ms)",
            self.rebalance,
            self.dataset,
            self.state,
            self.percent_done(),
            self.buckets_moved,
            self.buckets_total,
            self.bytes_shipped,
            self.waves_completed,
            self.waves_total,
            self.eta.as_nanos() as f64 / 1e6,
        )
    }
}

// ------------------------------------------------------- session delta push

/// One update pushed to a subscribed session at rebalance commit time.
#[derive(Debug, Clone)]
pub(crate) enum PushedUpdate {
    /// The directory change as a delta, plus the current partition list.
    Delta {
        delta: DirectoryDelta,
        partitions: Vec<PartitionId>,
        partitions_version: u64,
    },
    /// The change log no longer reaches back to the subscriber's version
    /// (or the outbox overflowed): the session must do a full refresh.
    Resync,
}

#[derive(Debug, Default)]
struct Subscriber {
    dataset: DatasetId,
    /// The directory version the subscriber is known to hold (advanced by
    /// every push, so successive deltas chain).
    directory_version: u64,
    pending: Vec<PushedUpdate>,
}

/// The registry of sessions subscribed to commit-time directory pushes.
/// Interior mutability for the same reason as [`HeatCell`]: sessions drain
/// their outbox through `&Cluster` (see LOCK_ORDER.md, rank 20; the borrow
/// never outlives a method call).
#[derive(Debug, Default)]
pub(crate) struct SessionRegistry {
    inner: RefCell<RegistryState>,
}

#[derive(Debug, Default)]
struct RegistryState {
    next_id: u64,
    subscribers: BTreeMap<u64, Subscriber>,
}

impl SessionRegistry {
    /// Registers a subscriber currently holding `directory_version` of
    /// `dataset`'s directory; returns its subscription id.
    pub(crate) fn register(&self, dataset: DatasetId, directory_version: u64) -> u64 {
        let mut state = self.inner.borrow_mut();
        let id = state.next_id;
        state.next_id += 1;
        state.subscribers.insert(
            id,
            Subscriber {
                dataset,
                directory_version,
                pending: Vec::new(),
            },
        );
        id
    }

    /// Pushes the dataset's current routing state to every subscriber: a
    /// chained delta when the change log reaches back to the subscriber's
    /// version, a resync marker otherwise.
    pub(crate) fn push(&self, dataset: DatasetId, meta: &DatasetMeta) {
        let mut state = self.inner.borrow_mut();
        for sub in state.subscribers.values_mut() {
            if sub.dataset != dataset {
                continue;
            }
            let update = match &meta.directory {
                Some(dir) if dir.version() == sub.directory_version => continue,
                Some(dir) => match dir.delta_since(sub.directory_version) {
                    Some(delta) => {
                        sub.directory_version = dir.version();
                        PushedUpdate::Delta {
                            delta,
                            partitions: meta.partitions.clone(),
                            partitions_version: meta.partitions_version,
                        }
                    }
                    None => {
                        sub.directory_version = dir.version();
                        PushedUpdate::Resync
                    }
                },
                None => PushedUpdate::Resync,
            };
            sub.pending.push(update);
            if sub.pending.len() > MAX_PENDING_PUSHES {
                sub.pending.clear();
                sub.pending.push(PushedUpdate::Resync);
            }
        }
    }

    /// Drains a subscriber's outbox (empty for unknown ids).
    pub(crate) fn take(&self, id: u64) -> Vec<PushedUpdate> {
        let mut state = self.inner.borrow_mut();
        match state.subscribers.get_mut(&id) {
            Some(sub) => std::mem::take(&mut sub.pending),
            None => Vec::new(),
        }
    }
}

// ------------------------------------------------------------ decision loop

/// Tuning knobs of the [`ControlPlane`]. The defaults follow the reference
/// shard rebalancer (SNIPPETS.md Snippet 3): trigger at 15% max-deviation
/// imbalance, sustained over `hysteresis_ticks` consecutive ticks, with a
/// cooldown after every committed job and a migration budget per window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlConfig {
    /// Max-deviation imbalance above which a dataset counts as imbalanced.
    pub imbalance_threshold: f64,
    /// Consecutive imbalanced ticks required before a rebalance triggers.
    pub hysteresis_ticks: u32,
    /// Ticks after a committed (or no-op) job during which new triggers for
    /// the dataset are suppressed.
    pub cooldown_ticks: u64,
    /// The migration throttle (buckets/bytes per window of ticks).
    pub budget: MigrationBudget,
    /// Decayed op count above which a single bucket is split so its heat
    /// can spread across partitions.
    pub hot_bucket_ops: u64,
    /// Hot-bucket splits performed per dataset per tick, at most.
    pub max_hot_splits_per_tick: usize,
    /// Load contributed by one decayed op, in byte units (how heavily query
    /// heat weighs against resident bytes).
    pub op_weight_bytes: u64,
    /// Wave width of auto-planned jobs (clamped to the budget's per-window
    /// bucket cap so a single wave can always be admitted).
    pub max_concurrent_moves: usize,
    /// Drain deferred secondary-index stashes on idle ticks.
    pub warm_on_idle: bool,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            imbalance_threshold: 0.15,
            hysteresis_ticks: 3,
            cooldown_ticks: 8,
            budget: MigrationBudget::default(),
            hot_bucket_ops: 512,
            max_hot_splits_per_tick: 4,
            op_weight_bytes: 1024,
            max_concurrent_moves: 4,
            warm_on_idle: true,
        }
    }
}

/// One logged control-plane decision. The log is the audit trail the soak
/// banner and the property tests read; see [`ControlStatus`].
#[derive(Debug, Clone, PartialEq)]
pub enum ControlDecision {
    /// The dataset crossed the threshold and a rebalance was planned.
    Triggered {
        /// Tick of the decision.
        tick: u64,
        /// The imbalanced dataset.
        dataset: DatasetId,
        /// Measured imbalance at trigger time.
        imbalance: f64,
        /// Bucket moves in the auto-planned job.
        moves: usize,
        /// Bytes the plan intends to ship.
        bytes: u64,
    },
    /// Imbalanced, but not yet for `hysteresis_ticks` consecutive ticks.
    SuppressedByHysteresis {
        /// Tick of the decision.
        tick: u64,
        /// The imbalanced dataset.
        dataset: DatasetId,
        /// Measured imbalance.
        imbalance: f64,
        /// Consecutive imbalanced ticks so far (including this one).
        streak: u32,
    },
    /// Imbalanced, but a recent job put the dataset in cooldown.
    SuppressedByCooldown {
        /// Tick of the decision.
        tick: u64,
        /// The imbalanced dataset.
        dataset: DatasetId,
        /// Measured imbalance.
        imbalance: f64,
        /// First tick at which triggers are allowed again.
        until: u64,
    },
    /// The next wave did not fit the window's remaining migration budget.
    DeferredByBudget {
        /// Tick of the decision.
        tick: u64,
        /// Dataset of the in-flight job.
        dataset: DatasetId,
        /// Moves in the deferred wave.
        wave_buckets: usize,
        /// Bytes the deferred wave would ship.
        wave_bytes: u64,
    },
    /// Imbalanced and triggered, but the balancer found no improving move.
    NoImprovement {
        /// Tick of the decision.
        tick: u64,
        /// The imbalanced dataset.
        dataset: DatasetId,
        /// Measured imbalance.
        imbalance: f64,
    },
    /// A bucket's decayed ops exceeded the heat budget and it was split.
    HotSplit {
        /// Tick of the decision.
        tick: u64,
        /// Dataset owning the bucket.
        dataset: DatasetId,
        /// The split bucket.
        bucket: BucketId,
        /// Its decayed op count at split time.
        ops: u64,
    },
    /// Health monitoring found a lost participant and re-planned around it.
    Replanned {
        /// Tick of the decision.
        tick: u64,
        /// Dataset of the in-flight job.
        dataset: DatasetId,
        /// The lost nodes re-planned around.
        lost_nodes: Vec<NodeId>,
        /// Moves rerouted to survivors.
        rerouted: u64,
    },
    /// The in-flight auto-planned job committed.
    Committed {
        /// Tick of the decision.
        tick: u64,
        /// The rebalanced dataset.
        dataset: DatasetId,
        /// The committed rebalance id.
        rebalance: RebalanceId,
        /// Bytes shipped in total.
        bytes: u64,
    },
    /// The in-flight auto-planned job aborted.
    Aborted {
        /// Tick of the decision.
        tick: u64,
        /// The dataset whose job aborted.
        dataset: DatasetId,
        /// The aborted rebalance id.
        rebalance: RebalanceId,
    },
    /// Health monitoring found a degraded dataset with a registered repair
    /// feed and restored its lost buckets.
    Repaired {
        /// Tick of the decision.
        tick: u64,
        /// The repaired dataset.
        dataset: DatasetId,
        /// The rebalance-operation id the repair ran under.
        rebalance: RebalanceId,
        /// Buckets restored.
        buckets: usize,
        /// Records restored from the feed.
        records: u64,
    },
}

impl ControlDecision {
    /// The tick the decision was made at.
    pub fn tick(&self) -> u64 {
        match self {
            ControlDecision::Triggered { tick, .. }
            | ControlDecision::SuppressedByHysteresis { tick, .. }
            | ControlDecision::SuppressedByCooldown { tick, .. }
            | ControlDecision::DeferredByBudget { tick, .. }
            | ControlDecision::NoImprovement { tick, .. }
            | ControlDecision::HotSplit { tick, .. }
            | ControlDecision::Replanned { tick, .. }
            | ControlDecision::Committed { tick, .. }
            | ControlDecision::Aborted { tick, .. }
            | ControlDecision::Repaired { tick, .. } => *tick,
        }
    }
}

impl std::fmt::Display for ControlDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlDecision::Triggered {
                tick,
                dataset,
                imbalance,
                moves,
                bytes,
            } => write!(
                f,
                "t{tick}: dataset {dataset} imbalance {imbalance:.3} → triggered \
                 ({moves} moves, {bytes} B)"
            ),
            ControlDecision::SuppressedByHysteresis {
                tick,
                dataset,
                imbalance,
                streak,
            } => write!(
                f,
                "t{tick}: dataset {dataset} imbalance {imbalance:.3} → suppressed \
                 (hysteresis streak {streak})"
            ),
            ControlDecision::SuppressedByCooldown {
                tick,
                dataset,
                imbalance,
                until,
            } => write!(
                f,
                "t{tick}: dataset {dataset} imbalance {imbalance:.3} → suppressed \
                 (cooldown until t{until})"
            ),
            ControlDecision::DeferredByBudget {
                tick,
                dataset,
                wave_buckets,
                wave_bytes,
            } => write!(
                f,
                "t{tick}: dataset {dataset} wave of {wave_buckets} moves / {wave_bytes} B \
                 deferred by the migration budget"
            ),
            ControlDecision::NoImprovement {
                tick,
                dataset,
                imbalance,
            } => write!(
                f,
                "t{tick}: dataset {dataset} imbalance {imbalance:.3} → no improving plan"
            ),
            ControlDecision::HotSplit {
                tick,
                dataset,
                bucket,
                ops,
            } => write!(
                f,
                "t{tick}: dataset {dataset} bucket {bucket} split ({ops} decayed ops)"
            ),
            ControlDecision::Replanned {
                tick,
                dataset,
                lost_nodes,
                rerouted,
            } => write!(
                f,
                "t{tick}: dataset {dataset} re-planned around lost nodes {lost_nodes:?} \
                 ({rerouted} moves rerouted)"
            ),
            ControlDecision::Committed {
                tick,
                dataset,
                rebalance,
                bytes,
            } => write!(
                f,
                "t{tick}: dataset {dataset} rebalance {rebalance} committed ({bytes} B shipped)"
            ),
            ControlDecision::Aborted {
                tick,
                dataset,
                rebalance,
            } => write!(
                f,
                "t{tick}: dataset {dataset} rebalance {rebalance} aborted"
            ),
            ControlDecision::Repaired {
                tick,
                dataset,
                rebalance,
                buckets,
                records,
            } => write!(
                f,
                "t{tick}: dataset {dataset} repair {rebalance} restored {buckets} lost \
                 buckets ({records} records)"
            ),
        }
    }
}

/// Migration-budget usage of one (closed or current) window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowUsage {
    /// First tick of the window.
    pub start_tick: u64,
    /// Bucket moves admitted in the window.
    pub buckets: usize,
    /// Bytes admitted in the window.
    pub bytes: u64,
}

/// A snapshot of the control plane's counters, recent decisions, and budget
/// windows ([`ControlPlane::status`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ControlStatus {
    /// Ticks run so far.
    pub ticks: u64,
    /// Rebalances triggered.
    pub triggers: u64,
    /// Decisions suppressed by the hysteresis window.
    pub suppressed_hysteresis: u64,
    /// Decisions suppressed by a cooldown.
    pub suppressed_cooldown: u64,
    /// Waves deferred by the migration budget.
    pub deferred: u64,
    /// Auto-planned jobs committed.
    pub committed_jobs: u64,
    /// Auto-planned jobs aborted.
    pub aborted_jobs: u64,
    /// Control-plane-initiated re-plans around lost nodes.
    pub replans: u64,
    /// Degraded datasets auto-repaired from a registered feed.
    pub repairs: u64,
    /// Hot buckets split.
    pub hot_splits: u64,
    /// Records whose deferred secondary entries were warmed on idle ticks.
    pub warmed_records: u64,
    /// The most recent decisions, oldest first (bounded).
    pub decisions: Vec<ControlDecision>,
    /// Closed budget windows plus the current one, oldest first.
    pub windows: Vec<WindowUsage>,
}

impl ControlStatus {
    /// The heaviest window usage seen, for budget-compliance gates.
    pub fn max_window_usage(&self) -> WindowUsage {
        self.windows
            .iter()
            .fold(WindowUsage::default(), |acc, w| WindowUsage {
                start_tick: if w.buckets > acc.buckets {
                    w.start_tick
                } else {
                    acc.start_tick
                },
                buckets: acc.buckets.max(w.buckets),
                bytes: acc.bytes.max(w.bytes),
            })
    }
}

/// What one [`ControlPlane::tick`] did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickReport {
    /// The tick index (1-based).
    pub tick: u64,
    /// Decisions made this tick, in order.
    pub decisions: Vec<ControlDecision>,
    /// Set when an auto-planned job committed this tick.
    pub committed: Option<(DatasetId, RebalanceId)>,
    /// True when a job is still in flight after the tick.
    pub job_in_flight: bool,
    /// Records warmed by the idle-tick index drain.
    pub warmed_records: u64,
}

/// The decision loop. Like [`RebalanceJob`] and [`crate::session::Session`]
/// it holds no borrow of the cluster: the driver calls
/// [`ControlPlane::tick`] with the cluster whenever sim-time advances.
#[derive(Debug, Default)]
pub struct ControlPlane {
    config: ControlConfig,
    tick: u64,
    /// Consecutive imbalanced ticks per dataset.
    streaks: BTreeMap<DatasetId, u32>,
    /// First tick at which a dataset may trigger again.
    cooldown_until: BTreeMap<DatasetId, u64>,
    /// The in-flight auto-planned job, driven across ticks.
    job: Option<RebalanceJob>,
    /// Operator-registered repair feeds: on a health tick with no job in
    /// flight, a degraded dataset with a registered feed is auto-repaired
    /// from it. A feed registered *after* a loss stays valid while the
    /// dataset is degraded — writes to lost buckets are rejected, so their
    /// content cannot drift from the snapshot.
    repair_feeds: BTreeMap<DatasetId, Vec<(Key, Value)>>,
    window_start: u64,
    window_buckets: usize,
    window_bytes: u64,
    closed_windows: Vec<WindowUsage>,
    decisions: Vec<ControlDecision>,
    triggers: u64,
    suppressed_hysteresis: u64,
    suppressed_cooldown: u64,
    deferred: u64,
    committed_jobs: u64,
    aborted_jobs: u64,
    replans: u64,
    repairs: u64,
    hot_splits: u64,
    warmed_records: u64,
}

impl ControlPlane {
    /// A control plane with explicit knobs.
    pub fn new(config: ControlConfig) -> Self {
        ControlPlane {
            config,
            window_start: 1,
            ..ControlPlane::default()
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ControlConfig {
        &self.config
    }

    /// The dataset of the in-flight auto-planned job, if any.
    pub fn in_flight_dataset(&self) -> Option<DatasetId> {
        self.job.as_ref().map(|j| j.dataset())
    }

    /// Registers (or replaces) a repair feed for a dataset: the records a
    /// health tick re-ingests the dataset's lost buckets from when it finds
    /// the dataset degraded (see [`crate::repair::RepairJob`]). Register the
    /// feed *after* the loss (or keep it current): a lost bucket's content
    /// cannot drift while degraded — writes to it are rejected — so a
    /// post-loss snapshot stays exact until the repair commits.
    pub fn set_repair_feed(&mut self, dataset: DatasetId, feed: Vec<(Key, Value)>) {
        self.repair_feeds.insert(dataset, feed);
    }

    /// Removes a registered repair feed.
    pub fn clear_repair_feed(&mut self, dataset: DatasetId) {
        self.repair_feeds.remove(&dataset);
    }

    /// Datasets with a registered repair feed.
    pub fn repair_feed_datasets(&self) -> Vec<DatasetId> {
        self.repair_feeds.keys().copied().collect()
    }

    /// A snapshot of counters, recent decisions, and budget windows.
    pub fn status(&self) -> ControlStatus {
        let mut windows = self.closed_windows.clone();
        if self.window_buckets > 0 || self.window_bytes > 0 {
            windows.push(WindowUsage {
                start_tick: self.window_start,
                buckets: self.window_buckets,
                bytes: self.window_bytes,
            });
        }
        ControlStatus {
            ticks: self.tick,
            triggers: self.triggers,
            suppressed_hysteresis: self.suppressed_hysteresis,
            suppressed_cooldown: self.suppressed_cooldown,
            deferred: self.deferred,
            committed_jobs: self.committed_jobs,
            aborted_jobs: self.aborted_jobs,
            replans: self.replans,
            repairs: self.repairs,
            hot_splits: self.hot_splits,
            warmed_records: self.warmed_records,
            decisions: self.decisions.clone(),
            windows,
        }
    }

    /// One control tick: decay heat, roll the budget window, drive the
    /// in-flight job (re-planning around lost nodes first, running waves as
    /// the budget admits them, finishing the 2PC once all waves ran) or —
    /// with no job in flight — evaluate every bucketed dataset for hot
    /// buckets and sustained imbalance, and warm deferred indexes when the
    /// tick ends up idle.
    pub fn tick(&mut self, cluster: &mut Cluster) -> Result<TickReport> {
        self.tick += 1;
        if self.tick - self.window_start >= self.config.budget.window_ticks.max(1) {
            self.closed_windows.push(WindowUsage {
                start_tick: self.window_start,
                buckets: self.window_buckets,
                bytes: self.window_bytes,
            });
            self.window_start = self.tick;
            self.window_buckets = 0;
            self.window_bytes = 0;
        }
        cluster.decay_heat();

        let mut report = TickReport {
            tick: self.tick,
            ..TickReport::default()
        };
        if self.job.is_some() {
            self.drive_job(cluster, &mut report)?;
        } else {
            // Health monitoring: a degraded dataset with a registered repair
            // feed is restored before anything else — serving every bucket
            // again outranks rebalancing the healthy ones.
            self.auto_repair(cluster, &mut report)?;
            self.evaluate(cluster, &mut report)?;
        }
        let idle = self.job.is_none() && report.decisions.is_empty();
        if idle && self.config.warm_on_idle {
            for ds in cluster.controller.dataset_ids() {
                let warmed = cluster.admin().warm_indexes(ds)?;
                report.warmed_records += warmed;
                self.warmed_records += warmed;
            }
        }
        report.job_in_flight = self.job.is_some();
        Ok(report)
    }

    /// Ticks until the in-flight job (if any) reaches a terminal state, at
    /// most `max_ticks` times. Returns the ticks used. Drivers call this
    /// before starting an operator rebalance of their own, since a dataset
    /// supports only one in-flight rebalance at a time.
    pub fn drain_job(&mut self, cluster: &mut Cluster, max_ticks: u64) -> Result<u64> {
        let mut used = 0;
        while self.job.is_some() && used < max_ticks {
            self.tick(cluster)?;
            used += 1;
        }
        if self.job.is_some() {
            return Err(ClusterError::RebalanceAborted(format!(
                "auto-planned job still in flight after {max_ticks} drain ticks"
            )));
        }
        Ok(used)
    }

    fn log(&mut self, report: &mut TickReport, decision: ControlDecision) {
        report.decisions.push(decision.clone());
        self.decisions.push(decision);
        if self.decisions.len() > MAX_DECISIONS {
            let excess = self.decisions.len() - MAX_DECISIONS;
            self.decisions.drain(..excess);
        }
    }

    /// Restores every degraded dataset that has a registered repair feed by
    /// driving [`crate::cluster::Admin::repair_dataset`]; each committed
    /// repair is logged as [`ControlDecision::Repaired`].
    fn auto_repair(&mut self, cluster: &mut Cluster, report: &mut TickReport) -> Result<()> {
        for dataset in self.repair_feed_datasets() {
            if cluster.fault_stats().degraded_buckets(dataset).is_empty() {
                continue;
            }
            let Some(feed) = self.repair_feeds.get(&dataset).cloned() else {
                continue;
            };
            let repair = cluster.admin().repair_dataset(dataset, &feed)?;
            if let Some(rebalance) = repair.rebalance {
                self.repairs += 1;
                self.log(
                    report,
                    ControlDecision::Repaired {
                        tick: self.tick,
                        dataset,
                        rebalance,
                        buckets: repair.buckets.len(),
                        records: repair.records_restored,
                    },
                );
            }
        }
        Ok(())
    }

    /// Drives the in-flight job one tick's worth: health check → re-plan if
    /// a participant is lost, run waves while the window budget admits
    /// them, and complete prepare/decide/commit/finalize once every wave
    /// ran.
    fn drive_job(&mut self, cluster: &mut Cluster, report: &mut TickReport) -> Result<()> {
        let Some(mut job) = self.job.take() else {
            return Ok(());
        };
        let dataset = job.dataset();

        // Health monitoring: a permanently lost participant is re-planned
        // around *before* a wave trips over it (PR 8 follow-on). Allowed in
        // any Moving state, including after the last wave.
        if matches!(job.state(), crate::job::JobState::Moving { .. })
            && job.participants().iter().any(|n| cluster.node_is_lost(*n))
        {
            let replan = job.replan_wave(cluster)?;
            if !replan.is_noop() {
                self.replans += 1;
                self.log(
                    report,
                    ControlDecision::Replanned {
                        tick: self.tick,
                        dataset,
                        lost_nodes: replan.lost_nodes.clone(),
                        rerouted: replan.rerouted,
                    },
                );
            }
        }

        while job.has_remaining_waves() {
            let (wave_buckets, wave_bytes) = match job.waves().get(job.completed_waves()) {
                Some(wave) => (wave.len(), wave.iter().map(|m| m.bytes).sum::<u64>()),
                None => break,
            };
            if !self.config.budget.admits(
                self.window_buckets,
                self.window_bytes,
                wave_buckets,
                wave_bytes,
            ) {
                self.deferred += 1;
                self.log(
                    report,
                    ControlDecision::DeferredByBudget {
                        tick: self.tick,
                        dataset,
                        wave_buckets,
                        wave_bytes,
                    },
                );
                self.job = Some(job);
                return Ok(());
            }
            match job.run_wave(cluster) {
                Ok(wave) => {
                    self.window_buckets += wave.moves;
                    self.window_bytes += wave.bytes;
                }
                Err(ClusterError::NodeLost(_)) => {
                    // A node died between the health check and the wave:
                    // re-plan and keep going this tick.
                    let replan = job.replan_wave(cluster)?;
                    self.replans += 1;
                    self.log(
                        report,
                        ControlDecision::Replanned {
                            tick: self.tick,
                            dataset,
                            lost_nodes: replan.lost_nodes.clone(),
                            rerouted: replan.rerouted,
                        },
                    );
                }
                Err(e) => {
                    job.abort(cluster)?;
                    job.finalize(cluster)?;
                    self.aborted_jobs += 1;
                    self.log(
                        report,
                        ControlDecision::Aborted {
                            tick: self.tick,
                            dataset,
                            rebalance: job.rebalance_id(),
                        },
                    );
                    return Err(e);
                }
            }
        }

        // All waves ran: finish the three-phase protocol this tick.
        job.prepare(cluster)?;
        match job.decide(cluster)? {
            RebalanceOutcome::Committed => {
                job.commit(cluster)?;
                let bytes = job.bytes_shipped();
                let rebalance = job.rebalance_id();
                job.finalize(cluster)?;
                self.committed_jobs += 1;
                self.cooldown_until
                    .insert(dataset, self.tick + self.config.cooldown_ticks);
                self.streaks.insert(dataset, 0);
                self.log(
                    report,
                    ControlDecision::Committed {
                        tick: self.tick,
                        dataset,
                        rebalance,
                        bytes,
                    },
                );
                report.committed = Some((dataset, rebalance));
            }
            RebalanceOutcome::Aborted => {
                job.finalize(cluster)?;
                self.aborted_jobs += 1;
                self.cooldown_until
                    .insert(dataset, self.tick + self.config.cooldown_ticks);
                self.log(
                    report,
                    ControlDecision::Aborted {
                        tick: self.tick,
                        dataset,
                        rebalance: job.rebalance_id(),
                    },
                );
            }
        }
        Ok(())
    }

    /// Splits the dataset's hottest buckets (those above the hot-bucket op
    /// budget), bounded per tick, then absorbs the finer-grained local
    /// directories into the CC's copy so routing and planning see the
    /// children. Returns the number of splits performed.
    fn split_hot_buckets(
        &mut self,
        cluster: &mut Cluster,
        dataset: DatasetId,
        report: &mut TickReport,
    ) -> Result<usize> {
        let snapshot = cluster.heat_ops_snapshot(dataset);
        let mut hot: Vec<(u64, BucketId)> = snapshot
            .iter()
            .filter(|(_, h)| h.ops() >= self.config.hot_bucket_ops.max(1))
            .map(|(b, h)| (h.ops(), *b))
            .collect();
        // Hottest first; bucket id breaks ties deterministically.
        hot.sort_by(|a, b| (b.0, a.1).cmp(&(a.0, b.1)));
        hot.truncate(self.config.max_hot_splits_per_tick);
        let mut splits = 0;
        for (ops, bucket) in hot {
            // The owner according to the partitions' local directories.
            let owner = cluster
                .local_directories(dataset)?
                .into_iter()
                .find(|(_, buckets)| buckets.contains(&bucket))
                .map(|(p, _)| p);
            let Some(owner) = owner else { continue };
            let split = cluster
                .partition_mut(owner)?
                .dataset_mut(dataset)?
                .primary
                .split_bucket(bucket);
            match split {
                Ok((lo, hi)) => {
                    cluster.on_heat_split(dataset, bucket, lo, hi);
                    splits += 1;
                    self.hot_splits += 1;
                    self.log(
                        report,
                        ControlDecision::HotSplit {
                            tick: self.tick,
                            dataset,
                            bucket,
                            ops,
                        },
                    );
                }
                // A bucket at max depth (or with splits suspended) cannot
                // spread further; the rebalance path still moves it whole.
                Err(_) => continue,
            }
        }
        if splits > 0 {
            let locals = cluster.local_directories(dataset)?;
            let refreshed =
                GlobalDirectory::refresh_from_locals(locals).map_err(ClusterError::Core)?;
            if let Some(dir) = cluster.controller.dataset_mut(dataset)?.directory.as_mut() {
                dir.install(&refreshed);
            }
            cluster.push_routing_update(dataset);
        }
        Ok(splits)
    }

    /// Monitor/decide with no job in flight: hot-bucket splits first, then
    /// threshold + hysteresis + cooldown per dataset; the first dataset
    /// that qualifies gets the (single) auto-planned job.
    fn evaluate(&mut self, cluster: &mut Cluster, report: &mut TickReport) -> Result<()> {
        for dataset in cluster.controller.dataset_ids() {
            if !cluster.scheme_of(dataset)?.is_bucketed() {
                continue;
            }
            if cluster.heat_tracking_enabled() {
                self.split_hot_buckets(cluster, dataset, report)?;
            }
            let heat = cluster.admin().heat(dataset)?;
            let imbalance = heat.imbalance(self.config.op_weight_bytes);
            if imbalance <= self.config.imbalance_threshold {
                self.streaks.insert(dataset, 0);
                continue;
            }
            if let Some(&until) = self.cooldown_until.get(&dataset) {
                if self.tick < until {
                    self.suppressed_cooldown += 1;
                    self.streaks.insert(dataset, 0);
                    self.log(
                        report,
                        ControlDecision::SuppressedByCooldown {
                            tick: self.tick,
                            dataset,
                            imbalance,
                            until,
                        },
                    );
                    continue;
                }
            }
            let streak = self.streaks.entry(dataset).or_insert(0);
            *streak += 1;
            let streak = *streak;
            if streak < self.config.hysteresis_ticks.max(1) {
                self.suppressed_hysteresis += 1;
                self.log(
                    report,
                    ControlDecision::SuppressedByHysteresis {
                        tick: self.tick,
                        dataset,
                        imbalance,
                        streak,
                    },
                );
                continue;
            }
            if self.job.is_some() {
                // One auto-planned job at a time; this dataset stays
                // imbalanced and will qualify again once the job finishes.
                continue;
            }
            let loads = heat.bucket_loads(self.config.op_weight_bytes);
            let target = cluster.topology().clone();
            let cap = self
                .config
                .max_concurrent_moves
                .min(self.config.budget.max_buckets_per_window)
                .max(1);
            let mut job = RebalanceJob::plan_with_loads(cluster, dataset, &target, cap, &loads)?;
            if job.plan_ref().is_noop() {
                job.abort(cluster)?;
                job.finalize(cluster)?;
                self.cooldown_until
                    .insert(dataset, self.tick + self.config.cooldown_ticks);
                self.streaks.insert(dataset, 0);
                self.log(
                    report,
                    ControlDecision::NoImprovement {
                        tick: self.tick,
                        dataset,
                        imbalance,
                    },
                );
                continue;
            }
            job.init(cluster)?;
            self.triggers += 1;
            self.streaks.insert(dataset, 0);
            self.log(
                report,
                ControlDecision::Triggered {
                    tick: self.tick,
                    dataset,
                    imbalance,
                    moves: job.plan_ref().num_moves(),
                    bytes: job.plan_ref().total_bytes_moved(),
                },
            );
            self.job = Some(job);
            // Start moving immediately, within this tick's budget share.
            self.drive_job(cluster, report)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;
    use dynahash_core::Scheme;
    use dynahash_lsm::entry::Key;
    use dynahash_lsm::Bytes;

    fn record(i: u64) -> (Key, Bytes) {
        (Key::from_u64(i), Bytes::from(vec![(i % 251) as u8; 48]))
    }

    fn loaded(nodes: u32, n: u64) -> (Cluster, DatasetId) {
        let mut cluster = Cluster::with_config(
            nodes,
            crate::ClusterConfig {
                partitions_per_node: 2,
                cost_model: crate::CostModel::default(),
            },
        );
        let ds = cluster
            .create_dataset(DatasetSpec::new(
                "events",
                Scheme::StaticHash { num_buckets: 32 },
            ))
            .unwrap();
        let mut session = cluster.session(ds).unwrap();
        session.ingest(&mut cluster, (0..n).map(record)).unwrap();
        (cluster, ds)
    }

    #[test]
    fn heat_map_counts_decays_and_splits() {
        let mut map = HeatMap::default();
        let b = BucketId { bits: 1, depth: 2 };
        for _ in 0..8 {
            map.note_read(0, b);
        }
        map.note_write(0, b);
        let snap = map.ops_snapshot(0);
        assert_eq!(snap.get(&b).map(|h| (h.reads, h.writes)), Some((8, 1)));
        map.decay();
        let snap = map.ops_snapshot(0);
        assert_eq!(snap.get(&b).map(|h| h.ops()), Some(4));
        let (lo, hi) = b.split();
        map.on_split(0, b, lo, hi);
        let snap = map.ops_snapshot(0);
        assert!(!snap.contains_key(&b), "parent heat retired");
        assert_eq!(snap.get(&lo).map(|h| h.ops()), Some(2));
        assert_eq!(snap.get(&hi).map(|h| h.ops()), Some(2));
        // decay to zero forgets the bucket entirely
        for _ in 0..8 {
            map.decay();
        }
        assert!(map.ops_snapshot(0).is_empty());
    }

    #[test]
    fn disarmed_heat_records_nothing_and_costs_one_check() {
        let (mut cluster, ds) = loaded(2, 200);
        assert!(!cluster.heat_tracking_enabled());
        let mut session = cluster.session(ds).unwrap();
        for i in 0..50u64 {
            session.get(&cluster, &record(i).0).unwrap();
        }
        assert!(cluster.heat_ops_snapshot(ds).is_empty());
        cluster.set_heat_tracking(true);
        for i in 0..50u64 {
            session.get(&cluster, &record(i).0).unwrap();
        }
        let snap = cluster.heat_ops_snapshot(ds);
        let reads: u64 = snap.values().map(|h| h.reads).sum();
        assert_eq!(reads, 50);
        session
            .put(&mut cluster, Key::from_u64(9999), Bytes::from(vec![1]))
            .unwrap();
        let snap = cluster.heat_ops_snapshot(ds);
        let writes: u64 = snap.values().map(|h| h.writes).sum();
        assert_eq!(writes, 1);
        cluster.set_heat_tracking(false);
        assert!(cluster.heat_ops_snapshot(ds).is_empty());
    }

    #[test]
    fn heat_report_merges_ops_with_residency() {
        let (mut cluster, ds) = loaded(2, 400);
        cluster.set_heat_tracking(true);
        let mut session = cluster.session(ds).unwrap();
        for i in 0..100u64 {
            session.get(&cluster, &record(i % 4).0).unwrap();
        }
        let report = cluster.admin().heat(ds).unwrap();
        assert_eq!(report.per_partition.len(), 4);
        let total_records: u64 = report.per_partition.values().map(|h| h.records).sum();
        assert_eq!(total_records, 400);
        let total_reads: u64 = report.per_bucket.values().map(|h| h.reads).sum();
        assert_eq!(total_reads, 100);
        assert!(report.per_bucket.values().all(|h| h.resident_bytes > 0));
        // four hot keys on 32 uniform buckets: the op-weighted imbalance
        // must dwarf the byte-only imbalance
        assert!(report.imbalance(10_000) > report.imbalance(0));
    }

    #[test]
    fn sustained_imbalance_triggers_after_hysteresis_and_respects_cooldown() {
        let (mut cluster, ds) = loaded(2, 2000);
        cluster.add_node().unwrap();
        cluster.set_heat_tracking(true);
        let mut plane = ControlPlane::new(ControlConfig {
            imbalance_threshold: 0.2,
            hysteresis_ticks: 2,
            cooldown_ticks: 4,
            hot_bucket_ops: u64::MAX, // isolate the rebalance path
            ..ControlConfig::default()
        });
        let mut session = cluster.session(ds).unwrap();
        let mut committed_at = None;
        for t in 0..20 {
            // keep a handful of keys hot so the imbalance is sustained
            for i in 0..200u64 {
                session.get(&cluster, &record(i % 8).0).unwrap();
            }
            let report = plane.tick(&mut cluster).unwrap();
            if let Some((d, _)) = report.committed {
                assert_eq!(d, ds);
                committed_at.get_or_insert(t);
            }
        }
        let status = plane.status();
        assert!(status.triggers >= 1, "no trigger: {status:?}");
        assert!(
            status.suppressed_hysteresis >= 1,
            "hysteresis must suppress the first imbalanced tick"
        );
        assert!(status.committed_jobs >= 1);
        let committed: Vec<u64> = status
            .decisions
            .iter()
            .filter_map(|d| match d {
                ControlDecision::Committed { tick, .. } => Some(*tick),
                _ => None,
            })
            .collect();
        let triggers: Vec<u64> = status
            .decisions
            .iter()
            .filter_map(|d| match d {
                ControlDecision::Triggered { tick, .. } => Some(*tick),
                _ => None,
            })
            .collect();
        for c in &committed {
            for t in &triggers {
                assert!(
                    *t <= *c || *t >= c + plane.config().cooldown_ticks,
                    "trigger at t{t} violates the cooldown after the commit at t{c}"
                );
            }
        }
        cluster.check_dataset_consistency(ds).unwrap();
    }

    #[test]
    fn budget_defers_waves_across_ticks_and_windows_stay_capped() {
        let (mut cluster, ds) = loaded(2, 4000);
        cluster.add_node().unwrap();
        cluster.set_heat_tracking(true);
        let budget = MigrationBudget {
            max_buckets_per_window: 2,
            max_bytes_per_window: 1 << 30,
            window_ticks: 2,
        };
        let mut plane = ControlPlane::new(ControlConfig {
            imbalance_threshold: 0.2,
            hysteresis_ticks: 1,
            cooldown_ticks: 2,
            budget,
            hot_bucket_ops: u64::MAX,
            max_concurrent_moves: 2,
            ..ControlConfig::default()
        });
        let mut session = cluster.session(ds).unwrap();
        let mut saw_deferral = false;
        for _ in 0..40 {
            for i in 0..200u64 {
                session.get(&cluster, &record(i % 8).0).unwrap();
            }
            let report = plane.tick(&mut cluster).unwrap();
            saw_deferral |= report
                .decisions
                .iter()
                .any(|d| matches!(d, ControlDecision::DeferredByBudget { .. }));
        }
        let status = plane.status();
        assert!(status.triggers >= 1);
        assert!(saw_deferral, "a 2-buckets-per-window budget must defer");
        let max = status.max_window_usage();
        assert!(
            max.buckets <= budget.max_buckets_per_window,
            "window admitted {} buckets over the budget {}",
            max.buckets,
            budget.max_buckets_per_window
        );
        cluster.check_dataset_consistency(ds).unwrap();
    }

    #[test]
    fn hot_bucket_split_spreads_single_bucket_heat() {
        let mut cluster = Cluster::new(2);
        let ds = cluster
            .create_dataset(DatasetSpec::new("hot", Scheme::dynahash(1 << 20, 4)))
            .unwrap();
        let mut session = cluster.session(ds).unwrap();
        session.ingest(&mut cluster, (0..2000).map(record)).unwrap();
        cluster.set_heat_tracking(true);
        let buckets_before = cluster.local_directories(ds).unwrap();
        let count_before: usize = buckets_before.iter().map(|(_, b)| b.len()).sum();
        let mut plane = ControlPlane::new(ControlConfig {
            hot_bucket_ops: 100,
            imbalance_threshold: f64::INFINITY, // isolate the split path
            ..ControlConfig::default()
        });
        for _ in 0..4 {
            for i in 0..400u64 {
                session.get(&cluster, &record(i % 3).0).unwrap();
            }
            plane.tick(&mut cluster).unwrap();
        }
        let status = plane.status();
        assert!(status.hot_splits >= 1, "hot bucket never split: {status:?}");
        let buckets_after: usize = cluster
            .local_directories(ds)
            .unwrap()
            .iter()
            .map(|(_, b)| b.len())
            .sum();
        assert!(buckets_after > count_before);
        cluster.check_dataset_consistency(ds).unwrap();
        // the CC directory absorbed the children (sessions keep routing)
        cluster.admin().check_directory_invariants(ds).unwrap();
        for i in 0..100u64 {
            let (k, v) = record(i);
            assert_eq!(session.get(&cluster, &k).unwrap(), Some(v));
        }
    }

    #[test]
    fn subscribed_session_gets_the_commit_delta_pushed() {
        let (mut cluster, ds) = loaded(2, 1500);
        let mut subscribed = cluster.session(ds).unwrap();
        subscribed.subscribe(&cluster);
        let mut unsubscribed = cluster.session(ds).unwrap();
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        let report = cluster
            .rebalance(ds, &target, crate::rebalance::RebalanceOptions::none())
            .unwrap();
        assert!(report.buckets_moved > 0);
        for i in 0..1500u64 {
            let (k, v) = record(i);
            assert_eq!(subscribed.get(&cluster, &k).unwrap(), Some(v.clone()));
            assert_eq!(unsubscribed.get(&cluster, &k).unwrap(), Some(v));
        }
        assert_eq!(
            subscribed.metrics().redirects,
            0,
            "the pushed delta must arrive before any stale route"
        );
        assert!(subscribed.metrics().pushed_refreshes >= 1);
        assert_eq!(
            unsubscribed.metrics().redirects,
            1,
            "the unsubscribed session still pays the pull-based redirect"
        );
    }

    #[test]
    fn idle_ticks_warm_deferred_indexes() {
        let mut cluster = Cluster::new(2);
        let spec = DatasetSpec::new("events", Scheme::StaticHash { num_buckets: 16 })
            .with_secondary_index(crate::dataset::SecondaryIndexDef::new(
                "idx",
                |p: &[u8]| p.first().map(|&b| Key::from_u64(b as u64)),
            ));
        let ds = cluster.create_dataset(spec).unwrap();
        let mut session = cluster.session(ds).unwrap();
        session.ingest(&mut cluster, (0..1200).map(record)).unwrap();
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        // deferred secondary rebuild leaves stashes behind for the drain
        cluster
            .rebalance(
                ds,
                &target,
                crate::rebalance::RebalanceOptions::none()
                    .with_secondary_rebuild(dynahash_core::SecondaryRebuild::Deferred),
            )
            .unwrap();
        // A threshold the post-rebalance residual imbalance cannot cross, so
        // every tick is idle and the warm task is the only thing happening.
        let mut plane = ControlPlane::new(ControlConfig {
            imbalance_threshold: 100.0,
            ..ControlConfig::default()
        });
        let mut warmed = 0;
        for _ in 0..3 {
            warmed += plane.tick(&mut cluster).unwrap().warmed_records;
        }
        assert!(warmed > 0, "idle ticks must drain the deferred stashes");
        assert_eq!(plane.status().warmed_records, warmed);
    }
}
