//! Merge policies.
//!
//! AsterixDB uses a size-tiered ("tiering-like") merge policy: a sequence of
//! components is merged when the total size of the younger components exceeds
//! `ratio` times the size of the oldest component in the sequence
//! (Section VI-A of the paper uses a ratio of 1.2). The policy inspects the
//! disk component list (newest first) and returns the range of component
//! indices to merge, if any.

use crate::component::Component;

/// A merge policy decides which suffix/range of the component list to merge.
pub trait MergePolicy: Send + Sync {
    /// Given the component list ordered **newest first**, returns the index
    /// range `[start, end)` of components that should be merged together,
    /// or `None` if no merge is needed.
    fn select_merge(&self, components: &[Component]) -> Option<(usize, usize)>;

    /// Human-readable name used in logs and experiment output.
    fn name(&self) -> &'static str;
}

/// The size-tiered merge policy with a configurable size ratio.
#[derive(Clone, Debug)]
pub struct SizeTieredPolicy {
    /// Merge is triggered when sum(younger) >= ratio * oldest-in-sequence.
    pub size_ratio: f64,
    /// Never merge fewer than this many components at once.
    pub min_merge_width: usize,
    /// Cap on how many components are merged in a single operation.
    pub max_merge_width: usize,
}

impl Default for SizeTieredPolicy {
    fn default() -> Self {
        SizeTieredPolicy {
            size_ratio: 1.2,
            min_merge_width: 2,
            max_merge_width: 10,
        }
    }
}

impl SizeTieredPolicy {
    /// Creates a policy with the given size ratio and default widths.
    pub fn new(size_ratio: f64) -> Self {
        SizeTieredPolicy {
            size_ratio,
            ..Default::default()
        }
    }
}

impl MergePolicy for SizeTieredPolicy {
    fn select_merge(&self, components: &[Component]) -> Option<(usize, usize)> {
        let n = components.len();
        if n < self.min_merge_width {
            return None;
        }
        // Examine suffixes ending at each candidate "oldest" component,
        // newest-first ordering means the oldest of a sequence has the
        // largest index. We look for the longest sequence [0, end) such that
        // the sum of sizes of components [0, end-1) is at least
        // ratio * size(components[end-1]).
        let sizes: Vec<f64> = components.iter().map(|c| c.size_bytes() as f64).collect();
        let mut younger_sum = sizes[0];
        for end in 2..=n.min(self.max_merge_width) {
            let oldest = sizes[end - 1];
            if younger_sum >= self.size_ratio * oldest {
                // merge components [0, end)
                return Some((0, end));
            }
            younger_sum += oldest;
        }
        None
    }

    fn name(&self) -> &'static str {
        "size-tiered"
    }
}

/// A policy that never merges; useful for tests and for isolating merge
/// costs in ablation benchmarks.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoMergePolicy;

impl MergePolicy for NoMergePolicy {
    fn select_merge(&self, _components: &[Component]) -> Option<(usize, usize)> {
        None
    }
    fn name(&self) -> &'static str {
        "no-merge"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::Bytes;
    use crate::component::ComponentSource;
    use crate::entry::{Entry, Key};

    fn comp_of_size(n_entries: usize, tag: u64) -> Component {
        let entries = (0..n_entries as u64)
            .map(|i| {
                Entry::put(
                    Key::from_u64(tag * 1_000_000 + i),
                    Bytes::from(vec![0u8; 100]),
                )
            })
            .collect();
        Component::from_unsorted(entries, ComponentSource::Flush)
    }

    #[test]
    fn no_merge_for_single_component() {
        let p = SizeTieredPolicy::default();
        assert_eq!(p.select_merge(&[comp_of_size(10, 1)]), None);
        assert_eq!(p.select_merge(&[]), None);
    }

    #[test]
    fn merges_equal_sized_components() {
        let p = SizeTieredPolicy::new(1.2);
        // two equal components: younger (1) >= 1.2 * oldest (1)? No.
        let comps = vec![comp_of_size(10, 1), comp_of_size(10, 2)];
        assert_eq!(p.select_merge(&comps), None);
        // three equal components: younger sum of first two = 2 >= 1.2 * 1 -> merge all three
        let comps = vec![
            comp_of_size(10, 1),
            comp_of_size(10, 2),
            comp_of_size(10, 3),
        ];
        assert_eq!(p.select_merge(&comps), Some((0, 3)));
    }

    #[test]
    fn does_not_merge_into_much_larger_component() {
        let p = SizeTieredPolicy::new(1.2);
        // a big old component and a small new one: no merge
        let comps = vec![comp_of_size(5, 1), comp_of_size(500, 2)];
        assert_eq!(p.select_merge(&comps), None);
    }

    #[test]
    fn merge_width_is_capped() {
        let p = SizeTieredPolicy {
            size_ratio: 0.0,
            min_merge_width: 2,
            max_merge_width: 3,
        };
        let comps: Vec<Component> = (0..6).map(|i| comp_of_size(10, i)).collect();
        let (s, e) = p.select_merge(&comps).unwrap();
        assert_eq!(s, 0);
        assert!(e <= 3);
    }

    #[test]
    fn no_merge_policy_never_merges() {
        let comps: Vec<Component> = (0..6).map(|i| comp_of_size(10, i)).collect();
        assert_eq!(NoMergePolicy.select_merge(&comps), None);
    }
}
