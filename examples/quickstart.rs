//! Quickstart: create a DynaHash-partitioned dataset, ingest data, scale the
//! cluster out, and rebalance online.
//!
//! Run with `cargo run --example quickstart`.

use dynahash::cluster::{Cluster, DatasetSpec, RebalanceOptions, SecondaryIndexDef};
use dynahash::core::Scheme;
use dynahash::lsm::entry::Key;
use dynahash::lsm::Bytes;

fn main() {
    // A 2-node cluster (4 storage partitions per node by default).
    let mut cluster = Cluster::new(2);
    println!(
        "created a cluster with {} nodes / {} partitions",
        cluster.topology().num_nodes(),
        cluster.topology().num_partitions()
    );

    // A dataset partitioned with DynaHash: buckets split automatically once
    // they exceed 64 KiB, and rebalancing moves whole buckets.
    let spec = DatasetSpec::new("events", Scheme::dynahash(64 * 1024, 8)).with_secondary_index(
        SecondaryIndexDef::new("idx_events_kind", |payload| {
            payload.first().map(|&b| Key::from_u64(b as u64))
        }),
    );
    let events = cluster.create_dataset(spec).expect("create dataset");

    // Ingest 20,000 small records through a data feed.
    let records = (0..20_000u64).map(|i| {
        let mut payload = vec![(i % 8) as u8];
        payload.extend_from_slice(&i.to_be_bytes());
        payload.extend_from_slice(&[0u8; 55]);
        (Key::from_u64(i), Bytes::from(payload))
    });
    let ingest = cluster.ingest(events, records).expect("ingest");
    println!(
        "ingested {} records in {:.2} simulated seconds ({:.0} rec/s)",
        ingest.records,
        ingest.elapsed.as_secs_f64(),
        ingest.records_per_sec()
    );
    println!(
        "dataset distribution across partitions: {:?}",
        cluster.dataset_distribution(events).unwrap()
    );

    // Point lookups and secondary-index queries work as usual.
    let key = Key::from_u64(1234);
    let partition = cluster.route_key(events, &key).unwrap();
    let value = cluster
        .partition(partition)
        .unwrap()
        .dataset(events)
        .unwrap()
        .get(&key)
        .expect("record present");
    println!(
        "key 1234 lives on partition {partition} ({} bytes)",
        value.len()
    );

    // Scale out: add a node, then rebalance the dataset onto it online.
    cluster.add_node().expect("add node");
    let target = cluster.topology().clone();
    let report = cluster
        .rebalance(events, &target, RebalanceOptions::none())
        .expect("rebalance");
    println!(
        "rebalance {:?}: moved {} buckets / {} records ({:.1}% of the data) in {:.2} simulated seconds",
        report.outcome,
        report.buckets_moved,
        report.records_moved,
        report.moved_fraction * 100.0,
        report.elapsed.as_secs_f64()
    );

    // The dataset stays complete and correctly routed.
    cluster
        .check_dataset_consistency(events)
        .expect("consistent");
    assert_eq!(cluster.dataset_len(events).unwrap(), 20_000);
    println!("consistency check passed: all 20000 records remain reachable");
}
