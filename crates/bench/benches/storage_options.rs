//! Ablation A1: the cost of moving a bucket under the storage options of
//! Section IV (single LSM-tree vs. bucketed LSM-trees).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynahash_bench::ablation_storage_options;

fn bench_storage_options(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_storage_options");
    group.sample_size(10);
    for records in [1_000u64, 5_000] {
        group.bench_with_input(BenchmarkId::new("records", records), &records, |b, &n| {
            b.iter(|| ablation_storage_options(n));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_storage_options);
criterion_main!(benches);
