//! Keys, values and log-structured entries.
//!
//! Keys are order-preserving byte strings. Helpers are provided to encode
//! integer and composite keys in big-endian form so that the byte order
//! matches the natural key order, which the merge iterators rely on.

use crate::bytes::Bytes;
use std::fmt;

/// How many key bytes fit inline in a [`Key`] without a heap allocation.
///
/// 22 bytes keeps `size_of::<Key>()` at 24 — the same as the `Vec<u8>` it
/// replaced — while covering every key the system produces today (8-byte
/// `u64` keys, 16-byte composite keys, and the secondary-index keys derived
/// from them). Million-record soak runs allocate zero key heap.
pub const KEY_INLINE_CAP: usize = 22;

/// The two storage shapes of a [`Key`]: short keys live inline in the
/// 24-byte struct, longer keys spill to an exact-sized heap allocation
/// (`Box<[u8]>`, not `Vec`, so there is no spare capacity to account for).
#[derive(Clone)]
enum KeyRepr {
    /// Up to [`KEY_INLINE_CAP`] bytes stored inline; `len` is the used prefix.
    Inline { len: u8, buf: [u8; KEY_INLINE_CAP] },
    /// Keys longer than the inline cap, heap-allocated exactly.
    Heap(Box<[u8]>),
}

/// An order-preserving binary key.
///
/// Primary keys in the TPC-H workload are integers or pairs of integers; the
/// constructors [`Key::from_u64`] and [`Key::from_pair`] encode them
/// big-endian so that byte-wise ordering equals numeric ordering.
///
/// Keys of up to [`KEY_INLINE_CAP`] bytes are stored inline (no heap
/// allocation); all comparison, hashing and ordering go through
/// [`Key::as_slice`], so the representation is invisible to routing and the
/// merge iterators.
#[derive(Clone)]
pub struct Key(KeyRepr);

impl Key {
    fn from_slice(bytes: &[u8]) -> Self {
        if bytes.len() <= KEY_INLINE_CAP {
            let mut buf = [0u8; KEY_INLINE_CAP];
            buf[..bytes.len()].copy_from_slice(bytes);
            Key(KeyRepr::Inline {
                len: bytes.len() as u8,
                buf,
            })
        } else {
            Key(KeyRepr::Heap(bytes.into()))
        }
    }

    /// Builds a key from raw bytes.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        let v = bytes.into();
        if v.len() <= KEY_INLINE_CAP {
            Key::from_slice(&v)
        } else {
            Key(KeyRepr::Heap(v.into_boxed_slice()))
        }
    }

    /// Encodes a single `u64` as an 8-byte big-endian key.
    pub fn from_u64(v: u64) -> Self {
        Key::from_slice(&v.to_be_bytes())
    }

    /// Encodes a pair of `u64`s (e.g. `(orderkey, linenumber)`) as a 16-byte
    /// big-endian composite key ordered lexicographically.
    pub fn from_pair(a: u64, b: u64) -> Self {
        let mut buf = [0u8; 16];
        buf[..8].copy_from_slice(&a.to_be_bytes());
        buf[8..].copy_from_slice(&b.to_be_bytes());
        Key::from_slice(&buf)
    }

    /// Decodes the first 8 bytes as a big-endian `u64`. Returns 0 for shorter keys.
    pub fn as_u64(&self) -> u64 {
        let s = self.as_slice();
        if s.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&s[..8]);
            u64::from_be_bytes(buf)
        } else {
            let mut buf = [0u8; 8];
            buf[8 - s.len()..].copy_from_slice(s);
            u64::from_be_bytes(buf)
        }
    }

    /// Decodes the key as a pair of big-endian `u64`s.
    pub fn as_pair(&self) -> (u64, u64) {
        let s = self.as_slice();
        let a = self.as_u64();
        let b = if s.len() >= 16 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&s[8..16]);
            u64::from_be_bytes(buf)
        } else {
            0
        };
        (a, b)
    }

    /// Length of the encoded key in bytes.
    pub fn len(&self) -> usize {
        match &self.0 {
            KeyRepr::Inline { len, .. } => *len as usize,
            KeyRepr::Heap(b) => b.len(),
        }
    }

    /// True if the key is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw byte view.
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            KeyRepr::Inline { len, buf } => &buf[..*len as usize],
            KeyRepr::Heap(b) => b,
        }
    }

    /// True if the key is stored inline (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self.0, KeyRepr::Inline { .. })
    }

    /// Heap bytes owned by this key: 0 for inline keys, the key length for
    /// spilled ones. The `scale` experiments figure sums this over every
    /// resident entry to report true bytes-per-record.
    pub fn heap_bytes(&self) -> usize {
        match &self.0 {
            KeyRepr::Inline { .. } => 0,
            KeyRepr::Heap(b) => b.len(),
        }
    }

    /// Copies the key out as an owned byte vector.
    pub fn into_vec(self) -> Vec<u8> {
        match self.0 {
            KeyRepr::Inline { len, buf } => buf[..len as usize].to_vec(),
            KeyRepr::Heap(b) => b.into_vec(),
        }
    }
}

impl Default for Key {
    fn default() -> Self {
        Key::from_slice(&[])
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Key {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() == 8 {
            write!(f, "Key({})", self.as_u64())
        } else if self.len() == 16 {
            let (a, b) = self.as_pair();
            write!(f, "Key({a},{b})")
        } else {
            write!(f, "Key({:?})", self.as_slice())
        }
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Self {
        Key::from_u64(v)
    }
}

impl From<(u64, u64)> for Key {
    fn from(v: (u64, u64)) -> Self {
        Key::from_pair(v.0, v.1)
    }
}

/// Record payload stored in the primary index.
pub type Value = Bytes;

/// A single mutation: either an upsert carrying a value or a delete tombstone.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// Insert or update the record with the given payload.
    Put(Value),
    /// Delete the record (tombstone). Tombstones are kept until a merge that
    /// includes the oldest component drops them.
    Delete,
}

impl Op {
    /// Size in bytes charged for this operation's payload.
    pub fn value_len(&self) -> usize {
        match self {
            Op::Put(v) => v.len(),
            Op::Delete => 0,
        }
    }

    /// True if this is a tombstone.
    pub fn is_delete(&self) -> bool {
        matches!(self, Op::Delete)
    }

    /// Returns the payload for puts, `None` for deletes.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Op::Put(v) => Some(v),
            Op::Delete => None,
        }
    }
}

/// A key/operation pair as stored inside memory and disk components.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Entry {
    /// The record's key.
    pub key: Key,
    /// The mutation applied to that key.
    pub op: Op,
}

impl Entry {
    /// Creates an upsert entry.
    pub fn put(key: impl Into<Key>, value: impl Into<Value>) -> Self {
        Entry {
            key: key.into(),
            op: Op::Put(value.into()),
        }
    }

    /// Creates a tombstone entry.
    pub fn delete(key: impl Into<Key>) -> Self {
        Entry {
            key: key.into(),
            op: Op::Delete,
        }
    }

    /// Approximate on-disk size of the entry in bytes.
    ///
    /// Every size, budget and cost-model charge in the system must use this
    /// (or [`Entry::size_of_parts`]) — component totals, memtable budgets and
    /// query-read metrics are cross-checked against each other in tests, so a
    /// call site hand-rolling `key + value` silently under-charges by the op
    /// tag.
    pub fn size_bytes(&self) -> usize {
        Entry::size_of_parts(&self.key, &self.op)
    }

    /// The size an entry with this key and op would occupy, without building
    /// the entry. The single source of truth for the `key + value + op tag`
    /// formula; use it wherever an `Entry` is not at hand (memtable
    /// replacement accounting, query-read charging).
    pub fn size_of_parts(key: &Key, op: &Op) -> usize {
        key.len() + op.value_len() + OP_TAG_BYTES
    }
}

/// Bytes charged for the put/delete discriminant of an [`Entry`]. Tombstones
/// occupy `key.len() + OP_TAG_BYTES`, never zero — a bucket full of deletes
/// still has weight for splitting, budgets and movement costs.
pub const OP_TAG_BYTES: usize = 1;

/// Aggregate memory accounting over a set of entries.
///
/// Components, memtables and trees fold their resident entries into one of
/// these; the `scale` experiments figure turns the totals into true
/// bytes-per-record and compares them against what the pre-inline `Vec<u8>`
/// key layout would have held, gating the memory-lean pass that makes
/// million-record soak runs fit CI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageFootprint {
    /// Entries counted (raw: includes tombstones and shadowed versions).
    pub records: u64,
    /// Sum of [`Entry::size_bytes`] — the logical/cost-model size.
    pub logical_bytes: u64,
    /// Total encoded key bytes (inline or heap).
    pub key_bytes: u64,
    /// Key bytes that actually live on the heap (spilled keys only).
    pub key_heap_bytes: u64,
    /// Total value payload bytes.
    pub value_bytes: u64,
    /// Keys stored inline in the 24-byte `Key` struct.
    pub inline_keys: u64,
}

impl StorageFootprint {
    /// Folds one key/op pair into the totals.
    pub fn add_key_op(&mut self, key: &Key, op: &Op) {
        self.records += 1;
        self.logical_bytes += Entry::size_of_parts(key, op) as u64;
        self.key_bytes += key.len() as u64;
        self.key_heap_bytes += key.heap_bytes() as u64;
        self.value_bytes += op.value_len() as u64;
        if key.is_inline() {
            self.inline_keys += 1;
        }
    }

    /// Folds one entry into the totals.
    pub fn add_entry(&mut self, entry: &Entry) {
        self.add_key_op(&entry.key, &entry.op);
    }

    /// Merges another footprint into this one.
    pub fn absorb(&mut self, other: &StorageFootprint) {
        self.records += other.records;
        self.logical_bytes += other.logical_bytes;
        self.key_bytes += other.key_bytes;
        self.key_heap_bytes += other.key_heap_bytes;
        self.value_bytes += other.value_bytes;
        self.inline_keys += other.inline_keys;
    }

    /// Bytes held by the `Entry` structs themselves (`records × size_of`).
    pub fn entry_struct_bytes(&self) -> u64 {
        self.records * std::mem::size_of::<Entry>() as u64
    }

    /// Resident bytes under the current layout: entry structs plus the heap
    /// allocations hanging off them (spilled keys and value payloads).
    pub fn resident_bytes(&self) -> u64 {
        self.entry_struct_bytes() + self.key_heap_bytes + self.value_bytes
    }

    /// Resident bytes the pre-inline `Key(Vec<u8>)` layout would have held
    /// for the same entries: every key byte on the heap, same struct size
    /// (the inline `Key` is deliberately no larger than a `Vec`). The
    /// deterministic baseline the `scale` gate compares against.
    pub fn legacy_resident_bytes(&self) -> u64 {
        self.entry_struct_bytes() + self.key_bytes + self.value_bytes
    }

    /// Resident bytes per record; 0.0 when empty.
    pub fn bytes_per_record(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.resident_bytes() as f64 / self.records as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_keys_order_like_integers() {
        let ks: Vec<Key> = [0u64, 1, 255, 256, 1 << 40, u64::MAX]
            .iter()
            .map(|&v| Key::from_u64(v))
            .collect();
        for w in ks.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn pair_keys_order_lexicographically() {
        assert!(Key::from_pair(1, 99) < Key::from_pair(2, 0));
        assert!(Key::from_pair(2, 1) < Key::from_pair(2, 2));
        assert_eq!(Key::from_pair(7, 9).as_pair(), (7, 9));
    }

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 1, 42, u64::MAX] {
            assert_eq!(Key::from_u64(v).as_u64(), v);
        }
    }

    #[test]
    fn entry_size_accounts_for_key_and_value() {
        let e = Entry::put(Key::from_u64(1), Bytes::from(vec![0u8; 100]));
        assert_eq!(e.size_bytes(), 8 + 100 + OP_TAG_BYTES);
        let d = Entry::delete(Key::from_u64(1));
        assert_eq!(d.size_bytes(), 8 + OP_TAG_BYTES);
        assert_eq!(Entry::size_of_parts(&e.key, &e.op), e.size_bytes());
        assert_eq!(Entry::size_of_parts(&d.key, &d.op), d.size_bytes());
    }

    #[test]
    fn short_keys_are_inline_and_long_keys_spill() {
        assert!(Key::from_u64(7).is_inline());
        assert_eq!(Key::from_u64(7).heap_bytes(), 0);
        assert!(Key::from_pair(1, 2).is_inline());
        assert!(Key::from_bytes(vec![9u8; KEY_INLINE_CAP]).is_inline());
        let long = Key::from_bytes(vec![9u8; KEY_INLINE_CAP + 1]);
        assert!(!long.is_inline());
        assert_eq!(long.heap_bytes(), KEY_INLINE_CAP + 1);
        assert_eq!(long.len(), KEY_INLINE_CAP + 1);
    }

    #[test]
    fn key_struct_is_no_larger_than_a_vec() {
        assert!(std::mem::size_of::<Key>() <= std::mem::size_of::<Vec<u8>>());
    }

    #[test]
    fn inline_and_heap_keys_compare_hash_and_order_identically() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Same bytes through different constructors must be one key.
        let a = Key::from_u64(0xDEAD_BEEF);
        let b = Key::from_bytes(0xDEAD_BEEFu64.to_be_bytes().to_vec());
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
        // Ordering across the inline/heap boundary stays byte-lexicographic.
        let short = Key::from_bytes(vec![5u8; KEY_INLINE_CAP]);
        let long = Key::from_bytes(vec![5u8; KEY_INLINE_CAP + 4]);
        assert!(short < long, "prefix orders before its extension");
        let bigger = Key::from_bytes(vec![6u8; 4]);
        assert!(long < bigger);
    }

    #[test]
    fn key_roundtrips_through_into_vec() {
        for bytes in [vec![], vec![1, 2, 3], vec![7u8; KEY_INLINE_CAP + 10]] {
            let k = Key::from_bytes(bytes.clone());
            assert_eq!(k.as_slice(), &bytes[..]);
            assert_eq!(k.into_vec(), bytes);
        }
    }

    #[test]
    fn op_helpers() {
        let p = Op::Put(Bytes::from_static(b"x"));
        assert!(!p.is_delete());
        assert_eq!(p.value().unwrap().as_ref(), b"x");
        assert!(Op::Delete.is_delete());
        assert!(Op::Delete.value().is_none());
    }
}
