pub fn load(cluster: &mut Cluster, p: PartitionId) {
    let part = cluster.partition(p);
    part.touch();
}
