//! Seeded property harness for the versioned-directory session API.
//!
//! N client sessions with *independently stale* routing caches interleave
//! reads, writes, overwrites, and deletes with the steps of a
//! [`RebalanceJob`], across {StaticHash, DynaHash} x {scale-out, scale-in}.
//! Invariants, checked per seeded case (the failing seed and its parameters
//! are printed on panic, same style as `rebalance_invariants.rs`):
//!
//! * **read-your-writes per session** — every session immediately reads
//!   back what it wrote, at every step boundary, however stale its cache;
//! * **transparent convergence** — after the rebalance commits (and, for a
//!   scale-in, the victim node is decommissioned), the still-stale sessions
//!   serve every key correctly through the stale-directory redirect
//!   protocol, with a bounded redirect count;
//! * **byte-identical contents** — each session's final scan equals the
//!   model and equals an *oracle session* that refreshed at every step.

mod common;

use std::collections::BTreeMap;

use common::{check_seeded_cases, test_cluster, CASES};
use dynahash::cluster::{DatasetSpec, RebalanceJob, Session};
use dynahash::core::{RebalanceOutcome, Scheme};
use dynahash::lsm::entry::Key;
use dynahash::lsm::rng::SplitMix64;
use dynahash::lsm::Bytes;

/// Client sessions with independently stale caches.
const NUM_SESSIONS: usize = 3;

fn payload(i: u64, version: u64) -> Bytes {
    let mut v = i.to_be_bytes().to_vec();
    v.extend_from_slice(&version.to_be_bytes());
    v.extend_from_slice(&[(i % 251) as u8; 32]);
    Bytes::from(v)
}

/// The model: what the dataset must contain, keyed by raw u64 key.
type Model = BTreeMap<u64, Bytes>;

fn model_as_contents(model: &Model) -> BTreeMap<Key, Bytes> {
    model
        .iter()
        .map(|(k, v)| (Key::from_u64(*k), v.clone()))
        .collect()
}

#[derive(Debug)]
struct CaseParams {
    scheme: Scheme,
    grow: bool,
    base_records: u64,
    max_moves: usize,
}

fn run_case(seed: u64, params: &CaseParams) {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5e55_10f1);
    let nodes = if params.grow { 2 } else { 3 };
    let mut cluster = test_cluster(nodes);
    let ds = cluster
        .create_dataset(DatasetSpec::new("events", params.scheme))
        .unwrap();

    let mut model: Model = BTreeMap::new();
    {
        let mut loader = cluster.session(ds).unwrap();
        let batch: Vec<(Key, Bytes)> = (0..params.base_records)
            .map(|i| (Key::from_u64(i), payload(i, 0)))
            .collect();
        loader.ingest(&mut cluster, batch).unwrap();
    }
    model.extend((0..params.base_records).map(|i| (i, payload(i, 0))));

    // The oracle refreshes at every step; the client sessions are only ever
    // refreshed by the redirect protocol itself.
    let mut oracle = cluster.session(ds).unwrap();
    let mut sessions: Vec<Session> = (0..NUM_SESSIONS)
        .map(|_| cluster.session(ds).unwrap())
        .collect();
    // Per-session private key ranges for read-your-writes bookkeeping.
    let mut own_keys: Vec<Vec<u64>> = vec![Vec::new(); NUM_SESSIONS];
    let mut next_own: Vec<u64> = (0..NUM_SESSIONS as u64)
        .map(|s| 1_000_000 + s * 100_000)
        .collect();

    let (target, victim) = if params.grow {
        cluster.add_node().unwrap();
        (cluster.topology().clone(), None)
    } else {
        let victim = *cluster.topology().nodes().last().unwrap();
        (cluster.topology_without(victim), Some(victim))
    };

    let mut job = RebalanceJob::plan(&mut cluster, ds, &target, params.max_moves).unwrap();
    job.init(&mut cluster).unwrap();

    // Interleave session traffic with the job's waves. Session 0 stays
    // silent until after the commit — the fully-stale client.
    while job.has_remaining_waves() {
        job.run_wave(&mut cluster).unwrap();
        for (s, session) in sessions.iter_mut().enumerate() {
            if s == 0 || rng.gen_range(0..4) == 0 {
                continue;
            }
            // a fresh write, immediately read back
            let k = next_own[s];
            next_own[s] += 1;
            let v = payload(k, 1);
            session
                .put(&mut cluster, Key::from_u64(k), v.clone())
                .unwrap();
            model.insert(k, v.clone());
            own_keys[s].push(k);
            assert_eq!(
                session.get(&cluster, &Key::from_u64(k)).unwrap(),
                Some(v),
                "seed {seed}: session {s} lost its own write mid-rebalance"
            );
            match rng.gen_range(0..3) {
                // overwrite one of its own keys
                0 if !own_keys[s].is_empty() => {
                    let idx = rng.gen_range(0..own_keys[s].len() as u64) as usize;
                    let k = own_keys[s][idx];
                    let v = payload(k, 2 + rng.gen_range(0..1000));
                    session
                        .put(&mut cluster, Key::from_u64(k), v.clone())
                        .unwrap();
                    model.insert(k, v.clone());
                    assert_eq!(
                        session.get(&cluster, &Key::from_u64(k)).unwrap(),
                        Some(v),
                        "seed {seed}: session {s} lost an overwrite"
                    );
                }
                // delete one of its own keys
                1 if !own_keys[s].is_empty() => {
                    let idx = rng.gen_range(0..own_keys[s].len() as u64) as usize;
                    let k = own_keys[s].swap_remove(idx);
                    assert!(session.delete(&mut cluster, &Key::from_u64(k)).unwrap());
                    model.remove(&k);
                    assert_eq!(
                        session.get(&cluster, &Key::from_u64(k)).unwrap(),
                        None,
                        "seed {seed}: session {s} read back a deleted key"
                    );
                }
                // read a random base key
                _ => {
                    let k = rng.gen_range(0..params.base_records);
                    assert_eq!(
                        session.get(&cluster, &Key::from_u64(k)).unwrap().as_ref(),
                        model.get(&k),
                        "seed {seed}: session {s} misread base key {k}"
                    );
                }
            }
        }
        // the oracle refreshes at every step and must agree with the model
        oracle.refresh(&cluster).unwrap();
        let k = rng.gen_range(0..params.base_records);
        assert_eq!(
            oracle.get(&cluster, &Key::from_u64(k)).unwrap().as_ref(),
            model.get(&k),
            "seed {seed}: oracle misread base key {k}"
        );
    }

    job.prepare(&mut cluster).unwrap();
    assert_eq!(
        job.decide(&mut cluster).unwrap(),
        RebalanceOutcome::Committed,
        "seed {seed}: rebalance must commit"
    );
    job.commit(&mut cluster).unwrap();
    let report = job.finalize(&mut cluster).unwrap();
    cluster
        .check_rebalance_integrity(ds, report.rebalance_id)
        .unwrap_or_else(|e| panic!("seed {seed}: integrity after finalize: {e}"));
    if let Some(victim) = victim {
        cluster.decommission_node(victim).unwrap();
    }

    // Every session is now stale across the full rebalance (session 0 never
    // even issued a request). Drive them over the whole key space: the
    // redirect protocol must converge each one with correct answers.
    let expected = model_as_contents(&model);
    for (s, session) in sessions.iter_mut().enumerate() {
        let before = session.metrics();
        for (k, v) in model.iter() {
            assert_eq!(
                session.get(&cluster, &Key::from_u64(*k)).unwrap().as_ref(),
                Some(v),
                "seed {seed}: session {s} misread key {k} after the rebalance"
            );
        }
        let (contents, raw) = session.collect_records(&cluster).unwrap();
        assert_eq!(
            raw,
            expected.len(),
            "seed {seed}: session {s} saw a key twice"
        );
        assert_eq!(
            contents, expected,
            "seed {seed}: session {s} final contents diverge from the model"
        );
        let after = session.metrics();
        let redirects = after.redirects - before.redirects;
        let bound = (report.buckets_moved as u64).max(1) + 1;
        assert!(
            redirects <= bound,
            "seed {seed}: session {s} took {redirects} redirects (bound {bound}, \
             {} buckets moved)",
            report.buckets_moved
        );
    }

    // The oracle (refreshed every step) agrees byte for byte.
    let (oracle_contents, oracle_raw) = oracle.collect_records(&cluster).unwrap();
    assert_eq!(
        oracle_raw,
        expected.len(),
        "seed {seed}: oracle double-read"
    );
    assert_eq!(
        oracle_contents, expected,
        "seed {seed}: oracle contents diverge from the model"
    );
    assert_eq!(
        cluster.dataset_len(ds).unwrap(),
        expected.len(),
        "seed {seed}: records lost or duplicated"
    );
    cluster.check_dataset_consistency(ds).unwrap();
}

fn check_sessions_converge(scheme: Scheme, grow: bool, seed_base: u64) {
    check_seeded_cases(
        "session-routing property",
        seed_base,
        CASES,
        |_seed, rng| CaseParams {
            scheme,
            grow,
            base_records: rng.gen_range(300..800),
            max_moves: rng.gen_range(1..5) as usize,
        },
        run_case,
    );
}

#[test]
fn prop_stale_sessions_converge_statichash_scale_out() {
    check_sessions_converge(Scheme::StaticHash { num_buckets: 32 }, true, 0x5e55_0000);
}

#[test]
fn prop_stale_sessions_converge_statichash_scale_in() {
    check_sessions_converge(Scheme::StaticHash { num_buckets: 32 }, false, 0x5e55_1000);
}

#[test]
fn prop_stale_sessions_converge_dynahash_scale_out() {
    check_sessions_converge(Scheme::dynahash(16 * 1024, 8), true, 0x5e55_2000);
}

#[test]
fn prop_stale_sessions_converge_dynahash_scale_in() {
    check_sessions_converge(Scheme::dynahash(16 * 1024, 8), false, 0x5e55_3000);
}
