//! Finding types, text rendering, and `--json` output.

use std::fmt;

/// The rule families dhlint enforces. Each maps to one name usable in a
/// waiver comment and in the waiver budget file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Crate layering (`lsm ← core ← cluster ← {tpch,bench}`) and the
    /// zero-registry-dependency constraint, from both `Cargo.toml` and
    /// `use dynahash_*` statements.
    Layering,
    /// Raw partition accessors outside `crates/cluster` must go through
    /// `cluster.admin()`.
    Session,
    /// `unwrap()` / `expect()` / `panic!` / `unreachable!` in production
    /// crates must carry a waiver naming the invariant.
    Panic,
    /// Wall-clock reads outside `dynahash_bench::timing` and unordered
    /// `HashMap`/`HashSet` in ordering-sensitive scheduler files.
    Determinism,
    /// Every `Mutex`/`RwLock`/`RefCell` must be registered with an
    /// acquisition rank in `LOCK_ORDER.md`.
    LockOrder,
    /// Workspace-package metadata consistency across crate manifests.
    Metadata,
    /// Waiver hygiene: unknown rules, unused waivers, budget drift.
    Waiver,
}

impl Rule {
    /// The rule name as written in waiver comments and the budget file.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Layering => "layering",
            Rule::Session => "session",
            Rule::Panic => "panic",
            Rule::Determinism => "determinism",
            Rule::LockOrder => "lock-order",
            Rule::Metadata => "metadata",
            Rule::Waiver => "waiver",
        }
    }

    /// Parses a rule name from a waiver comment or the budget file.
    pub fn from_name(name: &str) -> Option<Rule> {
        Some(match name {
            "layering" => Rule::Layering,
            "session" => Rule::Session,
            "panic" => Rule::Panic,
            "determinism" => Rule::Determinism,
            "lock-order" => Rule::LockOrder,
            "metadata" => Rule::Metadata,
            "waiver" => Rule::Waiver,
            _ => return None,
        })
    }

    /// Every rule family, in reporting order.
    pub fn all() -> [Rule; 7] {
        [
            Rule::Layering,
            Rule::Session,
            Rule::Panic,
            Rule::Determinism,
            Rule::LockOrder,
            Rule::Metadata,
            Rule::Waiver,
        ]
    }

    /// True when an inline `// dhlint: allow(...)` comment may waive a
    /// finding of this family. Manifest-level families have no source line
    /// to hang a waiver on and must be fixed instead.
    pub fn waivable(self) -> bool {
        !matches!(self, Rule::Metadata | Rule::Waiver)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule family that fired.
    pub rule: Rule,
    /// Path relative to the checked root (`-` for root-level findings).
    pub file: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// True when an inline waiver covers this finding. Waived findings are
    /// reported but do not fail the check (the budget file bounds them).
    pub waived: bool,
}

impl Finding {
    /// A file-level finding (no meaningful line number).
    pub fn file_level(rule: Rule, file: &str, message: String) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 0,
            message,
            waived: false,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let status = if self.waived { "waived" } else { "error" };
        if self.line == 0 {
            write!(
                f,
                "{}: [{}] {}: {}",
                status, self.rule, self.file, self.message
            )
        } else {
            write!(
                f,
                "{}: [{}] {}:{}: {}",
                status, self.rule, self.file, self.line, self.message
            )
        }
    }
}

/// The result of one full check run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, waived and unwaived, in path/line order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Used-waiver counts per rule family, as enforced against the budget.
    pub waivers_used: Vec<(Rule, usize)>,
}

impl Report {
    /// True when the check passes: no unwaived findings.
    pub fn is_clean(&self) -> bool {
        self.findings.iter().all(|f| f.waived)
    }

    /// The unwaived findings.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Unwaived finding count for one rule family.
    pub fn error_count(&self, rule: Rule) -> usize {
        self.errors().filter(|f| f.rule == rule).count()
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        let errors = self.errors().count();
        let waived = self.findings.len() - errors;
        out.push_str(&format!(
            "dhlint: {} file(s) scanned, {} error(s), {} waived finding(s)\n",
            self.files_scanned, errors, waived
        ));
        out
    }

    /// Renders the machine-readable `--json` report.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"waived\": {}, \"message\": \"{}\"}}{}\n",
                f.rule,
                escape_json(&f.file),
                f.line,
                f.waived,
                escape_json(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"waivers_used\": {");
        for (i, (rule, count)) in self.waivers_used.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{rule}\": {count}"));
        }
        out.push_str("},\n");
        out.push_str(&format!("  \"clean\": {}\n}}\n", self.is_clean()));
        out
    }
}

/// Escapes a string for embedding in a JSON literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for rule in Rule::all() {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("nope"), None);
    }

    #[test]
    fn waived_findings_keep_the_report_clean() {
        let mut report = Report::default();
        report.findings.push(Finding {
            rule: Rule::Panic,
            file: "a.rs".into(),
            line: 3,
            message: "x".into(),
            waived: true,
        });
        assert!(report.is_clean());
        report.findings.push(Finding::file_level(
            Rule::Metadata,
            "Cargo.toml",
            "missing".into(),
        ));
        assert!(!report.is_clean());
        assert_eq!(report.error_count(Rule::Metadata), 1);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
