pub fn f(v: Option<u32>) -> u32 {
    v.unwrap()
}
