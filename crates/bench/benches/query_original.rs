//! Figure 8: TPC-H query performance on the original cluster (4 nodes),
//! comparing Hashing, StaticHash, DynaHash, and DynaHash with lazy cleanup.

use dynahash_bench::timing::{bench_case, bench_group, DEFAULT_ITERS};
use dynahash_bench::{fig8_queries, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::quick();
    bench_group("fig8_query_original_cluster");
    bench_case("all_queries_4_nodes", DEFAULT_ITERS, || {
        fig8_queries(&cfg, 4)
    });
}
