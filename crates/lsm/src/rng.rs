//! A small deterministic pseudo-random number generator.
//!
//! The repository must build with zero external dependencies, so this module
//! replaces the `rand` crate for the two places randomness is needed: the
//! seeded TPC-H data generator and the seeded randomized-property test
//! harnesses. The generator is **xoshiro256++** seeded via **SplitMix64**
//! (Blackman & Vigna), which passes statistical test batteries and is more
//! than adequate for workload generation and test-case sampling.
//!
//! The API mirrors the subset of `rand::Rng` the codebase uses
//! ([`SplitMix64::gen_range`], [`SplitMix64::gen_ratio`]) so call sites read
//! identically to their `rand` equivalents.

use std::ops::{Bound, RangeBounds};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded deterministic PRNG (xoshiro256++ seeded via SplitMix64).
///
/// The name reflects the seeding procedure, which is what callers interact
/// with: `SplitMix64::seed_from_u64(seed)` always yields the same stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    s: [u64; 4],
}

impl SplitMix64 {
    /// Creates a generator whose entire stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SplitMix64 { s }
    }

    /// Returns the next 64 uniformly distributed bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed `u64` in the given range
    /// (`a..b` or `a..=b`), like `rand::Rng::gen_range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: impl RangeBounds<u64>) -> u64 {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi_inclusive = match range.end_bound() {
            Bound::Included(&n) => n,
            // dhlint: allow(panic) — documented API contract: gen_range panics on an empty range
            Bound::Excluded(&n) => n.checked_sub(1).expect("empty range"),
            Bound::Unbounded => u64::MAX,
        };
        assert!(lo <= hi_inclusive, "empty range {lo}..={hi_inclusive}");
        let span = hi_inclusive - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Rejection sampling over the largest multiple of span+1 to avoid
        // modulo bias.
        let n = span + 1;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % n;
            }
        }
    }

    /// Returns `true` with probability `numerator / denominator`,
    /// like `rand::Rng::gen_ratio`.
    pub fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be non-zero");
        assert!(numerator <= denominator);
        self.gen_range(0..denominator as u64) < numerator as u64
    }

    /// Returns a uniformly distributed `usize` in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(0..n as u64) as usize
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)` built from the top
    /// 53 bits of the next word (the standard `rand` construction).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A bijective mixer over `u64` (the SplitMix64 finalizer).
///
/// Workload generators draw Zipfian *ranks* — small, dense integers where
/// rank 1 is the hottest. Feeding ranks straight into [`Key::from_u64`]
/// would concentrate the key space near zero and leave most hash buckets
/// cold; `scramble` spreads ranks uniformly over the whole `u64` space while
/// staying deterministic and collision-free (it is invertible), so the same
/// rank always maps to the same well-distributed key.
///
/// [`Key::from_u64`]: crate::entry::Key::from_u64
pub fn scramble(rank: u64) -> u64 {
    let mut z = rank.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A Zipfian distribution over the ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^-s`. Rank 1 is the hottest element.
///
/// Sampling uses rejection-inversion (Hörmann & Derflinger, "Rejection-
/// inversion to generate variates from monotone discrete distributions") —
/// O(1) per sample with no per-element table, so `n` can be millions without
/// any setup cost. This is the same algorithm `rand_distr::Zipf` uses; we
/// need an in-tree copy because the workspace builds with zero external
/// dependencies.
///
/// Skewed workloads are the regime the DynaHash paper targets: a Zipfian
/// key stream concentrates writes into a few hash buckets, forcing bucket
/// splits and hotspot migration that uniform streams never trigger.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: f64,
    s: f64,
    /// `H(1.5) - h(1)`: lower end of the uniform sampling interval.
    h_x1: f64,
    /// `H(n + 0.5)`: upper end of the uniform sampling interval.
    h_n: f64,
    /// Quick-accept threshold `2 - H⁻¹(H(2.5) - h(2))`.
    quick: f64,
}

impl Zipfian {
    /// Creates a Zipfian distribution over `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is not positive and finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipfian needs at least one rank");
        assert!(
            s > 0.0 && s.is_finite(),
            "Zipfian exponent must be positive"
        );
        let nf = n as f64;
        let h_x1 = Self::h_integral(1.5, s) - 1.0;
        let h_n = Self::h_integral(nf + 0.5, s);
        let quick = 2.0 - Self::h_integral_inv(Self::h_integral(2.5, s) - Self::h(2.0, s), s);
        Zipfian {
            n: nf,
            s,
            h_x1,
            h_n,
            quick,
        }
    }

    /// The density shape `h(x) = x^-s`.
    fn h(x: f64, s: f64) -> f64 {
        x.powf(-s)
    }

    /// The primitive `H(x) = (x^(1-s) - 1) / (1 - s)`, with the `ln x`
    /// limit at `s = 1`.
    fn h_integral(x: f64, s: f64) -> f64 {
        let q = 1.0 - s;
        if q.abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(q) - 1.0) / q
        }
    }

    /// The inverse `H⁻¹(x)`.
    fn h_integral_inv(x: f64, s: f64) -> f64 {
        let q = 1.0 - s;
        if q.abs() < 1e-9 {
            x.exp()
        } else {
            // Clamp the base at zero against floating-point drift at the
            // lower edge of the sampling interval.
            (1.0 + q * x).max(0.0).powf(1.0 / q)
        }
    }

    /// Draws a rank in `1..=n`; rank 1 is the most likely.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        loop {
            // u uniform in (H(1.5) - 1, H(n + 0.5)].
            let u = self.h_n + rng.gen_f64() * (self.h_x1 - self.h_n);
            let x = Self::h_integral_inv(u, self.s);
            let k = x.round().clamp(1.0, self.n);
            if k - x <= self.quick || u >= Self::h_integral(k + 0.5, self.s) - Self::h(k, self.s) {
                return k as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let x = rng.gen_range(0..=3);
            assert!(x <= 3);
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_ratio_is_roughly_calibrated() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "got {hits}/10000 at p=0.25");
    }

    #[test]
    fn gen_f64_stays_in_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v), "got {v}");
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn scramble_is_deterministic_and_spreads_dense_ranks() {
        assert_eq!(scramble(42), scramble(42));
        // Dense ranks must land in well-separated hash buckets: check the
        // top byte of the scrambled values covers most of its range.
        let mut top_bytes = std::collections::BTreeSet::new();
        for rank in 1..=4096u64 {
            top_bytes.insert((scramble(rank) >> 56) as u8);
        }
        assert!(
            top_bytes.len() > 200,
            "only {} distinct top bytes over 4096 ranks",
            top_bytes.len()
        );
    }

    #[test]
    fn zipfian_samples_stay_in_range_and_are_deterministic() {
        let z = Zipfian::new(1_000, 1.1);
        let mut a = SplitMix64::seed_from_u64(5);
        let mut b = SplitMix64::seed_from_u64(5);
        for _ in 0..10_000 {
            let ka = z.sample(&mut a);
            assert!((1..=1_000).contains(&ka));
            assert_eq!(ka, z.sample(&mut b));
        }
    }

    #[test]
    fn zipfian_is_skewed_toward_low_ranks() {
        // At s = 1.1 over 10^4 ranks, the hottest ~10 ranks should carry a
        // large share of the mass (the harmonic-like normalizer keeps
        // P(rank 1) around 1/ln-ish of the total).
        let z = Zipfian::new(10_000, 1.1);
        let mut rng = SplitMix64::seed_from_u64(77);
        let n = 50_000;
        let mut hot = 0usize;
        let mut rank1 = 0usize;
        for _ in 0..n {
            let k = z.sample(&mut rng);
            if k <= 10 {
                hot += 1;
            }
            if k == 1 {
                rank1 += 1;
            }
        }
        let hot_share = hot as f64 / n as f64;
        assert!(hot_share > 0.35, "top-10 share {hot_share} too uniform");
        // And rank 2 should get roughly 2^-1.1 of rank 1's mass.
        assert!(rank1 > n / 20, "rank 1 drew only {rank1}/{n}");
    }

    #[test]
    fn zipfian_ratio_between_ranks_matches_exponent() {
        // P(1)/P(2) = 2^s; check the empirical ratio is in the ballpark.
        let z = Zipfian::new(100, 1.0);
        let mut rng = SplitMix64::seed_from_u64(13);
        let (mut c1, mut c2) = (0f64, 0f64);
        for _ in 0..200_000 {
            match z.sample(&mut rng) {
                1 => c1 += 1.0,
                2 => c2 += 1.0,
                _ => {}
            }
        }
        let ratio = c1 / c2;
        assert!(
            (1.7..2.3).contains(&ratio),
            "P(1)/P(2) = {ratio}, expected ~2"
        );
    }

    #[test]
    fn zipfian_single_rank_always_returns_one() {
        let z = Zipfian::new(1, 1.1);
        let mut rng = SplitMix64::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }
}
