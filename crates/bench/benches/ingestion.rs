//! Figure 6: ingestion time for each rebalancing scheme.
//!
//! Criterion measures the wall-clock time of the simulation; the simulated
//! ingestion minutes (the quantity the paper plots) are printed by the
//! `experiments` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynahash_bench::{fig6_ingestion, ExperimentConfig};

fn bench_ingestion(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let mut group = c.benchmark_group("fig6_ingestion");
    group.sample_size(10);
    for nodes in [2u32, 4] {
        group.bench_with_input(BenchmarkId::new("all_schemes", nodes), &nodes, |b, &n| {
            b.iter(|| fig6_ingestion(&cfg, &[n]));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingestion);
criterion_main!(benches);
