//! Figure 8: TPC-H query performance on the original cluster (4 nodes),
//! comparing Hashing, StaticHash, DynaHash, and DynaHash with lazy cleanup.

use criterion::{criterion_group, criterion_main, Criterion};
use dynahash_bench::{fig8_queries, ExperimentConfig};

fn bench_query_original(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let mut group = c.benchmark_group("fig8_query_original_cluster");
    group.sample_size(10);
    group.bench_function("all_queries_4_nodes", |b| {
        b.iter(|| fig8_queries(&cfg, 4));
    });
    group.finish();
}

criterion_group!(benches, bench_query_original);
criterion_main!(benches);
