//! Shared scaffolding for the seeded property-test harnesses.
//!
//! Every property-style integration test follows the same recipe: derive a
//! case from `seed_base + case`, generate parameters from a seeded RNG, run
//! the case under `catch_unwind`, and — on failure — re-panic with the seed
//! and the generated parameters so the case can be replayed exactly. That
//! loop, the cluster builders and the record generator used to be duplicated
//! in `rebalance_invariants.rs`, `step_rebalance.rs` and
//! `session_routing.rs`; they live here once now.
//!
//! To replay a failing case: take the printed seed, find the harness named
//! in the message, and run its test with the same binary — the generation is
//! fully deterministic, so the same seed reproduces the same parameters and
//! the same step trace.

// Each integration-test binary compiles this module independently and uses
// only a subset of it.
#![allow(dead_code)]

use std::collections::BTreeSet;

use dynahash::cluster::{Cluster, ClusterConfig, CostModel, DatasetSpec};
use dynahash::core::Scheme;
use dynahash::lsm::entry::Key;
use dynahash::lsm::rng::SplitMix64;
use dynahash::lsm::Bytes;

/// Number of randomized cases per property.
pub const CASES: u64 = 12;

/// The standard test record: an 8-byte key and a small deterministic
/// payload derived from it.
pub fn record(i: u64) -> (Key, Bytes) {
    (Key::from_u64(i), Bytes::from(vec![(i % 233) as u8; 40]))
}

/// A cluster with the property-test shape: `nodes` nodes, 2 partitions per
/// node, the default cost model.
pub fn test_cluster(nodes: u32) -> Cluster {
    Cluster::with_config(
        nodes,
        ClusterConfig {
            partitions_per_node: 2,
            cost_model: CostModel::default(),
        },
    )
}

/// A test cluster with one dataset pre-loaded with `n` records (ingested
/// through a session, the sanctioned path).
pub fn cluster_with_dataset(nodes: u32, scheme: Scheme, n: u64) -> (Cluster, u32) {
    let mut cluster = test_cluster(nodes);
    let ds = cluster
        .create_dataset(DatasetSpec::new("events", scheme))
        .unwrap();
    cluster
        .session(ds)
        .unwrap()
        .ingest(&mut cluster, (0..n).map(record))
        .unwrap();
    (cluster, ds)
}

/// Scans the dataset and asserts it contains exactly `expected` keys, with
/// no key visible twice (the online-query guarantee: pending buckets stay
/// invisible, source buckets stay visible until the commit).
pub fn assert_committed_set(cluster: &mut Cluster, ds: u32, expected: &BTreeSet<u64>, when: &str) {
    let mut q = cluster.query();
    let (map, raw) = q.collect_records(ds).unwrap();
    assert_eq!(
        raw,
        map.len(),
        "{when}: a record is visible on two partitions"
    );
    let seen: BTreeSet<u64> = map.keys().map(Key::as_u64).collect();
    assert_eq!(
        &seen, expected,
        "{when}: scan disagrees with the committed record set"
    );
}

/// Extracts the human-readable message from a caught panic payload.
pub fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| panic.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string panic>")
}

/// The seeded-case loop every property harness shares.
///
/// For each case, `generate` derives the case parameters from a fresh RNG
/// seeded with `seed_base + case`, and `run` executes the case. A panic
/// inside `run` is caught and re-raised with `label`, the seed and the
/// `Debug`-printed parameters, so any failure is replayable from its log
/// line alone.
pub fn check_seeded_cases<P: std::fmt::Debug>(
    label: &str,
    seed_base: u64,
    cases: u64,
    mut generate: impl FnMut(u64, &mut SplitMix64) -> P,
    mut run: impl FnMut(u64, &P),
) {
    for case in 0..cases {
        let seed = seed_base + case;
        let mut rng = SplitMix64::seed_from_u64(seed);
        let params = generate(seed, &mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(seed, &params);
        }));
        if let Err(panic) = result {
            panic!(
                "{label} failed\n  seed: {seed}\n  params: {params:?}\n  cause: {}",
                panic_message(panic.as_ref())
            );
        }
    }
}
