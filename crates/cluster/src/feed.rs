//! Data feeds: long-running ingestion jobs.
//!
//! AsterixDB ingests external data through *data feeds* — long-running jobs
//! that take an immutable copy of the routing state and continuously insert
//! records (Section II-C). The simulation exposes batch ingestion through
//! [`crate::cluster::Cluster::ingest`]; this module adds the report type and
//! the controlled-rate feed used by the concurrent-writes experiment
//! (Figure 7c), where new records arrive at a fixed rate while a rebalance is
//! running.

use dynahash_core::NodeId;

use crate::sim::SimDuration;

/// The result of one ingestion batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// Records ingested.
    pub records: u64,
    /// Simulated elapsed time (bounded by the slowest node).
    pub elapsed: SimDuration,
    /// Per-node busy time.
    pub per_node: Vec<(NodeId, SimDuration)>,
}

impl IngestReport {
    /// Ingestion throughput in records per simulated second.
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.records as f64 / secs
        }
    }

    /// Merges two sequential batches into one report.
    pub fn merge(&self, other: &IngestReport) -> IngestReport {
        let mut per_node = self.per_node.clone();
        for (n, d) in &other.per_node {
            if let Some(slot) = per_node.iter_mut().find(|(m, _)| m == n) {
                slot.1 += *d;
            } else {
                per_node.push((*n, *d));
            }
        }
        per_node.sort_by_key(|(n, _)| *n);
        IngestReport {
            records: self.records + other.records,
            elapsed: self.elapsed + other.elapsed,
            per_node,
        }
    }
}

/// A controlled-rate data feed: emits records at a fixed rate (in records per
/// simulated second), as used by the "Impact of Concurrent Writes"
/// experiment. The write rate in the paper's Figure 7c is expressed in
/// krecords/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlledRateFeed {
    /// Ingestion rate in records per simulated second.
    pub records_per_sec: f64,
}

impl ControlledRateFeed {
    /// A feed emitting `krecords_per_sec` thousand records per second.
    pub fn krecords_per_sec(k: f64) -> Self {
        ControlledRateFeed {
            records_per_sec: k * 1000.0,
        }
    }

    /// How many records arrive during `elapsed`.
    pub fn records_for(&self, elapsed: SimDuration) -> u64 {
        (self.records_per_sec * elapsed.as_secs_f64()) as u64
    }

    /// True if the feed produces no records.
    pub fn is_idle(&self) -> bool {
        self.records_per_sec <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_records_over_elapsed() {
        let r = IngestReport {
            records: 10_000,
            elapsed: SimDuration::from_secs(10),
            per_node: vec![],
        };
        assert!((r.records_per_sec() - 1000.0).abs() < 1e-9);
        let zero = IngestReport {
            records: 5,
            elapsed: SimDuration::ZERO,
            per_node: vec![],
        };
        assert_eq!(zero.records_per_sec(), 0.0);
    }

    #[test]
    fn merge_adds_records_and_per_node_times() {
        let a = IngestReport {
            records: 10,
            elapsed: SimDuration::from_secs(1),
            per_node: vec![(NodeId(0), SimDuration::from_secs(1))],
        };
        let b = IngestReport {
            records: 20,
            elapsed: SimDuration::from_secs(2),
            per_node: vec![
                (NodeId(0), SimDuration::from_secs(1)),
                (NodeId(1), SimDuration::from_secs(2)),
            ],
        };
        let m = a.merge(&b);
        assert_eq!(m.records, 30);
        assert_eq!(m.elapsed, SimDuration::from_secs(3));
        assert_eq!(m.per_node[0], (NodeId(0), SimDuration::from_secs(2)));
        assert_eq!(m.per_node[1], (NodeId(1), SimDuration::from_secs(2)));
    }

    #[test]
    fn controlled_rate_feed_scales_with_time() {
        let feed = ControlledRateFeed::krecords_per_sec(10.0);
        assert_eq!(feed.records_for(SimDuration::from_secs(2)), 20_000);
        assert!(!feed.is_idle());
        assert!(ControlledRateFeed::krecords_per_sec(0.0).is_idle());
    }
}
