use dynahash_core::topology::NodeId;

pub fn f() -> NodeId {
    NodeId(0)
}
