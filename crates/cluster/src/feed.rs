//! Data feeds: long-running ingestion jobs.
//!
//! AsterixDB ingests external data through *data feeds* — long-running jobs
//! that take an immutable copy of the routing state and continuously insert
//! records (Section II-C). The simulation exposes batch ingestion through
//! [`crate::cluster::Cluster::ingest`]; this module adds the report type and
//! the controlled-rate feed used by the concurrent-writes experiment
//! (Figure 7c), where new records arrive at a fixed rate while a rebalance is
//! running.

use dynahash_core::NodeId;

use crate::sim::SimDuration;

/// The result of one ingestion batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// Records ingested.
    pub records: u64,
    /// Simulated elapsed time (bounded by the slowest node).
    pub elapsed: SimDuration,
    /// Per-node busy time.
    pub per_node: Vec<(NodeId, SimDuration)>,
}

impl IngestReport {
    /// Ingestion throughput in records per simulated second.
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.records as f64 / secs
        }
    }

    /// Merges two sequential batches into one report.
    pub fn merge(&self, other: &IngestReport) -> IngestReport {
        let mut per_node = self.per_node.clone();
        for (n, d) in &other.per_node {
            if let Some(slot) = per_node.iter_mut().find(|(m, _)| m == n) {
                slot.1 += *d;
            } else {
                per_node.push((*n, *d));
            }
        }
        per_node.sort_by_key(|(n, _)| *n);
        IngestReport {
            records: self.records + other.records,
            elapsed: self.elapsed + other.elapsed,
            per_node,
        }
    }
}

/// A controlled-rate data feed: emits records at a fixed rate (in records per
/// simulated second), as used by the "Impact of Concurrent Writes"
/// experiment. The write rate in the paper's Figure 7c is expressed in
/// krecords/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlledRateFeed {
    /// Ingestion rate in records per simulated second.
    pub records_per_sec: f64,
}

impl ControlledRateFeed {
    /// A feed emitting `krecords_per_sec` thousand records per second.
    pub fn krecords_per_sec(k: f64) -> Self {
        ControlledRateFeed {
            records_per_sec: k * 1000.0,
        }
    }

    /// How many records arrive during `elapsed`.
    pub fn records_for(&self, elapsed: SimDuration) -> u64 {
        (self.records_per_sec * elapsed.as_secs_f64()) as u64
    }

    /// True if the feed produces no records.
    pub fn is_idle(&self) -> bool {
        self.records_per_sec <= 0.0
    }
}

/// Splits a batch of feed records into exactly `n` sub-batches of near-equal
/// size, preserving arrival order. The one-shot rebalance driver uses this to
/// spread a scenario's concurrent writes across the job's waves, so every
/// wave boundary sees fresh mid-flight ingestion. Some sub-batches may be
/// empty when there are fewer records than batches.
pub fn split_into_batches<T>(records: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let n = n.max(1);
    let total = records.len();
    let base = total / n;
    let extra = total % n;
    let mut out = Vec::with_capacity(n);
    let mut iter = records.into_iter();
    for i in 0..n {
        let take = base + usize::from(i < extra);
        out.push(iter.by_ref().take(take).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_records_over_elapsed() {
        let r = IngestReport {
            records: 10_000,
            elapsed: SimDuration::from_secs(10),
            per_node: vec![],
        };
        assert!((r.records_per_sec() - 1000.0).abs() < 1e-9);
        let zero = IngestReport {
            records: 5,
            elapsed: SimDuration::ZERO,
            per_node: vec![],
        };
        assert_eq!(zero.records_per_sec(), 0.0);
    }

    #[test]
    fn merge_adds_records_and_per_node_times() {
        let a = IngestReport {
            records: 10,
            elapsed: SimDuration::from_secs(1),
            per_node: vec![(NodeId(0), SimDuration::from_secs(1))],
        };
        let b = IngestReport {
            records: 20,
            elapsed: SimDuration::from_secs(2),
            per_node: vec![
                (NodeId(0), SimDuration::from_secs(1)),
                (NodeId(1), SimDuration::from_secs(2)),
            ],
        };
        let m = a.merge(&b);
        assert_eq!(m.records, 30);
        assert_eq!(m.elapsed, SimDuration::from_secs(3));
        assert_eq!(m.per_node[0], (NodeId(0), SimDuration::from_secs(2)));
        assert_eq!(m.per_node[1], (NodeId(1), SimDuration::from_secs(2)));
    }

    #[test]
    fn split_into_batches_preserves_order_and_count() {
        let batches = split_into_batches((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0], vec![0, 1, 2, 3]);
        assert_eq!(batches[1], vec![4, 5, 6]);
        assert_eq!(batches[2], vec![7, 8, 9]);
        // fewer records than batches: the tail batches are empty
        let sparse = split_into_batches(vec![1, 2], 5);
        assert_eq!(sparse.iter().map(Vec::len).sum::<usize>(), 2);
        assert_eq!(sparse.len(), 5);
        // zero batches is clamped to one
        assert_eq!(split_into_batches(vec![7], 0), vec![vec![7]]);
    }

    #[test]
    fn controlled_rate_feed_scales_with_time() {
        let feed = ControlledRateFeed::krecords_per_sec(10.0);
        assert_eq!(feed.records_for(SimDuration::from_secs(2)), 20_000);
        assert!(!feed.is_idle());
        assert!(ControlledRateFeed::krecords_per_sec(0.0).is_idle());
    }
}
