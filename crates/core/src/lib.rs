//! Core DynaHash algorithms.
//!
//! This crate contains the paper's primary contribution as reusable,
//! storage-agnostic components:
//!
//! * cluster topology identifiers ([`topology`]);
//! * the **global directory** kept at the Cluster Controller that maps the
//!   `D` low-order hash bits to buckets and partitions ([`directory`]);
//! * the greedy directory-balancing algorithm of Section V-A, Algorithm 2
//!   ([`balance`]);
//! * the three rebalancing **schemes** evaluated in the paper — global
//!   `Hashing`, `StaticHash`, and `DynaHash` ([`scheme`]);
//! * rebalance **planning** (which buckets move where, and what it costs)
//!   ([`plan`]);
//! * the online rebalance **protocol** state machine: three phases, the
//!   two-phase commit, and the six failure cases of Section V-D
//!   ([`protocol`]).
//!
//! The actual execution against storage partitions lives in
//! `dynahash-cluster`; everything here is deterministic, pure logic that can
//! be unit- and property-tested in isolation.

pub mod balance;
pub mod directory;
pub mod plan;
pub mod protocol;
pub mod scheme;
pub mod topology;

pub use balance::{balance_assignment, BalanceInput, BucketLoad};
pub use directory::{DirectoryDelta, GlobalDirectory};
pub use dynahash_lsm::{hash_key, BucketId};
pub use plan::{BucketMove, RebalancePlan};
pub use protocol::{
    max_deviation_imbalance, BucketHeat, FailurePoint, MigrationBudget, MovePolicy, NodeVote,
    RebalanceCoordinator, RebalanceOutcome, RebalancePhase, SecondaryRebuild, SpeculationPolicy,
};
pub use scheme::Scheme;
pub use topology::{ClusterTopology, NodeId, PartitionId};

/// Errors produced by the core algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The directory has no partition that owns the given bucket.
    UnassignedBucket(BucketId),
    /// The requested partition does not exist in the topology.
    UnknownPartition(PartitionId),
    /// The directory would become inconsistent (overlapping buckets).
    InconsistentDirectory(String),
    /// An invalid protocol transition was attempted.
    InvalidTransition {
        /// The phase the coordinator was in.
        from: RebalancePhase,
        /// A description of the attempted action.
        action: &'static str,
    },
    /// The target topology is empty.
    EmptyTopology,
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::UnassignedBucket(b) => write!(f, "bucket {b} is not assigned"),
            CoreError::UnknownPartition(p) => write!(f, "unknown partition {p:?}"),
            CoreError::InconsistentDirectory(msg) => write!(f, "inconsistent directory: {msg}"),
            CoreError::InvalidTransition { from, action } => {
                write!(
                    f,
                    "invalid protocol transition from {from:?} during {action}"
                )
            }
            CoreError::EmptyTopology => write!(f, "target topology has no partitions"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Result alias for core operations.
pub type Result<T> = std::result::Result<T, CoreError>;
