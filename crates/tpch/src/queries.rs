//! The 22 TPC-H queries expressed against the cluster query API.
//!
//! Each query preserves the access pattern that matters for the paper's
//! evaluation:
//!
//! * which tables are scanned in full versus reached through the two
//!   covering secondary indexes (LineItem on `l_shipdate`, Orders on
//!   `o_orderdate`);
//! * whether the query needs primary-key-ordered scans (q18 groups on a
//!   prefix of LineItem's primary key, which forces the bucketed LSM-tree to
//!   merge-sort its buckets);
//! * whether the query is scan-heavy (q1, q17, q18, q19, q21) or dominated by
//!   joins and aggregation, which the engine redistributes evenly across the
//!   cluster and therefore does not suffer from bucket-placement imbalance.
//!
//! Every query returns a deterministic `f64` aggregate computed from the
//! scanned data, so integration tests can assert that all rebalancing
//! schemes — before and after rebalancing — return identical answers.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use dynahash_cluster::{ClusterError, QueryExecutor};
use dynahash_core::PartitionId;
use dynahash_lsm::entry::Key;

use crate::loader::{TpchTables, LINEITEM_INDEX, ORDERS_INDEX};
use crate::schema::*;

/// Number of TPC-H queries.
pub const NUM_QUERIES: usize = 22;

/// Static characteristics of a query, used by the experiment harness to
/// explain the results (scan-heavy queries are the ones sensitive to load
/// imbalance; q18 is the one sensitive to bucketed primary-key order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTraits {
    /// Query number (1-22).
    pub number: usize,
    /// True if the query's cost is dominated by scanning LineItem.
    pub scan_heavy: bool,
    /// True if the query requires primary-key-ordered LineItem scans.
    pub needs_pk_order: bool,
    /// True if the query's main access path is a secondary index.
    pub uses_secondary_index: bool,
}

/// Returns the traits of query `n` (1-based).
pub fn query_traits(n: usize) -> QueryTraits {
    QueryTraits {
        number: n,
        scan_heavy: matches!(n, 1 | 9 | 17 | 18 | 19 | 21),
        needs_pk_order: n == 18,
        uses_secondary_index: matches!(n, 4 | 5 | 6 | 14 | 15),
    }
}

type QResult = Result<f64, ClusterError>;

fn money(cents: u64) -> f64 {
    cents as f64 / 100.0
}

/// Charges join/aggregation compute spread evenly across all partitions:
/// after the scan, the engine re-partitions the data for joins and group-bys,
/// so this work does not inherit the scan-side imbalance.
fn charge_balanced_compute(
    exec: &mut QueryExecutor<'_>,
    records: u64,
    weight: f64,
) -> Result<(), ClusterError> {
    let partitions = exec.cluster().topology().partitions();
    if partitions.is_empty() {
        return Ok(());
    }
    let per = records / partitions.len() as u64;
    for p in partitions {
        exec.charge_compute(p, per, weight)?;
    }
    Ok(())
}

fn scan_decoded<T>(
    exec: &mut QueryExecutor<'_>,
    dataset: dynahash_cluster::DatasetId,
    ordered: bool,
    decode: impl Fn(&[u8]) -> Option<T>,
) -> Result<Vec<(PartitionId, Vec<T>)>, ClusterError> {
    let scans = exec.scan_table(dataset, ordered)?;
    Ok(scans
        .into_iter()
        .map(|(p, entries)| {
            let decoded = entries
                .iter()
                .filter_map(|e| e.op.value().and_then(|v| decode(v)))
                .collect();
            (p, decoded)
        })
        .collect())
}

fn scan_lineitem(
    exec: &mut QueryExecutor<'_>,
    t: &TpchTables,
    ordered: bool,
) -> Result<Vec<(PartitionId, Vec<LineItem>)>, ClusterError> {
    scan_decoded(exec, t.lineitem, ordered, LineItem::decode)
}

fn scan_orders(
    exec: &mut QueryExecutor<'_>,
    t: &TpchTables,
) -> Result<Vec<(PartitionId, Vec<Orders>)>, ClusterError> {
    scan_decoded(exec, t.orders, false, Orders::decode)
}

fn all<T>(scans: Vec<(PartitionId, Vec<T>)>) -> Vec<T> {
    scans.into_iter().flat_map(|(_, v)| v).collect()
}

/// Index-scan LineItem by shipdate range, then fetch the matching records
/// from the bucketed primary index (the index-then-fetch plan).
fn lineitems_by_shipdate(
    exec: &mut QueryExecutor<'_>,
    t: &TpchTables,
    lo: u64,
    hi: u64,
) -> Result<Vec<LineItem>, ClusterError> {
    let lo_k = Key::from_u64(lo);
    let hi_k = Key::from_u64(hi);
    let hits = exec.index_scan(t.lineitem, LINEITEM_INDEX, Some(&lo_k), Some(&hi_k))?;
    let mut out = Vec::new();
    for (p, entries) in hits {
        let keys: Vec<Key> = entries.into_iter().map(|se| se.primary).collect();
        let fetched = exec.fetch(t.lineitem, p, &keys)?;
        out.extend(
            fetched
                .iter()
                .filter_map(|e| e.op.value().and_then(|v| LineItem::decode(v))),
        );
    }
    Ok(out)
}

/// Index-scan Orders by orderdate range, then fetch the matching records.
fn orders_by_orderdate(
    exec: &mut QueryExecutor<'_>,
    t: &TpchTables,
    lo: u64,
    hi: u64,
) -> Result<Vec<Orders>, ClusterError> {
    let lo_k = Key::from_u64(lo);
    let hi_k = Key::from_u64(hi);
    let hits = exec.index_scan(t.orders, ORDERS_INDEX, Some(&lo_k), Some(&hi_k))?;
    let mut out = Vec::new();
    for (p, entries) in hits {
        let keys: Vec<Key> = entries.into_iter().map(|se| se.primary).collect();
        let fetched = exec.fetch(t.orders, p, &keys)?;
        out.extend(
            fetched
                .iter()
                .filter_map(|e| e.op.value().and_then(|v| Orders::decode(v))),
        );
    }
    Ok(out)
}

fn customers_by_key(
    exec: &mut QueryExecutor<'_>,
    t: &TpchTables,
) -> Result<HashMap<u64, Customer>, ClusterError> {
    let customers = all(scan_decoded(exec, t.customer, false, |v| {
        Customer::decode(v)
    })?);
    Ok(customers.into_iter().map(|c| (c.c_custkey, c)).collect())
}

// --------------------------------------------------------------------- q1-q22

/// q1: pricing summary report — full LineItem scan, 8-way group-by.
fn q1(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let cutoff = DATE_RANGE_DAYS - 90;
    let scans = scan_lineitem(exec, t, false)?;
    let total: u64 = scans.iter().map(|(_, v)| v.len() as u64).sum();
    charge_balanced_compute(exec, total, 1.5)?;
    let mut groups: BTreeMap<(u64, u64), (u64, u64, f64)> = BTreeMap::new();
    for l in all(scans) {
        if l.l_shipdate <= cutoff {
            let g = groups.entry((l.l_returnflag, l.l_linestatus)).or_default();
            g.0 += l.l_quantity;
            g.1 += 1;
            g.2 += money(l.l_extendedprice) * (1.0 - l.l_discount as f64 / 100.0);
        }
    }
    exec.charge_coordinator(groups.len() as u64, 1.0);
    Ok(groups.values().map(|g| g.2 + g.0 as f64).sum())
}

/// q2: minimum-cost supplier — small-table joins over part/partsupp/supplier.
fn q2(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let parts = all(scan_decoded(exec, t.part, false, Part::decode)?);
    let partsupp = all(scan_decoded(exec, t.partsupp, false, |v| {
        PartSupp::decode(v)
    })?);
    let suppliers = all(scan_decoded(exec, t.supplier, false, |v| {
        Supplier::decode(v)
    })?);
    let nations = all(scan_decoded(exec, t.nation, false, Nation::decode)?);
    charge_balanced_compute(exec, (parts.len() + partsupp.len()) as u64, 1.0)?;

    let europe: BTreeSet<u64> = nations
        .iter()
        .filter(|n| n.n_regionkey == 3)
        .map(|n| n.n_nationkey)
        .collect();
    let supp_by_key: HashMap<u64, &Supplier> = suppliers.iter().map(|s| (s.s_suppkey, s)).collect();
    let wanted: BTreeSet<u64> = parts
        .iter()
        .filter(|p| p.p_size == 15 && p.p_type % 5 == 0)
        .map(|p| p.p_partkey)
        .collect();
    let mut min_cost: BTreeMap<u64, u64> = BTreeMap::new();
    for ps in &partsupp {
        if !wanted.contains(&ps.ps_partkey) {
            continue;
        }
        let Some(s) = supp_by_key.get(&ps.ps_suppkey) else {
            continue;
        };
        if !europe.contains(&s.s_nationkey) {
            continue;
        }
        let e = min_cost.entry(ps.ps_partkey).or_insert(u64::MAX);
        *e = (*e).min(ps.ps_supplycost);
    }
    exec.charge_coordinator(min_cost.len() as u64, 0.5);
    Ok(min_cost
        .values()
        .filter(|&&c| c != u64::MAX)
        .map(|&c| money(c))
        .sum())
}

/// q3: shipping priority — customer ⋈ orders ⋈ lineitem with date filters.
fn q3(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let cutoff = date(1995, 74);
    let customers = customers_by_key(exec, t)?;
    let orders = all(scan_orders(exec, t)?);
    let scans = scan_lineitem(exec, t, false)?;
    let total: u64 = scans.iter().map(|(_, v)| v.len() as u64).sum();
    charge_balanced_compute(exec, total + orders.len() as u64, 2.0)?;

    let building_orders: HashMap<u64, &Orders> = orders
        .iter()
        .filter(|o| o.o_orderdate < cutoff)
        .filter(|o| {
            customers
                .get(&o.o_custkey)
                .map(|c| c.c_mktsegment == 1)
                .unwrap_or(false)
        })
        .map(|o| (o.o_orderkey, o))
        .collect();
    let mut revenue: BTreeMap<u64, f64> = BTreeMap::new();
    for l in all(scans) {
        if l.l_shipdate > cutoff && building_orders.contains_key(&l.l_orderkey) {
            *revenue.entry(l.l_orderkey).or_default() +=
                money(l.l_extendedprice) * (1.0 - l.l_discount as f64 / 100.0);
        }
    }
    let mut top: Vec<f64> = revenue.values().copied().collect();
    top.sort_by(|a, b| b.partial_cmp(a).unwrap());
    exec.charge_coordinator(revenue.len() as u64, 0.5);
    Ok(top.iter().take(10).sum())
}

/// q4: order priority checking — Orders index on orderdate, semi-join LineItem.
fn q4(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let lo = date(1993, 180);
    let hi = lo + 92;
    let orders = orders_by_orderdate(exec, t, lo, hi)?;
    let scans = scan_lineitem(exec, t, false)?;
    let total: u64 = scans.iter().map(|(_, v)| v.len() as u64).sum();
    charge_balanced_compute(exec, total, 0.8)?;
    let late: BTreeSet<u64> = all(scans)
        .iter()
        .filter(|l| l.l_commitdate < l.l_receiptdate)
        .map(|l| l.l_orderkey)
        .collect();
    let mut counts = [0u64; 5];
    for o in &orders {
        if late.contains(&o.o_orderkey) {
            counts[(o.o_orderpriority % 5) as usize] += 1;
        }
    }
    exec.charge_coordinator(5, 0.1);
    Ok(counts.iter().map(|&c| c as f64).sum())
}

/// q5: local supplier volume — 6-way join restricted to one region and year.
fn q5(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let lo = date(1994, 0);
    let hi = date(1995, 0);
    let customers = customers_by_key(exec, t)?;
    let suppliers = all(scan_decoded(exec, t.supplier, false, |v| {
        Supplier::decode(v)
    })?);
    let nations = all(scan_decoded(exec, t.nation, false, Nation::decode)?);
    let orders = orders_by_orderdate(exec, t, lo, hi)?;
    let scans = scan_lineitem(exec, t, false)?;
    let total: u64 = scans.iter().map(|(_, v)| v.len() as u64).sum();
    charge_balanced_compute(exec, total + orders.len() as u64, 2.5)?;

    let asia: BTreeSet<u64> = nations
        .iter()
        .filter(|n| n.n_regionkey == 2)
        .map(|n| n.n_nationkey)
        .collect();
    let supp_nation: HashMap<u64, u64> = suppliers
        .iter()
        .map(|s| (s.s_suppkey, s.s_nationkey))
        .collect();
    let order_cust_nation: HashMap<u64, u64> = orders
        .iter()
        .filter_map(|o| {
            customers
                .get(&o.o_custkey)
                .map(|c| (o.o_orderkey, c.c_nationkey))
        })
        .collect();
    let mut per_nation: BTreeMap<u64, f64> = BTreeMap::new();
    for l in all(scans) {
        let Some(&cust_nation) = order_cust_nation.get(&l.l_orderkey) else {
            continue;
        };
        let Some(&supp_nation_key) = supp_nation.get(&l.l_suppkey) else {
            continue;
        };
        if cust_nation == supp_nation_key && asia.contains(&cust_nation) {
            *per_nation.entry(cust_nation).or_default() +=
                money(l.l_extendedprice) * (1.0 - l.l_discount as f64 / 100.0);
        }
    }
    exec.charge_coordinator(per_nation.len() as u64, 0.3);
    Ok(per_nation.values().sum())
}

/// q6: revenue forecast — LineItem index range on shipdate (index-only style).
fn q6(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let lo = date(1994, 0);
    let hi = date(1995, 0);
    let lines = lineitems_by_shipdate(exec, t, lo, hi)?;
    charge_balanced_compute(exec, lines.len() as u64, 0.3)?;
    let revenue: f64 = lines
        .iter()
        .filter(|l| (5..=7).contains(&l.l_discount) && l.l_quantity < 24)
        .map(|l| money(l.l_extendedprice) * l.l_discount as f64 / 100.0)
        .sum();
    exec.charge_coordinator(1, 0.1);
    Ok(revenue)
}

/// q7: volume shipping between two nations over two years.
fn q7(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let customers = customers_by_key(exec, t)?;
    let suppliers = all(scan_decoded(exec, t.supplier, false, |v| {
        Supplier::decode(v)
    })?);
    let orders = all(scan_orders(exec, t)?);
    let scans = scan_lineitem(exec, t, false)?;
    let total: u64 = scans.iter().map(|(_, v)| v.len() as u64).sum();
    charge_balanced_compute(exec, total + orders.len() as u64, 2.0)?;

    let supp_nation: HashMap<u64, u64> = suppliers
        .iter()
        .map(|s| (s.s_suppkey, s.s_nationkey))
        .collect();
    let order_cust: HashMap<u64, u64> =
        orders.iter().map(|o| (o.o_orderkey, o.o_custkey)).collect();
    let lo = date(1995, 0);
    let mut volume = 0.0;
    for l in all(scans) {
        if l.l_shipdate < lo {
            continue;
        }
        let Some(&sn) = supp_nation.get(&l.l_suppkey) else {
            continue;
        };
        let Some(custkey) = order_cust.get(&l.l_orderkey) else {
            continue;
        };
        let Some(c) = customers.get(custkey) else {
            continue;
        };
        if (sn == 6 && c.c_nationkey == 7) || (sn == 7 && c.c_nationkey == 6) {
            volume += money(l.l_extendedprice) * (1.0 - l.l_discount as f64 / 100.0);
        }
    }
    exec.charge_coordinator(4, 0.1);
    Ok(volume)
}

/// q8: national market share within a region for a part type.
fn q8(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let customers = customers_by_key(exec, t)?;
    let suppliers = all(scan_decoded(exec, t.supplier, false, |v| {
        Supplier::decode(v)
    })?);
    let nations = all(scan_decoded(exec, t.nation, false, Nation::decode)?);
    let parts = all(scan_decoded(exec, t.part, false, Part::decode)?);
    let orders = orders_by_orderdate(exec, t, date(1995, 0), date(1997, 0))?;
    let scans = scan_lineitem(exec, t, false)?;
    let total: u64 = scans.iter().map(|(_, v)| v.len() as u64).sum();
    charge_balanced_compute(exec, total + orders.len() as u64, 2.5)?;

    let america: BTreeSet<u64> = nations
        .iter()
        .filter(|n| n.n_regionkey == 1)
        .map(|n| n.n_nationkey)
        .collect();
    let wanted_parts: BTreeSet<u64> = parts
        .iter()
        .filter(|p| p.p_type % 10 == 3)
        .map(|p| p.p_partkey)
        .collect();
    let supp_nation: HashMap<u64, u64> = suppliers
        .iter()
        .map(|s| (s.s_suppkey, s.s_nationkey))
        .collect();
    let order_in_scope: HashMap<u64, bool> = orders
        .iter()
        .map(|o| {
            let in_region = customers
                .get(&o.o_custkey)
                .map(|c| america.contains(&c.c_nationkey))
                .unwrap_or(false);
            (o.o_orderkey, in_region)
        })
        .collect();
    let mut national = 0.0;
    let mut total_volume = 0.0;
    for l in all(scans) {
        if !wanted_parts.contains(&l.l_partkey) {
            continue;
        }
        if order_in_scope.get(&l.l_orderkey).copied() != Some(true) {
            continue;
        }
        let v = money(l.l_extendedprice) * (1.0 - l.l_discount as f64 / 100.0);
        total_volume += v;
        if supp_nation.get(&l.l_suppkey) == Some(&5) {
            national += v;
        }
    }
    exec.charge_coordinator(2, 0.1);
    Ok(if total_volume == 0.0 {
        0.0
    } else {
        national / total_volume
    })
}

/// q9: product type profit measure — scans LineItem and joins part/partsupp.
fn q9(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let parts = all(scan_decoded(exec, t.part, false, Part::decode)?);
    let partsupp = all(scan_decoded(exec, t.partsupp, false, |v| {
        PartSupp::decode(v)
    })?);
    let suppliers = all(scan_decoded(exec, t.supplier, false, |v| {
        Supplier::decode(v)
    })?);
    let orders = all(scan_orders(exec, t)?);
    let scans = scan_lineitem(exec, t, false)?;
    let total: u64 = scans.iter().map(|(_, v)| v.len() as u64).sum();
    charge_balanced_compute(exec, total + partsupp.len() as u64, 3.0)?;

    let green_parts: BTreeSet<u64> = parts
        .iter()
        .filter(|p| p.p_type % 7 == 0)
        .map(|p| p.p_partkey)
        .collect();
    let supply_cost: HashMap<(u64, u64), u64> = partsupp
        .iter()
        .map(|ps| ((ps.ps_partkey, ps.ps_suppkey), ps.ps_supplycost))
        .collect();
    let supp_nation: HashMap<u64, u64> = suppliers
        .iter()
        .map(|s| (s.s_suppkey, s.s_nationkey))
        .collect();
    let order_year: HashMap<u64, u64> = orders
        .iter()
        .map(|o| (o.o_orderkey, o.o_orderdate / 365))
        .collect();
    let mut profit: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    for l in all(scans) {
        if !green_parts.contains(&l.l_partkey) {
            continue;
        }
        let nation = supp_nation.get(&l.l_suppkey).copied().unwrap_or(0);
        let year = order_year.get(&l.l_orderkey).copied().unwrap_or(0);
        let cost = supply_cost
            .get(&(l.l_partkey, l.l_suppkey))
            .copied()
            .unwrap_or(0);
        let amount = money(l.l_extendedprice) * (1.0 - l.l_discount as f64 / 100.0)
            - money(cost) * l.l_quantity as f64;
        *profit.entry((nation, year)).or_default() += amount;
    }
    exec.charge_coordinator(profit.len() as u64, 0.3);
    Ok(profit.values().sum())
}

/// q10: returned item reporting — customers who returned items in a quarter.
fn q10(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let customers = customers_by_key(exec, t)?;
    let orders = orders_by_orderdate(exec, t, date(1993, 270), date(1994, 0))?;
    let scans = scan_lineitem(exec, t, false)?;
    let total: u64 = scans.iter().map(|(_, v)| v.len() as u64).sum();
    charge_balanced_compute(exec, total + orders.len() as u64, 1.5)?;

    let order_cust: HashMap<u64, u64> =
        orders.iter().map(|o| (o.o_orderkey, o.o_custkey)).collect();
    let mut revenue: BTreeMap<u64, f64> = BTreeMap::new();
    for l in all(scans) {
        if l.l_returnflag != 1 {
            continue;
        }
        if let Some(&cust) = order_cust.get(&l.l_orderkey) {
            if customers.contains_key(&cust) {
                *revenue.entry(cust).or_default() +=
                    money(l.l_extendedprice) * (1.0 - l.l_discount as f64 / 100.0);
            }
        }
    }
    let mut top: Vec<f64> = revenue.values().copied().collect();
    top.sort_by(|a, b| b.partial_cmp(a).unwrap());
    exec.charge_coordinator(revenue.len() as u64, 0.3);
    Ok(top.iter().take(20).sum())
}

/// q11: important stock identification — partsupp value grouped by part.
fn q11(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let partsupp = all(scan_decoded(exec, t.partsupp, false, |v| {
        PartSupp::decode(v)
    })?);
    let suppliers = all(scan_decoded(exec, t.supplier, false, |v| {
        Supplier::decode(v)
    })?);
    charge_balanced_compute(exec, partsupp.len() as u64, 1.0)?;
    let german: BTreeSet<u64> = suppliers
        .iter()
        .filter(|s| s.s_nationkey == 7)
        .map(|s| s.s_suppkey)
        .collect();
    let mut value: BTreeMap<u64, f64> = BTreeMap::new();
    let mut total_value = 0.0;
    for ps in &partsupp {
        if german.contains(&ps.ps_suppkey) {
            let v = money(ps.ps_supplycost) * ps.ps_availqty as f64;
            *value.entry(ps.ps_partkey).or_default() += v;
            total_value += v;
        }
    }
    let threshold = total_value * 0.001;
    exec.charge_coordinator(value.len() as u64, 0.3);
    Ok(value.values().filter(|&&v| v > threshold).sum())
}

/// q12: shipping modes and order priority — LineItem scan joined to Orders.
fn q12(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let orders = all(scan_orders(exec, t)?);
    let scans = scan_lineitem(exec, t, false)?;
    let total: u64 = scans.iter().map(|(_, v)| v.len() as u64).sum();
    charge_balanced_compute(exec, total + orders.len() as u64, 1.0)?;
    let order_priority: HashMap<u64, u64> = orders
        .iter()
        .map(|o| (o.o_orderkey, o.o_orderpriority))
        .collect();
    let lo = date(1994, 0);
    let hi = date(1995, 0);
    let mut high = 0u64;
    let mut low = 0u64;
    for l in all(scans) {
        if (l.l_shipmode == 3 || l.l_shipmode == 5)
            && l.l_commitdate < l.l_receiptdate
            && l.l_shipdate < l.l_commitdate
            && (lo..hi).contains(&l.l_receiptdate)
        {
            match order_priority.get(&l.l_orderkey) {
                Some(0) | Some(1) => high += 1,
                Some(_) => low += 1,
                None => {}
            }
        }
    }
    exec.charge_coordinator(2, 0.1);
    Ok((high + low) as f64)
}

/// q13: customer distribution — orders per customer histogram.
fn q13(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let customers = customers_by_key(exec, t)?;
    let orders = all(scan_orders(exec, t)?);
    charge_balanced_compute(exec, (orders.len() + customers.len()) as u64, 1.5)?;
    let mut per_customer: BTreeMap<u64, u64> = customers.keys().map(|k| (*k, 0)).collect();
    for o in &orders {
        if o.o_clerk % 100 != 13 {
            if let Some(c) = per_customer.get_mut(&o.o_custkey) {
                *c += 1;
            }
        }
    }
    let mut histogram: BTreeMap<u64, u64> = BTreeMap::new();
    for count in per_customer.values() {
        *histogram.entry(*count).or_default() += 1;
    }
    exec.charge_coordinator(histogram.len() as u64, 0.2);
    Ok(histogram.iter().map(|(k, v)| (k * v) as f64).sum())
}

/// q14: promotion effect — LineItem shipdate month via the index, join Part.
fn q14(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let parts = all(scan_decoded(exec, t.part, false, Part::decode)?);
    let lines = lineitems_by_shipdate(exec, t, date(1995, 240), date(1995, 270))?;
    charge_balanced_compute(exec, (lines.len() + parts.len()) as u64, 0.8)?;
    let promo_parts: BTreeSet<u64> = parts
        .iter()
        .filter(|p| p.p_type / 30 == 4)
        .map(|p| p.p_partkey)
        .collect();
    let mut promo = 0.0;
    let mut total = 0.0;
    for l in &lines {
        let v = money(l.l_extendedprice) * (1.0 - l.l_discount as f64 / 100.0);
        total += v;
        if promo_parts.contains(&l.l_partkey) {
            promo += v;
        }
    }
    exec.charge_coordinator(1, 0.1);
    Ok(if total == 0.0 {
        0.0
    } else {
        100.0 * promo / total
    })
}

/// q15: top supplier — revenue per supplier over one quarter (index range).
fn q15(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let lines = lineitems_by_shipdate(exec, t, date(1996, 0), date(1996, 90))?;
    charge_balanced_compute(exec, lines.len() as u64, 0.5)?;
    let mut revenue: BTreeMap<u64, f64> = BTreeMap::new();
    for l in &lines {
        *revenue.entry(l.l_suppkey).or_default() +=
            money(l.l_extendedprice) * (1.0 - l.l_discount as f64 / 100.0);
    }
    exec.charge_coordinator(revenue.len() as u64, 0.2);
    Ok(revenue.values().fold(0.0_f64, |a, &b| a.max(b)))
}

/// q16: parts/supplier relationship — partsupp ⋈ part with exclusions.
fn q16(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let parts = all(scan_decoded(exec, t.part, false, Part::decode)?);
    let partsupp = all(scan_decoded(exec, t.partsupp, false, |v| {
        PartSupp::decode(v)
    })?);
    let suppliers = all(scan_decoded(exec, t.supplier, false, |v| {
        Supplier::decode(v)
    })?);
    charge_balanced_compute(exec, partsupp.len() as u64, 1.0)?;
    let complaints: BTreeSet<u64> = suppliers
        .iter()
        .filter(|s| s.s_complaint == 1)
        .map(|s| s.s_suppkey)
        .collect();
    let wanted: HashMap<u64, (u64, u64, u64)> = parts
        .iter()
        .filter(|p| {
            p.p_brand != 12
                && p.p_type % 15 != 0
                && [1, 9, 14, 19, 23, 36, 45, 49].contains(&p.p_size)
        })
        .map(|p| (p.p_partkey, (p.p_brand, p.p_type, p.p_size)))
        .collect();
    let mut supplier_cnt: BTreeMap<(u64, u64, u64), BTreeSet<u64>> = BTreeMap::new();
    for ps in &partsupp {
        if complaints.contains(&ps.ps_suppkey) {
            continue;
        }
        if let Some(&group) = wanted.get(&ps.ps_partkey) {
            supplier_cnt.entry(group).or_default().insert(ps.ps_suppkey);
        }
    }
    exec.charge_coordinator(supplier_cnt.len() as u64, 0.3);
    Ok(supplier_cnt.values().map(|s| s.len() as f64).sum())
}

/// q17: small-quantity-order revenue — full LineItem scan, per-part averages.
fn q17(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let parts = all(scan_decoded(exec, t.part, false, Part::decode)?);
    let scans = scan_lineitem(exec, t, false)?;
    let total: u64 = scans.iter().map(|(_, v)| v.len() as u64).sum();
    // q17 re-aggregates LineItem per part: relatively light compute compared
    // to its scan, which is why it is sensitive to scan imbalance.
    charge_balanced_compute(exec, total, 0.5)?;
    let wanted: BTreeSet<u64> = parts
        .iter()
        .filter(|p| p.p_brand == 23 && p.p_container == 17)
        .map(|p| p.p_partkey)
        .collect();
    let lines = all(scans);
    let mut per_part: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for l in &lines {
        let e = per_part.entry(l.l_partkey).or_default();
        e.0 += l.l_quantity;
        e.1 += 1;
    }
    let mut revenue = 0.0;
    for l in &lines {
        if !wanted.contains(&l.l_partkey) {
            continue;
        }
        let (sum, cnt) = per_part[&l.l_partkey];
        let avg = sum as f64 / cnt as f64;
        if (l.l_quantity as f64) < 0.2 * avg {
            revenue += money(l.l_extendedprice);
        }
    }
    exec.charge_coordinator(1, 0.1);
    Ok(revenue / 7.0)
}

/// q18: large-volume customers — group LineItem by the primary-key prefix
/// (`l_orderkey`), which requires primary-key-ordered scans.
fn q18(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let customers = customers_by_key(exec, t)?;
    let orders = all(scan_orders(exec, t)?);
    // The group-by on the primary-key prefix requires ordered scans: the
    // bucketed LSM-tree must merge-sort its buckets here (Section IV).
    let scans = scan_lineitem(exec, t, true)?;
    let total: u64 = scans.iter().map(|(_, v)| v.len() as u64).sum();
    charge_balanced_compute(exec, total, 0.6)?;
    let mut qty_per_order: BTreeMap<u64, u64> = BTreeMap::new();
    for l in all(scans) {
        *qty_per_order.entry(l.l_orderkey).or_default() += l.l_quantity;
    }
    let threshold = 150;
    let order_by_key: HashMap<u64, &Orders> = orders.iter().map(|o| (o.o_orderkey, o)).collect();
    let mut result = 0.0;
    for (orderkey, qty) in &qty_per_order {
        if *qty > threshold {
            if let Some(o) = order_by_key.get(orderkey) {
                if customers.contains_key(&o.o_custkey) {
                    result += money(o.o_totalprice);
                }
            }
        }
    }
    exec.charge_coordinator(qty_per_order.len() as u64, 0.2);
    Ok(result)
}

/// q19: discounted revenue — LineItem ⋈ Part with OR-ed predicates.
fn q19(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let parts = all(scan_decoded(exec, t.part, false, Part::decode)?);
    let scans = scan_lineitem(exec, t, false)?;
    let total: u64 = scans.iter().map(|(_, v)| v.len() as u64).sum();
    charge_balanced_compute(exec, total, 0.7)?;
    let part_by_key: HashMap<u64, &Part> = parts.iter().map(|p| (p.p_partkey, p)).collect();
    let mut revenue = 0.0;
    for l in all(scans) {
        let Some(p) = part_by_key.get(&l.l_partkey) else {
            continue;
        };
        let matched = (p.p_brand == 12 && l.l_quantity <= 11 && p.p_container < 10)
            || (p.p_brand == 23 && (10..=20).contains(&l.l_quantity) && p.p_container < 20)
            || (p.p_brand == 34 % 25 && (20..=30).contains(&l.l_quantity));
        if matched && l.l_shipinstruct == 0 && l.l_shipmode <= 1 {
            revenue += money(l.l_extendedprice) * (1.0 - l.l_discount as f64 / 100.0);
        }
    }
    exec.charge_coordinator(1, 0.1);
    Ok(revenue)
}

/// q20: potential part promotion — suppliers with excess stock of a part.
fn q20(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let parts = all(scan_decoded(exec, t.part, false, Part::decode)?);
    let partsupp = all(scan_decoded(exec, t.partsupp, false, |v| {
        PartSupp::decode(v)
    })?);
    let suppliers = all(scan_decoded(exec, t.supplier, false, |v| {
        Supplier::decode(v)
    })?);
    let lines = lineitems_by_shipdate(exec, t, date(1994, 0), date(1995, 0))?;
    charge_balanced_compute(exec, (lines.len() + partsupp.len()) as u64, 1.2)?;
    let forest_parts: BTreeSet<u64> = parts
        .iter()
        .filter(|p| p.p_type % 11 == 2)
        .map(|p| p.p_partkey)
        .collect();
    let mut shipped: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for l in &lines {
        *shipped.entry((l.l_partkey, l.l_suppkey)).or_default() += l.l_quantity;
    }
    let mut qualified: BTreeSet<u64> = BTreeSet::new();
    for ps in &partsupp {
        if !forest_parts.contains(&ps.ps_partkey) {
            continue;
        }
        let half_shipped = shipped
            .get(&(ps.ps_partkey, ps.ps_suppkey))
            .copied()
            .unwrap_or(0) as f64
            * 0.5;
        if ps.ps_availqty as f64 > half_shipped && half_shipped > 0.0 {
            qualified.insert(ps.ps_suppkey);
        }
    }
    let canada: usize = suppliers
        .iter()
        .filter(|s| s.s_nationkey == 3 && qualified.contains(&s.s_suppkey))
        .count();
    exec.charge_coordinator(qualified.len() as u64, 0.2);
    Ok(canada as f64)
}

/// q21: suppliers who kept orders waiting — LineItem is effectively scanned
/// multiple times (self-joins per order), making it the most scan-heavy query.
fn q21(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let suppliers = all(scan_decoded(exec, t.supplier, false, |v| {
        Supplier::decode(v)
    })?);
    let orders = all(scan_orders(exec, t)?);
    // First pass over LineItem.
    let first = scan_lineitem(exec, t, false)?;
    // Second pass (the self-join side), scanned again as the paper notes.
    let second = scan_lineitem(exec, t, false)?;
    let total: u64 = first.iter().map(|(_, v)| v.len() as u64).sum();
    charge_balanced_compute(exec, total, 1.0)?;

    let f_orders: BTreeSet<u64> = orders
        .iter()
        .filter(|o| o.o_orderstatus == 1)
        .map(|o| o.o_orderkey)
        .collect();
    let saudi: BTreeSet<u64> = suppliers
        .iter()
        .filter(|s| s.s_nationkey == 20)
        .map(|s| s.s_suppkey)
        .collect();
    // suppliers per order, and late suppliers per order
    let mut suppliers_per_order: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for l in all(second) {
        suppliers_per_order
            .entry(l.l_orderkey)
            .or_default()
            .insert(l.l_suppkey);
    }
    let mut waiting: BTreeMap<u64, u64> = BTreeMap::new();
    for l in all(first) {
        if !f_orders.contains(&l.l_orderkey) || l.l_receiptdate <= l.l_commitdate {
            continue;
        }
        let multi = suppliers_per_order
            .get(&l.l_orderkey)
            .map(|s| s.len() > 1)
            .unwrap_or(false);
        if multi && saudi.contains(&l.l_suppkey) {
            *waiting.entry(l.l_suppkey).or_default() += 1;
        }
    }
    exec.charge_coordinator(waiting.len() as u64, 0.2);
    Ok(waiting.values().map(|&c| c as f64).sum())
}

/// q22: global sales opportunity — customers with no orders and good balance.
fn q22(exec: &mut QueryExecutor<'_>, t: &TpchTables) -> QResult {
    let customers = all(scan_decoded(exec, t.customer, false, |v| {
        Customer::decode(v)
    })?);
    let orders = all(scan_orders(exec, t)?);
    charge_balanced_compute(exec, (customers.len() + orders.len()) as u64, 1.0)?;
    let with_orders: BTreeSet<u64> = orders.iter().map(|o| o.o_custkey).collect();
    let wanted_cc: BTreeSet<u64> = [13, 31, 23, 29, 30, 18, 17].into_iter().collect();
    let in_scope: Vec<&Customer> = customers
        .iter()
        .filter(|c| wanted_cc.contains(&c.c_phone_cc))
        .collect();
    let positive: Vec<&&Customer> = in_scope.iter().filter(|c| c.c_acctbal > 0).collect();
    let avg = if positive.is_empty() {
        0.0
    } else {
        positive.iter().map(|c| c.c_acctbal as f64).sum::<f64>() / positive.len() as f64
    };
    let result: f64 = in_scope
        .iter()
        .filter(|c| c.c_acctbal as f64 > avg && !with_orders.contains(&c.c_custkey))
        .map(|c| money(c.c_acctbal))
        .sum();
    exec.charge_coordinator(in_scope.len() as u64, 0.2);
    Ok(result)
}

/// Runs TPC-H query `n` (1-based) and returns its scalar result.
pub fn run_query(n: usize, exec: &mut QueryExecutor<'_>, tables: &TpchTables) -> QResult {
    match n {
        1 => q1(exec, tables),
        2 => q2(exec, tables),
        3 => q3(exec, tables),
        4 => q4(exec, tables),
        5 => q5(exec, tables),
        6 => q6(exec, tables),
        7 => q7(exec, tables),
        8 => q8(exec, tables),
        9 => q9(exec, tables),
        10 => q10(exec, tables),
        11 => q11(exec, tables),
        12 => q12(exec, tables),
        13 => q13(exec, tables),
        14 => q14(exec, tables),
        15 => q15(exec, tables),
        16 => q16(exec, tables),
        17 => q17(exec, tables),
        18 => q18(exec, tables),
        19 => q19(exec, tables),
        20 => q20(exec, tables),
        21 => q21(exec, tables),
        22 => q22(exec, tables),
        _ => Err(ClusterError::Inconsistent(format!(
            "no such TPC-H query: q{n}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TpchScale;
    use crate::loader::load_tpch;
    use dynahash_cluster::Cluster;
    use dynahash_core::Scheme;

    fn run_all(scheme: Scheme) -> Vec<f64> {
        let mut cluster = Cluster::new(2);
        let (tables, _, _) = load_tpch(&mut cluster, scheme, TpchScale::tiny()).unwrap();
        (1..=NUM_QUERIES)
            .map(|n| {
                let mut exec = QueryExecutor::new(&mut cluster);
                let v = run_query(n, &mut exec, &tables).unwrap();
                let report = exec.finish();
                assert!(
                    report.elapsed.as_secs_f64() > 0.0,
                    "q{n} must cost something"
                );
                v
            })
            .collect()
    }

    #[test]
    fn all_queries_run_and_are_deterministic() {
        let a = run_all(Scheme::static_hash_256());
        let b = run_all(Scheme::static_hash_256());
        assert_eq!(a.len(), 22);
        assert_eq!(a, b);
        // at least the broad aggregates must be non-trivial
        assert!(a[0] > 0.0, "q1 revenue must be positive");
        assert!(a[17] >= 0.0);
    }

    #[test]
    fn query_answers_are_scheme_independent() {
        let bucketed = run_all(Scheme::StaticHash { num_buckets: 16 });
        let hashing = run_all(Scheme::Hashing);
        let dyna = run_all(Scheme::dynahash(32 * 1024, 8));
        for n in 0..NUM_QUERIES {
            assert!(
                (bucketed[n] - hashing[n]).abs() < 1e-6,
                "q{} differs between StaticHash and Hashing: {} vs {}",
                n + 1,
                bucketed[n],
                hashing[n]
            );
            assert!(
                (bucketed[n] - dyna[n]).abs() < 1e-6,
                "q{} differs between StaticHash and DynaHash",
                n + 1
            );
        }
    }

    #[test]
    fn traits_cover_all_queries() {
        for n in 1..=NUM_QUERIES {
            let t = query_traits(n);
            assert_eq!(t.number, n);
        }
        assert!(query_traits(18).needs_pk_order);
        assert!(query_traits(18).scan_heavy);
        assert!(query_traits(6).uses_secondary_index);
        assert!(!query_traits(2).scan_heavy);
    }

    #[test]
    fn unknown_query_number_errors() {
        let mut cluster = Cluster::new(1);
        let (tables, _, _) = load_tpch(
            &mut cluster,
            Scheme::Hashing,
            TpchScale {
                orders: 20,
                seed: 1,
            },
        )
        .unwrap();
        let mut exec = QueryExecutor::new(&mut cluster);
        assert!(run_query(23, &mut exec, &tables).is_err());
        assert!(run_query(0, &mut exec, &tables).is_err());
    }
}
