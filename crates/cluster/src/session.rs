//! The client-facing session layer: versioned-directory routing with a
//! stale-directory redirect protocol.
//!
//! Clients and query coordinators never talk to partitions through live CC
//! state. Instead they open a [`Session`] ([`Cluster::session`]), which
//! caches an immutable snapshot of the dataset's routing state — the
//! versioned global directory plus the partition list — and routes every
//! `put` / `delete` / `get` / `scan` / `index_scan` from that cache
//! (Section III: queries and feeds take an immutable copy of the directory
//! when they start).
//!
//! Rebalancing stays transparent because stale routes are *detected and
//! redirected*, never blocked:
//!
//! ```text
//! client ──route from cached directory──▶ partition
//!                                          │ owns the bucket?  ──yes──▶ serve
//!                                          └──no──▶ reject
//!                                                   RouteError::StaleDirectory
//!                                                   { server_version }
//! client ◀──refresh (DirectoryDelta if the change log reaches back far
//!           enough, full snapshot otherwise)── CC
//! client ──retry with the fresh route──▶ new owner ──▶ serve
//! ```
//!
//! Mid-rebalance the protocol never fires: the old owner keeps serving a
//! moving bucket until the commit (pending copies stay invisible), and the
//! directory version only changes when the commit installs the new
//! directory. A session left stale across a whole rebalance therefore pays
//! at most one redirect-plus-refresh when it next touches a moved bucket —
//! redirect counts are bounded by the number of buckets that actually moved,
//! which the `routing` experiment figure gates in CI.
//!
//! Like [`crate::job::RebalanceJob`], a `Session` holds **no borrow of the
//! cluster**: each operation takes the cluster as an argument (standing in
//! for the connection a real client would hold), so any number of sessions
//! with independently stale caches can interleave with rebalance job steps.

use dynahash_lsm::entry::{Entry, Key, Value};
use dynahash_lsm::{ScanOrder, SecondaryEntry};
use std::collections::BTreeMap;

use dynahash_core::PartitionId;

use crate::cluster::Cluster;
use crate::dataset::{DatasetId, DatasetMeta};
use crate::feed::IngestReport;
use crate::{ClusterError, Result};

/// How many stale-directory redirects one logical request may absorb before
/// the session gives up (a bound, not a tuning knob: a healthy cluster
/// resolves any staleness with a single refresh).
pub const DEFAULT_MAX_REDIRECTS: usize = 8;

/// The routing-protocol errors a partition (or the session itself) can
/// answer a request with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// The request was routed under a directory version older than the last
    /// move of the target bucket: the partition no longer owns it. The
    /// client must refresh its cached directory (to at least
    /// `server_version`) and retry.
    StaleDirectory {
        /// The authoritative routing version at rejection time.
        server_version: u64,
    },
    /// The session refreshed and retried [`DEFAULT_MAX_REDIRECTS`] times and
    /// was still rejected — something is wrong beyond ordinary staleness.
    RedirectLoop {
        /// How many redirects were absorbed before giving up.
        attempts: usize,
        /// The last authoritative routing version seen.
        server_version: u64,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::StaleDirectory { server_version } => write!(
                f,
                "request routed under a stale directory (server is at version {server_version})"
            ),
            RouteError::RedirectLoop {
                attempts,
                server_version,
            } => write!(
                f,
                "still stale after {attempts} redirects (server version {server_version})"
            ),
        }
    }
}

/// Counters a session keeps about its traffic and the redirect protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionMetrics {
    /// Logical requests issued (one per record for batch ingestion).
    pub requests: u64,
    /// Stale-directory rejections received from partitions.
    pub redirects: u64,
    /// Refreshes served as a cheap [`dynahash_core::DirectoryDelta`].
    pub delta_refreshes: u64,
    /// Refreshes that had to copy the full routing snapshot.
    pub full_refreshes: u64,
    /// Requests re-sent after a refresh.
    pub retries: u64,
    /// Routing updates applied from commit-time pushes (a subscribed session
    /// learns about a rebalance *before* any stale route, so these refreshes
    /// cost no redirect round-trip). See [`Session::subscribe`].
    pub pushed_refreshes: u64,
}

impl SessionMetrics {
    /// Total refreshes, delta or full.
    pub fn refreshes(&self) -> u64 {
        self.delta_refreshes + self.full_refreshes
    }
}

/// A client handle for one dataset: the only sanctioned way to read and
/// write data. See the module docs for the routing protocol.
#[derive(Debug, Clone)]
pub struct Session {
    dataset: DatasetId,
    cache: DatasetMeta,
    max_redirects: usize,
    metrics: SessionMetrics,
    /// The commit-push subscription id, once [`Session::subscribe`]d. A
    /// clone shares the id and would race its original for the same outbox;
    /// cloned sessions should subscribe themselves.
    subscription: Option<u64>,
}

impl Cluster {
    /// Opens a client session on a dataset, caching a snapshot of its
    /// routing state (the versioned directory and the partition list).
    pub fn session(&self, dataset: DatasetId) -> Result<Session> {
        Ok(Session {
            dataset,
            cache: self.controller.routing_snapshot(dataset)?,
            max_redirects: DEFAULT_MAX_REDIRECTS,
            metrics: SessionMetrics::default(),
            subscription: None,
        })
    }

    /// Partition-side validation of a routed request: the partition serves
    /// it only if its local directory still owns the bucket covering the
    /// key (for the Hashing scheme: if the authoritative modulo route agrees).
    /// Anything else — the bucket moved away, the partition was
    /// decommissioned, the dataset was rebuilt elsewhere — is rejected as
    /// [`RouteError::StaleDirectory`] carrying the authoritative version.
    pub(crate) fn validate_route(
        &self,
        dataset: DatasetId,
        key: &Key,
        partition: PartitionId,
    ) -> Result<()> {
        let meta = self.controller.dataset(dataset)?;
        let stale = ClusterError::Route(RouteError::StaleDirectory {
            server_version: meta.routing_version(),
        });
        let Ok(part) = self.partition(partition) else {
            return Err(stale);
        };
        let Ok(ds) = part.dataset(dataset) else {
            return Err(stale);
        };
        if meta.is_bucketed() {
            // The local directory is the partition's truth: it keeps serving
            // a moving bucket until the rebalance commits, and it covers
            // locally split children the CC may not have absorbed yet.
            if ds.primary.directory().lookup_key(key).is_none() {
                return Err(stale);
            }
        } else if meta.route_key(key) != Some(partition) {
            return Err(stale);
        }
        Ok(())
    }

    /// Validated point read in one partition pass: the hot path of
    /// [`Session::get`]. `bucketed` comes from the session's cached spec (a
    /// dataset never changes scheme), so the success path touches only the
    /// partition — the same work a direct read does, plus one local
    /// directory probe.
    pub(crate) fn validated_get(
        &self,
        dataset: DatasetId,
        key: &Key,
        partition: PartitionId,
        bucketed: bool,
    ) -> Result<Option<Value>> {
        if bucketed {
            // A bucket whose only copy died with a lost node serves a typed
            // degraded error, never silently-empty data (the replanned
            // directory routes to a survivor's *empty* replacement bucket).
            if let Some(bucket) = self.lost_bucket_of(dataset, key) {
                return Err(ClusterError::BucketDegraded { dataset, bucket });
            }
            if let Ok(part) = self.partition(partition) {
                if let Ok(ds) = part.dataset(dataset) {
                    if let Some(bucket) = ds.primary.directory().lookup_key(key) {
                        // The local probe already named the bucket, so the
                        // armed heat path costs nothing extra (and the
                        // disarmed one a single flag check).
                        self.note_read_heat(dataset, bucket);
                        return Ok(ds.get(key));
                    }
                }
            }
            Err(ClusterError::Route(RouteError::StaleDirectory {
                server_version: self.controller.routing_version(dataset)?,
            }))
        } else {
            self.validate_route(dataset, key, partition)?;
            Ok(self.partition(partition)?.dataset(dataset)?.get(key))
        }
    }
}

impl Session {
    /// The dataset this session talks to.
    pub fn dataset(&self) -> DatasetId {
        self.dataset
    }

    /// The version of the cached routing snapshot.
    pub fn cached_version(&self) -> u64 {
        self.cache.routing_version()
    }

    /// The session's traffic and redirect counters.
    pub fn metrics(&self) -> SessionMetrics {
        self.metrics
    }

    /// Overrides the redirect bound (mainly for tests that want a session to
    /// fail fast instead of converging).
    pub fn with_max_redirects(mut self, max: usize) -> Self {
        self.max_redirects = max;
        self
    }

    /// Routes a key through the cached snapshot.
    fn route(&self, key: &Key) -> Result<PartitionId> {
        self.cache
            .route_key(key)
            .ok_or(ClusterError::RoutingFailed(self.dataset))
    }

    /// Handles a rejection: count it, refresh the cache, and either allow a
    /// retry or give up once the redirect bound is hit. Non-protocol errors
    /// propagate unchanged.
    fn handle_rejection(
        &mut self,
        cluster: &Cluster,
        err: ClusterError,
        attempts: &mut usize,
    ) -> Result<()> {
        let ClusterError::Route(RouteError::StaleDirectory { server_version }) = err else {
            return Err(err);
        };
        self.metrics.redirects += 1;
        *attempts += 1;
        if *attempts > self.max_redirects {
            return Err(ClusterError::Route(RouteError::RedirectLoop {
                attempts: *attempts,
                server_version,
            }));
        }
        self.refresh(cluster)?;
        self.metrics.retries += 1;
        Ok(())
    }

    /// Registers this session for commit-time routing pushes: whenever a
    /// rebalance commits (or the control plane absorbs hot-bucket splits
    /// into the CC directory), the new routing state is buffered for the
    /// session as a [`dynahash_core::DirectoryDelta`] and applied at its
    /// next operation — *before* any request is routed — so a subscribed
    /// session skips the stale-route redirect the pull-based protocol pays.
    /// Idempotent; the redirect protocol stays in place as the fallback.
    pub fn subscribe(&mut self, cluster: &Cluster) {
        if self.subscription.is_none() {
            let version = self
                .cache
                .directory
                .as_ref()
                .map(|d| d.version())
                .unwrap_or(0);
            self.subscription = Some(cluster.register_subscriber(self.dataset, version));
        }
    }

    /// Applies any routing updates pushed since the last operation. Deltas
    /// that chain onto the cached directory apply directly; anything else
    /// (an overflowed outbox, a non-chaining delta after an out-of-band
    /// refresh, a dataset without a directory) falls back to a full refresh.
    fn drain_pushed(&mut self, cluster: &Cluster) -> Result<()> {
        let Some(subscription) = self.subscription else {
            return Ok(());
        };
        for update in cluster.take_pushed(subscription) {
            match update {
                crate::control::PushedUpdate::Delta {
                    delta,
                    partitions,
                    partitions_version,
                } => {
                    let cached_dir_version = self
                        .cache
                        .directory
                        .as_ref()
                        .map(|d| d.version())
                        .unwrap_or(0);
                    let applied = match self.cache.directory.as_mut() {
                        Some(cached) => cached.apply_delta(&delta).is_ok(),
                        None => false,
                    };
                    if applied {
                        self.cache.partitions = partitions;
                        self.cache.partitions_version = partitions_version;
                    } else if cached_dir_version < delta.to_version {
                        self.refresh(cluster)?;
                    } else {
                        // An out-of-band refresh already covered this push.
                        continue;
                    }
                    self.metrics.pushed_refreshes += 1;
                }
                crate::control::PushedUpdate::Resync => {
                    self.refresh(cluster)?;
                    self.metrics.pushed_refreshes += 1;
                }
            }
        }
        Ok(())
    }

    /// Brings the cached routing snapshot up to date: a cheap directory
    /// delta when the CC's change log still covers the cached version, a
    /// full snapshot copy otherwise. Idempotent when already current.
    pub fn refresh(&mut self, cluster: &Cluster) -> Result<()> {
        let meta = cluster.controller.dataset(self.dataset)?;
        // Pairing the mutable cached directory with the delta up front keeps
        // the "delta implies a cached directory" invariant structural: the
        // delta can only exist alongside the directory it applies to.
        let delta = match (self.cache.directory.as_mut(), &meta.directory) {
            (Some(cached), Some(server)) => {
                server.delta_since(cached.version()).map(|d| (cached, d))
            }
            _ => None,
        };
        match delta {
            Some((cached, delta)) => {
                cached.apply_delta(&delta).map_err(ClusterError::Core)?;
                // The partition list and its version travel with every
                // refresh reply.
                self.cache.partitions = meta.partitions.clone();
                self.cache.partitions_version = meta.partitions_version;
                self.metrics.delta_refreshes += 1;
            }
            None => {
                self.cache = meta.clone();
                self.metrics.full_refreshes += 1;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------ point ops

    /// Point lookup: routes from the cache, lets the partition validate the
    /// route, and transparently refreshes and retries on a stale rejection.
    pub fn get(&mut self, cluster: &Cluster, key: &Key) -> Result<Option<Value>> {
        self.drain_pushed(cluster)?;
        self.metrics.requests += 1;
        let bucketed = self.cache.is_bucketed();
        let mut attempts = 0usize;
        loop {
            let partition = self.route(key)?;
            match cluster.validated_get(self.dataset, key, partition, bucketed) {
                Ok(v) => return Ok(v),
                Err(e) => self.handle_rejection(cluster, e, &mut attempts)?,
            }
        }
    }

    /// Inserts (or updates) one record through the normal feed pipeline —
    /// WAL append, index maintenance, and replication to already-shipped
    /// buckets while a rebalance is mid-flight. Writes are rejected with
    /// [`ClusterError::DatasetWriteBlocked`] only during the brief
    /// prepare-to-decision window.
    pub fn put(&mut self, cluster: &mut Cluster, key: Key, value: Value) -> Result<()> {
        self.drain_pushed(cluster)?;
        self.metrics.requests += 1;
        let mut attempts = 0usize;
        loop {
            let partition = self.route(&key)?;
            match cluster.validate_route(self.dataset, &key, partition) {
                Ok(()) => return cluster.put_routed(self.dataset, key, value),
                Err(e) => self.handle_rejection(cluster, e, &mut attempts)?,
            }
        }
    }

    /// Deletes a record (a tombstone through the same routed write path).
    /// Returns whether the key was live before the delete.
    pub fn delete(&mut self, cluster: &mut Cluster, key: &Key) -> Result<bool> {
        self.drain_pushed(cluster)?;
        self.metrics.requests += 1;
        let mut attempts = 0usize;
        loop {
            let partition = self.route(key)?;
            match cluster.validate_route(self.dataset, key, partition) {
                Ok(()) => return cluster.delete_routed(self.dataset, key),
                Err(e) => self.handle_rejection(cluster, e, &mut attempts)?,
            }
        }
    }

    // ----------------------------------------------------------- batch ops

    /// Ingests a batch through the session (the data-feed path): every
    /// record is routed from the cached directory and validated by its
    /// target partition; a stale rejection refreshes the cache and re-routes
    /// the batch. Returns the usual feed cost report.
    pub fn ingest(
        &mut self,
        cluster: &mut Cluster,
        records: impl IntoIterator<Item = (Key, Value)>,
    ) -> Result<IngestReport> {
        self.drain_pushed(cluster)?;
        let records: Vec<(Key, Value)> = records.into_iter().collect();
        self.metrics.requests += records.len() as u64;
        let mut attempts = 0usize;
        'validate: loop {
            for (key, _) in &records {
                let partition = self.route(key)?;
                if let Err(e) = cluster.validate_route(self.dataset, key, partition) {
                    self.handle_rejection(cluster, e, &mut attempts)?;
                    continue 'validate;
                }
            }
            break;
        }
        cluster.ingest(self.dataset, records)
    }

    // ------------------------------------------------------------ scan ops

    /// Checks the cached snapshot against the authoritative routing version
    /// before a whole-dataset operation (the coordinator-side half of the
    /// protocol: per-bucket validation cannot cover a scan's full key range,
    /// so version equality stands in for it).
    fn ensure_current(&mut self, cluster: &Cluster) -> Result<()> {
        self.drain_pushed(cluster)?;
        let server = cluster.controller.routing_version(self.dataset)?;
        if self.cached_version() != server {
            self.metrics.redirects += 1;
            self.refresh(cluster)?;
            self.metrics.retries += 1;
        }
        Ok(())
    }

    /// Scans the dataset on every cached partition. `ScanOrder::Ordered`
    /// asks each partition for primary-key-ordered output.
    pub fn scan(
        &mut self,
        cluster: &Cluster,
        order: ScanOrder,
    ) -> Result<Vec<(PartitionId, Vec<Entry>)>> {
        self.metrics.requests += 1;
        self.ensure_current(cluster)?;
        let mut out = Vec::new();
        for p in self.cache.partitions.clone() {
            let part = cluster.partition(p)?;
            if !part.dataset_ids().contains(&self.dataset) {
                continue;
            }
            out.push((p, part.dataset(self.dataset)?.scan(order)));
        }
        Ok(out)
    }

    /// Scans the whole dataset unordered and folds it into one key → value
    /// map, also returning the raw (pre-dedup) record count. On a consistent
    /// cluster every key lives on exactly one partition, so
    /// `raw == map.len()`.
    pub fn collect_records(&mut self, cluster: &Cluster) -> Result<(BTreeMap<Key, Value>, usize)> {
        let scans = self.scan(cluster, ScanOrder::Unordered)?;
        let mut out = BTreeMap::new();
        let mut raw = 0usize;
        for (_, entries) in scans {
            for e in entries {
                if let Some(v) = e.op.value() {
                    raw += 1;
                    out.insert(e.key, v.clone());
                }
            }
        }
        Ok((out, raw))
    }

    /// Searches a secondary index on every cached partition, returning the
    /// matching (secondary, primary) pairs. Buckets whose secondary entries
    /// were deferred at rebalance-install time are warmed on first touch.
    pub fn index_scan(
        &mut self,
        cluster: &mut Cluster,
        index: &str,
        lo: Option<&Key>,
        hi: Option<&Key>,
    ) -> Result<Vec<(PartitionId, Vec<SecondaryEntry>)>> {
        self.metrics.requests += 1;
        self.ensure_current(cluster)?;
        let mut out = Vec::new();
        for p in self.cache.partitions.clone() {
            let part = cluster.partition_mut(p)?;
            if !part.dataset_ids().contains(&self.dataset) {
                continue;
            }
            let ds = part.dataset_mut(self.dataset)?;
            // Validate the name first so a typo'd scan does not consume the
            // one-shot deferred stashes.
            if !ds.has_secondary_index(index) {
                return Err(ClusterError::UnknownIndex(index.to_string()));
            }
            ds.warm_secondary_indexes();
            let idx = ds
                .secondary_mut(index)
                .ok_or_else(|| ClusterError::UnknownIndex(index.to_string()))?;
            out.push((p, idx.search_range(lo, hi)));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;
    use crate::rebalance::RebalanceOptions;
    use dynahash_core::Scheme;
    use dynahash_lsm::Bytes;

    fn record(i: u64) -> (Key, Value) {
        (Key::from_u64(i), Bytes::from(vec![(i % 251) as u8; 48]))
    }

    fn loaded(nodes: u32, scheme: Scheme, n: u64) -> (Cluster, DatasetId) {
        let mut cluster = Cluster::with_config(
            nodes,
            crate::ClusterConfig {
                partitions_per_node: 2,
                cost_model: crate::CostModel::default(),
            },
        );
        let ds = cluster
            .create_dataset(DatasetSpec::new("events", scheme))
            .unwrap();
        let mut session = cluster.session(ds).unwrap();
        session.ingest(&mut cluster, (0..n).map(record)).unwrap();
        (cluster, ds)
    }

    #[test]
    fn session_roundtrips_put_get_delete() {
        let (mut cluster, ds) = loaded(2, Scheme::StaticHash { num_buckets: 16 }, 500);
        let mut session = cluster.session(ds).unwrap();
        let (k, v) = record(7);
        assert_eq!(session.get(&cluster, &k).unwrap(), Some(v));
        session
            .put(
                &mut cluster,
                Key::from_u64(9000),
                Bytes::from(vec![1, 2, 3]),
            )
            .unwrap();
        assert_eq!(
            session.get(&cluster, &Key::from_u64(9000)).unwrap(),
            Some(Bytes::from(vec![1, 2, 3]))
        );
        assert!(session.delete(&mut cluster, &Key::from_u64(9000)).unwrap());
        assert_eq!(session.get(&cluster, &Key::from_u64(9000)).unwrap(), None);
        assert!(!session.delete(&mut cluster, &Key::from_u64(9000)).unwrap());
        assert_eq!(cluster.dataset_len(ds).unwrap(), 500);
        assert_eq!(session.metrics().redirects, 0, "no rebalance, no redirects");
        cluster.check_dataset_consistency(ds).unwrap();
    }

    #[test]
    fn scans_and_index_scans_route_from_the_cache() {
        let mut cluster = Cluster::new(2);
        let spec = DatasetSpec::new("events", Scheme::StaticHash { num_buckets: 16 })
            .with_secondary_index(crate::dataset::SecondaryIndexDef::new(
                "idx",
                |p: &[u8]| p.first().map(|&b| Key::from_u64(b as u64)),
            ));
        let ds = cluster.create_dataset(spec).unwrap();
        let mut session = cluster.session(ds).unwrap();
        session.ingest(&mut cluster, (0..800).map(record)).unwrap();
        let (map, raw) = session.collect_records(&cluster).unwrap();
        assert_eq!(map.len(), 800);
        assert_eq!(raw, 800);
        let hits = session.index_scan(&mut cluster, "idx", None, None).unwrap();
        let total: usize = hits.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 800);
        assert!(session
            .index_scan(&mut cluster, "nope", None, None)
            .is_err());
        // deletes drive the secondary extractors with the old payload, so
        // index scans return no phantom hits for deleted records
        for i in 0..50u64 {
            assert!(session.delete(&mut cluster, &record(i).0).unwrap());
        }
        let hits = session.index_scan(&mut cluster, "idx", None, None).unwrap();
        let total: usize = hits.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 750, "deleted records must leave the index");
    }

    #[test]
    fn stale_session_redirects_once_and_converges_after_a_rebalance() {
        let (mut cluster, ds) = loaded(2, Scheme::StaticHash { num_buckets: 32 }, 2000);
        // the stale client: opened before the rebalance, never told about it
        let mut stale = cluster.session(ds).unwrap();
        let v0 = stale.cached_version();
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        let report = cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap();
        assert!(report.buckets_moved > 0);

        // drive every key through the stale session: the first touch of a
        // moved bucket redirects, one refresh catches the whole cache up,
        // and everything after that routes cleanly
        for i in 0..2000u64 {
            let (k, v) = record(i);
            assert_eq!(stale.get(&cluster, &k).unwrap(), Some(v), "key {i}");
        }
        let m = stale.metrics();
        assert_eq!(m.redirects, 1, "one redirect resolves all staleness");
        assert_eq!(m.refreshes(), 1);
        assert_eq!(
            m.delta_refreshes, 1,
            "a commit-sized change fits the delta log"
        );
        assert!(stale.cached_version() > v0);

        // converged: a second full pass is redirect-free
        for i in 0..2000u64 {
            let (k, _) = record(i);
            stale.get(&cluster, &k).unwrap();
        }
        assert_eq!(stale.metrics().redirects, 1);
    }

    #[test]
    fn stale_session_survives_a_hashing_rebuild() {
        let (mut cluster, ds) = loaded(2, Scheme::Hashing, 600);
        let mut stale = cluster.session(ds).unwrap();
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap();
        for i in 0..600u64 {
            let (k, v) = record(i);
            assert_eq!(stale.get(&cluster, &k).unwrap(), Some(v), "key {i}");
        }
        assert!(stale.metrics().redirects >= 1);
        assert!(stale.metrics().full_refreshes >= 1);
        let (map, _) = stale.collect_records(&cluster).unwrap();
        assert_eq!(map.len(), 600);
    }

    #[test]
    fn redirect_loop_is_bounded() {
        let (mut cluster, ds) = loaded(2, Scheme::StaticHash { num_buckets: 16 }, 200);
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        let mut stale = cluster.session(ds).unwrap().with_max_redirects(0);
        cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap();
        // with a zero redirect budget, the first stale route must surface
        // the protocol error instead of spinning
        let mut saw_loop = false;
        for i in 0..200u64 {
            let (k, _) = record(i);
            match stale.get(&cluster, &k) {
                Ok(_) => {}
                Err(ClusterError::Route(RouteError::RedirectLoop { attempts, .. })) => {
                    assert_eq!(attempts, 1);
                    saw_loop = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(saw_loop, "some bucket must have moved");
    }

    #[test]
    fn scans_refresh_on_version_mismatch() {
        let (mut cluster, ds) = loaded(2, Scheme::StaticHash { num_buckets: 16 }, 900);
        let mut stale = cluster.session(ds).unwrap();
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap();
        let (map, raw) = stale.collect_records(&cluster).unwrap();
        assert_eq!(map.len(), 900);
        assert_eq!(raw, 900, "no key may be visible twice");
        assert_eq!(stale.metrics().refreshes(), 1);
    }
}
