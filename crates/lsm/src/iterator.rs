//! Merging iterators over multiple LSM components.
//!
//! A range query over an LSM-tree must reconcile entries with identical keys
//! coming from several components: entries from newer components override
//! those from older components. [`MergingIter`] performs a k-way merge using
//! a priority queue, exactly as described in Section II-B of the paper.
//! Sources are ordered newest first; for duplicate keys the entry from the
//! source with the smallest index wins.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::entry::{Entry, Key, Op};

/// One sorted input to the merge: an already-materialised, key-ordered list
/// of entries (memtable snapshot or visible component entries).
pub type SortedSource = Vec<Entry>;

struct HeapItem {
    key: Key,
    source: usize,
    pos: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.source == other.source
    }
}
impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to get the smallest key first,
        // breaking ties in favour of the newest (lowest-index) source.
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.source.cmp(&self.source))
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A reconciling k-way merge iterator.
pub struct MergingIter {
    sources: Vec<SortedSource>,
    heap: BinaryHeap<HeapItem>,
    include_tombstones: bool,
}

impl MergingIter {
    /// Creates a merge over the given sources, **newest source first**.
    ///
    /// If `include_tombstones` is false, reconciled deletes are skipped
    /// (normal query behaviour); if true they are emitted (used by merges
    /// that must retain tombstones).
    pub fn new(sources: Vec<SortedSource>, include_tombstones: bool) -> Self {
        let mut heap = BinaryHeap::new();
        for (i, s) in sources.iter().enumerate() {
            if let Some(e) = s.first() {
                heap.push(HeapItem {
                    key: e.key.clone(),
                    source: i,
                    pos: 0,
                });
            }
        }
        MergingIter {
            sources,
            heap,
            include_tombstones,
        }
    }

    fn advance(&mut self, source: usize, pos: usize) {
        let next = pos + 1;
        if let Some(e) = self.sources[source].get(next) {
            self.heap.push(HeapItem {
                key: e.key.clone(),
                source,
                pos: next,
            });
        }
    }
}

impl Iterator for MergingIter {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        loop {
            let top = self.heap.pop()?;
            let winner = self.sources[top.source][top.pos].clone();
            self.advance(top.source, top.pos);
            // Drop all other occurrences of the same key (they are older).
            while self.heap.peek().is_some_and(|peek| peek.key == winner.key) {
                let Some(dup) = self.heap.pop() else { break };
                self.advance(dup.source, dup.pos);
            }
            if winner.op.is_delete() && !self.include_tombstones {
                continue;
            }
            return Some(winner);
        }
    }
}

/// Merges the sources and returns only live (non-tombstone) entries.
pub fn merge_live(sources: Vec<SortedSource>) -> Vec<Entry> {
    MergingIter::new(sources, false).collect()
}

/// Merges the sources keeping reconciled tombstones (used when the merge
/// result does not include the oldest component, so deletes must survive).
pub fn merge_keep_tombstones(sources: Vec<SortedSource>) -> Vec<Entry> {
    MergingIter::new(sources, true).collect()
}

/// Reconciles a point-lookup result across sources ordered newest first:
/// the first source containing the key decides.
pub fn reconcile_point<'a>(mut lookups: impl Iterator<Item = Option<&'a Op>>) -> Option<&'a Op> {
    lookups.find_map(|op| op)
}

// --------------------------------------------------------- lazy k-way merge

/// A lazily-consumed sorted input to [`LazyMergeIter`]: key-ordered
/// `(key, op)` pairs borrowed from a memtable or a component's `range()`
/// iterator. Nothing is materialised up front.
pub type RefSource<'a> = Box<dyn Iterator<Item = (&'a Key, &'a Op)> + 'a>;

struct RefHeapItem<'a> {
    key: &'a Key,
    source: usize,
}

impl PartialEq for RefHeapItem<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.source == other.source
    }
}
impl Eq for RefHeapItem<'_> {}

impl Ord for RefHeapItem<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Smallest key first; ties go to the newest (lowest-index) source.
        other
            .key
            .cmp(self.key)
            .then_with(|| other.source.cmp(&self.source))
    }
}
impl PartialOrd for RefHeapItem<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A reconciling k-way merge that pulls lazily from borrowed sources (newest
/// source first) and clones only the winning entries. This is the
/// allocation-light replacement for collecting every source into its own
/// `Vec<Entry>` before merging: the output is materialised exactly once.
pub struct LazyMergeIter<'a> {
    sources: Vec<RefSource<'a>>,
    /// The current (unconsumed) head of each source; its key is in the heap.
    heads: Vec<Option<(&'a Key, &'a Op)>>,
    heap: BinaryHeap<RefHeapItem<'a>>,
    include_tombstones: bool,
}

impl<'a> LazyMergeIter<'a> {
    /// Creates a merge over the given sources, **newest source first**. With
    /// `include_tombstones` false, reconciled deletes are skipped (query
    /// behaviour); with true they are emitted (partial-merge behaviour).
    pub fn new(sources: Vec<RefSource<'a>>, include_tombstones: bool) -> Self {
        let mut it = LazyMergeIter {
            heads: (0..sources.len()).map(|_| None).collect(),
            sources,
            heap: BinaryHeap::new(),
            include_tombstones,
        };
        for i in 0..it.sources.len() {
            it.pull(i);
        }
        it
    }

    fn pull(&mut self, source: usize) {
        if let Some((k, op)) = self.sources[source].next() {
            self.heap.push(RefHeapItem { key: k, source });
            self.heads[source] = Some((k, op));
        } else {
            self.heads[source] = None;
        }
    }
}

impl Iterator for LazyMergeIter<'_> {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        loop {
            let top = self.heap.pop()?;
            // dhlint: allow(panic) — heap invariant: a popped entry always has a live head
            let (key, op) = self.heads[top.source].take().expect("head in heap");
            self.pull(top.source);
            // Drop all other occurrences of the same key (they are older).
            while self.heap.peek().is_some_and(|peek| peek.key == key) {
                let Some(dup) = self.heap.pop() else { break };
                self.heads[dup.source].take();
                self.pull(dup.source);
            }
            if op.is_delete() && !self.include_tombstones {
                continue;
            }
            return Some(Entry {
                key: key.clone(),
                op: op.clone(),
            });
        }
    }
}

/// K-way merge of already-reconciled, key-ordered entry iterators whose key
/// sets are pairwise disjoint (per-bucket scans: every key lives in exactly
/// one bucket). The output is materialised exactly once, in key order; the
/// heap owns each source's head entry directly, so no per-entry key clone
/// is made.
pub fn kmerge_disjoint<I>(iters: Vec<I>) -> Vec<Entry>
where
    I: Iterator<Item = Entry>,
{
    struct OwnedHeapItem {
        entry: Entry,
        source: usize,
    }
    impl PartialEq for OwnedHeapItem {
        fn eq(&self, other: &Self) -> bool {
            self.entry.key == other.entry.key && self.source == other.source
        }
    }
    impl Eq for OwnedHeapItem {}
    impl Ord for OwnedHeapItem {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .entry
                .key
                .cmp(&self.entry.key)
                .then_with(|| other.source.cmp(&self.source))
        }
    }
    impl PartialOrd for OwnedHeapItem {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut iters = iters;
    let mut heap = BinaryHeap::with_capacity(iters.len());
    for (i, it) in iters.iter_mut().enumerate() {
        if let Some(entry) = it.next() {
            heap.push(OwnedHeapItem { entry, source: i });
        }
    }
    let mut out = Vec::new();
    while let Some(top) = heap.pop() {
        if let Some(entry) = iters[top.source].next() {
            heap.push(OwnedHeapItem {
                entry,
                source: top.source,
            });
        }
        debug_assert!(
            out.last()
                .map(|p: &Entry| p.key < top.entry.key)
                .unwrap_or(true),
            "kmerge_disjoint sources must hold pairwise-disjoint sorted keys"
        );
        out.push(top.entry);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::Bytes;

    fn put(k: u64, tag: &str) -> Entry {
        Entry::put(Key::from_u64(k), Bytes::from(tag.as_bytes().to_vec()))
    }

    fn del(k: u64) -> Entry {
        Entry::delete(Key::from_u64(k))
    }

    fn values(entries: &[Entry]) -> Vec<(u64, String)> {
        entries
            .iter()
            .map(|e| {
                (
                    e.key.as_u64(),
                    match &e.op {
                        Op::Put(v) => String::from_utf8_lossy(v).to_string(),
                        Op::Delete => "<del>".to_string(),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn newer_source_wins() {
        let newer = vec![put(1, "new1"), put(3, "new3")];
        let older = vec![put(1, "old1"), put(2, "old2"), put(3, "old3")];
        let merged = merge_live(vec![newer, older]);
        assert_eq!(
            values(&merged),
            vec![(1, "new1".into()), (2, "old2".into()), (3, "new3".into())]
        );
    }

    #[test]
    fn tombstones_hide_older_entries() {
        let newer = vec![del(2)];
        let older = vec![put(1, "a"), put(2, "b"), put(3, "c")];
        let merged = merge_live(vec![newer, older]);
        assert_eq!(values(&merged), vec![(1, "a".into()), (3, "c".into())]);
    }

    #[test]
    fn tombstones_kept_when_requested() {
        let newer = vec![del(2)];
        let older = vec![put(2, "b")];
        let merged = merge_keep_tombstones(vec![newer, older]);
        assert_eq!(values(&merged), vec![(2, "<del>".into())]);
    }

    #[test]
    fn output_is_sorted_and_unique() {
        let a = vec![put(1, "a1"), put(4, "a4"), put(9, "a9")];
        let b = vec![put(2, "b2"), put(4, "b4"), put(8, "b8")];
        let c = vec![put(1, "c1"), put(9, "c9"), put(10, "c10")];
        let merged = merge_live(vec![a, b, c]);
        let keys: Vec<u64> = merged.iter().map(|e| e.key.as_u64()).collect();
        assert_eq!(keys, vec![1, 2, 4, 8, 9, 10]);
        // key 4 resolved from source a (newer than b)
        assert_eq!(values(&merged)[2], (4, "a4".into()));
    }

    #[test]
    fn empty_sources_are_fine() {
        assert!(merge_live(vec![]).is_empty());
        assert!(merge_live(vec![vec![], vec![]]).is_empty());
    }

    fn ref_sources(sources: &[Vec<Entry>]) -> Vec<RefSource<'_>> {
        sources
            .iter()
            .map(|s| Box::new(s.iter().map(|e| (&e.key, &e.op))) as RefSource<'_>)
            .collect()
    }

    #[test]
    fn lazy_merge_matches_materialized_merge() {
        let newer = vec![del(2), put(3, "new3")];
        let older = vec![put(1, "old1"), put(2, "old2"), put(3, "old3")];
        let expected = merge_live(vec![newer.clone(), older.clone()]);
        let lazy: Vec<Entry> =
            LazyMergeIter::new(ref_sources(&[newer.clone(), older.clone()]), false).collect();
        assert_eq!(values(&lazy), values(&expected));
        let expected_t = merge_keep_tombstones(vec![newer.clone(), older.clone()]);
        let lazy_t: Vec<Entry> = LazyMergeIter::new(ref_sources(&[newer, older]), true).collect();
        assert_eq!(values(&lazy_t), values(&expected_t));
    }

    #[test]
    fn lazy_merge_handles_empty_sources() {
        let lazy: Vec<Entry> = LazyMergeIter::new(Vec::new(), false).collect();
        assert!(lazy.is_empty());
        let lazy: Vec<Entry> =
            LazyMergeIter::new(ref_sources(&[vec![], vec![put(1, "a")], vec![]]), false).collect();
        assert_eq!(values(&lazy), vec![(1, "a".into())]);
    }

    #[test]
    fn kmerge_disjoint_orders_across_sources() {
        let a = vec![put(1, "a"), put(5, "a"), put(9, "a")];
        let b = vec![put(2, "b"), put(4, "b")];
        let c = vec![put(3, "c"), put(8, "c")];
        let merged = kmerge_disjoint(vec![a.into_iter(), b.into_iter(), c.into_iter()]);
        let keys: Vec<u64> = merged.iter().map(|e| e.key.as_u64()).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5, 8, 9]);
        assert!(kmerge_disjoint(Vec::<std::vec::IntoIter<Entry>>::new()).is_empty());
    }

    /// A merge whose every surviving entry is a tombstone — the shape of an
    /// all-deleted bucket mid-rebalance. Live mode must produce nothing;
    /// partial-merge mode must keep every tombstone exactly once.
    #[test]
    fn all_tombstone_sources_reconcile_to_nothing_live() {
        let newer = vec![del(1), del(3)];
        let older = vec![del(1), del(2), del(3)];
        let live: Vec<Entry> =
            LazyMergeIter::new(ref_sources(&[newer.clone(), older.clone()]), false).collect();
        assert!(live.is_empty(), "all-tombstone merge leaked {live:?}");
        let kept: Vec<Entry> = LazyMergeIter::new(ref_sources(&[newer, older]), true).collect();
        assert_eq!(
            values(&kept),
            vec![
                (1, "<del>".into()),
                (2, "<del>".into()),
                (3, "<del>".into())
            ]
        );
    }

    /// A single source must pass through unchanged in both modes (the
    /// degenerate merge after a bucket compacts to one component).
    #[test]
    fn lazy_merge_single_source_passes_through() {
        let only = vec![put(1, "a"), del(2), put(3, "c")];
        let live: Vec<Entry> =
            LazyMergeIter::new(ref_sources(std::slice::from_ref(&only)), false).collect();
        assert_eq!(values(&live), vec![(1, "a".into()), (3, "c".into())]);
        let kept: Vec<Entry> = LazyMergeIter::new(ref_sources(&[only]), true).collect();
        assert_eq!(
            values(&kept),
            vec![(1, "a".into()), (2, "<del>".into()), (3, "c".into())]
        );
    }

    /// The same key in *every* source at once: only the newest op survives
    /// and each older head is consumed (no duplicate emission, no stall).
    #[test]
    fn lazy_merge_key_present_in_all_sources() {
        let s0 = vec![put(5, "v0")];
        let s1 = vec![del(5)];
        let s2 = vec![put(5, "v2")];
        let merged: Vec<Entry> = LazyMergeIter::new(ref_sources(&[s0, s1, s2]), true).collect();
        assert_eq!(values(&merged), vec![(5, "v0".into())]);
    }

    #[test]
    fn kmerge_disjoint_single_and_empty_runs() {
        // Single run passes through verbatim (tombstones included — inputs
        // are already reconciled).
        let only = vec![put(1, "a"), del(2), put(3, "c")];
        let merged = kmerge_disjoint(vec![only.clone().into_iter()]);
        assert_eq!(values(&merged), values(&only));
        // Empty runs interleaved with live ones contribute nothing.
        let a = vec![put(4, "a")];
        let merged = kmerge_disjoint(vec![
            Vec::new().into_iter(),
            a.into_iter(),
            Vec::new().into_iter(),
        ]);
        assert_eq!(values(&merged), vec![(4, "a".into())]);
        // All-empty input produces an empty output.
        let empty: Vec<std::vec::IntoIter<Entry>> = vec![Vec::new().into_iter(); 3];
        assert!(kmerge_disjoint(empty).is_empty());
    }

    /// All-tombstone disjoint runs: kmerge is reconciliation-free, so the
    /// tombstones must come through sorted and complete (a merge of fully
    /// deleted buckets still has to ship its tombstones).
    #[test]
    fn kmerge_disjoint_all_tombstone_runs() {
        let a = vec![del(1), del(4)];
        let b = vec![del(2)];
        let merged = kmerge_disjoint(vec![a.into_iter(), b.into_iter()]);
        assert_eq!(
            values(&merged),
            vec![
                (1, "<del>".into()),
                (2, "<del>".into()),
                (4, "<del>".into())
            ]
        );
    }

    #[test]
    fn reconcile_point_takes_first_hit() {
        let newer = Op::Delete;
        let older = Op::Put(Bytes::from_static(b"x"));
        let got = reconcile_point([None, Some(&newer), Some(&older)].into_iter());
        assert!(matches!(got, Some(Op::Delete)));
        assert!(reconcile_point([None, None].into_iter()).is_none());
    }
}
