//! Figures 7a/7b: rebalance time for removing and adding a node.

use dynahash_bench::timing::{bench_case, bench_group, DEFAULT_ITERS};
use dynahash_bench::{fig7_rebalance, ExperimentConfig, RebalanceDirection};

fn main() {
    let cfg = ExperimentConfig::quick();
    bench_group("fig7_rebalance");
    for (label, dir) in [
        ("remove_node", RebalanceDirection::RemoveNode),
        ("add_node", RebalanceDirection::AddNode),
    ] {
        bench_case(&format!("{label}/2_nodes"), DEFAULT_ITERS, || {
            fig7_rebalance(&cfg, &[2], dir)
        });
    }
}
