pub fn f(v: Option<u32>, w: Option<u32>) -> u32 {
    // dhlint: allow(panic) — fixture invariant one
    let a = v.unwrap();
    // dhlint: allow(panic) — fixture invariant two
    let b = w.unwrap();
    a + b
}
