//! Regenerates every figure of the DynaHash paper and prints the results as
//! markdown tables (the source of EXPERIMENTS.md).
//!
//! Usage:
//!
//! ```text
//! experiments                     # run everything at the default scale
//! experiments --quick             # smaller scale, fewer cluster sizes
//! experiments --figure 7a         # run a single figure
//! experiments --json results.json # also emit machine-readable results
//! ```
//!
//! Figures: 6, 7a, 7b, 7c, waves, move_policy, routing, lookup, scale,
//! faults, control, recovery, 8, 9, ablations.
//!
//! Seven figures double as regression gates (the run exits 1 on violation):
//!
//! * `move_policy` — component shipping must be strictly faster than
//!   record-level movement while leaving byte-identical contents (the
//!   paper's core rebalance-efficiency claim);
//! * `routing` — sessions left stale across a rebalance must converge via
//!   the stale-directory redirect protocol with zero integrity violations,
//!   redirect counts bounded by buckets-moved, and steady-state session
//!   overhead within 10% of direct access;
//! * `lookup` — the slot-array directory must be strictly faster than the
//!   old linear scan at ≥ 256 buckets, and deferring the destination-side
//!   secondary rebuild must strictly shrink the rebalance wave makespan
//!   while `index_scan` answers stay byte-identical to the eager baseline;
//! * `scale` — resident bytes per record must stay at or below the legacy
//!   all-heap-key baseline, with every production 8-byte key stored inline
//!   (deterministic accounting, no wall clock: violations fail immediately);
//! * `faults` — an installed-but-empty fault schedule must be byte-identical
//!   to the fault-free oracle, injected transients must be absorbed by
//!   retry (never an abort), and a mid-movement node loss must commit via
//!   re-planning — both with record contents identical to the oracle;
//! * `control` — an armed-then-disarmed control plane must be byte-identical
//!   to the never-armed baseline, and the armed decision loop must split the
//!   query hotspot, auto-trigger through hysteresis, converge below the
//!   imbalance threshold within the tick budget, and never exceed the
//!   per-window migration budget — with record contents identical to the
//!   baseline;
//! * `recovery` — speculative re-execution must strictly shorten the
//!   makespan of a rebalance stretched by a 50× slow node while leaving
//!   record contents byte-identical, and a dataset that permanently lost an
//!   established node must, after repair from the original feed, be
//!   byte-identical to a never-lost oracle.

use dynahash_bench::json::Json;
use dynahash_bench::*;

struct Args {
    quick: bool,
    figure: Option<String>,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        figure: None,
        json: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--figure" => args.figure = iter.next(),
            "--json" => {
                args.json = iter.next();
                if args.json.is_none() {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--quick] [--json <path>] \
                     [--figure 6|7a|7b|7c|waves|move_policy|routing|lookup|scale|faults|\
                     control|recovery|8|9|ablations]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn wants(figure: &Option<String>, name: &str) -> bool {
    match figure {
        None => true,
        Some(f) => f.eq_ignore_ascii_case(name),
    }
}

fn fig6_json(rows: &[IngestionRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("nodes", Json::Int(r.nodes as u64)),
                    ("scheme", Json::str(r.scheme)),
                    ("sim_seconds", Json::Num(r.minutes * 60.0)),
                    ("records", Json::Int(r.records)),
                ])
            })
            .collect(),
    )
}

fn fig7_json(rows: &[RebalanceRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("nodes", Json::Int(r.nodes as u64)),
                    ("scheme", Json::str(r.scheme)),
                    ("sim_seconds", Json::Num(r.minutes * 60.0)),
                    ("moved_fraction", Json::Num(r.moved_fraction)),
                ])
            })
            .collect(),
    )
}

fn fig7c_json(rows: &[ConcurrentWriteRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("write_rate_krps", Json::Num(r.write_rate_krps)),
                    ("sim_seconds", Json::Num(r.minutes * 60.0)),
                    ("concurrent_records", Json::Int(r.concurrent_records)),
                ])
            })
            .collect(),
    )
}

fn waves_json(rows: &[WaveRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    (
                        "max_concurrent_moves",
                        Json::Int(r.max_concurrent_moves as u64),
                    ),
                    ("waves", Json::Int(r.waves as u64)),
                    ("buckets_moved", Json::Int(r.buckets_moved as u64)),
                    ("movement_sim_seconds", Json::Num(r.movement_minutes * 60.0)),
                    ("total_sim_seconds", Json::Num(r.minutes * 60.0)),
                ])
            })
            .collect(),
    )
}

fn move_policy_json(rows: &[MovePolicyRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("policy", Json::str(r.policy)),
                    ("movement_sim_seconds", Json::Num(r.movement_minutes * 60.0)),
                    ("total_sim_seconds", Json::Num(r.minutes * 60.0)),
                    ("bytes_moved", Json::Int(r.bytes_moved)),
                    ("records_moved", Json::Int(r.records_moved)),
                    ("buckets_moved", Json::Int(r.buckets_moved as u64)),
                    (
                        "content_checksum",
                        Json::str(format!("{:016x}", r.content_checksum)),
                    ),
                ])
            })
            .collect(),
    )
}

/// `groups` pairs each row set with the cluster size it ran on — the rows
/// themselves carry no node count, and a flat concatenation would make the
/// 4-node and 16-node timings indistinguishable in the JSON trajectory.
fn routing_json(rows: &[RoutingRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("phase", Json::str(r.phase)),
                    ("sessions", Json::Int(r.sessions as u64)),
                    ("ops", Json::Int(r.ops)),
                    ("redirects", Json::Int(r.redirects)),
                    ("delta_refreshes", Json::Int(r.delta_refreshes)),
                    ("full_refreshes", Json::Int(r.full_refreshes)),
                    ("buckets_moved", Json::Int(r.buckets_moved as u64)),
                    ("integrity_violations", Json::Int(r.integrity_violations)),
                    ("session_ns_per_op", Json::Num(r.session_ns_per_op)),
                    ("direct_ns_per_op", Json::Num(r.direct_ns_per_op)),
                    ("overhead_ratio", Json::Num(r.overhead_ratio)),
                ])
            })
            .collect(),
    )
}

fn lookup_json(rows: &[LookupRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("buckets", Json::Int(r.buckets as u64)),
                    ("slot_ns_per_lookup", Json::Num(r.slot_ns_per_lookup)),
                    ("scan_ns_per_lookup", Json::Num(r.scan_ns_per_lookup)),
                    ("speedup", Json::Num(r.speedup)),
                ])
            })
            .collect(),
    )
}

fn deferred_install_json(rows: &[DeferredInstallRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("rebuild", Json::str(r.mode)),
                    ("movement_sim_seconds", Json::Num(r.movement_minutes * 60.0)),
                    ("total_sim_seconds", Json::Num(r.minutes * 60.0)),
                    ("records_moved", Json::Int(r.records_moved)),
                    ("buckets_moved", Json::Int(r.buckets_moved as u64)),
                    ("warmed_records", Json::Int(r.warmed_records)),
                    (
                        "index_checksum",
                        Json::str(format!("{:016x}", r.index_checksum)),
                    ),
                    ("integrity_violations", Json::Int(r.integrity_violations)),
                ])
            })
            .collect(),
    )
}

fn scale_json(rows: &[ScaleRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("keys", Json::str(r.label)),
                    ("records", Json::Int(r.records)),
                    ("resident_bytes", Json::Int(r.resident_bytes)),
                    ("legacy_bytes", Json::Int(r.legacy_bytes)),
                    ("bytes_per_record", Json::Num(r.bytes_per_record)),
                    (
                        "legacy_bytes_per_record",
                        Json::Num(r.legacy_bytes_per_record),
                    ),
                    ("inline_fraction", Json::Num(r.inline_fraction)),
                ])
            })
            .collect(),
    )
}

fn faults_json(rows: &[FaultRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("regime", Json::str(r.label)),
                    ("committed", Json::Bool(r.committed)),
                    ("makespan_ns", Json::Int(r.makespan.as_nanos())),
                    ("retries", Json::Int(r.retries)),
                    ("reroutes", Json::Int(r.reroutes)),
                    ("records", Json::Int(r.records)),
                    ("checksum", Json::str(format!("{:016x}", r.checksum))),
                ])
            })
            .collect(),
    )
}

fn control_json(rows: &[ControlRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("regime", Json::str(r.label)),
                    ("ticks", Json::Int(r.ticks)),
                    ("triggers", Json::Int(r.triggers)),
                    ("suppressed", Json::Int(r.suppressed)),
                    ("committed", Json::Int(r.committed)),
                    ("hot_splits", Json::Int(r.hot_splits)),
                    ("imbalance_start", Json::Num(r.imbalance_start)),
                    ("imbalance_end", Json::Num(r.imbalance_end)),
                    ("threshold", Json::Num(r.threshold)),
                    ("max_window_buckets", Json::Int(r.max_window_buckets as u64)),
                    ("max_window_bytes", Json::Int(r.max_window_bytes)),
                    ("records", Json::Int(r.records)),
                    ("checksum", Json::str(format!("{:016x}", r.checksum))),
                ])
            })
            .collect(),
    )
}

fn recovery_json(rows: &[RecoveryRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("arm", Json::str(r.label)),
                    ("committed", Json::Bool(r.committed)),
                    ("makespan_ns", Json::Int(r.makespan.as_nanos())),
                    ("speculated", Json::Int(r.speculated)),
                    ("speculation_wins", Json::Int(r.speculation_wins)),
                    ("repaired_buckets", Json::Int(r.repaired_buckets)),
                    ("records", Json::Int(r.records)),
                    ("checksum", Json::str(format!("{:016x}", r.checksum))),
                ])
            })
            .collect(),
    )
}

fn queries_json(groups: &[(u32, Vec<QueryRow>)]) -> Json {
    Json::Arr(
        groups
            .iter()
            .flat_map(|(nodes, rows)| {
                rows.iter().map(|r| {
                    Json::obj([
                        ("nodes", Json::Int(*nodes as u64)),
                        ("query", Json::Int(r.query as u64)),
                        ("scheme", Json::str(r.scheme.clone())),
                        ("sim_seconds", Json::Num(r.seconds)),
                        ("answer", Json::Num(r.answer)),
                        ("scan_heavy", Json::Bool(r.scan_heavy)),
                    ])
                })
            })
            .collect(),
    )
}

fn main() {
    let args = parse_args();
    let cfg = if args.quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let node_counts: Vec<u32> = if args.quick {
        vec![2, 4]
    } else {
        vec![2, 4, 8, 16]
    };
    let query_nodes: Vec<u32> = if args.quick { vec![4] } else { vec![4, 16] };

    let mut figures = Json::obj([]);
    let mut gate_failed = false;

    println!("# DynaHash experiment results");
    println!();
    println!(
        "configuration: {} orders/node, {} partitions/node, node counts {:?} (simulated time)",
        cfg.orders_per_node, cfg.partitions_per_node, node_counts
    );
    println!();

    if wants(&args.figure, "6") {
        println!("## Figure 6 — Ingestion time");
        println!();
        let rows = fig6_ingestion(&cfg, &node_counts);
        println!("{}", format_fig6(&rows));
        figures.push_field("fig6_ingestion", fig6_json(&rows));
    }

    if wants(&args.figure, "7a") {
        println!("## Figure 7a — Rebalance time, removing one node");
        println!();
        let rows = fig7_rebalance(&cfg, &node_counts, RebalanceDirection::RemoveNode);
        println!("{}", format_fig7(&rows));
        figures.push_field("fig7a_remove_node", fig7_json(&rows));
    }

    if wants(&args.figure, "7b") {
        println!("## Figure 7b — Rebalance time, adding one node");
        println!();
        let rows = fig7_rebalance(&cfg, &node_counts, RebalanceDirection::AddNode);
        println!("{}", format_fig7(&rows));
        figures.push_field("fig7b_add_node", fig7_json(&rows));
    }

    if wants(&args.figure, "7c") {
        println!(
            "## Figure 7c — Rebalance time under concurrent ingestion (DynaHash, 4 -> 3 nodes)"
        );
        println!();
        let rates = [0.0, 10.0, 20.0, 30.0, 40.0];
        let rows = fig7c_concurrent_writes(&cfg, &rates);
        println!("{}", format_fig7c(&rows));
        figures.push_field("fig7c_concurrent_writes", fig7c_json(&rows));
    }

    if wants(&args.figure, "waves") {
        println!("## Wave parallelism — step-driven rebalance (DynaHash, 4 -> 3 nodes)");
        println!();
        let rows = rebalance_wave_scaling(&cfg, &[1, 2, 4, 8]);
        println!("{}", format_waves(&rows));
        figures.push_field("waves", waves_json(&rows));
    }

    if wants(&args.figure, "move_policy") {
        println!("## Move policy — component shipping vs record movement (DynaHash, 4 -> 3 nodes)");
        println!();
        let rows = move_policy_comparison(&cfg);
        println!("{}", format_move_policy(&rows));
        figures.push_field("move_policy", move_policy_json(&rows));
        let records = rows.iter().find(|r| r.policy == "Records");
        let components = rows.iter().find(|r| r.policy == "Components");
        match (records, components) {
            (Some(rec), Some(comp)) => {
                if comp.content_checksum != rec.content_checksum {
                    eprintln!("GATE FAILED: move policies left different dataset contents");
                    gate_failed = true;
                }
                if comp.movement_minutes >= rec.movement_minutes {
                    eprintln!(
                        "GATE FAILED: component shipping ({:.6} sim s) is not strictly faster \
                         than record movement ({:.6} sim s)",
                        comp.movement_minutes * 60.0,
                        rec.movement_minutes * 60.0
                    );
                    gate_failed = true;
                }
            }
            _ => {
                eprintln!("GATE FAILED: move_policy rows missing");
                gate_failed = true;
            }
        }
        if !gate_failed {
            println!("(gate: Components strictly faster than Records, contents identical)");
            println!();
        }
    }

    if wants(&args.figure, "routing") {
        println!("## Session routing — redirect protocol and overhead (DynaHash, 4 -> 3 nodes)");
        println!();
        let mut rows = session_routing_study(&cfg);
        let mut violations = routing_gate_violations(&rows);
        // The overhead arm is the study's only wall-clock measurement; when
        // it alone trips the gate (a loaded runner can inflate even the
        // paired-minimum ratio), re-measure up to twice before failing, so
        // noise cannot flip the otherwise-deterministic gate. Protocol
        // violations — redirects, integrity — fail immediately.
        let mut remeasures = 0;
        while !violations.is_empty()
            && violations.iter().all(|v| v.contains("overhead"))
            && remeasures < 2
        {
            eprintln!("overhead measurement over the gate; re-measuring: {violations:?}");
            remeasures += 1;
            rows = session_routing_study(&cfg);
            violations = routing_gate_violations(&rows);
        }
        println!("{}", format_routing(&rows));
        figures.push_field("routing", routing_json(&rows));
        if violations.is_empty() {
            println!(
                "(gate: stale sessions converged, redirects bounded by buckets moved, \
                 overhead within {ROUTING_OVERHEAD_GATE:.2}x of direct access)"
            );
            println!();
        } else {
            for v in &violations {
                eprintln!("GATE FAILED: {v}");
            }
            gate_failed = true;
        }
    }

    if wants(&args.figure, "lookup") {
        println!("## Directory lookup — slot array vs linear scan");
        println!();
        let counts: &[usize] = &[16, 256, 4096];
        let mut lookup_rows = directory_lookup_study(counts);
        println!("## Deferred secondary rebuild — install cost off the commit path (DynaHash, 4 -> 3 nodes)");
        println!();
        let deferred_rows = deferred_install_study(&cfg);
        let mut violations = lookup_gate_violations(&lookup_rows, &deferred_rows);
        // The lookup arm is wall-clock; like the routing overhead gate it is
        // re-measured (up to twice) when it alone trips on a loaded runner.
        // The deferred-install conditions are simulated-time and therefore
        // deterministic: they fail immediately.
        let mut remeasures = 0;
        while !violations.is_empty()
            && violations.iter().all(|v| v.contains("lookup overhead"))
            && remeasures < 2
        {
            eprintln!("lookup measurement over the gate; re-measuring: {violations:?}");
            remeasures += 1;
            lookup_rows = directory_lookup_study(counts);
            violations = lookup_gate_violations(&lookup_rows, &deferred_rows);
        }
        println!("{}", format_lookup(&lookup_rows));
        println!("{}", format_deferred_install(&deferred_rows));
        figures.push_field("lookup", lookup_json(&lookup_rows));
        figures.push_field("deferred_install", deferred_install_json(&deferred_rows));
        if violations.is_empty() {
            println!(
                "(gate: slot-array lookups strictly faster than the scan at >= 256 buckets, \
                 deferred install strictly faster than eager on wave makespan, index answers \
                 byte-identical)"
            );
            println!();
        } else {
            for v in &violations {
                eprintln!("GATE FAILED: {v}");
            }
            gate_failed = true;
        }
    }

    if wants(&args.figure, "scale") {
        println!("## Memory scale — inline-key Entry layout vs the legacy heap-key layout");
        println!();
        let rows = scale_study(&cfg);
        println!("{}", format_scale(&rows));
        figures.push_field("scale", scale_json(&rows));
        // Pure byte accounting — deterministic, so violations fail
        // immediately (no wall-clock re-measure loop).
        let violations = scale_gate_violations(&rows);
        if violations.is_empty() {
            println!(
                "(gate: resident bytes/record at or below the legacy baseline, \
                 8-byte keys fully inline)"
            );
            println!();
        } else {
            for v in &violations {
                eprintln!("GATE FAILED: {v}");
            }
            gate_failed = true;
        }
    }

    if wants(&args.figure, "faults") {
        println!("## Fault plane — retry, re-planning, and the fault-free oracle (DynaHash, 4 -> 5 nodes)");
        println!();
        let rows = fault_study(&cfg);
        println!("{}", format_faults(&rows));
        figures.push_field("faults", faults_json(&rows));
        // Simulated time and byte accounting only — deterministic, so
        // violations fail immediately.
        let violations = fault_gate_violations(&rows);
        if violations.is_empty() {
            println!(
                "(gate: empty schedule byte-identical to the oracle, transients absorbed \
                 by retry, node loss re-planned and committed, contents identical)"
            );
            println!();
        } else {
            for v in &violations {
                eprintln!("GATE FAILED: {v}");
            }
            gate_failed = true;
        }
    }

    if wants(&args.figure, "control") {
        println!("## Control plane — load-aware auto-rebalancing under a query hotspot (DynaHash, 4 -> 6 nodes)");
        println!();
        let rows = control_study(&cfg);
        println!("{}", format_control(&rows));
        figures.push_field("control", control_json(&rows));
        // Simulated ticks and byte accounting only — deterministic, so
        // violations fail immediately.
        let violations = control_gate_violations(&rows);
        if violations.is_empty() {
            println!(
                "(gate: disarmed run byte-identical to the baseline, armed loop split the \
                 hotspot and converged below the threshold within {CONTROL_CONVERGENCE_TICKS} \
                 ticks inside the migration budget, contents identical)"
            );
            println!();
        } else {
            for v in &violations {
                eprintln!("GATE FAILED: {v}");
            }
            gate_failed = true;
        }
    }

    if wants(&args.figure, "recovery") {
        println!("## Recovery plane — straggler speculation and degraded-dataset repair (DynaHash, 4 -> 5 nodes)");
        println!();
        let rows = recovery_study(&cfg);
        println!("{}", format_recovery(&rows));
        figures.push_field("recovery", recovery_json(&rows));
        // Simulated time and byte accounting only — deterministic, so
        // violations fail immediately.
        let violations = recovery_gate_violations(&rows);
        if violations.is_empty() {
            println!(
                "(gate: speculation strictly shortened the straggler-stretched makespan \
                 with byte-identical contents; the repaired dataset is byte-identical to \
                 the never-lost oracle)"
            );
            println!();
        } else {
            for v in &violations {
                eprintln!("GATE FAILED: {v}");
            }
            gate_failed = true;
        }
    }

    if wants(&args.figure, "8") {
        let mut groups = Vec::new();
        for &n in &query_nodes {
            println!("## Figure 8 — TPC-H query time on the original cluster ({n} nodes)");
            println!();
            let rows = fig8_queries(&cfg, n);
            let mismatches = answer_mismatches(&rows);
            println!("{}", format_query_rows(&rows));
            if mismatches.is_empty() {
                println!("(all schemes returned identical query answers)");
            } else {
                println!("WARNING: answer mismatches on queries {mismatches:?}");
            }
            println!();
            groups.push((n, rows));
        }
        figures.push_field("fig8_queries", queries_json(&groups));
    }

    if wants(&args.figure, "9") {
        let mut groups = Vec::new();
        for &n in &query_nodes {
            println!(
                "## Figure 9 — TPC-H query time on the downsized cluster ({} -> {} nodes)",
                n,
                n - 1
            );
            println!();
            let rows = fig9_queries(&cfg, n);
            let mismatches = answer_mismatches(&rows);
            println!("{}", format_query_rows(&rows));
            if mismatches.is_empty() {
                println!("(all schemes returned identical query answers)");
            } else {
                println!("WARNING: answer mismatches on queries {mismatches:?}");
            }
            println!();
            groups.push((n, rows));
        }
        figures.push_field("fig9_queries", queries_json(&groups));
    }

    if wants(&args.figure, "ablations") {
        println!("## Ablation A1 — Storage options for the primary index");
        println!();
        println!("| option | bucket-move read bytes | avg components per lookup |");
        println!("|---|---|---|");
        let storage = ablation_storage_options(5000);
        for r in &storage {
            println!(
                "| {} | {} | {:.1} |",
                r.option, r.bucket_move_read_bytes, r.lookup_components
            );
        }
        println!();
        println!("## Ablation A2 — Balance quality of Algorithm 2 vs round-robin");
        println!();
        println!("| bucket size skew | Algorithm 2 (max/avg) | round-robin (max/avg) |");
        println!("|---|---|---|");
        let balance = ablation_balance_quality(&[1, 2, 4, 8, 16]);
        for r in &balance {
            println!(
                "| {}x | {:.3} | {:.3} |",
                r.skew, r.algorithm2, r.round_robin
            );
        }
        println!();
        figures.push_field(
            "ablation_storage_options",
            Json::Arr(
                storage
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("option", Json::str(r.option)),
                            (
                                "bucket_move_read_bytes",
                                Json::Int(r.bucket_move_read_bytes),
                            ),
                            ("lookup_components", Json::Num(r.lookup_components)),
                        ])
                    })
                    .collect(),
            ),
        );
        figures.push_field(
            "ablation_balance_quality",
            Json::Arr(
                balance
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("skew", Json::Int(r.skew)),
                            ("algorithm2", Json::Num(r.algorithm2)),
                            ("round_robin", Json::Num(r.round_robin)),
                        ])
                    })
                    .collect(),
            ),
        );
    }

    if let Some(path) = &args.json {
        let doc = Json::obj([
            (
                "config",
                Json::obj([
                    ("orders_per_node", Json::Int(cfg.orders_per_node as u64)),
                    (
                        "partitions_per_node",
                        Json::Int(cfg.partitions_per_node as u64),
                    ),
                    ("quick", Json::Bool(args.quick)),
                    (
                        "node_counts",
                        Json::Arr(node_counts.iter().map(|&n| Json::Int(n as u64)).collect()),
                    ),
                ]),
            ),
            ("figures", figures),
        ]);
        if let Err(e) = std::fs::write(path, doc.render() + "\n") {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("machine-readable results written to {path}");
    }

    if gate_failed {
        std::process::exit(1);
    }
}
