//! Figure 9: TPC-H query performance on the downsized cluster (4 -> 3 nodes).

use dynahash_bench::timing::{bench_case, bench_group, DEFAULT_ITERS};
use dynahash_bench::{fig9_queries, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::quick();
    bench_group("fig9_query_downsized_cluster");
    bench_case("all_queries_4_to_3_nodes", DEFAULT_ITERS, || {
        fig9_queries(&cfg, 4)
    });
}
