pub fn f(v: Option<u32>) -> u32 {
    // dhlint: allow(panic) — fixture invariant: caller always passes Some
    v.unwrap()
}
