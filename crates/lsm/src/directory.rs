//! The per-partition local directory.
//!
//! Each storage partition keeps a local directory of the buckets it has been
//! assigned (Section III). Buckets may be split locally without notifying
//! the Cluster Controller; the global directory is only refreshed when a
//! rebalance starts. The local directory therefore is the source of truth
//! for which buckets exist at a partition and which bucket a key belongs to.
//!
//! Like the CC's global directory, lookups go through a [`SlotArray`]
//! indexed by the `D` low-order hash bits (`D` = the partition's local
//! depth), so routing a write or validating a session route is one probe
//! instead of a scan over the bucket set. A partition owns only part of the
//! hash space, so slots outside its buckets are simply empty.

use std::collections::BTreeSet;
use std::fmt;

use crate::bucket::{hash_key, BucketId};
use crate::entry::Key;
use crate::slots::SlotArray;

/// The set of buckets owned by one partition.
///
/// Invariant: no bucket in the directory covers another (buckets are
/// disjoint regions of the hash space).
#[derive(Clone)]
pub struct LocalDirectory {
    buckets: BTreeSet<BucketId>,
    /// Slot array over the low-order `local_depth` hash bits; `None` marks
    /// hash ranges this partition does not own.
    slots: SlotArray<BucketId>,
}

impl PartialEq for LocalDirectory {
    fn eq(&self, other: &Self) -> bool {
        self.buckets == other.buckets
    }
}

impl Eq for LocalDirectory {}

impl fmt::Debug for LocalDirectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalDirectory")
            .field("buckets", &self.buckets)
            .field("local_depth", &self.slots.depth())
            .finish()
    }
}

impl Default for LocalDirectory {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        LocalDirectory {
            buckets: BTreeSet::new(),
            slots: SlotArray::new(),
        }
    }

    /// Creates a directory holding the given buckets.
    ///
    /// # Panics
    /// Panics if two of the buckets overlap.
    pub fn with_buckets(buckets: impl IntoIterator<Item = BucketId>) -> Self {
        let mut dir = LocalDirectory::new();
        for b in buckets {
            // dhlint: allow(panic) — documented constructor contract: input buckets are disjoint
            dir.add(b).expect("overlapping buckets in local directory");
        }
        dir
    }

    /// Adds a bucket, rejecting overlaps with existing buckets.
    ///
    /// The overlap check probes the new bucket's slot lattice instead of
    /// scanning the bucket set: two buckets overlap exactly when one covers
    /// the other, which surfaces as an occupied slot in the lattice.
    pub fn add(&mut self, bucket: BucketId) -> crate::Result<()> {
        if self.slots.lattice_occupied(&bucket) {
            return Err(crate::StorageError::BucketExists(bucket));
        }
        self.buckets.insert(bucket);
        self.slots.insert(bucket, bucket);
        self.debug_validate_caches();
        Ok(())
    }

    /// Removes a bucket. Returns `true` if it was present.
    pub fn remove(&mut self, bucket: &BucketId) -> bool {
        if !self.buckets.remove(bucket) {
            return false;
        }
        self.slots.remove(*bucket, |b| b == bucket);
        self.debug_validate_caches();
        true
    }

    /// True if the exact bucket is present.
    pub fn contains(&self, bucket: &BucketId) -> bool {
        self.buckets.contains(bucket)
    }

    /// Replaces `bucket` with its two split children. Errors if the bucket is
    /// not present.
    pub fn split(&mut self, bucket: &BucketId) -> crate::Result<(BucketId, BucketId)> {
        if !self.remove(bucket) {
            return Err(crate::StorageError::UnknownBucket(*bucket));
        }
        let (lo, hi) = bucket.split();
        // The parent covered both children's hash ranges, so after its
        // removal the children cannot overlap anything; propagate rather
        // than panic if that invariant is ever broken.
        self.add(lo)?;
        self.add(hi)?;
        Ok((lo, hi))
    }

    /// The bucket (if any) owned by this partition that a hash value falls
    /// into: one slot probe.
    pub fn lookup_hash(&self, hash: u64) -> Option<BucketId> {
        self.slots.lookup(hash)
    }

    /// The bucket (if any) that a key falls into.
    pub fn lookup_key(&self, key: &Key) -> Option<BucketId> {
        self.lookup_hash(hash_key(key))
    }

    /// All buckets in this directory, in sorted order.
    pub fn buckets(&self) -> impl Iterator<Item = BucketId> + '_ {
        self.buckets.iter().copied()
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True if the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The maximum depth among the buckets (the partition's local depth).
    /// Cached by the slot array and maintained incrementally.
    pub fn local_depth(&self) -> u8 {
        self.slots.depth()
    }

    /// Checks the no-overlap invariant plus slot/bucket agreement (used by
    /// property tests and debug assertions).
    pub fn is_consistent(&self) -> bool {
        let v: Vec<BucketId> = self.buckets.iter().copied().collect();
        for (i, a) in v.iter().enumerate() {
            for b in v.iter().skip(i + 1) {
                if a.covers(b) || b.covers(a) {
                    return false;
                }
            }
        }
        if self.slots.num_slots() != 1usize << self.slots.depth() {
            return false;
        }
        // Every slot must agree with the bucket set: an owned slot points at
        // the unique bucket containing its hashes, an empty slot at nothing.
        self.slots.slots().iter().enumerate().all(|(idx, slot)| {
            let expect = v.iter().find(|b| b.contains_hash(idx as u64)).copied();
            *slot == expect
        })
    }

    #[inline]
    fn debug_validate_caches(&self) {
        #[cfg(debug_assertions)]
        {
            let recomputed = self.buckets.iter().map(|b| b.depth).max().unwrap_or(0);
            self.slots.debug_validate(recomputed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn add_and_lookup() {
        let mut d = LocalDirectory::new();
        d.add(BucketId::new(0b00, 2)).unwrap();
        d.add(BucketId::new(0b10, 2)).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.lookup_hash(0b100), Some(BucketId::new(0b00, 2)));
        assert_eq!(d.lookup_hash(0b110), Some(BucketId::new(0b10, 2)));
        assert_eq!(d.lookup_hash(0b01), None, "bucket 01 not owned here");
    }

    #[test]
    fn overlapping_buckets_are_rejected() {
        let mut d = LocalDirectory::new();
        d.add(BucketId::new(0b0, 1)).unwrap();
        assert!(d.add(BucketId::new(0b00, 2)).is_err());
        assert!(d.add(BucketId::new(0, 0)).is_err());
        assert!(d.is_consistent());
    }

    #[test]
    fn split_replaces_bucket_with_children() {
        let mut d = LocalDirectory::new();
        let b = BucketId::new(0b1, 1);
        d.add(b).unwrap();
        let (lo, hi) = d.split(&b).unwrap();
        assert!(!d.contains(&b));
        assert!(d.contains(&lo) && d.contains(&hi));
        assert_eq!(d.local_depth(), 2);
        assert!(d.is_consistent());
        assert!(d.split(&b).is_err(), "splitting a missing bucket fails");
    }

    #[test]
    fn lookup_key_matches_bucket_membership() {
        let mut d = LocalDirectory::new();
        d.add(BucketId::new(0, 1)).unwrap();
        d.add(BucketId::new(1, 2)).unwrap();
        d.add(BucketId::new(3, 2)).unwrap();
        for i in 0..1000u64 {
            let k = Key::from_u64(i);
            let b = d.lookup_key(&k).expect("full coverage");
            assert!(b.contains_key(&k));
        }
    }

    #[test]
    fn remove_shrinks_the_slot_array_and_depth_cache() {
        let mut d = LocalDirectory::new();
        d.add(BucketId::new(0, 1)).unwrap();
        d.add(BucketId::new(0b01, 2)).unwrap();
        d.add(BucketId::new(0b11, 2)).unwrap();
        assert_eq!(d.local_depth(), 2);
        assert!(d.remove(&BucketId::new(0b01, 2)));
        assert_eq!(d.local_depth(), 2, "a depth-2 bucket remains");
        assert!(d.remove(&BucketId::new(0b11, 2)));
        assert_eq!(d.local_depth(), 1, "depth cache must shrink");
        assert!(d.is_consistent());
        assert!(
            !d.remove(&BucketId::new(0b11, 2)),
            "double remove is a no-op"
        );
        assert_eq!(d.lookup_hash(0b11), None);
        assert_eq!(d.lookup_hash(0b10), Some(BucketId::new(0, 1)));
    }

    #[test]
    fn prop_splits_preserve_consistency_and_coverage() {
        // Start with the root bucket and repeatedly split the bucket
        // containing an arbitrary hash; the directory must stay
        // consistent and keep covering the full hash space.
        for case in 0..16u64 {
            let seed = 0xd1c0_0000 + case;
            let mut rng = SplitMix64::seed_from_u64(seed);
            let n = rng.gen_range(0..40) as usize;
            let splits: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
            let mut d = LocalDirectory::new();
            d.add(BucketId::root()).unwrap();
            for &h in &splits {
                let b = d.lookup_hash(h).expect("coverage");
                if b.depth < 20 {
                    d.split(&b).unwrap();
                }
            }
            assert!(d.is_consistent(), "seed {seed}, splits {splits:#x?}");
            for h in [0u64, 1, 2, 3, 1 << 20, u64::MAX, 0xdead_beef] {
                assert!(
                    d.lookup_hash(h).is_some(),
                    "seed {seed}: hash {h:#x} uncovered"
                );
            }
        }
    }

    #[test]
    fn prop_slot_lookup_matches_linear_scan() {
        // Random add/remove/split sequences over a partial hash space: the
        // slot-array lookup must agree with a linear scan over the bucket
        // set for every probed hash.
        for case in 0..16u64 {
            let seed = 0xd1c1_0000 + case;
            let mut rng = SplitMix64::seed_from_u64(seed);
            let mut d = LocalDirectory::new();
            d.add(BucketId::new(0, 2)).unwrap();
            d.add(BucketId::new(2, 2)).unwrap();
            for _ in 0..rng.gen_range(5..60) {
                let buckets: Vec<BucketId> = d.buckets().collect();
                match rng.gen_range(0..3) {
                    0 if !buckets.is_empty() => {
                        let b = buckets[rng.gen_range(0..buckets.len() as u64) as usize];
                        if b.depth < 12 {
                            d.split(&b).unwrap();
                        }
                    }
                    1 if buckets.len() > 1 => {
                        let b = buckets[rng.gen_range(0..buckets.len() as u64) as usize];
                        d.remove(&b);
                    }
                    _ => {
                        let bits = rng.next_u64() as u32;
                        let depth = rng.gen_range(1..8) as u8;
                        let _ = d.add(BucketId::new(bits, depth));
                    }
                }
                for _ in 0..16 {
                    let h = rng.next_u64();
                    let scan = d.buckets().find(|b| b.contains_hash(h));
                    assert_eq!(d.lookup_hash(h), scan, "seed {seed}: hash {h:#x}");
                }
                assert!(d.is_consistent(), "seed {seed}");
            }
        }
    }
}
