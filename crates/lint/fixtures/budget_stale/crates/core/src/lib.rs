pub fn f(v: Option<u32>) -> u32 {
    // dhlint: allow(panic) — fixture invariant one
    v.unwrap()
}
