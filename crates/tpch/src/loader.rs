//! Loading the TPC-H database into a cluster.
//!
//! The loader creates the eight TPC-H datasets with the rebalancing scheme
//! under evaluation and the two secondary indexes the paper builds
//! (Section VI-A): a LineItem index led by `l_shipdate` and an Orders index
//! led by `o_orderdate`, both enabling index-only plans for date-range
//! queries. It then ingests the generated data through data feeds.

use dynahash_cluster::{Cluster, DatasetId, DatasetSpec, IngestReport, SecondaryIndexDef};
use dynahash_core::Scheme;
use dynahash_lsm::entry::Key;
use dynahash_lsm::Bytes;

use crate::generator::{TpchData, TpchScale};
use crate::schema::{field_extractor, L_SHIPDATE_FIELD, O_ORDERDATE_FIELD};

/// The dataset ids of the loaded TPC-H tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpchTables {
    /// LINEITEM dataset.
    pub lineitem: DatasetId,
    /// ORDERS dataset.
    pub orders: DatasetId,
    /// CUSTOMER dataset.
    pub customer: DatasetId,
    /// PART dataset.
    pub part: DatasetId,
    /// SUPPLIER dataset.
    pub supplier: DatasetId,
    /// PARTSUPP dataset.
    pub partsupp: DatasetId,
    /// NATION dataset.
    pub nation: DatasetId,
    /// REGION dataset.
    pub region: DatasetId,
}

/// Name of the LineItem covering index from the paper.
pub const LINEITEM_INDEX: &str = "idx_lineitem_shipdate";
/// Name of the Orders covering index from the paper.
pub const ORDERS_INDEX: &str = "idx_orders_orderdate";

/// Creates the TPC-H datasets under the given scheme, generates data at the
/// given scale, and ingests it. Returns the table handles, the generated
/// data (for query verification), and the combined ingestion report.
pub fn load_tpch(
    cluster: &mut Cluster,
    scheme: Scheme,
    scale: TpchScale,
) -> Result<(TpchTables, TpchData, IngestReport), dynahash_cluster::ClusterError> {
    let data = TpchData::generate(scale);
    let memtable_budget = 64 * 1024;

    let lineitem = cluster.create_dataset(
        DatasetSpec::new("lineitem", scheme)
            .with_secondary_index(SecondaryIndexDef::new(
                LINEITEM_INDEX,
                field_extractor(L_SHIPDATE_FIELD),
            ))
            .with_memtable_budget(memtable_budget),
    )?;
    let orders = cluster.create_dataset(
        DatasetSpec::new("orders", scheme)
            .with_secondary_index(SecondaryIndexDef::new(
                ORDERS_INDEX,
                field_extractor(O_ORDERDATE_FIELD),
            ))
            .with_memtable_budget(memtable_budget),
    )?;
    let customer = cluster.create_dataset(
        DatasetSpec::new("customer", scheme).with_memtable_budget(memtable_budget),
    )?;
    let part = cluster
        .create_dataset(DatasetSpec::new("part", scheme).with_memtable_budget(memtable_budget))?;
    let supplier = cluster.create_dataset(
        DatasetSpec::new("supplier", scheme).with_memtable_budget(memtable_budget),
    )?;
    let partsupp = cluster.create_dataset(
        DatasetSpec::new("partsupp", scheme).with_memtable_budget(memtable_budget),
    )?;
    let nation = cluster
        .create_dataset(DatasetSpec::new("nation", scheme).with_memtable_budget(memtable_budget))?;
    let region = cluster
        .create_dataset(DatasetSpec::new("region", scheme).with_memtable_budget(memtable_budget))?;

    // Each table is fed through its own client session — the sanctioned
    // data path: the feed routes from the session's cached directory
    // snapshot and participates in the stale-directory redirect protocol.
    let feed = |cluster: &mut Cluster,
                dataset: DatasetId,
                records: Vec<(Key, Bytes)>|
     -> Result<IngestReport, dynahash_cluster::ClusterError> {
        let mut session = cluster.session(dataset)?;
        session.ingest(cluster, records)
    };
    let mut report = feed(
        cluster,
        region,
        data.region
            .iter()
            .map(|r| (r.primary_key(), r.encode()))
            .collect(),
    )?;
    for r in [
        feed(
            cluster,
            nation,
            data.nation
                .iter()
                .map(|r| (r.primary_key(), r.encode()))
                .collect(),
        )?,
        feed(
            cluster,
            supplier,
            data.supplier
                .iter()
                .map(|r| (r.primary_key(), r.encode()))
                .collect(),
        )?,
        feed(
            cluster,
            customer,
            data.customer
                .iter()
                .map(|r| (r.primary_key(), r.encode()))
                .collect(),
        )?,
        feed(
            cluster,
            part,
            data.part
                .iter()
                .map(|r| (r.primary_key(), r.encode()))
                .collect(),
        )?,
        feed(
            cluster,
            partsupp,
            data.partsupp
                .iter()
                .map(|r| (r.primary_key(), r.encode()))
                .collect(),
        )?,
        feed(
            cluster,
            orders,
            data.orders
                .iter()
                .map(|r| (r.primary_key(), r.encode()))
                .collect(),
        )?,
        feed(
            cluster,
            lineitem,
            data.lineitem
                .iter()
                .map(|r| (r.primary_key(), r.encode()))
                .collect(),
        )?,
    ] {
        report = report.merge(&r);
    }

    Ok((
        TpchTables {
            lineitem,
            orders,
            customer,
            part,
            supplier,
            partsupp,
            nation,
            region,
        },
        data,
        report,
    ))
}

/// Converts LineItem rows into (key, payload) pairs for ingestion (used for
/// concurrent-write workloads during rebalancing).
pub fn lineitem_records(rows: &[crate::schema::LineItem]) -> Vec<(Key, Bytes)> {
    rows.iter().map(|l| (l.primary_key(), l.encode())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_small_tpch_under_dynahash() {
        let mut cluster = Cluster::new(2);
        let scheme = Scheme::dynahash(64 * 1024, 8);
        let (tables, data, report) = load_tpch(&mut cluster, scheme, TpchScale::tiny()).unwrap();
        assert_eq!(report.records as usize, data.total_rows());
        assert_eq!(
            cluster.dataset_len(tables.lineitem).unwrap(),
            data.lineitem.len()
        );
        assert_eq!(
            cluster.dataset_len(tables.orders).unwrap(),
            data.orders.len()
        );
        assert_eq!(cluster.dataset_len(tables.nation).unwrap(), 25);
        cluster.check_dataset_consistency(tables.lineitem).unwrap();
        cluster.check_dataset_consistency(tables.orders).unwrap();
        assert!(report.elapsed.as_secs_f64() > 0.0);
    }

    #[test]
    fn load_under_hashing_scheme() {
        let mut cluster = Cluster::new(2);
        let (tables, data, _) =
            load_tpch(&mut cluster, Scheme::Hashing, TpchScale::tiny()).unwrap();
        assert_eq!(
            cluster.dataset_len(tables.lineitem).unwrap(),
            data.lineitem.len()
        );
        cluster.check_dataset_consistency(tables.lineitem).unwrap();
    }

    #[test]
    fn lineitem_records_roundtrip_keys() {
        let data = TpchData::generate(TpchScale::tiny());
        let recs = lineitem_records(&data.lineitem[..10]);
        assert_eq!(recs.len(), 10);
        assert_eq!(recs[0].0, data.lineitem[0].primary_key());
    }
}
