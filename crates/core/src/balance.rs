//! The greedy directory-balancing algorithm (Algorithm 2 of the paper).
//!
//! Given the set of buckets (with their sizes) and a target topology, the
//! Cluster Controller computes a new bucket-to-partition assignment:
//!
//! 1. buckets that are *unassigned* — displaced because their node is being
//!    removed, or brand new — are assigned to the least loaded partition;
//! 2. the assignment is then refined iteratively: the smallest bucket of the
//!    most loaded partition is moved to the least loaded partition as long as
//!    doing so reduces the load difference between the two.
//!
//! Finding the optimal assignment is NP-hard (it subsumes the partition
//! problem), which is why the paper settles for this greedy heuristic. Ties
//! between equally loaded partitions are broken by the load of the node
//! hosting them, then by partition id for determinism.

use std::collections::BTreeMap;

use dynahash_lsm::BucketId;

use crate::topology::{ClusterTopology, NodeId, PartitionId};
use crate::{CoreError, Result};

/// The size information of one bucket fed into the balancer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketLoad {
    /// The bucket.
    pub bucket: BucketId,
    /// Its size. The paper uses the normalized size `2^(D-d)`; callers may
    /// also pass actual byte sizes — the algorithm only compares sums.
    pub size: u64,
    /// The partition currently holding the bucket, if it is still part of
    /// the target topology. `None` marks an unassigned (displaced) bucket.
    pub current: Option<PartitionId>,
}

/// Input to [`balance_assignment`].
#[derive(Debug, Clone)]
pub struct BalanceInput {
    /// All buckets of the dataset and their sizes.
    pub buckets: Vec<BucketLoad>,
    /// The target topology after scaling in/out.
    pub target: ClusterTopology,
}

/// Per-partition balancing state: the hosting node is resolved once at
/// construction, so the hot add/remove/ordering paths cannot encounter an
/// unknown partition and need no panic paths.
#[derive(Debug)]
struct PartitionState {
    node: NodeId,
    load: u64,
}

#[derive(Debug)]
struct Loads {
    partitions: BTreeMap<PartitionId, PartitionState>,
    node_load: BTreeMap<NodeId, u64>,
}

impl Loads {
    /// Builds the load tracker, resolving every partition's node up front.
    /// A partition the topology cannot place is a malformed input and is
    /// reported as an error instead of a panic.
    fn new(topology: &ClusterTopology) -> Result<Self> {
        let mut partitions = BTreeMap::new();
        let mut node_load = BTreeMap::new();
        for p in topology.partitions() {
            let node = topology.node_of(p).ok_or(CoreError::UnknownPartition(p))?;
            partitions.insert(p, PartitionState { node, load: 0 });
            node_load.entry(node).or_insert(0u64);
        }
        Ok(Loads {
            partitions,
            node_load,
        })
    }

    fn add(&mut self, partition: PartitionId, size: u64) -> Result<()> {
        let state = self
            .partitions
            .get_mut(&partition)
            .ok_or(CoreError::UnknownPartition(partition))?;
        state.load += size;
        *self.node_load.entry(state.node).or_insert(0) += size;
        Ok(())
    }

    fn remove(&mut self, partition: PartitionId, size: u64) -> Result<()> {
        let state = self
            .partitions
            .get_mut(&partition)
            .ok_or(CoreError::UnknownPartition(partition))?;
        state.load = state.load.saturating_sub(size);
        let node = self.node_load.entry(state.node).or_insert(0);
        *node = node.saturating_sub(size);
        Ok(())
    }

    fn load(&self, partition: PartitionId) -> u64 {
        self.partitions.get(&partition).map_or(0, |s| s.load)
    }

    /// Ordering key used by "more loaded than": partition load first, node
    /// load second, partition id last (for determinism). Every node was
    /// seeded into `node_load` at construction, so the fallback load of 0
    /// is unreachable in practice and merely avoids a panic path.
    fn order_key(&self, partition: PartitionId, state: &PartitionState) -> (u64, u64, u32) {
        let node_load = self.node_load.get(&state.node).copied().unwrap_or(0);
        (state.load, node_load, partition.0)
    }

    fn most_loaded(&self) -> Option<PartitionId> {
        self.partitions
            .iter()
            .max_by_key(|(p, s)| self.order_key(**p, s))
            .map(|(p, _)| *p)
    }

    fn least_loaded(&self) -> Option<PartitionId> {
        self.partitions
            .iter()
            .min_by_key(|(p, s)| self.order_key(**p, s))
            .map(|(p, _)| *p)
    }
}

/// Computes the new bucket-to-partition assignment (Algorithm 2).
pub fn balance_assignment(input: &BalanceInput) -> Result<BTreeMap<BucketId, PartitionId>> {
    if input.target.is_empty() {
        return Err(CoreError::EmptyTopology);
    }
    let mut loads = Loads::new(&input.target)?;
    let mut assignment: BTreeMap<BucketId, PartitionId> = BTreeMap::new();
    // Per-partition bucket lists, kept to find "the smallest bucket of the
    // most loaded partition".
    let mut per_partition: BTreeMap<PartitionId, Vec<(BucketId, u64)>> = BTreeMap::new();
    for p in input.target.partitions() {
        per_partition.insert(p, Vec::new());
    }

    // A bucket keeps its current partition only when that partition is
    // still part of the target topology.
    let current_valid = |b: &BucketLoad| b.current.filter(|p| input.target.node_of(*p).is_some());

    // Buckets that keep their current partition.
    for (b, p) in input
        .buckets
        .iter()
        .filter_map(|b| current_valid(b).map(|p| (b, p)))
    {
        assignment.insert(b.bucket, p);
        loads.add(p, b.size)?;
        per_partition.entry(p).or_default().push((b.bucket, b.size));
    }

    // Lines 2-3: assign displaced/new buckets to the least loaded partition,
    // biggest first so large buckets land before the fine-tuning.
    let mut unassigned: Vec<&BucketLoad> = input
        .buckets
        .iter()
        .filter(|b| current_valid(b).is_none())
        .collect();
    unassigned.sort_by(|a, b| b.size.cmp(&a.size).then(a.bucket.cmp(&b.bucket)));
    for b in unassigned {
        let p = loads.least_loaded().ok_or(CoreError::EmptyTopology)?;
        assignment.insert(b.bucket, p);
        loads.add(p, b.size)?;
        per_partition.entry(p).or_default().push((b.bucket, b.size));
    }

    // Lines 4-11: iteratively move the smallest bucket from the most loaded
    // partition to the least loaded one while it narrows the gap.
    while let (Some(pmax), Some(pmin)) = (loads.most_loaded(), loads.least_loaded()) {
        if pmax == pmin {
            break;
        }
        let Some(&(bucket, size)) = per_partition
            .get(&pmax)
            .and_then(|list| list.iter().min_by_key(|(b, s)| (*s, *b)))
        else {
            break;
        };
        let max_load = loads.load(pmax) as i128;
        let min_load = loads.load(pmin) as i128;
        let size_i = size as i128;
        let new_diff = ((max_load - size_i) - (min_load + size_i)).abs();
        let old_diff = max_load - min_load;
        if new_diff < old_diff {
            // perform the move
            loads.remove(pmax, size)?;
            loads.add(pmin, size)?;
            if let Some(list) = per_partition.get_mut(&pmax) {
                list.retain(|(b, _)| *b != bucket);
            }
            per_partition.entry(pmin).or_default().push((bucket, size));
            assignment.insert(bucket, pmin);
        } else {
            break;
        }
    }

    Ok(assignment)
}

/// Computes the load-balance factor (max/avg partition load) of an
/// assignment, given the bucket sizes. Used by the ablation benchmark and by
/// tests to compare Algorithm 2 against naive assignments.
pub fn load_balance_factor(
    assignment: &BTreeMap<BucketId, PartitionId>,
    sizes: &BTreeMap<BucketId, u64>,
    topology: &ClusterTopology,
) -> f64 {
    let mut loads: BTreeMap<PartitionId, u64> =
        topology.partitions().into_iter().map(|p| (p, 0)).collect();
    for (b, p) in assignment {
        if let Some(l) = loads.get_mut(p) {
            *l += sizes.get(b).copied().unwrap_or(0);
        }
    }
    let max = loads.values().copied().max().unwrap_or(0) as f64;
    let sum: u64 = loads.values().sum();
    let avg = sum as f64 / loads.len().max(1) as f64;
    if avg == 0.0 {
        1.0
    } else {
        max / avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynahash_lsm::rng::SplitMix64;

    fn uniform_buckets(depth: u8, topology: &ClusterTopology) -> Vec<BucketLoad> {
        // 2^depth buckets of equal size currently assigned round-robin
        let parts = topology.partitions();
        (0..(1u32 << depth))
            .map(|bits| BucketLoad {
                bucket: BucketId::new(bits, depth),
                size: 1,
                current: Some(parts[bits as usize % parts.len()]),
            })
            .collect()
    }

    #[test]
    fn balanced_input_stays_put() {
        let topo = ClusterTopology::uniform(2, 4);
        let buckets = uniform_buckets(5, &topo); // 32 buckets over 8 partitions
        let input = BalanceInput {
            buckets: buckets.clone(),
            target: topo.clone(),
        };
        let out = balance_assignment(&input).unwrap();
        // already balanced: nothing should move
        for b in &buckets {
            assert_eq!(out[&b.bucket], b.current.unwrap());
        }
    }

    #[test]
    fn removing_a_node_reassigns_only_its_buckets() {
        let topo = ClusterTopology::uniform(4, 2); // 8 partitions
        let buckets = uniform_buckets(5, &topo); // 32 buckets
        let target = topo.without_node(NodeId(3));
        let input = BalanceInput {
            buckets: buckets
                .iter()
                .map(|b| BucketLoad {
                    bucket: b.bucket,
                    size: b.size,
                    // buckets on the removed node become unassigned
                    current: b.current.filter(|p| target.node_of(*p).is_some()),
                })
                .collect(),
            target: target.clone(),
        };
        let out = balance_assignment(&input).unwrap();
        let moved: Vec<_> = buckets
            .iter()
            .filter(|b| Some(out[&b.bucket]) != b.current)
            .collect();
        // only the displaced buckets (those on node 3: 2 partitions * 4 buckets)
        assert_eq!(moved.len(), 8);
        for b in &buckets {
            assert!(target.node_of(out[&b.bucket]).is_some());
        }
        let sizes: BTreeMap<BucketId, u64> = buckets.iter().map(|b| (b.bucket, b.size)).collect();
        let f = load_balance_factor(&out, &sizes, &target);
        assert!(f <= 2.0, "balance factor too high: {f}");
    }

    #[test]
    fn adding_a_node_moves_roughly_proportional_share() {
        let topo = ClusterTopology::uniform(3, 2); // 6 partitions
        let buckets = uniform_buckets(6, &topo); // 64 buckets
        let target = topo.with_added_node(2); // 8 partitions
        let input = BalanceInput {
            buckets: buckets.clone(),
            target: target.clone(),
        };
        let out = balance_assignment(&input).unwrap();
        let moved = buckets
            .iter()
            .filter(|b| Some(out[&b.bucket]) != b.current)
            .count();
        // local rebalancing: roughly 2/8 of the buckets move, definitely not all
        assert!(moved >= 8, "new node must receive buckets (moved={moved})");
        assert!(moved <= 24, "global reshuffle detected (moved={moved})");
        let new_parts: Vec<PartitionId> =
            target.partitions_of_node(NodeId(3)).into_iter().collect();
        let received: usize = new_parts
            .iter()
            .map(|p| out.values().filter(|v| *v == p).count())
            .sum();
        assert!(
            received >= 8,
            "new node should hold ~1/4 of 64 buckets, got {received}"
        );
    }

    #[test]
    fn skewed_bucket_sizes_are_evened_out() {
        // one partition starts with all the big buckets
        let topo = ClusterTopology::uniform(2, 1);
        let buckets = vec![
            BucketLoad {
                bucket: BucketId::new(0, 2),
                size: 100,
                current: Some(PartitionId(0)),
            },
            BucketLoad {
                bucket: BucketId::new(1, 2),
                size: 100,
                current: Some(PartitionId(0)),
            },
            BucketLoad {
                bucket: BucketId::new(2, 2),
                size: 1,
                current: Some(PartitionId(1)),
            },
            BucketLoad {
                bucket: BucketId::new(3, 2),
                size: 1,
                current: Some(PartitionId(1)),
            },
        ];
        let input = BalanceInput {
            buckets: buckets.clone(),
            target: topo.clone(),
        };
        let out = balance_assignment(&input).unwrap();
        let sizes: BTreeMap<BucketId, u64> = buckets.iter().map(|b| (b.bucket, b.size)).collect();
        let f = load_balance_factor(&out, &sizes, &topo);
        let naive: BTreeMap<BucketId, PartitionId> = buckets
            .iter()
            .map(|b| (b.bucket, b.current.unwrap()))
            .collect();
        let f_naive = load_balance_factor(&naive, &sizes, &topo);
        assert!(
            f < f_naive,
            "algorithm 2 must improve the balance ({f} vs {f_naive})"
        );
        assert!(f < 1.2);
    }

    #[test]
    fn empty_topology_is_rejected() {
        let input = BalanceInput {
            buckets: vec![],
            target: ClusterTopology::default(),
        };
        assert!(matches!(
            balance_assignment(&input),
            Err(CoreError::EmptyTopology)
        ));
    }

    #[test]
    fn all_buckets_unassigned_spreads_evenly() {
        let topo = ClusterTopology::uniform(2, 2);
        let buckets: Vec<BucketLoad> = (0..16u32)
            .map(|bits| BucketLoad {
                bucket: BucketId::new(bits, 4),
                size: 1,
                current: None,
            })
            .collect();
        let out = balance_assignment(&BalanceInput {
            buckets: buckets.clone(),
            target: topo.clone(),
        })
        .unwrap();
        for p in topo.partitions() {
            assert_eq!(out.values().filter(|v| **v == p).count(), 4);
        }
    }

    #[test]
    fn prop_every_bucket_is_assigned_to_a_valid_partition() {
        for case in 0..16u64 {
            let seed = 0xba10_0000 + case;
            let mut rng = SplitMix64::seed_from_u64(seed);
            let nbuckets = rng.gen_range(1..64) as usize;
            let nodes = rng.gen_range(1..6) as u32;
            let ppn = rng.gen_range(1..4) as u32;
            let topo = ClusterTopology::uniform(nodes, ppn);
            let buckets: Vec<BucketLoad> = (0..nbuckets)
                .map(|i| BucketLoad {
                    bucket: BucketId::new(i as u32, 6),
                    size: rng.gen_range(1..100),
                    current: None,
                })
                .collect();
            let out = balance_assignment(&BalanceInput {
                buckets: buckets.clone(),
                target: topo.clone(),
            })
            .unwrap();
            assert_eq!(out.len(), nbuckets, "seed {seed}");
            for b in &buckets {
                assert!(
                    topo.node_of(out[&b.bucket]).is_some(),
                    "seed {seed}: bucket {} assigned outside the topology",
                    b.bucket
                );
            }
        }
    }

    #[test]
    fn prop_balance_never_worse_than_everything_on_one_partition() {
        for case in 0..16u64 {
            let seed = 0xba11_0000 + case;
            let mut rng = SplitMix64::seed_from_u64(seed);
            let nbuckets = rng.gen_range(2..40) as usize;
            let nodes = rng.gen_range(2..6) as u32;
            let topo = ClusterTopology::uniform(nodes, 2);
            let p0 = topo.partitions()[0];
            let buckets: Vec<BucketLoad> = (0..nbuckets)
                .map(|i| BucketLoad {
                    bucket: BucketId::new(i as u32, 6),
                    size: rng.gen_range(1..1000),
                    current: Some(p0),
                })
                .collect();
            let sizes_map: BTreeMap<BucketId, u64> =
                buckets.iter().map(|b| (b.bucket, b.size)).collect();
            let out = balance_assignment(&BalanceInput {
                buckets: buckets.clone(),
                target: topo.clone(),
            })
            .unwrap();
            let naive: BTreeMap<BucketId, PartitionId> =
                buckets.iter().map(|b| (b.bucket, p0)).collect();
            let f_out = load_balance_factor(&out, &sizes_map, &topo);
            let f_naive = load_balance_factor(&naive, &sizes_map, &topo);
            assert!(
                f_out <= f_naive + 1e-9,
                "seed {seed}: balanced factor {f_out} worse than naive {f_naive}"
            );
        }
    }
}
