//! Ablation A2: load balance of Algorithm 2 vs. round-robin assignment under
//! bucket-size skew.

use dynahash_bench::ablation_balance_quality;
use dynahash_bench::timing::{bench_case, bench_group};

fn main() {
    bench_group("ablation_balance_quality");
    bench_case("skew_sweep", 20, || {
        ablation_balance_quality(&[1, 2, 4, 8, 16, 32])
    });
}
