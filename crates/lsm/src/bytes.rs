//! A cheaply-clonable, immutable byte buffer.
//!
//! This is an in-tree, zero-dependency stand-in for the `bytes::Bytes` type:
//! the repository must build fully offline, so the subset of the `bytes` API
//! that the codebase uses is provided here on top of `Arc<[u8]>`. Cloning is
//! O(1) (a reference-count bump), and [`Bytes::slice`] shares the underlying
//! allocation instead of copying.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer with O(1) clone and slice.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer from a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a new `Bytes` viewing the given sub-range of this buffer.
    /// The underlying allocation is shared, not copied.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "slice range {start}..{end} out of bounds for Bytes of length {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copies the buffer's contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.as_ref();
        if b.len() <= 16 {
            write!(f, "Bytes({b:?})")
        } else {
            write!(f, "Bytes({:?}… len={})", &b[..16], b.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_ref(), &[1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn slice_shares_and_offsets() {
        let a = Bytes::from((0u8..10).collect::<Vec<u8>>());
        let s = a.slice(2..6);
        assert_eq!(s.as_ref(), &[2, 3, 4, 5]);
        let ss = s.slice(1..=2);
        assert_eq!(ss.as_ref(), &[3, 4]);
        assert_eq!(a.slice(..).len(), 10);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8, 2]).slice(0..3);
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc").as_ref(), b"abc");
        assert_eq!(Bytes::from("xy").to_vec(), vec![b'x', b'y']);
    }

    #[test]
    fn ordering_and_hash_follow_contents() {
        use std::collections::BTreeSet;
        let set: BTreeSet<Bytes> = [
            Bytes::from_static(b"b"),
            Bytes::from_static(b"a"),
            Bytes::from(vec![b'a']),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 2);
    }
}
