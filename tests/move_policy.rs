//! The Records and Components move policies must be observationally
//! identical: whatever the scheme, rebalance direction, or mid-flight feed,
//! both leave the same bytes on the same partitions, answer the same
//! queries, and pass the full rebalance-integrity contract. A seeded
//! property harness (same style as `rebalance_invariants.rs`: the failing
//! seed is printed on panic) checks that equivalence, and dedicated
//! scenarios exercise the component path's crash recovery — a destination
//! losing its uncommitted pending state between the ship and the install is
//! re-shipped from the moves recorded in the metadata log.

use std::collections::BTreeMap;

use dynahash::cluster::{
    Cluster, ClusterConfig, CostModel, DatasetSpec, RebalanceJob, RebalanceOptions,
    SecondaryIndexDef,
};
use dynahash::core::{MovePolicy, NodeId, PartitionId, RebalanceOutcome, Scheme};
use dynahash::lsm::entry::{Key, Value};
use dynahash::lsm::rng::SplitMix64;
use dynahash::lsm::{Bytes, SecondaryEntry};

fn payload(i: u64) -> Bytes {
    let mut v = (i % 37).to_be_bytes().to_vec();
    v.extend_from_slice(&[(i % 251) as u8; 48]);
    Bytes::from(v)
}

fn record(i: u64) -> (Key, Value) {
    (Key::from_u64(i), payload(i))
}

fn spec(scheme: Scheme) -> DatasetSpec {
    DatasetSpec::new("events", scheme).with_secondary_index(SecondaryIndexDef::new(
        "idx_tag",
        |p: &[u8]| {
            if p.len() >= 8 {
                let mut b = [0u8; 8];
                b.copy_from_slice(&p[..8]);
                Some(Key::from_u64(u64::from_be_bytes(b)))
            } else {
                None
            }
        },
    ))
}

fn cluster_with(nodes: u32, scheme: Scheme, n: u64) -> (Cluster, u32) {
    let mut cluster = Cluster::with_config(
        nodes,
        ClusterConfig {
            partitions_per_node: 2,
            cost_model: CostModel::default(),
        },
    );
    let ds = cluster.create_dataset(spec(scheme)).unwrap();
    cluster
        .session(ds)
        .unwrap()
        .ingest(&mut cluster, (0..n).map(record))
        .unwrap();
    (cluster, ds)
}

/// Everything a scenario observes after the rebalance: the full record set,
/// its placement, and the secondary-index answers.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    contents: BTreeMap<Key, Value>,
    distribution: BTreeMap<PartitionId, usize>,
    index_hits: Vec<(PartitionId, Vec<SecondaryEntry>)>,
}

fn observe(cluster: &mut Cluster, ds: u32) -> Observation {
    let (contents, raw) = cluster.query().collect_records(ds).unwrap();
    assert_eq!(raw, contents.len(), "a record is visible on two partitions");
    let distribution = cluster.dataset_distribution(ds).unwrap();
    let index_hits = cluster
        .query()
        .index_scan(ds, "idx_tag", None, None)
        .unwrap();
    Observation {
        contents,
        distribution,
        index_hits,
    }
}

/// One scenario: load, scale out or in, rebalance under `policy` with a
/// mid-flight feed, and return what the cluster then looks like.
fn run_scenario(
    policy: MovePolicy,
    scheme: Scheme,
    grow: bool,
    n_records: u64,
    n_writes: u64,
    max_moves: usize,
) -> Observation {
    let (mut cluster, ds) = cluster_with(3, scheme, n_records);
    let target = if grow {
        cluster.add_node().unwrap();
        cluster.topology().clone()
    } else {
        cluster.topology_without(NodeId(2))
    };
    let writes: Vec<(Key, Value)> = (500_000..500_000 + n_writes).map(record).collect();
    let report = cluster
        .rebalance(
            ds,
            &target,
            RebalanceOptions::none()
                .with_max_concurrent_moves(max_moves)
                .with_move_policy(policy)
                .with_concurrent_writes(writes),
        )
        .unwrap();
    assert_eq!(report.outcome, RebalanceOutcome::Committed);
    assert_eq!(report.concurrent_writes_applied, n_writes);
    cluster
        .check_rebalance_integrity(ds, report.rebalance_id)
        .unwrap();
    observe(&mut cluster, ds)
}

/// Number of randomized cases for the equivalence property.
const CASES: u64 = 12;

#[test]
fn prop_records_and_components_policies_are_byte_identical() {
    for case in 0..CASES {
        let seed = 0x6060_2200 + case;
        let mut rng = SplitMix64::seed_from_u64(seed);
        let scheme = match rng.gen_range(0..3) {
            0 => Scheme::StaticHash { num_buckets: 16 },
            1 => Scheme::StaticHash { num_buckets: 32 },
            _ => Scheme::dynahash(16 * 1024, 8),
        };
        let grow = rng.gen_range(0..2) == 0;
        let n_records = rng.gen_range(400..1000);
        let n_writes = rng.gen_range(0..250);
        let max_moves = rng.gen_range(1..5) as usize;
        let result = std::panic::catch_unwind(|| {
            let records = run_scenario(
                MovePolicy::Records,
                scheme,
                grow,
                n_records,
                n_writes,
                max_moves,
            );
            let components = run_scenario(
                MovePolicy::Components,
                scheme,
                grow,
                n_records,
                n_writes,
                max_moves,
            );
            assert_eq!(
                records.contents, components.contents,
                "post-rebalance contents differ between policies"
            );
            assert_eq!(
                records.distribution, components.distribution,
                "record placement differs between policies"
            );
            assert_eq!(
                records.index_hits, components.index_hits,
                "secondary-index answers differ between policies"
            );
        });
        if let Err(panic) = result {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "policy equivalence failed\n  seed: {seed}\n  scheme: {scheme:?} grow: {grow} \
                 records: {n_records} writes: {n_writes} max_moves: {max_moves}\n  cause: {msg}"
            );
        }
    }
}

/// Shipped components arrive at the destination as the same sealed data the
/// source held: the installed bucket trees contain handles marked shipped,
/// sharing the source's component ids (recorded in the ship log records).
#[test]
fn destinations_serve_the_shipped_components_directly() {
    let (mut cluster, ds) = cluster_with(2, Scheme::StaticHash { num_buckets: 16 }, 1500);
    cluster.add_node().unwrap();
    let target = cluster.topology().clone();
    let report = cluster
        .rebalance(ds, &target, RebalanceOptions::none())
        .unwrap();
    assert_eq!(report.outcome, RebalanceOutcome::Committed);

    let shipped: Vec<dynahash::lsm::wal::ShippedMove> = cluster
        .controller
        .metadata_log
        .shipped_moves(1)
        .into_iter()
        .cloned()
        .collect();
    assert!(!shipped.is_empty(), "waves must force ship records");
    let mut found_shipped_component = false;
    for m in &shipped {
        let bucket = dynahash::lsm::BucketId::new(m.bucket_bits, m.bucket_depth);
        let admin = cluster.admin();
        let part = admin.partition(PartitionId(m.to)).unwrap();
        let tree = part
            .dataset(ds)
            .unwrap()
            .primary
            .bucket_tree(&bucket)
            .expect("destination owns the shipped bucket after commit");
        for c in tree.components() {
            if c.is_shipped() {
                found_shipped_component = true;
                assert!(
                    m.component_ids.contains(&c.id()),
                    "installed component {} not in the wave's ship record",
                    c.id()
                );
            }
        }
    }
    assert!(
        found_shipped_component,
        "at least one destination must serve a component shipped whole"
    );
}

/// A destination crash *between the ship and the install* wipes the
/// uncommitted pending state. The commit re-ships the lost buckets by
/// replaying the ship records from the metadata log, and the rebalance
/// still commits with full integrity.
#[test]
fn destination_crash_between_ship_and_install_is_reshipped() {
    let (mut cluster, ds) = cluster_with(3, Scheme::StaticHash { num_buckets: 32 }, 2400);
    let new_node = cluster.add_node().unwrap();
    let target = cluster.topology().clone();

    let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 2).unwrap();
    assert_eq!(job.move_policy(), MovePolicy::Components);
    job.init(&mut cluster).unwrap();
    let mut next_key = 700_000u64;
    let mut crashed = false;
    while job.has_remaining_waves() {
        let wave = job.run_wave(&mut cluster).unwrap();
        if !crashed && wave.components > 0 {
            // Crash the destination right after its first wave landed: the
            // pending buckets (and their shipped components) are lost.
            crashed = true;
            cluster.crash_node(new_node).unwrap();
            cluster.recover_node(new_node).unwrap();
        }
        // Feed mid-flight: writes to already-shipped buckets replicate into
        // (re-created) pending state at the destination.
        let batch: Vec<_> = (next_key..next_key + 50).map(record).collect();
        job.apply_feed_batch(&mut cluster, batch).unwrap();
        next_key += 50;
    }
    assert!(crashed, "scenario requires a post-ship crash");

    job.prepare(&mut cluster).unwrap();
    assert_eq!(
        job.decide(&mut cluster).unwrap(),
        RebalanceOutcome::Committed
    );
    job.commit(&mut cluster).unwrap();
    let report = job.finalize(&mut cluster).unwrap();
    assert_eq!(report.outcome, RebalanceOutcome::Committed);
    cluster
        .check_rebalance_integrity(ds, report.rebalance_id)
        .unwrap();

    // nothing was lost: the base records and every feed record are readable
    let (contents, raw) = cluster.query().collect_records(ds).unwrap();
    assert_eq!(raw, contents.len());
    assert_eq!(contents.len() as u64, 2400 + (next_key - 700_000));
    for k in (0..2400u64).chain(700_000..next_key) {
        assert!(contents.contains_key(&Key::from_u64(k)), "key {k} lost");
    }
}

/// The same crash point under the Records policy: re-shipping falls back to
/// the record-level transfer and recovery still converges.
#[test]
fn destination_crash_between_ship_and_install_recovers_for_records_policy() {
    let (mut cluster, ds) = cluster_with(2, Scheme::StaticHash { num_buckets: 16 }, 1600);
    let new_node = cluster.add_node().unwrap();
    let target = cluster.topology().clone();

    let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 4).unwrap();
    job.set_move_policy(MovePolicy::Records);
    job.init(&mut cluster).unwrap();
    while job.has_remaining_waves() {
        job.run_wave(&mut cluster).unwrap();
    }
    job.prepare(&mut cluster).unwrap();
    cluster.crash_node(new_node).unwrap();
    assert_eq!(
        job.decide(&mut cluster).unwrap(),
        RebalanceOutcome::Committed
    );
    job.commit(&mut cluster).unwrap();
    let report = job.finalize(&mut cluster).unwrap();
    assert_eq!(report.outcome, RebalanceOutcome::Committed);
    assert_eq!(cluster.dataset_len(ds).unwrap(), 1600);
    cluster
        .check_rebalance_integrity(ds, report.rebalance_id)
        .unwrap();
}
