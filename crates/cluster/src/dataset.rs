//! Dataset metadata.
//!
//! A dataset (a TPC-H table, say) is hash-partitioned across the cluster's
//! storage partitions according to a [`Scheme`]. Each dataset has a primary
//! index, a primary-key index, and any number of local secondary indexes
//! whose keys are extracted from the record payload.

use std::fmt;
use std::sync::Arc;

use dynahash_core::{GlobalDirectory, PartitionId, Scheme};
use dynahash_lsm::entry::Key;

/// Identifier of a dataset, unique within the cluster.
pub type DatasetId = u32;

/// Extracts a secondary key from a record payload. Returns `None` when the
/// record has no value for the indexed field.
pub type SecondaryExtractor = Arc<dyn Fn(&[u8]) -> Option<Key> + Send + Sync>;

/// Definition of a local secondary index.
#[derive(Clone)]
pub struct SecondaryIndexDef {
    /// Index name, e.g. `idx_lineitem_shipdate`.
    pub name: String,
    /// Extracts the secondary key from the record payload.
    pub extractor: SecondaryExtractor,
}

impl SecondaryIndexDef {
    /// Creates a definition.
    pub fn new(
        name: impl Into<String>,
        extractor: impl Fn(&[u8]) -> Option<Key> + Send + Sync + 'static,
    ) -> Self {
        SecondaryIndexDef {
            name: name.into(),
            extractor: Arc::new(extractor),
        }
    }
}

impl fmt::Debug for SecondaryIndexDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecondaryIndexDef")
            .field("name", &self.name)
            .finish()
    }
}

/// Everything needed to create a dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name (e.g. `lineitem`).
    pub name: String,
    /// Partitioning / rebalancing scheme.
    pub scheme: Scheme,
    /// Local secondary indexes.
    pub secondary_indexes: Vec<SecondaryIndexDef>,
    /// Memory-component budget per bucket, bytes.
    pub memtable_budget_bytes: usize,
}

impl DatasetSpec {
    /// Creates a spec with no secondary indexes and a small default memtable.
    pub fn new(name: impl Into<String>, scheme: Scheme) -> Self {
        DatasetSpec {
            name: name.into(),
            scheme,
            secondary_indexes: Vec::new(),
            memtable_budget_bytes: 256 * 1024,
        }
    }

    /// Adds a secondary index definition.
    pub fn with_secondary_index(mut self, def: SecondaryIndexDef) -> Self {
        self.secondary_indexes.push(def);
        self
    }

    /// Overrides the memory-component budget.
    pub fn with_memtable_budget(mut self, bytes: usize) -> Self {
        self.memtable_budget_bytes = bytes;
        self
    }
}

/// The Cluster Controller's metadata for one dataset.
#[derive(Debug, Clone)]
pub struct DatasetMeta {
    /// Dataset identifier.
    pub id: DatasetId,
    /// The creation spec.
    pub spec: DatasetSpec,
    /// The global directory (bucketed schemes only).
    pub directory: Option<GlobalDirectory>,
    /// The ordered partition list used by `hash(K) mod N` routing (Hashing
    /// scheme) and by per-partition job dispatch.
    pub partitions: Vec<PartitionId>,
    /// Bumped whenever `partitions` changes (a rebalance commit installs a
    /// new partition list, a Hashing rebuild swaps it wholesale, or a
    /// decommission drops entries). Together with the directory version this
    /// makes [`DatasetMeta::routing_version`] change whenever *any* cached
    /// routing state could have gone stale.
    pub partitions_version: u64,
}

impl DatasetMeta {
    /// The partition a key routes to under this dataset's scheme.
    pub fn route_key(&self, key: &Key) -> Option<PartitionId> {
        match &self.directory {
            Some(dir) => dir.lookup_key(key).map(|(_, p)| p),
            None => {
                if self.partitions.is_empty() {
                    None
                } else {
                    Some(Scheme::modulo_partition(key, &self.partitions))
                }
            }
        }
    }

    /// True if the dataset uses extendible-hashing buckets.
    pub fn is_bucketed(&self) -> bool {
        self.directory.is_some()
    }

    /// The version of this dataset's routing state, as carried by cached
    /// client snapshots and echoed in stale-directory rejections. Monotonic:
    /// it changes whenever the directory or the partition list changes.
    pub fn routing_version(&self) -> u64 {
        let dir = self.directory.as_ref().map(|d| d.version()).unwrap_or(0);
        dir + self.partitions_version
    }

    /// Records that the partition list changed, invalidating cached routes.
    pub fn bump_partitions_version(&mut self) {
        self.partitions_version += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynahash_core::ClusterTopology;

    fn meta_bucketed() -> DatasetMeta {
        let topo = ClusterTopology::uniform(2, 2);
        let dir = GlobalDirectory::initial(4, &topo.partitions()).unwrap();
        DatasetMeta {
            id: 1,
            spec: DatasetSpec::new("orders", Scheme::static_hash_256()),
            directory: Some(dir),
            partitions: topo.partitions(),
            partitions_version: 1,
        }
    }

    #[test]
    fn bucketed_routing_uses_directory() {
        let m = meta_bucketed();
        assert!(m.is_bucketed());
        for i in 0..100u64 {
            let k = Key::from_u64(i);
            let p = m.route_key(&k).unwrap();
            let (_, expect) = m.directory.as_ref().unwrap().lookup_key(&k).unwrap();
            assert_eq!(p, expect);
        }
    }

    #[test]
    fn hashing_routing_uses_modulo() {
        let topo = ClusterTopology::uniform(2, 2);
        let m = DatasetMeta {
            id: 2,
            spec: DatasetSpec::new("orders", Scheme::Hashing),
            directory: None,
            partitions: topo.partitions(),
            partitions_version: 1,
        };
        assert!(!m.is_bucketed());
        for i in 0..100u64 {
            let k = Key::from_u64(i);
            assert_eq!(
                m.route_key(&k).unwrap(),
                Scheme::modulo_partition(&k, &m.partitions)
            );
        }
    }

    #[test]
    fn spec_builder_accumulates_indexes() {
        let spec = DatasetSpec::new("lineitem", Scheme::dynahash(1 << 20, 8))
            .with_secondary_index(SecondaryIndexDef::new("idx_a", |_| None))
            .with_secondary_index(SecondaryIndexDef::new("idx_b", |_| Some(Key::from_u64(1))))
            .with_memtable_budget(1024);
        assert_eq!(spec.secondary_indexes.len(), 2);
        assert_eq!(spec.memtable_budget_bytes, 1024);
        assert_eq!(spec.secondary_indexes[1].name, "idx_b");
    }
}
