//! Concurrent-ingestion scenario: rebalance the LineItem table while a data
//! feed keeps inserting new records at a controlled rate (the paper's
//! Figure 7c experiment in miniature).
//!
//! Run with `cargo run --example ingestion_feed --release`.

use dynahash::cluster::{Cluster, ControlledRateFeed, RebalanceOptions};
use dynahash::core::{NodeId, Scheme};
use dynahash::tpch::generator::extra_lineitems;
use dynahash::tpch::loader::lineitem_records;
use dynahash::tpch::{load_tpch, TpchScale};

fn main() {
    println!("rebalancing LineItem from 4 to 3 nodes under a concurrent write feed\n");

    // Baseline: no concurrent writes.
    let baseline_secs = run_with_rate(0.0);
    println!(
        "{:>6} krec/s  -> {:>7.2} simulated seconds (baseline)",
        0, baseline_secs
    );

    for rate in [5.0, 10.0, 20.0] {
        let secs = run_with_rate(rate);
        println!(
            "{:>6} krec/s  -> {:>7.2} simulated seconds ({:+.0}% vs baseline)",
            rate,
            secs,
            (secs / baseline_secs - 1.0) * 100.0
        );
    }
    println!("\nthe rebalance slows down under heavier concurrent ingestion but still");
    println!("completes, and every concurrent write survives the bucket moves.");
}

fn run_with_rate(krecords_per_sec: f64) -> f64 {
    let mut cluster = Cluster::new(4);
    let scheme = Scheme::dynahash(128 * 1024, 16);
    let (tables, data, _) =
        load_tpch(&mut cluster, scheme, TpchScale::per_node(150, 4)).expect("load");
    let lineitem_count = cluster.dataset_len(tables.lineitem).unwrap();

    // Size the concurrent workload from the feed rate and an estimate of the
    // rebalance duration (we use 2 simulated seconds as the reference window).
    let feed = ControlledRateFeed::krecords_per_sec(krecords_per_sec);
    let concurrent = feed.records_for(dynahash::cluster::SimDuration::from_secs(2)) as usize;
    let extra = extra_lineitems(data.orders.len() as u64 + 1, concurrent, 99);
    let writes = lineitem_records(&extra);
    let expected_new = writes.len();

    let target = cluster.topology_without(NodeId(3));
    let report = cluster
        .rebalance(
            tables.lineitem,
            &target,
            RebalanceOptions::none().with_concurrent_writes(writes),
        )
        .expect("rebalance");

    cluster
        .check_dataset_consistency(tables.lineitem)
        .expect("consistent");
    assert_eq!(
        cluster.dataset_len(tables.lineitem).unwrap(),
        lineitem_count + expected_new,
        "every concurrent write must survive the rebalance"
    );
    report.elapsed.as_secs_f64()
}
