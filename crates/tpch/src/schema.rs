//! The TPC-H schema as fixed-layout binary records.
//!
//! Every table row is encoded as a sequence of big-endian `u64` fields so
//! that secondary-index extractors can pull a field out of the payload by
//! offset without a full decode. Monetary values are stored in cents and
//! dates as days since 1992-01-01 (the TPC-H epoch).

use dynahash_lsm::entry::Key;
use dynahash_lsm::Bytes;

/// Reads field `idx` (a big-endian u64) from an encoded payload.
pub fn field_u64(payload: &[u8], idx: usize) -> Option<u64> {
    let start = idx * 8;
    let end = start + 8;
    if payload.len() < end {
        return None;
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&payload[start..end]);
    Some(u64::from_be_bytes(b))
}

fn encode_fields(fields: &[u64]) -> Bytes {
    let mut v = Vec::with_capacity(fields.len() * 8);
    for f in fields {
        v.extend_from_slice(&f.to_be_bytes());
    }
    Bytes::from(v)
}

/// Builds a secondary-index extractor that returns field `idx` as the key.
pub fn field_extractor(idx: usize) -> impl Fn(&[u8]) -> Option<Key> + Send + Sync + 'static {
    move |payload: &[u8]| field_u64(payload, idx).map(Key::from_u64)
}

macro_rules! table_record {
    (
        $(#[$meta:meta])*
        $name:ident {
            $( $(#[$fmeta:meta])* $field:ident : $fidx:expr ),+ $(,)?
        }
        key = |$slf:ident| $key:expr;
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct $name {
            $( $(#[$fmeta])* pub $field: u64, )+
        }

        impl $name {
            /// Encodes the record into its fixed-layout binary payload.
            pub fn encode(&self) -> Bytes {
                let mut fields = vec![0u64; Self::NUM_FIELDS];
                $( fields[$fidx] = self.$field; )+
                encode_fields(&fields)
            }

            /// Decodes a payload produced by [`Self::encode`].
            pub fn decode(payload: &[u8]) -> Option<Self> {
                Some(Self {
                    $( $field: field_u64(payload, $fidx)?, )+
                })
            }

            /// The primary key of the record.
            pub fn primary_key(&self) -> Key {
                let $slf = self;
                $key
            }

            /// Number of u64 fields in the encoding.
            pub const NUM_FIELDS: usize = {
                let mut max = 0;
                $( if $fidx + 1 > max { max = $fidx + 1; } )+
                max
            };
        }
    };
}

table_record! {
    /// The LINEITEM table (one row per order line).
    LineItem {
        /// Order this line belongs to (FK to Orders).
        l_orderkey: 0,
        /// Line number within the order (1..=7).
        l_linenumber: 1,
        /// Part shipped (FK to Part).
        l_partkey: 2,
        /// Supplier (FK to Supplier).
        l_suppkey: 3,
        /// Quantity ordered (1..=50).
        l_quantity: 4,
        /// Extended price in cents.
        l_extendedprice: 5,
        /// Discount in percent (0..=10).
        l_discount: 6,
        /// Tax in percent (0..=8).
        l_tax: 7,
        /// Return flag (0=N, 1=R, 2=A).
        l_returnflag: 8,
        /// Line status (0=O, 1=F).
        l_linestatus: 9,
        /// Ship date, days since the TPC-H epoch.
        l_shipdate: 10,
        /// Commit date.
        l_commitdate: 11,
        /// Receipt date.
        l_receiptdate: 12,
        /// Ship mode (0..=6).
        l_shipmode: 13,
        /// Ship instruction (0..=3).
        l_shipinstruct: 14,
    }
    key = |s| Key::from_pair(s.l_orderkey, s.l_linenumber);
}

/// Field index of `l_shipdate` (used by the LineItem secondary index).
pub const L_SHIPDATE_FIELD: usize = 10;

table_record! {
    /// The ORDERS table.
    Orders {
        /// Primary key.
        o_orderkey: 0,
        /// Customer (FK to Customer).
        o_custkey: 1,
        /// Order status (0=O, 1=F, 2=P).
        o_orderstatus: 2,
        /// Total price in cents.
        o_totalprice: 3,
        /// Order date, days since the epoch.
        o_orderdate: 4,
        /// Order priority (0..=4).
        o_orderpriority: 5,
        /// Ship priority.
        o_shippriority: 6,
        /// Clerk id.
        o_clerk: 7,
    }
    key = |s| Key::from_u64(s.o_orderkey);
}

/// Field index of `o_orderdate` (used by the Orders secondary index).
pub const O_ORDERDATE_FIELD: usize = 4;

table_record! {
    /// The CUSTOMER table.
    Customer {
        /// Primary key.
        c_custkey: 0,
        /// Nation (FK to Nation).
        c_nationkey: 1,
        /// Market segment (0..=4).
        c_mktsegment: 2,
        /// Account balance in cents (offset by 100000 to stay unsigned).
        c_acctbal: 3,
        /// Phone country code (10..=34).
        c_phone_cc: 4,
    }
    key = |s| Key::from_u64(s.c_custkey);
}

table_record! {
    /// The PART table.
    Part {
        /// Primary key.
        p_partkey: 0,
        /// Brand (0..=24).
        p_brand: 1,
        /// Type (0..=149).
        p_type: 2,
        /// Size (1..=50).
        p_size: 3,
        /// Container (0..=39).
        p_container: 4,
        /// Retail price in cents.
        p_retailprice: 5,
        /// Manufacturer (0..=4).
        p_mfgr: 6,
    }
    key = |s| Key::from_u64(s.p_partkey);
}

table_record! {
    /// The SUPPLIER table.
    Supplier {
        /// Primary key.
        s_suppkey: 0,
        /// Nation (FK to Nation).
        s_nationkey: 1,
        /// Account balance in cents (offset by 100000).
        s_acctbal: 2,
        /// 1 if the supplier's comment matches the q16/q21 complaint filter.
        s_complaint: 3,
    }
    key = |s| Key::from_u64(s.s_suppkey);
}

table_record! {
    /// The PARTSUPP table.
    PartSupp {
        /// Part (FK, part of the primary key).
        ps_partkey: 0,
        /// Supplier (FK, part of the primary key).
        ps_suppkey: 1,
        /// Available quantity.
        ps_availqty: 2,
        /// Supply cost in cents.
        ps_supplycost: 3,
    }
    key = |s| Key::from_pair(s.ps_partkey, s.ps_suppkey);
}

table_record! {
    /// The NATION table (25 rows).
    Nation {
        /// Primary key (0..=24).
        n_nationkey: 0,
        /// Region (FK to Region).
        n_regionkey: 1,
    }
    key = |s| Key::from_u64(s.n_nationkey);
}

table_record! {
    /// The REGION table (5 rows).
    Region {
        /// Primary key (0..=4).
        r_regionkey: 0,
    }
    key = |s| Key::from_u64(s.r_regionkey);
}

/// Names of the eight TPC-H tables, in loading order.
pub const TABLE_NAMES: [&str; 8] = [
    "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
];

/// Number of days in the TPC-H date range (1992-01-01 .. 1998-12-31).
pub const DATE_RANGE_DAYS: u64 = 2556;

/// Converts a (year, day-of-year) pair into days since the TPC-H epoch.
pub fn date(year: u64, day_of_year: u64) -> u64 {
    (year.saturating_sub(1992)) * 365 + day_of_year.min(364)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineitem_roundtrip() {
        let li = LineItem {
            l_orderkey: 42,
            l_linenumber: 3,
            l_partkey: 17,
            l_suppkey: 5,
            l_quantity: 30,
            l_extendedprice: 123_456,
            l_discount: 5,
            l_tax: 2,
            l_returnflag: 1,
            l_linestatus: 0,
            l_shipdate: date(1995, 100),
            l_commitdate: date(1995, 90),
            l_receiptdate: date(1995, 110),
            l_shipmode: 2,
            l_shipinstruct: 1,
        };
        let enc = li.encode();
        assert_eq!(enc.len(), LineItem::NUM_FIELDS * 8);
        assert_eq!(LineItem::decode(&enc).unwrap(), li);
        assert_eq!(li.primary_key(), Key::from_pair(42, 3));
        assert_eq!(field_u64(&enc, L_SHIPDATE_FIELD).unwrap(), date(1995, 100));
    }

    #[test]
    fn orders_roundtrip_and_extractor() {
        let o = Orders {
            o_orderkey: 7,
            o_custkey: 3,
            o_orderstatus: 1,
            o_totalprice: 99999,
            o_orderdate: date(1997, 12),
            o_orderpriority: 2,
            o_shippriority: 0,
            o_clerk: 55,
        };
        let enc = o.encode();
        assert_eq!(Orders::decode(&enc).unwrap(), o);
        let ex = field_extractor(O_ORDERDATE_FIELD);
        assert_eq!(ex(&enc).unwrap(), Key::from_u64(date(1997, 12)));
    }

    #[test]
    fn small_tables_roundtrip() {
        let c = Customer {
            c_custkey: 1,
            c_nationkey: 7,
            c_mktsegment: 3,
            c_acctbal: 150_000,
            c_phone_cc: 27,
        };
        assert_eq!(Customer::decode(&c.encode()).unwrap(), c);
        let p = Part {
            p_partkey: 2,
            p_brand: 12,
            p_type: 55,
            p_size: 30,
            p_container: 9,
            p_retailprice: 90_000,
            p_mfgr: 1,
        };
        assert_eq!(Part::decode(&p.encode()).unwrap(), p);
        let s = Supplier {
            s_suppkey: 3,
            s_nationkey: 11,
            s_acctbal: 123,
            s_complaint: 1,
        };
        assert_eq!(Supplier::decode(&s.encode()).unwrap(), s);
        let ps = PartSupp {
            ps_partkey: 2,
            ps_suppkey: 3,
            ps_availqty: 100,
            ps_supplycost: 500,
        };
        assert_eq!(PartSupp::decode(&ps.encode()).unwrap(), ps);
        assert_eq!(ps.primary_key(), Key::from_pair(2, 3));
        let n = Nation {
            n_nationkey: 4,
            n_regionkey: 1,
        };
        assert_eq!(Nation::decode(&n.encode()).unwrap(), n);
        let r = Region { r_regionkey: 4 };
        assert_eq!(Region::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn decode_rejects_short_payloads() {
        assert!(LineItem::decode(&[0u8; 8]).is_none());
        assert!(field_u64(&[1, 2, 3], 0).is_none());
    }

    #[test]
    fn dates_are_monotonic_over_years() {
        assert!(date(1992, 0) < date(1992, 100));
        assert!(date(1992, 364) < date(1993, 0));
        assert!(date(1998, 364) < DATE_RANGE_DAYS + 365);
    }
}
