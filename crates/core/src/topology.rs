//! Cluster topology: nodes and storage partitions.
//!
//! An AsterixDB cluster has one Cluster Controller and multiple Node
//! Controllers; each NC hosts several storage partitions to exploit
//! multi-core parallelism (the paper uses 4 partitions per node). The
//! topology maps partitions to nodes so that the balancing algorithm can
//! break ties by node load, as Algorithm 2 requires.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a Node Controller.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of a storage partition (unique across the cluster).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nc{}", self.0)
    }
}
impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nc{}", self.0)
    }
}
impl fmt::Debug for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}
impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The set of nodes and partitions a dataset is (or will be) spread over.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterTopology {
    partition_to_node: BTreeMap<PartitionId, NodeId>,
}

impl ClusterTopology {
    /// Builds a topology of `num_nodes` nodes with `partitions_per_node`
    /// partitions each, numbered densely: node `i` hosts partitions
    /// `i*ppn .. (i+1)*ppn`.
    pub fn uniform(num_nodes: u32, partitions_per_node: u32) -> Self {
        let mut map = BTreeMap::new();
        for n in 0..num_nodes {
            for p in 0..partitions_per_node {
                map.insert(PartitionId(n * partitions_per_node + p), NodeId(n));
            }
        }
        ClusterTopology {
            partition_to_node: map,
        }
    }

    /// Builds a topology from explicit (partition, node) pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (PartitionId, NodeId)>) -> Self {
        ClusterTopology {
            partition_to_node: pairs.into_iter().collect(),
        }
    }

    /// The node hosting a partition.
    pub fn node_of(&self, partition: PartitionId) -> Option<NodeId> {
        self.partition_to_node.get(&partition).copied()
    }

    /// All partitions in ascending id order.
    pub fn partitions(&self) -> Vec<PartitionId> {
        self.partition_to_node.keys().copied().collect()
    }

    /// All partitions hosted by a node.
    pub fn partitions_of_node(&self, node: NodeId) -> Vec<PartitionId> {
        self.partition_to_node
            .iter()
            .filter(|(_, n)| **n == node)
            .map(|(p, _)| *p)
            .collect()
    }

    /// All distinct nodes in ascending id order.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.partition_to_node.values().copied().collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partition_to_node.len()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes().len()
    }

    /// True if the topology has no partitions.
    pub fn is_empty(&self) -> bool {
        self.partition_to_node.is_empty()
    }

    /// Returns a new topology with the given node (and its partitions) removed.
    pub fn without_node(&self, node: NodeId) -> ClusterTopology {
        ClusterTopology {
            partition_to_node: self
                .partition_to_node
                .iter()
                .filter(|(_, n)| **n != node)
                .map(|(p, n)| (*p, *n))
                .collect(),
        }
    }

    /// Returns a new topology with an extra node of `partitions_per_node`
    /// partitions appended (partition ids continue after the current maximum).
    pub fn with_added_node(&self, partitions_per_node: u32) -> ClusterTopology {
        let next_node = self.nodes().last().map(|n| n.0 + 1).unwrap_or(0);
        let next_part = self.partitions().last().map(|p| p.0 + 1).unwrap_or(0);
        let mut map = self.partition_to_node.clone();
        for i in 0..partitions_per_node {
            map.insert(PartitionId(next_part + i), NodeId(next_node));
        }
        ClusterTopology {
            partition_to_node: map,
        }
    }

    /// Partitions present in `self` but not in `other` (e.g. partitions being
    /// decommissioned when scaling in).
    pub fn partitions_removed_in(&self, other: &ClusterTopology) -> Vec<PartitionId> {
        self.partitions()
            .into_iter()
            .filter(|p| other.node_of(*p).is_none())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_topology_layout() {
        let t = ClusterTopology::uniform(4, 4);
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_partitions(), 16);
        assert_eq!(t.node_of(PartitionId(0)), Some(NodeId(0)));
        assert_eq!(t.node_of(PartitionId(15)), Some(NodeId(3)));
        assert_eq!(t.node_of(PartitionId(16)), None);
        assert_eq!(t.partitions_of_node(NodeId(1)).len(), 4);
    }

    #[test]
    fn add_and_remove_nodes() {
        let t = ClusterTopology::uniform(2, 4);
        let bigger = t.with_added_node(4);
        assert_eq!(bigger.num_nodes(), 3);
        assert_eq!(bigger.num_partitions(), 12);
        let smaller = bigger.without_node(NodeId(2));
        assert_eq!(smaller, t);
        let removed = bigger.partitions_removed_in(&smaller);
        assert_eq!(removed.len(), 4);
        assert!(removed
            .iter()
            .all(|p| bigger.node_of(*p) == Some(NodeId(2))));
    }

    #[test]
    fn empty_topology() {
        let t = ClusterTopology::default();
        assert!(t.is_empty());
        assert_eq!(t.num_nodes(), 0);
        let grown = t.with_added_node(2);
        assert_eq!(grown.num_partitions(), 2);
        assert_eq!(grown.node_of(PartitionId(0)), Some(NodeId(0)));
    }
}
