//! The step-driven rebalance executor (the resumable form of Section V).
//!
//! [`RebalanceJob`] decomposes the three-phase rebalance protocol into an
//! explicit state machine with one method per step:
//!
//! ```text
//! plan -> init -> run_wave(0) .. run_wave(n-1) -> prepare -> decide
//!                                                      |        |
//!                                                    abort      +-> commit
//!                                                      |        |
//!                                                      +--------+-> finalize
//! ```
//!
//! The job holds **no borrow of the cluster** between steps, so the cluster
//! stays fully usable mid-rebalance: queries can run, feed batches can be
//! applied through [`RebalanceJob::apply_feed_batch`] (with replication to
//! already-shipped buckets), and nodes or the Cluster Controller can crash
//! and recover. Each wave moves up to `max_concurrent_moves` buckets in
//! parallel and simulated time is charged per wave — the wave's *makespan*
//! is its slowest participating node — so wider waves finish measurably
//! earlier than the serial one-bucket-at-a-time schedule.
//!
//! The one-shot [`crate::cluster::Cluster::rebalance`] entry point is a thin
//! driver loop over this job (see [`crate::rebalance`]); driving the job
//! directly is how scenario tests observe and perturb a rebalance between
//! any two steps. A job must always be driven to [`RebalanceJob::finalize`]
//! (via commit or abort) — abandoning one mid-flight leaves bucket splits
//! disabled and the dataset's write-replication state registered.

use std::collections::{BTreeMap, BTreeSet};

use dynahash_core::{
    BucketId, BucketMove, ClusterTopology, GlobalDirectory, MovePolicy, NodeId, NodeVote,
    PartitionId, RebalanceCoordinator, RebalanceOutcome, RebalancePlan, SecondaryRebuild,
    SpeculationPolicy,
};
use dynahash_lsm::entry::{Key, Value};
use dynahash_lsm::wal::{LogRecordBody, RebalanceId, ShippedMove};

use crate::cluster::Cluster;
use crate::dataset::DatasetId;
use crate::fault::RetryPolicy;
use crate::rebalance::{PhaseTimes, RebalanceReport};
use crate::sim::{NodeTimeline, SimDuration, WaveClock};
use crate::{ClusterError, Result};

/// A step boundary of the one-shot driver loop, where scenario hooks
/// ([`crate::rebalance::StepHook`]) fire. Between any two steps the cluster
/// is fully usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepPoint {
    /// After the plan is computed (BEGIN forced, waves scheduled).
    AfterPlan,
    /// After initialization (splits disabled, moving buckets snapshotted).
    AfterInit,
    /// After the given wave (0-based) completed.
    AfterWave(usize),
    /// After every wave (matches each `AfterWave(_)` boundary).
    AfterEveryWave,
    /// After all waves, before the prepare phase blocks the dataset.
    BeforePrepare,
    /// After every alive participant voted "prepared".
    AfterPrepare,
    /// After the COMMIT record was forced, before commit tasks run.
    AfterCommitLog,
    /// Before finalization (commit tasks ran; DONE not yet forced).
    BeforeFinalize,
}

/// The observable state of a [`RebalanceJob`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// The plan is computed and BEGIN is forced; nothing has moved yet.
    Planned,
    /// Data movement is in progress; `completed_waves` waves have run.
    Moving {
        /// Number of waves that have completed so far.
        completed_waves: usize,
    },
    /// All waves ran and every alive participant voted.
    Prepared,
    /// The commit/abort decision is durable (COMMIT or ABORT was forced).
    Decided(RebalanceOutcome),
    /// Commit tasks ran on every alive node and the CC routing is installed.
    CommitTasksDone,
    /// The job is finished (DONE is forced) with the recorded outcome.
    Finalized(RebalanceOutcome),
}

impl JobState {
    pub(crate) fn name(&self) -> &'static str {
        match self {
            JobState::Planned => "Planned",
            JobState::Moving { .. } => "Moving",
            JobState::Prepared => "Prepared",
            JobState::Decided(RebalanceOutcome::Committed) => "Decided(Committed)",
            JobState::Decided(RebalanceOutcome::Aborted) => "Decided(Aborted)",
            JobState::CommitTasksDone => "CommitTasksDone",
            JobState::Finalized(_) => "Finalized",
        }
    }
}

/// Cost and shape summary of one executed wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveReport {
    /// The wave index (0-based).
    pub wave: usize,
    /// Bucket moves executed by this wave.
    pub moves: usize,
    /// Primary-index bytes shipped by this wave.
    pub bytes: u64,
    /// Records shipped by this wave.
    pub records: u64,
    /// Sealed components shipped whole by this wave (0 under the Records
    /// policy, which re-materialises the data instead).
    pub components: usize,
    /// The wave's simulated makespan (slowest participating node).
    pub makespan: SimDuration,
}

/// What one bucket move transferred (internal accounting of
/// [`RebalanceJob::ship_move`]).
struct ShipStats {
    bytes: u64,
    records: u64,
    component_ids: Vec<u64>,
    /// What the transfer would cost at nominal speed — no slow-node scaling,
    /// no transient-retry penalties. This is the duration a speculative
    /// backup launched from the live source runs for.
    nominal: SimDuration,
}

/// One wave move's timeline and endpoints, kept per move so the speculation
/// pass can compare each leg against the wave's median and replace a
/// straggler's charges with the race winner's occupancy window.
struct MoveLeg {
    tl: NodeTimeline,
    src: NodeId,
    dst: NodeId,
    nominal: SimDuration,
}

/// What [`RebalanceJob::replan_wave`] did to route a rebalance around one or
/// more permanently lost nodes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplanReport {
    /// The lost participants the job re-planned around.
    pub lost_nodes: Vec<NodeId>,
    /// Moves whose destination died and were redirected to a survivor.
    pub rerouted: u64,
    /// Of the rerouted moves, those already shipped whose transfer will be
    /// repeated from the (still live) source.
    pub reshipped: u64,
    /// Buckets whose only copy died with a lost node: the commit installs
    /// them empty on a survivor and the dataset serves degraded.
    pub lost_buckets: u64,
    /// Waves appended to carry the rerouted and re-shipped moves.
    pub waves_appended: usize,
}

impl ReplanReport {
    /// True when no lost participant was found and nothing changed.
    pub fn is_noop(&self) -> bool {
        self.lost_nodes.is_empty()
    }
}

/// A resumable, step-driven rebalance of one bucketed dataset.
pub struct RebalanceJob {
    dataset: DatasetId,
    rebalance_id: RebalanceId,
    target: ClusterTopology,
    plan: RebalancePlan,
    waves: Vec<Vec<dynahash_core::BucketMove>>,
    /// The refreshed pre-rebalance directory: the routing every write uses
    /// until the commit installs the new directory at the CC.
    routing: GlobalDirectory,
    participants: Vec<NodeId>,
    coordinator: RebalanceCoordinator,
    move_policy: MovePolicy,
    secondary_rebuild: SecondaryRebuild,
    retry: RetryPolicy,
    speculation: SpeculationPolicy,
    state: JobState,
    init_tl: NodeTimeline,
    move_tl: NodeTimeline,
    fin_tl: NodeTimeline,
    clock: WaveClock,
    total_bytes: u64,
    bytes_moved: u64,
    records_moved: u64,
    writes_applied: u64,
    retries: u64,
    reroutes: u64,
    speculated: u64,
    speculation_wins: u64,
}

impl std::fmt::Debug for RebalanceJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RebalanceJob")
            .field("rebalance_id", &self.rebalance_id)
            .field("dataset", &self.dataset)
            .field("state", &self.state)
            .field("waves", &self.waves.len())
            .field("moves", &self.plan.num_moves())
            .finish()
    }
}

impl RebalanceJob {
    // ------------------------------------------------------------- stepping

    /// Plans a rebalance of `dataset` onto `target`: forces the BEGIN log
    /// record, refreshes the global directory from the partitions' local
    /// directories, runs Algorithm 2, and schedules the resulting moves into
    /// waves of at most `max_concurrent_moves`. Only bucketed schemes can be
    /// driven step-by-step; the Hashing baseline rebuilds the dataset in one
    /// shot and goes through [`Cluster::rebalance`].
    pub fn plan(
        cluster: &mut Cluster,
        dataset: DatasetId,
        target: &ClusterTopology,
        max_concurrent_moves: usize,
    ) -> Result<Self> {
        Self::plan_inner(cluster, dataset, target, max_concurrent_moves, None)
    }

    /// Plans a rebalance that balances *heat-weighted loads* instead of raw
    /// bucket byte sizes: Algorithm 2 runs over `loads` (typically
    /// `resident_bytes + ops * op_weight` from a
    /// [`crate::control::HeatReport`]), so hot buckets repel each other even
    /// when their resident data is small. Directory buckets absent from
    /// `loads` fall back to their byte size. The resulting moves are
    /// re-costed with the buckets' true byte sizes afterwards, so wave
    /// scheduling, migration-budget accounting, and progress reporting stay
    /// in real bytes. This is the planning entry point of the control
    /// plane's auto-triggered jobs.
    pub fn plan_with_loads(
        cluster: &mut Cluster,
        dataset: DatasetId,
        target: &ClusterTopology,
        max_concurrent_moves: usize,
        loads: &BTreeMap<BucketId, u64>,
    ) -> Result<Self> {
        Self::plan_inner(cluster, dataset, target, max_concurrent_moves, Some(loads))
    }

    fn plan_inner(
        cluster: &mut Cluster,
        dataset: DatasetId,
        target: &ClusterTopology,
        max_concurrent_moves: usize,
        loads: Option<&BTreeMap<BucketId, u64>>,
    ) -> Result<Self> {
        if target.is_empty() {
            return Err(ClusterError::Core(dynahash_core::CoreError::EmptyTopology));
        }
        if !cluster.scheme_of(dataset)?.is_bucketed() {
            return Err(ClusterError::RebalanceAborted(
                "the step-driven RebalanceJob requires a bucketed scheme".to_string(),
            ));
        }
        let rebalance_id = cluster.controller.next_rebalance_id();
        // The CC forces BEGIN before anything else (Section V-D).
        cluster
            .controller
            .metadata_log
            .append_forced(LogRecordBody::RebalanceBegin {
                rebalance: rebalance_id,
                dataset,
            });

        let locals = cluster.local_directories(dataset)?;
        let routing = GlobalDirectory::refresh_from_locals(locals).map_err(ClusterError::Core)?;
        // The initialization-phase refresh is visible to clients: absorbing
        // local bucket splits into the CC's directory bumps its version (if
        // anything changed), so cached sessions pick the finer-grained
        // routing up on their next refresh. Routing is unaffected — a split
        // bucket's children live on the same partition as their parent.
        if let Some(dir) = cluster.controller.dataset_mut(dataset)?.directory.as_mut() {
            dir.install(&routing);
        }
        let sizes = cluster.dataset_bucket_sizes(dataset)?;
        let weights = match loads {
            Some(loads) => {
                let mut w = sizes.clone();
                for (b, l) in loads {
                    w.insert(*b, *l);
                }
                w
            }
            None => sizes.clone(),
        };
        let mut plan = RebalancePlan::compute(rebalance_id, &routing, &weights, target)
            .map_err(ClusterError::Core)?;
        if loads.is_some() {
            // The balancer weighed heat; the movers ship bytes.
            for m in &mut plan.moves {
                m.bytes = sizes.get(&m.bucket).copied().unwrap_or(0);
            }
        }
        let total_bytes = cluster.dataset_primary_bytes(dataset)?;

        // Participants: every node hosting a source or destination partition
        // of the plan, plus all target nodes (which must ack the commit).
        let mut participants: Vec<NodeId> = target.nodes();
        for m in &plan.moves {
            if let Some(n) = cluster.topology().node_of(m.from) {
                if !participants.contains(&n) {
                    participants.push(n);
                }
            }
        }
        participants.sort_unstable();

        let topology = cluster.topology().clone();
        let waves = plan.schedule_waves(max_concurrent_moves, |p| topology.node_of(p));
        let coordinator = RebalanceCoordinator::new(rebalance_id, participants.clone());

        Ok(RebalanceJob {
            dataset,
            rebalance_id,
            target: target.clone(),
            plan,
            waves,
            routing,
            participants,
            coordinator,
            move_policy: MovePolicy::default(),
            secondary_rebuild: SecondaryRebuild::default(),
            retry: RetryPolicy::default(),
            speculation: SpeculationPolicy::default(),
            state: JobState::Planned,
            init_tl: NodeTimeline::new(),
            move_tl: NodeTimeline::new(),
            fin_tl: NodeTimeline::new(),
            clock: WaveClock::new(),
            total_bytes,
            bytes_moved: 0,
            records_moved: 0,
            writes_applied: 0,
            retries: 0,
            reroutes: 0,
            speculated: 0,
            speculation_wins: 0,
        })
    }

    /// Initialization: disables bucket splits for the duration of the
    /// rebalance, snapshot-flushes every moving bucket (its flush time is the
    /// rebalance start time for the concurrency-control split), and moves the
    /// coordinator into the data-movement phase.
    pub fn init(&mut self, cluster: &mut Cluster) -> Result<()> {
        self.require(matches!(self.state, JobState::Planned), "init")?;
        let cost = cluster.cost_model();
        cluster.set_splits_enabled(self.dataset, false)?;

        // CC contacts every participant to fetch directories / dispatch work.
        for n in &self.participants {
            self.init_tl
                .charge(*n, SimDuration::from_nanos(cost.network_latency_ns));
        }
        self.init_tl
            .charge_coordinator(SimDuration::from_nanos(cost.job_overhead_ns));

        for m in &self.plan.moves {
            let node = cluster.node_of_partition(m.from)?;
            let before = cluster.partition(m.from)?.metrics().snapshot();
            cluster
                .partition_mut(m.from)?
                .dataset_mut(self.dataset)?
                .primary
                .snapshot_bucket(m.bucket)
                .map_err(ClusterError::Storage)?;
            let after = cluster.partition(m.from)?.metrics().snapshot();
            let delta = after.delta_since(&before);
            self.init_tl
                .charge(node, cost.disk_write(delta.bytes_flushed));
        }

        self.coordinator
            .start_data_movement()
            .map_err(ClusterError::Core)?;
        // Register with the cluster so the normal ingestion path replicates
        // writes to shipped buckets for the duration of data movement.
        cluster.active_rebalances.insert(
            self.dataset,
            crate::cluster::ActiveRebalance {
                routing: self.routing.clone(),
                target: self.target.clone(),
                shipped: BTreeMap::new(),
                write_blocked: false,
            },
        );
        self.state = JobState::Moving { completed_waves: 0 };
        self.publish_progress(cluster);
        Ok(())
    }

    /// Runs the next wave, moving each of the wave's buckets under the job's
    /// [`MovePolicy`]:
    ///
    /// * **Components** (the default): the source flushes the bucket's
    ///   memory component and ships its sealed components whole — cheap
    ///   handle clones carrying their Bloom filters and sorted runs — and
    ///   the destination installs them into the pending bucket directly,
    ///   rebuilding only the secondary-index entries.
    /// * **Records**: the source merges the bucket into a record stream and
    ///   the destination re-materialises it (re-sort, Bloom rebuild, every
    ///   index rebuilt) — the baseline this PR's cost model charges for.
    ///
    /// All moves of a wave run in parallel, so the wave is charged its
    /// makespan — the slowest participating node. The CC forces a
    /// `RebalanceShip` metadata record after the wave so crash recovery can
    /// replay the component-level moves. Both ends of every move must be
    /// alive; crash a node mid-movement and the operator must either recover
    /// it or [`RebalanceJob::abort`], while a *permanently lost* endpoint
    /// reports [`ClusterError::NodeLost`] and the driver re-plans around it
    /// with [`RebalanceJob::replan_wave`] instead of aborting.
    ///
    /// With a [`FaultSchedule`](crate::fault::FaultSchedule) installed on
    /// the cluster, each transfer consults it per attempt and retries
    /// transient failures under the job's [`RetryPolicy`], charging capped
    /// exponential backoff into the wave's makespan; slow nodes scale their
    /// charged durations.
    pub fn run_wave(&mut self, cluster: &mut Cluster) -> Result<WaveReport> {
        let wave_index = match self.state {
            JobState::Moving { completed_waves } if completed_waves < self.waves.len() => {
                completed_waves
            }
            _ => return Err(self.invalid_step("run_wave")),
        };
        let wave = self.waves[wave_index].clone();

        // Data movement needs both ends of every move up.
        let mut endpoints: Vec<(NodeId, NodeId)> = Vec::with_capacity(wave.len());
        for m in &wave {
            let src_node = cluster.node_of_partition(m.from)?;
            let dst_node = self
                .target
                .node_of(m.to)
                .ok_or(ClusterError::UnknownPartition(m.to))?;
            for node in [src_node, dst_node] {
                if cluster.node_is_lost(node) {
                    return Err(ClusterError::NodeLost(node));
                }
                if !cluster.node_is_alive(node) {
                    return Err(ClusterError::NodeDown(node));
                }
            }
            endpoints.push((src_node, dst_node));
        }

        // Each move ships into its own timeline. Per-node charges add, so
        // extending the per-move timelines into the wave timeline below is
        // charge-identical to the old shared-timeline path — and it gives
        // the speculation pass each transfer's individual leg to compare
        // against the wave's median.
        let mut bytes = 0u64;
        let mut records = 0u64;
        let mut components = 0usize;
        let mut shipped: Vec<ShippedMove> = Vec::with_capacity(wave.len());
        let mut legs: Vec<MoveLeg> = Vec::with_capacity(wave.len());
        for (m, &(src, dst)) in wave.iter().zip(&endpoints) {
            let mut mv_tl = NodeTimeline::new();
            let stats = self.ship_move(cluster, m, &mut mv_tl)?;
            bytes += stats.bytes;
            records += stats.records;
            components += stats.component_ids.len();
            shipped.push(ShippedMove {
                bucket_bits: m.bucket.bits,
                bucket_depth: m.bucket.depth,
                from: m.from.0,
                to: m.to.0,
                component_ids: stats.component_ids,
                bytes: stats.bytes,
                records: stats.records,
            });
            legs.push(MoveLeg {
                tl: mv_tl,
                src,
                dst,
                nominal: stats.nominal,
            });
        }
        self.speculate_stragglers(cluster, &mut legs);
        let mut wave_tl = NodeTimeline::new();
        for leg in &legs {
            wave_tl.extend(&leg.tl);
        }
        // The CC forces the wave's ship record: if a destination later loses
        // its uncommitted pending state in a crash, recovery replays these
        // moves by re-shipping from the sources.
        cluster
            .controller
            .metadata_log
            .append_forced(LogRecordBody::RebalanceShip {
                rebalance: self.rebalance_id,
                dataset: self.dataset,
                wave: wave_index as u32,
                moves: shipped,
            });

        // From now on, writes routed to this wave's buckets replicate to the
        // destinations' pending copies (the normal ingest path consults this).
        if let Some(active) = cluster.active_rebalances.get_mut(&self.dataset) {
            for m in &wave {
                active.shipped.insert(m.bucket, m.to);
            }
        }

        let makespan = wave_tl.elapsed();
        self.clock.record_wave(&wave_tl);
        self.move_tl.extend(&wave_tl);
        self.bytes_moved += bytes;
        self.records_moved += records;
        self.state = JobState::Moving {
            completed_waves: wave_index + 1,
        };
        self.publish_progress(cluster);
        Ok(WaveReport {
            wave: wave_index,
            moves: wave.len(),
            bytes,
            records,
            components,
            makespan,
        })
    }

    /// Speculatively re-executes straggling transfers (MapReduce-style
    /// backup tasks): a move whose leg was stretched past the job's
    /// [`SpeculationPolicy`] straggler multiple of the wave's median leg —
    /// by a slow-node fault on one of its endpoints — is shipped *again*
    /// from the live source to the same destination, and the wave takes the
    /// first finisher.
    ///
    /// The data already shipped exactly once (the first attempt's loads and
    /// installs stand, so contents are byte-identical either way); the race
    /// is a timing one. The backup launches once the leg has run
    /// `straggler_multiple` medians and runs at nominal speed — the slow
    /// factor models a transient environmental stall pinned to the first
    /// attempt. If the backup finishes strictly first, the original is
    /// cancelled at that instant and both endpoints are charged the
    /// winner's occupancy window (the attempts overlap in wall-clock, so
    /// charging their sum would double-count); otherwise the original's
    /// charges stand unchanged. Either way the launch is counted in
    /// [`FaultStats`](crate::fault::FaultStats).
    fn speculate_stragglers(&mut self, cluster: &mut Cluster, legs: &mut [MoveLeg]) {
        if !self.speculation.enabled || legs.len() < 2 {
            return;
        }
        let Some(plane) = cluster.fault_plane().filter(|s| !s.is_empty()).cloned() else {
            return;
        };
        let mut durations: Vec<u64> = legs.iter().map(|l| l.tl.elapsed().as_nanos()).collect();
        durations.sort_unstable();
        // Lower median, so a lone straggler in a small wave cannot drag the
        // reference leg up to itself and mask the detection.
        let median = durations[(durations.len() - 1) / 2];
        let multiple = u64::from(self.speculation.straggler_multiple.max(1));
        for leg in legs.iter_mut() {
            let slowed = plane.slow_factor(leg.src) > 1 || plane.slow_factor(leg.dst) > 1;
            let leg_ns = leg.tl.elapsed().as_nanos();
            if !slowed || !self.speculation.is_straggler(leg_ns, median) {
                continue;
            }
            let detect_at = median.saturating_mul(multiple);
            let backup_finish = detect_at.saturating_add(leg.nominal.as_nanos());
            self.speculated += 1;
            cluster.faults.stats.speculated += 1;
            if backup_finish < leg_ns {
                // The backup won strictly: the original is cancelled at the
                // backup's finish, so both endpoints were busy exactly that
                // long.
                let window = SimDuration::from_nanos(backup_finish);
                let mut tl = NodeTimeline::new();
                tl.charge(leg.src, window);
                tl.charge(leg.dst, window);
                leg.tl = tl;
                self.speculation_wins += 1;
                cluster.faults.stats.speculation_wins += 1;
            }
        }
    }

    /// Executes one bucket move under the job's policy, charging the
    /// participating nodes on `tl`. Empty buckets only need a directory
    /// update, which travels with the commit message, so they incur no
    /// per-move transfer cost.
    ///
    /// When a fault schedule is installed, transient failures burn attempts
    /// under the job's [`RetryPolicy`] first — each failed attempt charges
    /// a round-trip plus capped exponential backoff to both endpoints — and
    /// slow nodes scale every duration charged to them. With no schedule
    /// (or an empty one) the charges below are byte-identical to the
    /// fault-free path.
    fn ship_move(
        &mut self,
        cluster: &mut Cluster,
        m: &BucketMove,
        tl: &mut NodeTimeline,
    ) -> Result<ShipStats> {
        let cost = cluster.cost_model();
        let src_node = cluster.node_of_partition(m.from)?;
        let dst_node = self
            .target
            .node_of(m.to)
            .ok_or(ClusterError::UnknownPartition(m.to))?;
        let plane = cluster.fault_plane().filter(|s| !s.is_empty()).cloned();
        if let Some(plane) = &plane {
            let mut attempt = 0u32;
            while plane.transient_failure(m.bucket, m.from, m.to, attempt) {
                if attempt >= self.retry.max_retries {
                    return Err(ClusterError::RebalanceAborted(format!(
                        "transfer of bucket {} from {} to {} failed transiently {} times, \
                         exhausting its retry budget",
                        m.bucket,
                        m.from,
                        m.to,
                        attempt + 1
                    )));
                }
                let backoff = self.retry.backoff(attempt);
                let round_trip = SimDuration::from_nanos(cost.network_latency_ns);
                tl.charge(src_node, plane.scaled(src_node, round_trip) + backoff);
                tl.charge(dst_node, plane.scaled(dst_node, round_trip) + backoff);
                cluster.faults.stats.transient_faults += 1;
                cluster.faults.stats.retries += 1;
                cluster.faults.stats.backoff += backoff;
                self.retries += 1;
                attempt += 1;
            }
        }
        let scaled = |node: NodeId, d: SimDuration| match &plane {
            Some(p) => p.scaled(node, d),
            None => d,
        };
        // An index rebuild is only charged when there is something to
        // rebuild: a dataset without secondary indexes pays none under
        // either policy or rebuild mode.
        let dst_has_indexes = cluster
            .partition(m.to)?
            .dataset(self.dataset)?
            .has_secondary_indexes();
        match self.move_policy {
            MovePolicy::Records => {
                let entries = cluster
                    .partition_mut(m.from)?
                    .dataset_mut(self.dataset)?
                    .scan_bucket_for_move(m.bucket)?;
                let bytes: u64 = entries.iter().map(|e| e.size_bytes() as u64).sum();
                let records = entries.len() as u64;
                // The source merges the bucket's components into a record
                // stream; the network ships records; the destination
                // re-materialises them — re-sort, Bloom rebuild, primary
                // component build — and rebuilds the secondary entries.
                let mut nominal = SimDuration::ZERO;
                if bytes > 0 {
                    let src_cost = cost.disk_read(bytes) + cost.rematerialize_cpu(records);
                    tl.charge(src_node, scaled(src_node, src_cost));
                    let mut dst_cost = cost.network(bytes)
                        + cost.disk_write(bytes)
                        + cost.rematerialize_cpu(records);
                    if dst_has_indexes {
                        dst_cost += cost.index_rebuild_cpu(records);
                    }
                    tl.charge(dst_node, scaled(dst_node, dst_cost));
                    nominal = src_cost.max(dst_cost);
                }
                let dst = cluster.partition_mut(m.to)?.dataset_mut(self.dataset)?;
                dst.ensure_pending_bucket(m.bucket)?;
                dst.load_pending(m.bucket, entries)?;
                Ok(ShipStats {
                    bytes,
                    records,
                    component_ids: Vec::new(),
                    nominal,
                })
            }
            MovePolicy::Components => {
                let comps = cluster
                    .partition_mut(m.from)?
                    .dataset_mut(self.dataset)?
                    .ship_bucket_components(m.bucket)?;
                let bytes: u64 = comps.iter().map(|c| c.visible_size_bytes() as u64).sum();
                let component_ids: Vec<u64> = comps.iter().map(|c| c.id()).collect();
                let dst = cluster.partition_mut(m.to)?.dataset_mut(self.dataset)?;
                dst.ensure_pending_bucket(m.bucket)?;
                let records =
                    dst.install_shipped_components(m.bucket, comps, self.secondary_rebuild)?;
                // Sealed components travel as whole files: one sequential
                // read, one transfer, one sequential write. Bloom filters and
                // sorted runs arrive ready to serve; an eager secondary
                // rebuild is the only CPU left on the destination's commit
                // path, and the default deferred mode moves even that to the
                // first index query (charged by the query executor instead).
                let mut nominal = SimDuration::ZERO;
                if bytes > 0 {
                    let src_cost = cost.disk_read(bytes);
                    tl.charge(src_node, scaled(src_node, src_cost));
                    let mut dst_cost = cost.network(bytes)
                        + cost.component_ship_overhead(component_ids.len() as u64)
                        + cost.disk_write(bytes);
                    if dst_has_indexes && self.secondary_rebuild == SecondaryRebuild::Eager {
                        dst_cost += cost.index_rebuild_cpu(records);
                    }
                    tl.charge(dst_node, scaled(dst_node, dst_cost));
                    nominal = src_cost.max(dst_cost);
                }
                Ok(ShipStats {
                    bytes,
                    records,
                    component_ids,
                    nominal,
                })
            }
        }
    }

    /// Re-plans the in-flight rebalance around permanently lost participants
    /// instead of aborting. Allowed whenever the job is in data movement
    /// (between any two waves, including before the first and after the
    /// last). For each lost node the job:
    ///
    /// * redirects every move *to* one of its partitions onto the surviving
    ///   destination partition with the least planned inbound bytes (lowest
    ///   partition id breaks ties), amending both the plan and the planned
    ///   directory;
    /// * schedules already-shipped redirected moves for a fresh transfer
    ///   from their (still live) sources — the WAL's `ShippedMove` records
    ///   and the sources' kept copies make this safe — and unregisters their
    ///   write replication to the dead destination;
    /// * declares buckets whose *only* copy died with the node (an unshipped
    ///   move's source, or a non-moving bucket resident on the node) lost:
    ///   the commit installs them empty on a survivor so the directory keeps
    ///   covering the hash space, and the dataset serves every other bucket
    ///   (degraded mode, surfaced by [`Admin::health`]);
    /// * drops the node from the participant set, the 2PC coordinator, and
    ///   the target topology, then reschedules the still-pending moves into
    ///   fresh waves.
    ///
    /// Sessions keep serving reads from still-live sources throughout: the
    /// routing directory only changes at commit.
    ///
    /// [`Admin::health`]: crate::cluster::Admin::health
    pub fn replan_wave(&mut self, cluster: &mut Cluster) -> Result<ReplanReport> {
        let completed = match self.state {
            JobState::Moving { completed_waves } => completed_waves,
            _ => return Err(self.invalid_step("replan_wave")),
        };
        let lost: Vec<NodeId> = self
            .participants
            .iter()
            .copied()
            .filter(|n| cluster.node_is_lost(*n))
            .collect();
        if lost.is_empty() {
            return Ok(ReplanReport::default());
        }
        let cost = cluster.cost_model();

        let mut new_target = self.target.clone();
        for n in &lost {
            new_target = new_target.without_node(*n);
        }
        if new_target.is_empty() {
            return Err(ClusterError::RebalanceAborted(
                "every target node was permanently lost; nothing to re-plan onto".to_string(),
            ));
        }

        // Endpoint liveness per move, resolved before any mutation.
        let node_is_lost = |n: Option<NodeId>| n.is_some_and(|n| cluster.node_is_lost(n));
        let src_lost: Vec<bool> = self
            .plan
            .moves
            .iter()
            .map(|m| node_is_lost(cluster.topology().node_of(m.from)))
            .collect();
        let dst_lost: Vec<bool> = self
            .plan
            .moves
            .iter()
            .map(|m| node_is_lost(self.target.node_of(m.to)))
            .collect();
        let shipped_buckets: BTreeSet<BucketId> = self.waves[..completed]
            .iter()
            .flat_map(|w| w.iter().map(|m| m.bucket))
            .collect();

        // Surviving destinations, ranked by planned inbound bytes so the
        // reroutes spread instead of piling onto one partition.
        let mut inbound: BTreeMap<PartitionId, u64> = new_target
            .partitions()
            .into_iter()
            .map(|p| (p, 0))
            .collect();
        for (i, m) in self.plan.moves.iter().enumerate() {
            if !dst_lost[i] {
                *inbound.entry(m.to).or_default() += m.bytes;
            }
        }

        let mut report = ReplanReport {
            lost_nodes: lost.clone(),
            ..ReplanReport::default()
        };
        let mut lost_buckets: Vec<BucketId> = Vec::new();
        // Buckets whose already-shipped transfer must repeat onto the new
        // destination (their re-ship joins the rescheduled waves below).
        let mut reship: BTreeSet<BucketId> = BTreeSet::new();
        // Moves canceled outright (the bucket stays on its live source).
        let mut canceled: Vec<usize> = Vec::new();
        for i in 0..self.plan.moves.len() {
            let m = self.plan.moves[i];
            let already_shipped = shipped_buckets.contains(&m.bucket);
            if dst_lost[i] {
                // A dead destination orphans whatever was shipped to it; stop
                // replicating writes there either way.
                if already_shipped {
                    if let Some(active) = cluster.active_rebalances.get_mut(&self.dataset) {
                        active.shipped.remove(&m.bucket);
                    }
                }
                let src_in_target = !src_lost[i] && new_target.node_of(m.from).is_some();
                if src_in_target {
                    // The cheapest reroute: cancel the move and let the
                    // bucket stay on its live source (which keeps its copy
                    // until commit). Shipping a bucket back to itself would
                    // confuse the commit-time install/cleanup passes.
                    self.plan.new_directory.reassign(m.bucket, m.from);
                    canceled.push(i);
                } else {
                    let new_to = pick_least_loaded(&mut inbound, m.bytes).ok_or_else(|| {
                        ClusterError::RebalanceAborted(
                            "no surviving destination partition to re-plan onto".to_string(),
                        )
                    })?;
                    self.plan.moves[i].to = new_to;
                    self.plan.new_directory.reassign(m.bucket, new_to);
                    if already_shipped && !src_lost[i] {
                        reship.insert(m.bucket);
                        report.reshipped += 1;
                    }
                }
                report.rerouted += 1;
            }
            // The data survives if the destination holds a shipped copy or
            // the source still lives; otherwise the bucket is lost.
            let survives = if already_shipped && !dst_lost[i] {
                true
            } else {
                !src_lost[i]
            };
            if !survives {
                lost_buckets.push(m.bucket);
            }
        }
        for i in canceled.into_iter().rev() {
            self.plan.moves.remove(i);
        }

        // Non-moving buckets resident on a lost node lose their only copy
        // too: reassign each to a survivor as a synthetic zero-byte move, so
        // the commit installs an empty bucket there and the directory keeps
        // covering the full hash space.
        for n in &lost {
            for p in cluster.topology().partitions_of_node(*n) {
                for bucket in self.plan.new_directory.buckets_of_partition(p) {
                    let new_to = pick_least_loaded(&mut inbound, 0).ok_or_else(|| {
                        ClusterError::RebalanceAborted(
                            "no surviving destination partition to re-plan onto".to_string(),
                        )
                    })?;
                    self.plan.new_directory.reassign(bucket, new_to);
                    self.plan.moves.push(BucketMove {
                        bucket,
                        from: p,
                        to: new_to,
                        bytes: 0,
                    });
                    report.rerouted += 1;
                    lost_buckets.push(bucket);
                }
            }
        }

        // Shrink the 2PC to the survivors and adopt the amended target.
        for n in &lost {
            self.coordinator.remove_participant(*n);
        }
        self.participants.retain(|n| !lost.contains(n));
        self.target = new_target;
        self.plan.target = self.target.clone();
        if let Some(active) = cluster.active_rebalances.get_mut(&self.dataset) {
            active.target = self.target.clone();
        }

        // Reschedule what still has to move: unshipped moves with a live
        // source, plus the re-ships. Lost buckets are deliberately absent —
        // their empty install travels with the commit.
        let max_concurrent = self.waves.iter().map(Vec::len).max().unwrap_or(1);
        self.waves.truncate(completed);
        let topology = cluster.topology().clone();
        let pending: Vec<BucketMove> = self
            .plan
            .moves
            .iter()
            .copied()
            .filter(|m| {
                let src_live = topology
                    .node_of(m.from)
                    .is_some_and(|n| !cluster.node_is_lost(n));
                let needs_ship = !shipped_buckets.contains(&m.bucket) || reship.contains(&m.bucket);
                src_live && needs_ship
            })
            .collect();
        let new_waves =
            RebalancePlan::schedule_moves(&pending, &self.target, max_concurrent, |p| {
                topology.node_of(p)
            });
        report.waves_appended = new_waves.len();
        self.waves.extend(new_waves);

        // Re-planning is CC work and costs makespan like any wave.
        let mut tl = NodeTimeline::new();
        tl.charge_coordinator(SimDuration::from_nanos(
            cost.job_overhead_ns * lost.len() as u64,
        ));
        self.clock.record_wave(&tl);
        self.move_tl.extend(&tl);

        report.lost_buckets = lost_buckets.len() as u64;
        self.publish_progress(cluster);
        self.reroutes += report.rerouted;
        cluster.faults.stats.reroutes += report.rerouted;
        cluster.faults.stats.reshipped += report.reshipped;
        if !lost_buckets.is_empty() {
            let entry = cluster
                .faults
                .stats
                .lost_buckets
                .entry(self.dataset)
                .or_default();
            for b in lost_buckets {
                if !entry.contains(&b) {
                    entry.push(b);
                }
            }
        }
        Ok(report)
    }

    /// Applies a batch of concurrent writes while data movement is in
    /// progress (between any two waves, or before/after all of them). The
    /// batch goes through the *normal* feed path — [`Cluster::ingest`] —
    /// which consults the registered rebalance state: records hitting a
    /// bucket whose wave has *already shipped it* are replicated to the
    /// destination's pending bucket, while writes to buckets that have not
    /// shipped yet need no replication (the wave's snapshot scan picks them
    /// up). The only thing this wrapper adds is folding the batch into the
    /// job's data-movement time accounting.
    pub fn apply_feed_batch(
        &mut self,
        cluster: &mut Cluster,
        records: impl IntoIterator<Item = (Key, Value)>,
    ) -> Result<u64> {
        self.require(
            matches!(self.state, JobState::Moving { .. }),
            "apply_feed_batch",
        )?;
        let report = cluster.ingest(self.dataset, records)?;
        // Like a wave, the feed batch is bounded by its slowest node.
        let mut batch_tl = NodeTimeline::new();
        for (node, busy) in &report.per_node {
            batch_tl.charge(*node, *busy);
        }
        self.clock.record_wave(&batch_tl);
        self.move_tl.extend(&batch_tl);
        self.writes_applied += report.records;
        Ok(report.records)
    }

    /// Prepare (the first half of 2PC): every destination flushes the memory
    /// components holding replicated writes, and every alive participant
    /// votes "prepared". Requires all waves to have run.
    pub fn prepare(&mut self, cluster: &mut Cluster) -> Result<()> {
        self.require(
            matches!(self.state, JobState::Moving { completed_waves } if completed_waves == self.waves.len()),
            "prepare",
        )?;
        let cost = cluster.cost_model();
        self.coordinator
            .start_prepare()
            .map_err(ClusterError::Core)?;
        for m in &self.plan.moves {
            let dst_node = self
                .target
                .node_of(m.to)
                .ok_or(ClusterError::UnknownPartition(m.to))?;
            if cluster.node_is_alive(dst_node) {
                let pending_bytes = cluster
                    .partition(m.to)?
                    .dataset(self.dataset)?
                    .primary
                    .pending_storage_bytes() as u64;
                cluster
                    .partition_mut(m.to)?
                    .dataset_mut(self.dataset)?
                    .flush_pending();
                self.fin_tl
                    .charge(dst_node, cost.disk_write(pending_bytes / 8));
            }
        }
        // Reads still proceed, but writes are blocked from here until the
        // decision: the pending components are flushed and a late write
        // could no longer be replicated (Section V-C).
        if let Some(active) = cluster.active_rebalances.get_mut(&self.dataset) {
            active.write_blocked = true;
        }
        // Alive participants vote yes; dead ones cannot vote.
        for n in &self.participants {
            if cluster.node_is_alive(*n) {
                self.coordinator
                    .record_vote(*n, NodeVote::Yes)
                    .map_err(ClusterError::Core)?;
            }
        }
        self.fin_tl.charge_coordinator(SimDuration::from_nanos(
            cost.network_latency_ns * self.participants.len() as u64,
        ));
        self.state = JobState::Prepared;
        self.publish_progress(cluster);
        Ok(())
    }

    /// Decides the outcome from the collected votes. A unanimous yes forces
    /// the COMMIT log record — the rebalance is then determined to commit —
    /// and any missing vote aborts (forcing the ABORT record and discarding
    /// all pending buckets).
    pub fn decide(&mut self, cluster: &mut Cluster) -> Result<RebalanceOutcome> {
        self.require(matches!(self.state, JobState::Prepared), "decide")?;
        if self.coordinator.unanimous_yes() {
            // The outcome is determined by forcing the COMMIT record.
            cluster
                .controller
                .metadata_log
                .append_forced(LogRecordBody::RebalanceCommit {
                    rebalance: self.rebalance_id,
                });
            self.coordinator.decide().map_err(ClusterError::Core)?;
            self.state = JobState::Decided(RebalanceOutcome::Committed);
            Ok(RebalanceOutcome::Committed)
        } else {
            self.coordinator.decide().map_err(ClusterError::Core)?;
            self.abort_cleanup(cluster)?;
            self.state = JobState::Decided(RebalanceOutcome::Aborted);
            Ok(RebalanceOutcome::Aborted)
        }
    }

    /// Aborts the job from any step before the commit decision (operator
    /// cancellation, or CC recovery finding BEGIN without COMMIT). Forces the
    /// ABORT record and discards all pending buckets; idempotent once the
    /// job is already aborted.
    pub fn abort(&mut self, cluster: &mut Cluster) -> Result<()> {
        match self.state {
            JobState::Planned | JobState::Moving { .. } | JobState::Prepared => {}
            JobState::Decided(RebalanceOutcome::Aborted) => return Ok(()),
            _ => return Err(self.invalid_step("abort")),
        }
        self.coordinator.abort().map_err(ClusterError::Core)?;
        self.abort_cleanup(cluster)?;
        self.state = JobState::Decided(RebalanceOutcome::Aborted);
        self.publish_progress(cluster);
        Ok(())
    }

    /// Commit tasks (after a committed decision): every alive node installs
    /// its received buckets and cleans up its moved buckets, and the CC
    /// installs the new directory and partition list.
    pub fn commit(&mut self, cluster: &mut Cluster) -> Result<()> {
        self.require(
            matches!(self.state, JobState::Decided(RebalanceOutcome::Committed)),
            "commit",
        )?;
        self.run_commit_tasks(cluster)?;
        for n in &self.participants.clone() {
            if cluster.node_is_alive(*n) {
                self.coordinator
                    .record_committed(*n)
                    .map_err(ClusterError::Core)?;
            }
        }
        let meta = cluster.controller.dataset_mut(self.dataset)?;
        // Install the planned directory *into* the CC's versioned copy: the
        // per-bucket differences land in the change log under one version
        // bump, so stale sessions catch up with a cheap delta instead of a
        // full snapshot.
        match meta.directory.as_mut() {
            Some(dir) => dir.install(&self.plan.new_directory),
            None => meta.directory = Some(self.plan.new_directory.clone()),
        }
        if meta.partitions != self.target.partitions() {
            meta.partitions = self.target.partitions();
            meta.bump_partitions_version();
        }
        // The new directory is live: ingestion resumes through it.
        cluster.active_rebalances.remove(&self.dataset);
        self.state = JobState::CommitTasksDone;
        // Subscribed sessions learn about the new directory by push instead
        // of waiting to trip over a routing validation failure.
        cluster.push_routing_update(self.dataset);
        self.publish_progress(cluster);
        Ok(())
    }

    /// Finalization: recovers every crashed node, has recovered nodes repeat
    /// their (idempotent) commit or cleanup tasks, forces DONE, re-enables
    /// bucket splits, and produces the report. This is the step that makes
    /// failure Cases 2, 4, and 5 converge — however many participants died,
    /// finalize re-drives their tasks until the cluster agrees with the
    /// durable decision.
    pub fn finalize(&mut self, cluster: &mut Cluster) -> Result<RebalanceReport> {
        let outcome = match self.state {
            JobState::Decided(RebalanceOutcome::Aborted) => {
                cluster.recover_all_nodes();
                // Recovered nodes repeat the cleanup; discarding is
                // idempotent, so this is safe whatever they saw before dying.
                self.drop_all_pending(cluster)?;
                RebalanceOutcome::Aborted
            }
            JobState::CommitTasksDone => {
                cluster.recover_all_nodes();
                self.run_commit_tasks(cluster)?;
                for n in &self.participants.clone() {
                    if cluster.node_is_alive(*n) {
                        self.coordinator
                            .record_committed(*n)
                            .map_err(ClusterError::Core)?;
                    }
                }
                RebalanceOutcome::Committed
            }
            _ => return Err(self.invalid_step("finalize")),
        };
        cluster
            .controller
            .metadata_log
            .append_forced(LogRecordBody::RebalanceDone {
                rebalance: self.rebalance_id,
            });
        self.coordinator.finish().map_err(ClusterError::Core)?;
        // Splits resume after the rebalance completes, whatever the outcome,
        // and any leftover replication state is dropped (normally already
        // removed by commit/abort; kept idempotent for crashed drivers).
        cluster.active_rebalances.remove(&self.dataset);
        cluster.set_splits_enabled(self.dataset, true)?;
        self.state = JobState::Finalized(outcome);
        cluster.clear_job_progress(self.dataset);
        Ok(self.report(outcome))
    }

    // ------------------------------------------------------------ accessors

    /// The rebalance operation id.
    pub fn rebalance_id(&self) -> RebalanceId {
        self.rebalance_id
    }

    /// The dataset being rebalanced.
    pub fn dataset(&self) -> DatasetId {
        self.dataset
    }

    /// The current job state.
    pub fn state(&self) -> JobState {
        self.state
    }

    /// The computed plan.
    pub fn plan_ref(&self) -> &RebalancePlan {
        &self.plan
    }

    /// The scheduled waves.
    pub fn waves(&self) -> &[Vec<dynahash_core::BucketMove>] {
        &self.waves
    }

    /// How this job moves buckets (default: [`MovePolicy::Components`]).
    pub fn move_policy(&self) -> MovePolicy {
        self.move_policy
    }

    /// Sets how buckets move. Call before the first wave runs; switching
    /// mid-job would charge the remaining waves under the new policy.
    pub fn set_move_policy(&mut self, policy: MovePolicy) {
        self.move_policy = policy;
    }

    /// The retry policy bucket transfers run under when a fault schedule is
    /// installed (default: [`RetryPolicy::default`]).
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Sets the transfer retry policy. Call before the first wave runs.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The straggler-speculation policy waves run under (default:
    /// [`SpeculationPolicy::default`], enabled at 2x the median leg).
    pub fn speculation(&self) -> SpeculationPolicy {
        self.speculation
    }

    /// Sets the straggler-speculation policy. Call before the first wave
    /// runs.
    pub fn set_speculation(&mut self, speculation: SpeculationPolicy) {
        self.speculation = speculation;
    }

    /// Transfer attempts retried after a transient fault, so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Straggling transfers speculatively re-executed by this job, so far.
    pub fn speculated(&self) -> u64 {
        self.speculated
    }

    /// Speculative backups that beat their original attempt, so far.
    pub fn speculation_wins(&self) -> u64 {
        self.speculation_wins
    }

    /// Moves rerouted to survivors by [`RebalanceJob::replan_wave`], so far.
    pub fn reroutes(&self) -> u64 {
        self.reroutes
    }

    /// When destinations rebuild secondary entries for received buckets
    /// (default: [`SecondaryRebuild::Deferred`]). Only meaningful under
    /// [`MovePolicy::Components`]; the Records baseline always rebuilds
    /// eagerly while re-materialising.
    pub fn secondary_rebuild(&self) -> SecondaryRebuild {
        self.secondary_rebuild
    }

    /// Sets the secondary-rebuild mode. Call before the first wave runs.
    pub fn set_secondary_rebuild(&mut self, rebuild: SecondaryRebuild) {
        self.secondary_rebuild = rebuild;
    }

    /// Total number of scheduled waves.
    pub fn num_waves(&self) -> usize {
        self.waves.len()
    }

    /// Number of waves that have completed.
    pub fn completed_waves(&self) -> usize {
        match self.state {
            JobState::Planned => 0,
            JobState::Moving { completed_waves } => completed_waves,
            _ => self.waves.len(),
        }
    }

    /// True while [`RebalanceJob::run_wave`] has waves left to run.
    pub fn has_remaining_waves(&self) -> bool {
        matches!(self.state, JobState::Moving { completed_waves } if completed_waves < self.waves.len())
    }

    /// Concurrent writes applied through the job so far.
    pub fn writes_applied(&self) -> u64 {
        self.writes_applied
    }

    /// The outcome, once the job is decided.
    pub fn outcome(&self) -> Option<RebalanceOutcome> {
        match self.state {
            JobState::Decided(o) | JobState::Finalized(o) => Some(o),
            JobState::CommitTasksDone => Some(RebalanceOutcome::Committed),
            _ => None,
        }
    }

    /// True once the job is finalized.
    pub fn is_terminal(&self) -> bool {
        matches!(self.state, JobState::Finalized(_))
    }

    /// The nodes participating in the two-phase commit (targets plus
    /// sources), after any replans removed lost ones.
    pub fn participants(&self) -> &[NodeId] {
        &self.participants
    }

    /// Bytes shipped across the network so far.
    pub fn bytes_shipped(&self) -> u64 {
        self.bytes_moved
    }

    /// A point-in-time progress snapshot for [`crate::ClusterHealth`]. The
    /// ETA extrapolates the per-wave simulated makespan observed so far over
    /// the remaining waves (zero before the first wave completes).
    pub fn progress(&self) -> crate::control::JobProgress {
        let waves_total = self.waves.len();
        let waves_completed = self.completed_waves();
        let buckets_total = self.plan.num_moves();
        let buckets_moved: usize = self.waves[..waves_completed.min(waves_total)]
            .iter()
            .map(|w| w.len())
            .sum();
        let remaining = waves_total.saturating_sub(waves_completed);
        let eta = if waves_completed == 0 || remaining == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(
                (self.clock.elapsed().as_nanos() / waves_completed as u64)
                    .saturating_mul(remaining as u64),
            )
        };
        crate::control::JobProgress {
            dataset: self.dataset,
            rebalance: self.rebalance_id,
            state: self.state.name(),
            buckets_total,
            buckets_moved,
            bytes_planned: self.plan.total_bytes_moved(),
            bytes_shipped: self.bytes_moved,
            waves_total,
            waves_completed,
            eta,
        }
    }

    fn publish_progress(&self, cluster: &mut Cluster) {
        cluster.publish_job_progress(self.progress());
    }

    // ------------------------------------------------------------- internals

    fn require(&self, ok: bool, action: &'static str) -> Result<()> {
        if ok {
            Ok(())
        } else {
            Err(self.invalid_step(action))
        }
    }

    fn invalid_step(&self, action: &'static str) -> ClusterError {
        ClusterError::InvalidJobStep {
            action,
            state: self.state.name(),
        }
    }

    fn abort_cleanup(&mut self, cluster: &mut Cluster) -> Result<()> {
        // The rebalance is off: ingestion resumes through the old directory.
        cluster.active_rebalances.remove(&self.dataset);
        cluster
            .controller
            .metadata_log
            .append_forced(LogRecordBody::RebalanceAbort {
                rebalance: self.rebalance_id,
            });
        self.drop_all_pending(cluster)
    }

    fn drop_all_pending(&mut self, cluster: &mut Cluster) -> Result<()> {
        for m in &self.plan.moves {
            if cluster.topology().node_of(m.to).is_some() {
                cluster
                    .partition_mut(m.to)?
                    .dataset_mut(self.dataset)?
                    .drop_pending(m.bucket);
            }
        }
        Ok(())
    }

    fn run_commit_tasks(&mut self, cluster: &mut Cluster) -> Result<()> {
        let cost = cluster.cost_model();
        // One commit message per participating node covers all of its bucket
        // installs and cleanups.
        for n in self.plan.participating_partitions().iter().filter_map(|p| {
            self.target
                .node_of(*p)
                .or_else(|| cluster.topology().node_of(*p))
        }) {
            self.fin_tl
                .charge(n, SimDuration::from_nanos(cost.network_latency_ns));
        }
        // First pass: every alive destination installs its received buckets,
        // re-shipping transfers that a crash wiped (replayed from the ship
        // records in the metadata log).
        let moves = self.plan.moves.clone();
        for m in &moves {
            let Some(dst_node) = self.target.node_of(m.to) else {
                continue;
            };
            if cluster.node_is_alive(dst_node) && self.ensure_shipped(cluster, m)? {
                cluster
                    .partition_mut(m.to)?
                    .dataset_mut(self.dataset)?
                    .install_pending(m.bucket)?;
            }
        }
        // Second pass: a source drops its moved bucket (and marks secondary
        // indexes for lazy cleanup) only once the destination serves it —
        // dropping earlier would make a destination-side crash unrecoverable,
        // since re-shipping needs the source copy.
        for m in &moves {
            let installed = cluster
                .partition(m.to)
                .ok()
                .and_then(|p| p.dataset(self.dataset).ok())
                .map(|ds| ds.primary.directory().contains(&m.bucket))
                .unwrap_or(false);
            if !installed {
                continue;
            }
            if let Some(src_node) = cluster.topology().node_of(m.from) {
                if cluster.node_is_alive(src_node) {
                    let warmed = cluster
                        .partition_mut(m.from)?
                        .dataset_mut(self.dataset)?
                        .cleanup_moved_bucket(m.bucket)?;
                    // A stash partially covered by the moved bucket had to
                    // materialize before the lazy-cleanup mark: that rebuild
                    // runs here, so it is charged here (finalization), not
                    // hidden.
                    if warmed > 0 {
                        self.fin_tl.charge(src_node, cost.index_rebuild_cpu(warmed));
                    }
                }
            }
        }
        Ok(())
    }

    /// Makes sure the destination of `m` holds the transferred bucket data,
    /// re-shipping it from the source when an uncommitted transfer was lost
    /// to a crash. Returns false if the move cannot be completed yet (the
    /// source is down); [`RebalanceJob::finalize`] recovers every node and
    /// retries. A *permanently lost* source cannot re-ship: whatever reached
    /// the destination (possibly nothing) is installed as the degraded copy
    /// and the bucket is recorded as lost.
    fn ensure_shipped(&mut self, cluster: &mut Cluster, m: &BucketMove) -> Result<bool> {
        {
            let ds = cluster.partition(m.to)?.dataset(self.dataset)?;
            if ds.primary.directory().contains(&m.bucket)
                || ds.primary.pending_has_base_data(&m.bucket)
            {
                return Ok(true);
            }
        }
        let src_node = cluster.node_of_partition(m.from)?;
        if cluster.node_is_lost(src_node) {
            // The source died for good and the destination holds no base
            // data. Install what little survived — replicated writes that
            // landed after the wipe, or nothing at all — so the committed
            // directory keeps covering the hash space, and record the
            // bucket as degraded.
            cluster
                .partition_mut(m.to)?
                .dataset_mut(self.dataset)?
                .ensure_pending_bucket(m.bucket)?;
            let entry = cluster
                .faults
                .stats
                .lost_buckets
                .entry(self.dataset)
                .or_default();
            if !entry.contains(&m.bucket) {
                entry.push(m.bucket);
            }
            return Ok(true);
        }
        // The transfer must have been recorded durable before it can be
        // replayed (run_wave forces one ship record per wave).
        let was_shipped = cluster
            .controller
            .metadata_log
            .shipped_moves(self.rebalance_id)
            .iter()
            .any(|s| {
                s.bucket_bits == m.bucket.bits
                    && s.bucket_depth == m.bucket.depth
                    && s.from == m.from.0
                    && s.to == m.to.0
            });
        if !was_shipped {
            return Ok(false);
        }
        let src_owns = cluster
            .partition(m.from)?
            .dataset(self.dataset)?
            .primary
            .directory()
            .contains(&m.bucket);
        if !src_owns || !cluster.node_is_alive(src_node) {
            return Ok(false);
        }
        let mut tl = NodeTimeline::new();
        self.ship_move(cluster, m, &mut tl)?;
        self.fin_tl.extend(&tl);
        Ok(true)
    }

    fn report(&self, outcome: RebalanceOutcome) -> RebalanceReport {
        let mut total_tl = NodeTimeline::new();
        total_tl.extend(&self.init_tl);
        total_tl.extend(&self.move_tl);
        total_tl.extend(&self.fin_tl);
        RebalanceReport {
            rebalance_id: self.rebalance_id,
            outcome,
            elapsed: self.init_tl.elapsed() + self.clock.elapsed() + self.fin_tl.elapsed(),
            phases: PhaseTimes {
                initialization: self.init_tl.elapsed(),
                data_movement: self.clock.elapsed(),
                finalization: self.fin_tl.elapsed(),
            },
            bytes_moved: self.bytes_moved,
            records_moved: self.records_moved,
            buckets_moved: self.plan.num_moves(),
            moved_fraction: if self.total_bytes == 0 {
                0.0
            } else {
                self.bytes_moved as f64 / self.total_bytes as f64
            },
            per_node: total_tl.breakdown(),
            concurrent_writes_applied: self.writes_applied,
            retries: self.retries,
            reroutes: self.reroutes,
        }
    }
}

/// Picks the surviving destination partition with the least planned inbound
/// bytes (lowest partition id breaks ties) and charges `bytes` to it, so
/// successive reroutes spread across the survivors deterministically.
fn pick_least_loaded(inbound: &mut BTreeMap<PartitionId, u64>, bytes: u64) -> Option<PartitionId> {
    let p = inbound
        .iter()
        .min_by_key(|&(p, b)| (*b, *p))
        .map(|(p, _)| *p)?;
    if let Some(b) = inbound.get_mut(&p) {
        *b += bytes;
    }
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;
    use dynahash_core::Scheme;
    use dynahash_lsm::Bytes;

    fn loaded(nodes: u32, n: u64) -> (Cluster, DatasetId) {
        let mut cluster = Cluster::with_config(
            nodes,
            crate::ClusterConfig {
                partitions_per_node: 2,
                cost_model: crate::CostModel::default(),
            },
        );
        let ds = cluster
            .create_dataset(DatasetSpec::new(
                "events",
                Scheme::StaticHash { num_buckets: 32 },
            ))
            .unwrap();
        let records: Vec<(Key, Bytes)> = (0..n)
            .map(|i| (Key::from_u64(i), Bytes::from(vec![(i % 251) as u8; 48])))
            .collect();
        cluster.ingest(ds, records).unwrap();
        (cluster, ds)
    }

    #[test]
    fn happy_path_steps_commit() {
        let (mut cluster, ds) = loaded(2, 2000);
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 2).unwrap();
        assert_eq!(job.state(), JobState::Planned);
        assert!(job.num_waves() >= 2, "expected multiple waves");
        job.init(&mut cluster).unwrap();
        let mut seen = 0;
        while job.has_remaining_waves() {
            let report = job.run_wave(&mut cluster).unwrap();
            assert_eq!(report.wave, seen);
            assert!(report.moves >= 1 && report.moves <= 2);
            seen += 1;
        }
        assert_eq!(seen, job.num_waves());
        job.prepare(&mut cluster).unwrap();
        assert_eq!(
            job.decide(&mut cluster).unwrap(),
            RebalanceOutcome::Committed
        );
        job.commit(&mut cluster).unwrap();
        let report = job.finalize(&mut cluster).unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        assert!(job.is_terminal());
        assert_eq!(cluster.dataset_len(ds).unwrap(), 2000);
        cluster
            .check_rebalance_integrity(ds, report.rebalance_id)
            .unwrap();
    }

    #[test]
    fn out_of_order_steps_are_rejected() {
        let (mut cluster, ds) = loaded(2, 500);
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 1).unwrap();
        // cannot run a wave, prepare, or commit before init
        assert!(matches!(
            job.run_wave(&mut cluster),
            Err(ClusterError::InvalidJobStep { .. })
        ));
        assert!(job.prepare(&mut cluster).is_err());
        assert!(job.commit(&mut cluster).is_err());
        assert!(job.finalize(&mut cluster).is_err());
        job.init(&mut cluster).unwrap();
        // cannot prepare with waves remaining
        assert!(job.prepare(&mut cluster).is_err());
        // abort works mid-movement and is idempotent
        job.abort(&mut cluster).unwrap();
        job.abort(&mut cluster).unwrap();
        let report = job.finalize(&mut cluster).unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Aborted);
        assert_eq!(cluster.dataset_len(ds).unwrap(), 500);
        cluster
            .check_rebalance_integrity(ds, report.rebalance_id)
            .unwrap();
    }

    #[test]
    fn wave_with_a_dead_source_node_reports_node_down() {
        let (mut cluster, ds) = loaded(3, 2000);
        let victim = NodeId(2);
        let target = cluster.topology_without(victim);
        let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 4).unwrap();
        job.init(&mut cluster).unwrap();
        cluster.crash_node(victim).unwrap();
        // every move sources from the victim, so the wave cannot run
        assert!(matches!(
            job.run_wave(&mut cluster),
            Err(ClusterError::NodeDown(n)) if n == victim
        ));
        // recover and the same wave runs
        cluster.recover_node(victim).unwrap();
        job.run_wave(&mut cluster).unwrap();
        while job.has_remaining_waves() {
            job.run_wave(&mut cluster).unwrap();
        }
        job.prepare(&mut cluster).unwrap();
        assert_eq!(
            job.decide(&mut cluster).unwrap(),
            RebalanceOutcome::Committed
        );
        job.commit(&mut cluster).unwrap();
        let report = job.finalize(&mut cluster).unwrap();
        assert_eq!(cluster.dataset_len(ds).unwrap(), 2000);
        cluster
            .check_rebalance_integrity(ds, report.rebalance_id)
            .unwrap();
    }

    #[test]
    fn components_policy_ships_sealed_components_and_logs_the_waves() {
        let (mut cluster, ds) = loaded(2, 2000);
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 2).unwrap();
        assert_eq!(job.move_policy(), dynahash_core::MovePolicy::Components);
        job.init(&mut cluster).unwrap();
        let mut components = 0usize;
        while job.has_remaining_waves() {
            components += job.run_wave(&mut cluster).unwrap().components;
        }
        assert!(components > 0, "waves must ship sealed components");
        let shipped = cluster
            .controller
            .metadata_log
            .shipped_moves(job.rebalance_id());
        assert_eq!(shipped.len(), job.plan_ref().num_moves());
        assert!(shipped.iter().any(|m| !m.component_ids.is_empty()));
        job.prepare(&mut cluster).unwrap();
        job.decide(&mut cluster).unwrap();
        job.commit(&mut cluster).unwrap();
        let report = job.finalize(&mut cluster).unwrap();
        assert_eq!(cluster.dataset_len(ds).unwrap(), 2000);
        cluster
            .check_rebalance_integrity(ds, report.rebalance_id)
            .unwrap();
    }

    #[test]
    fn destination_crash_after_shipping_is_reshipped_from_the_log() {
        let (mut cluster, ds) = loaded(2, 2000);
        let new_node = cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 4).unwrap();
        job.init(&mut cluster).unwrap();
        while job.has_remaining_waves() {
            job.run_wave(&mut cluster).unwrap();
        }
        job.prepare(&mut cluster).unwrap();
        // The new node received buckets and voted; its crash now wipes the
        // uncommitted pending state (the transfer metadata was never forced).
        cluster.crash_node(new_node).unwrap();
        assert_eq!(
            job.decide(&mut cluster).unwrap(),
            RebalanceOutcome::Committed
        );
        job.commit(&mut cluster).unwrap();
        let report = job.finalize(&mut cluster).unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        assert_eq!(cluster.dataset_len(ds).unwrap(), 2000);
        cluster
            .check_rebalance_integrity(ds, report.rebalance_id)
            .unwrap();
        // the recovered node serves its re-shipped buckets
        let on_new: usize = cluster
            .topology()
            .partitions_of_node(new_node)
            .iter()
            .map(|p| {
                cluster
                    .partition(*p)
                    .unwrap()
                    .dataset(ds)
                    .unwrap()
                    .live_len()
            })
            .sum();
        assert!(on_new > 0, "lost transfers must be re-shipped");
    }

    #[test]
    fn transient_faults_are_retried_and_absorbed() {
        let (mut cluster, ds) = loaded(2, 2000);
        cluster.add_node().unwrap();
        // Fail often (60 %), but cap the injections per transfer below the
        // default retry budget so every fault is absorbed.
        cluster.set_fault_plane(crate::fault::FaultSchedule::seeded(7).with_transient(600, 2));
        let target = cluster.topology().clone();
        let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 4).unwrap();
        job.init(&mut cluster).unwrap();
        while job.has_remaining_waves() {
            job.run_wave(&mut cluster).unwrap();
        }
        job.prepare(&mut cluster).unwrap();
        assert_eq!(
            job.decide(&mut cluster).unwrap(),
            RebalanceOutcome::Committed
        );
        job.commit(&mut cluster).unwrap();
        let report = job.finalize(&mut cluster).unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        assert!(report.retries > 0, "60 % per-mille must trip some retries");
        let stats = cluster.fault_stats();
        assert_eq!(stats.transient_faults, report.retries);
        assert!(stats.backoff > SimDuration::from_nanos(0));
        assert_eq!(cluster.dataset_len(ds).unwrap(), 2000);
        cluster
            .check_rebalance_integrity(ds, report.rebalance_id)
            .unwrap();
    }

    #[test]
    fn losing_a_pure_destination_cancels_its_moves_and_commits() {
        let (mut cluster, ds) = loaded(3, 3000);
        let new_node = cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 2).unwrap();
        job.init(&mut cluster).unwrap();
        job.run_wave(&mut cluster).unwrap();
        cluster.lose_node(new_node).unwrap();
        // the next wave reports the loss as permanent, not as recoverable
        assert!(matches!(
            job.run_wave(&mut cluster),
            Err(ClusterError::NodeLost(n)) if n == new_node
        ));
        let replan = job.replan_wave(&mut cluster).unwrap();
        assert_eq!(replan.lost_nodes, vec![new_node]);
        assert!(replan.rerouted > 0);
        assert_eq!(
            replan.lost_buckets, 0,
            "a pure destination holds no sole copies"
        );
        // every source survives inside the target, so every move cancels:
        // nothing is left to ship
        assert_eq!(replan.waves_appended, 0);
        assert!(!job.has_remaining_waves());
        job.prepare(&mut cluster).unwrap();
        assert_eq!(
            job.decide(&mut cluster).unwrap(),
            RebalanceOutcome::Committed
        );
        job.commit(&mut cluster).unwrap();
        let report = job.finalize(&mut cluster).unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        assert!(report.reroutes > 0);
        assert_eq!(cluster.dataset_len(ds).unwrap(), 3000);
        cluster.remove_lost_node(new_node).unwrap();
        cluster
            .check_rebalance_integrity(ds, report.rebalance_id)
            .unwrap();
        assert!(
            cluster.fault_stats().lost_nodes.contains(&new_node),
            "the loss is recorded in the fault stats"
        );
    }

    #[test]
    fn losing_a_destination_mid_scale_in_reships_to_survivors() {
        // Evacuate node 3; some of its buckets land on node 2, which dies
        // for good after every wave shipped. The evacuation must still
        // complete by re-shipping node 2's share to nodes 0 and 1 — node 2's
        // own resident buckets die with it (their only copy), so the dataset
        // ends degraded but every evacuated record survives.
        let (mut cluster, ds) = loaded(4, 4000);
        let evacuee = NodeId(3);
        let victim = NodeId(2);
        let target = cluster.topology_without(evacuee);
        let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 2).unwrap();
        assert!(job
            .plan_ref()
            .moves
            .iter()
            .any(|m| target.node_of(m.to) == Some(victim)));
        job.init(&mut cluster).unwrap();
        while job.has_remaining_waves() {
            job.run_wave(&mut cluster).unwrap();
        }
        cluster.lose_node(victim).unwrap();
        let replan = job.replan_wave(&mut cluster).unwrap();
        assert_eq!(replan.lost_nodes, vec![victim]);
        assert!(replan.rerouted > 0);
        assert!(
            replan.reshipped > 0,
            "shipped moves to the dead node must transfer again"
        );
        assert!(
            replan.lost_buckets > 0,
            "the victim's resident buckets die with it"
        );
        assert!(replan.waves_appended > 0);
        while job.has_remaining_waves() {
            job.run_wave(&mut cluster).unwrap();
        }
        job.prepare(&mut cluster).unwrap();
        assert_eq!(
            job.decide(&mut cluster).unwrap(),
            RebalanceOutcome::Committed
        );
        job.commit(&mut cluster).unwrap();
        let report = job.finalize(&mut cluster).unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        // the evacuee is empty and decommissionable; the victim is removable
        cluster.decommission_node(evacuee).unwrap();
        cluster.remove_lost_node(victim).unwrap();
        cluster
            .check_rebalance_integrity(ds, report.rebalance_id)
            .unwrap();
        // every evacuated record survived; only the victim's residents died
        let after = cluster.dataset_len(ds).unwrap();
        assert!(after > 0 && after < 4000, "degraded but serving: {after}");
        for (_, state) in cluster.admin().health().nodes {
            assert_eq!(state, crate::fault::NodeState::Alive);
        }
    }

    #[test]
    fn losing_a_source_mid_movement_serves_degraded() {
        // Node 2 is being evacuated and dies for good before all of its
        // buckets ship: the shipped ones survive at their destinations, the
        // unshipped ones are declared lost, and the dataset keeps serving
        // everything else.
        let (mut cluster, ds) = loaded(3, 3000);
        let before = cluster.dataset_len(ds).unwrap();
        let victim = NodeId(2);
        let target = cluster.topology_without(victim);
        let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 1).unwrap();
        let total_moves = job.plan_ref().num_moves();
        assert!(total_moves > 2);
        job.init(&mut cluster).unwrap();
        job.run_wave(&mut cluster).unwrap();
        cluster.lose_node(victim).unwrap();
        let replan = job.replan_wave(&mut cluster).unwrap();
        assert_eq!(replan.lost_nodes, vec![victim]);
        assert!(
            replan.lost_buckets > 0,
            "unshipped buckets die with their source"
        );
        while job.has_remaining_waves() {
            job.run_wave(&mut cluster).unwrap();
        }
        job.prepare(&mut cluster).unwrap();
        assert_eq!(
            job.decide(&mut cluster).unwrap(),
            RebalanceOutcome::Committed
        );
        job.commit(&mut cluster).unwrap();
        let report = job.finalize(&mut cluster).unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        cluster.remove_lost_node(victim).unwrap();
        // the shipped buckets survived, the unshipped ones are gone
        let after = cluster.dataset_len(ds).unwrap();
        assert!(after > 0 && after < before, "degraded but serving: {after}");
        cluster
            .check_rebalance_integrity(ds, report.rebalance_id)
            .unwrap();
        let health = cluster.admin().health();
        assert!(!health.all_healthy());
        assert_eq!(health.degraded_datasets(), vec![ds]);
    }

    #[test]
    fn hashing_scheme_cannot_be_stepped() {
        let mut cluster = Cluster::new(2);
        let ds = cluster
            .create_dataset(DatasetSpec::new("events", Scheme::Hashing))
            .unwrap();
        let target = cluster.topology().clone();
        assert!(matches!(
            RebalanceJob::plan(&mut cluster, ds, &target, 1),
            Err(ClusterError::RebalanceAborted(_))
        ));
    }
}
