//! The rebalancing schemes evaluated in the paper (Section VI-A).
//!
//! * **Hashing** — AsterixDB's original global rebalancing with hash
//!   partitioning: record `K` lives on partition `hash(K) mod N`. Scaling the
//!   cluster recomputes the modulus, so nearly all records move.
//! * **StaticHash** — static bucketing: the dataset is split into a fixed
//!   number of buckets (256 in the paper) assigned to partitions through the
//!   directory; rebalancing moves whole buckets and never splits them.
//! * **DynaHash** — dynamic bucketing with extendible hashing: buckets split
//!   when they exceed a maximum size (10 GB in the paper), and rebalancing
//!   moves whole buckets.

use dynahash_lsm::bucket::{hash_key, BucketId};
use dynahash_lsm::entry::Key;

use crate::topology::PartitionId;

/// A data-partitioning / rebalancing scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// Global rebalancing with hash partitioning (`hash(K) mod N`).
    Hashing,
    /// Static bucketing with `num_buckets` buckets (must be a power of two).
    StaticHash {
        /// Total number of buckets for the dataset (256 in the paper).
        num_buckets: u32,
    },
    /// Dynamic bucketing with extendible hashing.
    DynaHash {
        /// Maximum bucket size in bytes before a bucket splits
        /// (10 GB in the paper; scaled down in the simulation).
        max_bucket_size_bytes: u64,
        /// Initial number of buckets when the dataset is created
        /// (must be a power of two; the paper starts with one bucket per
        /// partition and lets ingestion split them).
        initial_buckets: u32,
    },
}

impl Scheme {
    /// The paper's StaticHash configuration: 256 buckets.
    pub fn static_hash_256() -> Self {
        Scheme::StaticHash { num_buckets: 256 }
    }

    /// A DynaHash configuration with the given maximum bucket size and one
    /// initial bucket per partition.
    pub fn dynahash(max_bucket_size_bytes: u64, partitions: u32) -> Self {
        Scheme::DynaHash {
            max_bucket_size_bytes,
            initial_buckets: partitions.next_power_of_two(),
        }
    }

    /// Short name used in experiment output (matches the paper's legends).
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Hashing => "Hashing",
            Scheme::StaticHash { .. } => "StaticHash",
            Scheme::DynaHash { .. } => "DynaHash",
        }
    }

    /// True if the scheme stores data in extendible-hashing buckets (and thus
    /// uses a bucketed LSM-tree and a global directory).
    pub fn is_bucketed(&self) -> bool {
        !matches!(self, Scheme::Hashing)
    }

    /// The initial bucket depth for bucketed schemes: `log2(num_buckets)`.
    /// Returns `None` for the Hashing scheme, which has no buckets.
    pub fn initial_depth(&self) -> Option<u8> {
        match self {
            Scheme::Hashing => None,
            Scheme::StaticHash { num_buckets } => Some(log2_ceil(*num_buckets)),
            Scheme::DynaHash {
                initial_buckets, ..
            } => Some(log2_ceil(*initial_buckets)),
        }
    }

    /// The dynamic split threshold, if any.
    pub fn max_bucket_size_bytes(&self) -> Option<u64> {
        match self {
            Scheme::DynaHash {
                max_bucket_size_bytes,
                ..
            } => Some(*max_bucket_size_bytes),
            _ => None,
        }
    }

    /// Routes a key under the **Hashing** scheme: `hash(K) mod N` over the
    /// given partition list (in order). Bucketed schemes route through the
    /// global directory instead.
    pub fn modulo_partition(key: &Key, partitions: &[PartitionId]) -> PartitionId {
        let h = hash_key(key);
        partitions[(h % partitions.len() as u64) as usize]
    }

    /// The initial buckets for a bucketed scheme given the partition count.
    pub fn initial_buckets(&self) -> Vec<BucketId> {
        match self.initial_depth() {
            None => Vec::new(),
            Some(d) => (0..(1u32 << d))
                .map(|bits| BucketId::new(bits, d))
                .collect(),
        }
    }
}

fn log2_ceil(v: u32) -> u8 {
    let mut d = 0u8;
    while (1u32 << d) < v.max(1) {
        d += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(Scheme::Hashing.name(), "Hashing");
        assert_eq!(Scheme::static_hash_256().name(), "StaticHash");
        assert_eq!(Scheme::dynahash(1 << 30, 8).name(), "DynaHash");
    }

    #[test]
    fn initial_depths() {
        assert_eq!(Scheme::Hashing.initial_depth(), None);
        assert_eq!(Scheme::static_hash_256().initial_depth(), Some(8));
        assert_eq!(
            Scheme::StaticHash { num_buckets: 1 }.initial_depth(),
            Some(0)
        );
        assert_eq!(Scheme::dynahash(1024, 8).initial_depth(), Some(3));
        assert_eq!(Scheme::dynahash(1024, 6).initial_depth(), Some(3)); // rounded up to 8
    }

    #[test]
    fn initial_buckets_cover_hash_space() {
        let buckets = Scheme::static_hash_256().initial_buckets();
        assert_eq!(buckets.len(), 256);
        let total: u64 = buckets.iter().map(|b| b.normalized_size(8)).sum();
        assert_eq!(total, 256);
        assert!(Scheme::Hashing.initial_buckets().is_empty());
    }

    #[test]
    fn modulo_partition_is_deterministic_and_spreads() {
        let parts: Vec<PartitionId> = (0..8).map(PartitionId).collect();
        let mut counts = vec![0usize; 8];
        for i in 0..8000u64 {
            let p = Scheme::modulo_partition(&Key::from_u64(i), &parts);
            assert_eq!(p, Scheme::modulo_partition(&Key::from_u64(i), &parts));
            counts[p.0 as usize] += 1;
        }
        // roughly uniform: each partition gets 1000 +/- 30%
        for c in counts {
            assert!(
                (700..1300).contains(&c),
                "unbalanced modulo partitioning: {c}"
            );
        }
    }

    #[test]
    fn max_bucket_size_only_for_dynahash() {
        assert_eq!(Scheme::Hashing.max_bucket_size_bytes(), None);
        assert_eq!(Scheme::static_hash_256().max_bucket_size_bytes(), None);
        assert_eq!(Scheme::dynahash(42, 4).max_bucket_size_bytes(), Some(42));
    }
}
