//! Figures 7a/7b: rebalance time for removing and adding a node, the
//! wave-parallelism study of the step-driven executor (serial vs parallel
//! bucket movement), the move-policy study (component shipping vs record
//! re-materialisation), and the session-routing study (redirect protocol
//! traffic and overhead of the versioned-directory client API).

use dynahash_bench::timing::{bench_case, bench_group, DEFAULT_ITERS};
use dynahash_bench::{
    fig7_rebalance, format_move_policy, format_routing, format_waves, move_policy_comparison,
    rebalance_wave_scaling, routing_gate_violations, session_routing_study, ExperimentConfig,
    RebalanceDirection,
};

fn main() {
    let cfg = ExperimentConfig::quick();
    bench_group("fig7_rebalance");
    for (label, dir) in [
        ("remove_node", RebalanceDirection::RemoveNode),
        ("add_node", RebalanceDirection::AddNode),
    ] {
        bench_case(&format!("{label}/2_nodes"), DEFAULT_ITERS, || {
            fig7_rebalance(&cfg, &[2], dir)
        });
    }

    // Serial vs parallel wave movement: wall-clock per configuration, then
    // the simulated makespans — the parallel schedule must be strictly
    // faster in simulated time (it moves the same buckets in fewer,
    // barely-longer waves).
    bench_group("wave_parallelism");
    for moves_per_wave in [1usize, 4] {
        bench_case(
            &format!("dynahash_4to3/max_moves_{moves_per_wave}"),
            DEFAULT_ITERS,
            || rebalance_wave_scaling(&cfg, &[moves_per_wave]),
        );
    }
    let rows = rebalance_wave_scaling(&cfg, &[1, 4]);
    println!("simulated makespan (DynaHash LineItem, 4 -> 3 nodes):");
    print!("{}", format_waves(&rows));
    assert!(
        rows[1].minutes < rows[0].minutes,
        "parallel waves must beat the serial schedule in simulated time"
    );

    // Component shipping vs record re-materialisation: wall-clock per
    // policy, then the simulated makespans — shipping sealed components
    // must be strictly faster while leaving byte-identical contents.
    bench_group("move_policy");
    bench_case("dynahash_4to3/records_vs_components", DEFAULT_ITERS, || {
        move_policy_comparison(&cfg)
    });
    let rows = move_policy_comparison(&cfg);
    println!("simulated makespan by move policy (DynaHash LineItem, 4 -> 3 nodes):");
    print!("{}", format_move_policy(&rows));
    let (records, components) = (&rows[0], &rows[1]);
    assert_eq!(records.content_checksum, components.content_checksum);
    assert!(
        components.movement_minutes < records.movement_minutes,
        "component shipping must beat record movement in simulated time"
    );

    // Session routing: wall-clock of the full study (load, stale sessions
    // across a stepped 4 -> 3 rebalance, convergence), then the protocol
    // counters — stale sessions must converge with zero integrity
    // violations and redirects bounded by buckets moved.
    bench_group("session_routing");
    bench_case("dynahash_4to3/stale_sessions", DEFAULT_ITERS, || {
        session_routing_study(&cfg)
    });
    let rows = session_routing_study(&cfg);
    println!("redirect-protocol traffic (DynaHash events, 4 -> 3 nodes):");
    print!("{}", format_routing(&rows));
    let deterministic: Vec<String> = routing_gate_violations(&rows)
        .into_iter()
        .filter(|v| !v.contains("overhead"))
        .collect();
    assert!(
        deterministic.is_empty(),
        "session-routing violations: {deterministic:?}"
    );
}
