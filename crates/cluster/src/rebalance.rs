//! The one-shot rebalance entry point (Section V).
//!
//! [`Cluster::rebalance`] moves a dataset onto a target topology. For
//! bucketed schemes (StaticHash / DynaHash) it is a thin driver loop over the
//! step-driven [`RebalanceJob`] state machine in [`crate::job`]: it plans the
//! job, runs its waves (applying any scenario-supplied concurrent writes
//! between them), collects votes, decides, and finalizes — firing the
//! scenario's [`StepHook`]s at every boundary and re-expressing the six
//! failure cases of Section V-D as crashes injected *between* job steps. For
//! the Hashing baseline it performs AsterixDB's original global rebalancing:
//! a brand-new hash-partitioned copy of the dataset is built on the target
//! partitions and swapped in, which moves nearly every record.

use std::collections::BTreeMap;

use dynahash_core::{
    ClusterTopology, FailurePoint, MovePolicy, NodeId, RebalanceOutcome, SecondaryRebuild,
};
use dynahash_lsm::entry::{Key, Value};
use dynahash_lsm::wal::{LogRecordBody, RebalanceId, RebalanceLogStatus};

use crate::cluster::Cluster;
use crate::dataset::DatasetId;
use crate::feed::split_into_batches;
use crate::job::{JobState, RebalanceJob, StepPoint};
use crate::sim::{NodeTimeline, SimDuration};
use crate::{ClusterError, Result};

/// A scenario callback fired by the one-shot driver at a [`StepPoint`]. The
/// hook gets the cluster (free for queries, ingestion, crash/recovery of
/// nodes or the controller) and the in-flight job (for
/// [`RebalanceJob::apply_feed_batch`] and step introspection).
pub type StepHook = Box<dyn FnMut(&mut Cluster, &mut RebalanceJob) -> Result<()>>;

/// Options controlling a rebalance operation, built fluently:
///
/// ```ignore
/// RebalanceOptions::none()
///     .with_max_concurrent_moves(4)
///     .with_concurrent_writes(writes)
///     .with_failure(FailurePoint::CcBeforeCommitLog)
/// ```
#[derive(Default)]
pub struct RebalanceOptions {
    /// Records that arrive (through a data feed) while the rebalance is
    /// running. The driver spreads them across the job's waves; records
    /// hitting an already-shipped bucket are replicated to its destination.
    /// Only supported by bucketed schemes.
    pub concurrent_writes: Vec<(Key, Value)>,
    /// Inject a failure at one of the protocol points (Section V-D).
    pub failure: Option<FailurePoint>,
    /// How many bucket moves each wave runs in parallel (clamped to >= 1).
    /// 1 — the default — is the most conservative cost model: buckets move
    /// strictly one at a time and every wave is charged its slowest node.
    /// Wider waves overlap moves across nodes and finish measurably faster
    /// (the figure experiments use 4, matching AsterixDB's single Hyracks
    /// job shipping from all partitions concurrently). Ignored by the
    /// Hashing scheme.
    pub max_concurrent_moves: usize,
    /// Scenario hooks fired between job steps (bucketed schemes only).
    pub hooks: Vec<(StepPoint, StepHook)>,
    /// How buckets move during the data-movement phase. The default,
    /// [`MovePolicy::Components`], ships sealed LSM components whole; the
    /// [`MovePolicy::Records`] baseline re-materialises every record and is
    /// kept as a correctness oracle and benchmark reference. Ignored by the
    /// Hashing scheme, which has no buckets to ship.
    pub move_policy: MovePolicy,
    /// When destinations rebuild secondary-index entries for received
    /// buckets under [`MovePolicy::Components`]. The default,
    /// [`SecondaryRebuild::Deferred`], keeps the rebuild off the wave
    /// makespan and runs it on the first index query instead;
    /// [`SecondaryRebuild::Eager`] is the PR 3 behaviour, kept as the
    /// makespan baseline.
    pub secondary_rebuild: SecondaryRebuild,
}

impl std::fmt::Debug for RebalanceOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RebalanceOptions")
            .field("concurrent_writes", &self.concurrent_writes.len())
            .field("failure", &self.failure)
            .field("max_concurrent_moves", &self.max_concurrent_moves.max(1))
            .field("hooks", &self.hooks.len())
            .field("move_policy", &self.move_policy)
            .field("secondary_rebuild", &self.secondary_rebuild)
            .finish()
    }
}

impl RebalanceOptions {
    /// No concurrent writes, no failures, serial bucket movement.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds concurrent writes to the scenario.
    pub fn with_concurrent_writes(mut self, writes: Vec<(Key, Value)>) -> Self {
        self.concurrent_writes = writes;
        self
    }

    /// Injects a failure at the given protocol point.
    pub fn with_failure(mut self, failure: FailurePoint) -> Self {
        self.failure = Some(failure);
        self
    }

    /// Sets how many bucket moves each wave runs in parallel.
    pub fn with_max_concurrent_moves(mut self, moves: usize) -> Self {
        self.max_concurrent_moves = moves;
        self
    }

    /// Sets how buckets move (component shipping vs record re-materialisation).
    pub fn with_move_policy(mut self, policy: MovePolicy) -> Self {
        self.move_policy = policy;
        self
    }

    /// Sets when destinations rebuild secondary entries for received buckets.
    pub fn with_secondary_rebuild(mut self, rebuild: SecondaryRebuild) -> Self {
        self.secondary_rebuild = rebuild;
        self
    }

    /// Registers a scenario hook at a step boundary. Hooks run in
    /// registration order; a hook error aborts the rebalance cleanly.
    pub fn with_hook(
        mut self,
        point: StepPoint,
        hook: impl FnMut(&mut Cluster, &mut RebalanceJob) -> Result<()> + 'static,
    ) -> Self {
        self.hooks.push((point, Box::new(hook)));
        self
    }
}

/// Per-phase simulated times of a rebalance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimes {
    /// Initialization: directory refresh, planning, snapshot flushes.
    pub initialization: SimDuration,
    /// Data movement: the sum of the waves' makespans plus concurrent write
    /// replication.
    pub data_movement: SimDuration,
    /// Finalization: prepare + commit (or abort and cleanup).
    pub finalization: SimDuration,
}

/// The result of a rebalance operation.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceReport {
    /// The rebalance operation id.
    pub rebalance_id: RebalanceId,
    /// Committed or aborted.
    pub outcome: RebalanceOutcome,
    /// Total simulated elapsed time.
    pub elapsed: SimDuration,
    /// Per-phase breakdown.
    pub phases: PhaseTimes,
    /// Bytes of primary-index data scanned and shipped.
    pub bytes_moved: u64,
    /// Records moved.
    pub records_moved: u64,
    /// Buckets moved (0 for the Hashing scheme, which has no buckets).
    pub buckets_moved: usize,
    /// Fraction of the dataset's primary bytes that moved.
    pub moved_fraction: f64,
    /// Per-node busy time.
    pub per_node: Vec<(NodeId, SimDuration)>,
    /// Concurrent writes applied during the rebalance.
    pub concurrent_writes_applied: u64,
    /// Transfer attempts retried after a transient fault (0 without an
    /// installed fault schedule).
    pub retries: u64,
    /// Moves rerouted to survivors by re-planning around lost nodes.
    pub reroutes: u64,
}

fn fire_hooks(
    hooks: &mut [(StepPoint, StepHook)],
    point: StepPoint,
    cluster: &mut Cluster,
    job: &mut RebalanceJob,
) -> Result<()> {
    for (at, hook) in hooks.iter_mut() {
        let matches = *at == point
            || (*at == StepPoint::AfterEveryWave && matches!(point, StepPoint::AfterWave(_)));
        if matches {
            hook(cluster, job)?;
        }
    }
    Ok(())
}

impl Cluster {
    /// Rebalances a dataset onto the target topology.
    pub fn rebalance(
        &mut self,
        dataset: DatasetId,
        target: &ClusterTopology,
        options: RebalanceOptions,
    ) -> Result<RebalanceReport> {
        if target.is_empty() {
            return Err(ClusterError::Core(dynahash_core::CoreError::EmptyTopology));
        }
        let scheme = self.scheme_of(dataset)?;
        if scheme.is_bucketed() {
            self.rebalance_bucketed(dataset, target, options)
        } else {
            self.rebalance_hashing(dataset, target, options)
        }
    }

    // =================================================== bucketed schemes ===

    /// The one-shot driver: a loop over the [`RebalanceJob`] step machine.
    fn rebalance_bucketed(
        &mut self,
        dataset: DatasetId,
        target: &ClusterTopology,
        options: RebalanceOptions,
    ) -> Result<RebalanceReport> {
        let RebalanceOptions {
            concurrent_writes,
            failure,
            max_concurrent_moves,
            mut hooks,
            move_policy,
            secondary_rebuild,
        } = options;
        let mut job = RebalanceJob::plan(self, dataset, target, max_concurrent_moves)?;
        job.set_move_policy(move_policy);
        job.set_secondary_rebuild(secondary_rebuild);
        match self.drive_job(&mut job, concurrent_writes, failure, &mut hooks) {
            Ok(report) => Ok(report),
            Err(e) => {
                // Best-effort cleanup so a failed scenario hook does not
                // leave the dataset with splits disabled or buckets pending.
                // Before the decision the job can still abort; once COMMIT
                // is durable the only way forward is to finish the commit.
                if !job.is_terminal() {
                    if job.outcome() == Some(RebalanceOutcome::Committed) {
                        if matches!(job.state(), JobState::Decided(_)) {
                            let _ = job.commit(self);
                        }
                        let _ = job.finalize(self);
                    } else {
                        let _ = job.abort(self);
                        let _ = job.finalize(self);
                    }
                }
                Err(e)
            }
        }
    }

    fn drive_job(
        &mut self,
        job: &mut RebalanceJob,
        concurrent_writes: Vec<(Key, Value)>,
        failure: Option<FailurePoint>,
        hooks: &mut [(StepPoint, StepHook)],
    ) -> Result<RebalanceReport> {
        fire_hooks(hooks, StepPoint::AfterPlan, self, job)?;
        job.init(self)?;
        fire_hooks(hooks, StepPoint::AfterInit, self, job)?;

        // Spread the scenario's concurrent writes across the waves; the
        // remainder (or everything, for a no-op plan) lands before prepare.
        let mut batches = split_into_batches(concurrent_writes, job.num_waves().max(1)).into_iter();
        while job.has_remaining_waves() {
            let wave = job.completed_waves();
            match job.run_wave(self) {
                Ok(_) => {}
                Err(ClusterError::NodeLost(_)) => {
                    // A permanent loss surfaced mid-movement (injected by a
                    // hook or a prior wave fault): reroute the dead node's
                    // moves to survivors and retry from the same wave index.
                    let replan = job.replan_wave(self)?;
                    if replan.is_noop() {
                        // Nothing to re-plan around — the loss hit a node
                        // outside the participant set; surface it.
                        job.run_wave(self)?;
                    }
                    continue;
                }
                Err(e) => return Err(e),
            }
            if let Some(batch) = batches.next() {
                if !batch.is_empty() {
                    job.apply_feed_batch(self, batch)?;
                }
            }
            // Consume the fault scheduled to fire after this wave, if any.
            if let Some(fault) = self.take_wave_fault(wave as u64) {
                match fault {
                    crate::fault::WaveFault::Crash(n) => {
                        let _ = self.crash_node(n);
                        self.recover_all_nodes();
                    }
                    crate::fault::WaveFault::Lose(n) => {
                        self.lose_node(n)?;
                        job.replan_wave(self)?;
                    }
                }
            }
            fire_hooks(hooks, StepPoint::AfterWave(wave), self, job)?;
        }
        for batch in batches {
            if !batch.is_empty() {
                job.apply_feed_batch(self, batch)?;
            }
        }

        // Failure Case 1: an NC dies before it can vote "prepared".
        if let Some(FailurePoint::NcBeforePrepared(victim)) = failure {
            let _ = self.crash_node(victim);
        }
        fire_hooks(hooks, StepPoint::BeforePrepare, self, job)?;
        job.prepare(self)?;

        // Failure Case 2: an NC dies right after voting.
        if let Some(FailurePoint::NcAfterPrepared(victim)) = failure {
            let _ = self.crash_node(victim);
        }
        fire_hooks(hooks, StepPoint::AfterPrepare, self, job)?;

        // Failure Case 3: the CC dies before forcing COMMIT. On recovery it
        // sees BEGIN without COMMIT and aborts.
        let force_abort = if matches!(failure, Some(FailurePoint::CcBeforeCommitLog)) {
            self.controller.crash();
            self.controller.recover();
            let status = self
                .controller
                .metadata_log
                .rebalance_status(job.rebalance_id());
            debug_assert_eq!(status, RebalanceLogStatus::InFlight);
            status != RebalanceLogStatus::CommittedNotDone && status != RebalanceLogStatus::Done
        } else {
            false
        };

        let outcome = if force_abort {
            job.abort(self)?;
            RebalanceOutcome::Aborted
        } else {
            job.decide(self)?
        };

        if outcome == RebalanceOutcome::Committed {
            // Failure Case 4: an NC dies after COMMIT was forced but before
            // acking its commit tasks.
            if let Some(FailurePoint::NcBeforeCommitted(victim)) = failure {
                let _ = self.crash_node(victim);
            }
            fire_hooks(hooks, StepPoint::AfterCommitLog, self, job)?;
            job.commit(self)?;

            // Failure Case 5: the CC dies after COMMIT but before DONE. On
            // recovery it re-drives the (idempotent) commit tasks — which
            // finalize does for every recovered node anyway.
            if matches!(failure, Some(FailurePoint::CcAfterCommitBeforeDone)) {
                self.controller.crash();
                self.controller.recover();
                let status = self
                    .controller
                    .metadata_log
                    .rebalance_status(job.rebalance_id());
                debug_assert_eq!(status, RebalanceLogStatus::CommittedNotDone);
            }
        }

        fire_hooks(hooks, StepPoint::BeforeFinalize, self, job)?;
        let report = job.finalize(self)?;

        // Failure Case 6: the CC dies after DONE — nothing to do.
        if matches!(failure, Some(FailurePoint::CcAfterDone)) {
            self.controller.crash();
            self.controller.recover();
            let status = self
                .controller
                .metadata_log
                .rebalance_status(job.rebalance_id());
            debug_assert_eq!(status, RebalanceLogStatus::Done);
        }
        Ok(report)
    }

    // ================================================= Hashing (global) ====

    fn rebalance_hashing(
        &mut self,
        dataset: DatasetId,
        target: &ClusterTopology,
        options: RebalanceOptions,
    ) -> Result<RebalanceReport> {
        if !options.concurrent_writes.is_empty() {
            return Err(ClusterError::RebalanceAborted(
                "the Hashing scheme rebuilds the dataset and does not support concurrent writes"
                    .to_string(),
            ));
        }
        let cost = self.cost_model();
        let rebalance_id = self.controller.next_rebalance_id();
        let mut tl = NodeTimeline::new();
        self.controller
            .metadata_log
            .append_forced(LogRecordBody::RebalanceBegin {
                rebalance: rebalance_id,
                dataset,
            });
        tl.charge_coordinator(SimDuration::from_nanos(cost.job_overhead_ns));

        let spec = self.controller.dataset(dataset)?.spec.clone();
        let old_partitions = self.controller.dataset(dataset)?.partitions.clone();
        let new_partitions = target.partitions();
        let total_bytes = self.dataset_primary_bytes(dataset)?;

        // Scan every partition and route every record to its new partition.
        let mut routed: BTreeMap<_, Vec<(Key, Value)>> =
            new_partitions.iter().map(|p| (*p, Vec::new())).collect();
        let mut bytes_moved = 0u64;
        let mut records_moved = 0u64;
        // Cross-node traffic is shipped in batches (Hyracks frames); charge
        // the network per (source partition, destination node) batch.
        let mut inbound_bytes: BTreeMap<NodeId, u64> = BTreeMap::new();
        for p in &old_partitions {
            let src_node = self.node_of_partition(*p)?;
            let part = self.partition(*p)?;
            if !part.dataset_ids().contains(&dataset) {
                continue;
            }
            let entries = part
                .dataset(dataset)?
                .scan(dynahash_lsm::ScanOrder::Unordered);
            let scan_bytes: u64 = entries.iter().map(|e| e.size_bytes() as u64).sum();
            tl.charge(src_node, cost.disk_read(scan_bytes));
            for e in entries {
                let Some(value) = e.op.value().cloned() else {
                    continue;
                };
                let dst = dynahash_core::Scheme::modulo_partition(&e.key, &new_partitions);
                let dst_node = target
                    .node_of(dst)
                    .ok_or(ClusterError::UnknownPartition(dst))?;
                let record_bytes = e.size_bytes() as u64;
                bytes_moved += record_bytes;
                records_moved += 1;
                if dst_node != src_node {
                    *inbound_bytes.entry(dst_node).or_default() += record_bytes;
                }
                routed.entry(dst).or_default().push((e.key, value));
            }
        }
        for (node, bytes) in &inbound_bytes {
            tl.charge(*node, cost.network(*bytes));
        }

        // Injected failure: discard the half-built copy and abort; the
        // original dataset is left unchanged.
        if options.failure.is_some() {
            self.controller
                .metadata_log
                .append_forced(LogRecordBody::RebalanceAbort {
                    rebalance: rebalance_id,
                });
            self.controller
                .metadata_log
                .append_forced(LogRecordBody::RebalanceDone {
                    rebalance: rebalance_id,
                });
            return Ok(RebalanceReport {
                rebalance_id,
                outcome: RebalanceOutcome::Aborted,
                elapsed: tl.elapsed(),
                phases: PhaseTimes {
                    data_movement: tl.elapsed(),
                    ..Default::default()
                },
                bytes_moved: 0,
                records_moved: 0,
                buckets_moved: 0,
                moved_fraction: 0.0,
                per_node: tl.breakdown(),
                concurrent_writes_applied: 0,
                retries: 0,
                reroutes: 0,
            });
        }

        // Drop the old storage and build the new hash-partitioned dataset.
        for p in self.topology().partitions() {
            self.partition_mut(p)?.drop_dataset(dataset);
        }
        for p in &new_partitions {
            self.partition_mut(*p)?.create_dataset(
                dataset,
                &spec,
                vec![dynahash_lsm::BucketId::root()],
            );
        }
        for (p, records) in routed {
            let dst_node = target.node_of(p).ok_or(ClusterError::UnknownPartition(p))?;
            let load_bytes: u64 = records
                .iter()
                .map(|(k, v)| (k.len() + v.len()) as u64)
                .sum();
            let n_records = records.len() as u64;
            // The Hashing baseline re-inserts every record through the full
            // ingestion pipeline of the new dataset (parse, primary-key and
            // secondary index maintenance), which is what makes global
            // rebalancing so much more expensive than shipping sealed bucket
            // components.
            tl.charge(
                dst_node,
                cost.disk_write(load_bytes) + cost.ingest_cpu(n_records),
            );
            let ds = self.partition_mut(p)?.dataset_mut(dataset)?;
            for (k, v) in records {
                ds.ingest(k, v)?;
            }
        }

        // Swap the routing metadata and finish. The version bump tells
        // cached sessions their modulo routes are void: the dataset was
        // rebuilt wholesale on the new partition list.
        {
            let meta = self.controller.dataset_mut(dataset)?;
            meta.partitions = new_partitions;
            meta.directory = None;
            meta.bump_partitions_version();
        }
        self.controller
            .metadata_log
            .append_forced(LogRecordBody::RebalanceCommit {
                rebalance: rebalance_id,
            });
        self.controller
            .metadata_log
            .append_forced(LogRecordBody::RebalanceDone {
                rebalance: rebalance_id,
            });

        Ok(RebalanceReport {
            rebalance_id,
            outcome: RebalanceOutcome::Committed,
            elapsed: tl.elapsed(),
            phases: PhaseTimes {
                data_movement: tl.elapsed(),
                ..Default::default()
            },
            bytes_moved,
            records_moved,
            buckets_moved: 0,
            moved_fraction: if total_bytes == 0 {
                0.0
            } else {
                (bytes_moved as f64 / total_bytes as f64).min(1.0)
            },
            per_node: tl.breakdown(),
            concurrent_writes_applied: 0,
            retries: 0,
            reroutes: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetSpec, SecondaryIndexDef};
    use dynahash_core::Scheme;
    use dynahash_lsm::Bytes;

    fn payload(tag: u64) -> Bytes {
        let mut v = tag.to_be_bytes().to_vec();
        v.extend_from_slice(&[9u8; 56]);
        Bytes::from(v)
    }

    fn records(n: u64) -> Vec<(Key, Value)> {
        (0..n)
            .map(|i| (Key::from_u64(i), payload(i % 50)))
            .collect()
    }

    fn spec(scheme: Scheme) -> DatasetSpec {
        DatasetSpec::new("orders", scheme).with_secondary_index(SecondaryIndexDef::new(
            "idx_tag",
            |p: &[u8]| {
                if p.len() >= 8 {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&p[..8]);
                    Some(Key::from_u64(u64::from_be_bytes(b)))
                } else {
                    None
                }
            },
        ))
    }

    fn loaded_cluster(nodes: u32, scheme: Scheme, n_records: u64) -> (Cluster, DatasetId) {
        let mut cluster = Cluster::with_config(
            nodes,
            crate::ClusterConfig {
                partitions_per_node: 2,
                cost_model: crate::CostModel::default(),
            },
        );
        let ds = cluster.create_dataset(spec(scheme)).unwrap();
        cluster.ingest(ds, records(n_records)).unwrap();
        (cluster, ds)
    }

    #[test]
    fn bucketed_scale_out_moves_a_fraction_and_stays_consistent() {
        let (mut cluster, ds) = loaded_cluster(2, Scheme::StaticHash { num_buckets: 32 }, 3000);
        let before = cluster.dataset_len(ds).unwrap();
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        let report = cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        assert!(report.buckets_moved > 0);
        assert!(
            report.moved_fraction < 0.6,
            "moved {}",
            report.moved_fraction
        );
        assert_eq!(cluster.dataset_len(ds).unwrap(), before);
        cluster.check_dataset_consistency(ds).unwrap();
        // the new node now holds data
        let new_node_parts = cluster.topology().partitions_of_node(NodeId(2));
        let on_new: usize = new_node_parts
            .iter()
            .map(|p| {
                cluster
                    .partition(*p)
                    .unwrap()
                    .dataset(ds)
                    .unwrap()
                    .live_len()
            })
            .sum();
        assert!(on_new > 0);
    }

    #[test]
    fn bucketed_scale_in_empties_the_removed_node() {
        let (mut cluster, ds) = loaded_cluster(3, Scheme::StaticHash { num_buckets: 32 }, 3000);
        let before = cluster.dataset_len(ds).unwrap();
        let victim = NodeId(2);
        let target = cluster.topology_without(victim);
        let report = cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        assert_eq!(cluster.dataset_len(ds).unwrap(), before);
        cluster.decommission_node(victim).unwrap();
        cluster.check_dataset_consistency(ds).unwrap();
        assert_eq!(cluster.topology().num_nodes(), 2);
    }

    #[test]
    fn hashing_rebalance_moves_nearly_everything() {
        let (mut cluster, ds) = loaded_cluster(2, Scheme::Hashing, 2000);
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        let report = cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        assert!(
            report.moved_fraction > 0.8,
            "global rebalancing must move most data"
        );
        assert_eq!(cluster.dataset_len(ds).unwrap(), 2000);
        cluster.check_dataset_consistency(ds).unwrap();
    }

    #[test]
    fn bucketed_rebalance_is_cheaper_than_hashing() {
        let (mut c1, d1) = loaded_cluster(2, Scheme::StaticHash { num_buckets: 32 }, 2000);
        c1.add_node().unwrap();
        let t1 = c1.topology().clone();
        let r1 = c1.rebalance(d1, &t1, RebalanceOptions::none()).unwrap();

        let (mut c2, d2) = loaded_cluster(2, Scheme::Hashing, 2000);
        c2.add_node().unwrap();
        let t2 = c2.topology().clone();
        let r2 = c2.rebalance(d2, &t2, RebalanceOptions::none()).unwrap();

        assert!(r1.bytes_moved < r2.bytes_moved);
        assert!(r1.elapsed < r2.elapsed, "bucketed rebalance must be faster");
    }

    #[test]
    fn concurrent_writes_are_preserved_and_replicated() {
        let (mut cluster, ds) = loaded_cluster(2, Scheme::StaticHash { num_buckets: 16 }, 1500);
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        // new records arriving during the rebalance (keys beyond the loaded range)
        let concurrent: Vec<(Key, Value)> = (10_000..10_300u64)
            .map(|i| (Key::from_u64(i), payload(i % 50)))
            .collect();
        let report = cluster
            .rebalance(
                ds,
                &target,
                RebalanceOptions::none().with_concurrent_writes(concurrent.clone()),
            )
            .unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        assert_eq!(report.concurrent_writes_applied, 300);
        assert_eq!(cluster.dataset_len(ds).unwrap(), 1500 + 300);
        cluster.check_dataset_consistency(ds).unwrap();
        // every concurrent write is readable after the rebalance
        for (k, _) in &concurrent {
            let p = cluster.route_key(ds, k).unwrap();
            assert!(cluster
                .partition(p)
                .unwrap()
                .dataset(ds)
                .unwrap()
                .get(k)
                .is_some());
        }
    }

    #[test]
    fn noop_rebalance_commits_without_moving() {
        let (mut cluster, ds) = loaded_cluster(2, Scheme::StaticHash { num_buckets: 16 }, 500);
        let target = cluster.topology().clone();
        let report = cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        assert_eq!(report.buckets_moved, 0);
        assert_eq!(report.bytes_moved, 0);
        cluster.check_dataset_consistency(ds).unwrap();
    }

    #[test]
    fn parallel_waves_finish_strictly_faster_than_serial() {
        // Same scale-in rebalance, once serial and once with 4-wide waves:
        // the wave makespan model must make the parallel run strictly
        // faster while moving exactly the same buckets.
        let run = |max_moves: usize| {
            let (mut cluster, ds) = loaded_cluster(4, Scheme::StaticHash { num_buckets: 32 }, 4000);
            let target = cluster.topology_without(NodeId(3));
            let report = cluster
                .rebalance(
                    ds,
                    &target,
                    RebalanceOptions::none().with_max_concurrent_moves(max_moves),
                )
                .unwrap();
            assert_eq!(report.outcome, RebalanceOutcome::Committed);
            cluster.decommission_node(NodeId(3)).unwrap();
            cluster.check_dataset_consistency(ds).unwrap();
            assert_eq!(cluster.dataset_len(ds).unwrap(), 4000);
            report
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.buckets_moved, parallel.buckets_moved);
        assert_eq!(serial.bytes_moved, parallel.bytes_moved);
        assert!(
            parallel.phases.data_movement < serial.phases.data_movement,
            "parallel {:?} !< serial {:?}",
            parallel.phases.data_movement,
            serial.phases.data_movement
        );
        assert!(parallel.elapsed < serial.elapsed);
    }

    #[test]
    fn options_builder_chains() {
        let opts = RebalanceOptions::none()
            .with_max_concurrent_moves(8)
            .with_concurrent_writes(vec![(Key::from_u64(1), payload(1))])
            .with_failure(FailurePoint::CcAfterDone)
            .with_move_policy(MovePolicy::Records)
            .with_hook(StepPoint::AfterInit, |_, _| Ok(()));
        assert_eq!(opts.max_concurrent_moves, 8);
        assert_eq!(opts.concurrent_writes.len(), 1);
        assert_eq!(opts.failure, Some(FailurePoint::CcAfterDone));
        assert_eq!(opts.move_policy, MovePolicy::Records);
        assert_eq!(
            RebalanceOptions::none().move_policy,
            MovePolicy::Components,
            "component shipping is the default"
        );
        assert_eq!(opts.hooks.len(), 1);
        let dbg = format!("{opts:?}");
        assert!(dbg.contains("max_concurrent_moves"));
    }

    #[test]
    fn hook_failure_after_commit_log_still_finishes_the_commit() {
        // Once COMMIT is durable the outcome is decided: a scenario failure
        // after that point must not leave pending buckets or disabled
        // splits behind — the cleanup path finishes the commit instead.
        let (mut cluster, ds) = loaded_cluster(2, Scheme::StaticHash { num_buckets: 16 }, 1200);
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        let err = cluster.rebalance(
            ds,
            &target,
            RebalanceOptions::none().with_hook(StepPoint::AfterCommitLog, |_, _| {
                Err(ClusterError::RebalanceAborted("scenario failure".into()))
            }),
        );
        assert!(err.is_err());
        // the commit was completed by the cleanup path: data moved, no
        // pending state, terminal WAL status
        assert_eq!(cluster.dataset_len(ds).unwrap(), 1200);
        cluster.check_rebalance_integrity(ds, 1).unwrap();
        let on_new: usize = cluster
            .topology()
            .partitions_of_node(NodeId(2))
            .iter()
            .map(|p| {
                cluster
                    .partition(*p)
                    .unwrap()
                    .dataset(ds)
                    .unwrap()
                    .live_len()
            })
            .sum();
        assert!(on_new > 0, "the durable commit decision must be applied");
        // and the dataset remains fully rebalance-able
        let report = cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
    }

    #[test]
    fn hooks_fire_between_steps_and_errors_abort_cleanly() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let fired = Rc::new(RefCell::new(Vec::new()));
        let (mut cluster, ds) = loaded_cluster(2, Scheme::StaticHash { num_buckets: 16 }, 1000);
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        let log = Rc::clone(&fired);
        let report = cluster
            .rebalance(
                ds,
                &target,
                RebalanceOptions::none()
                    .with_hook(StepPoint::AfterInit, {
                        let log = Rc::clone(&fired);
                        move |_, job| {
                            log.borrow_mut().push(format!("init:{}", job.num_waves()));
                            Ok(())
                        }
                    })
                    .with_hook(StepPoint::AfterEveryWave, move |cluster, job| {
                        log.borrow_mut().push(format!(
                            "wave:{}:{}",
                            job.completed_waves(),
                            cluster.dataset_len(job.dataset()).unwrap()
                        ));
                        Ok(())
                    }),
            )
            .unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        let events = fired.borrow();
        assert!(events[0].starts_with("init:"));
        assert!(events.len() > 1, "wave hooks must fire: {events:?}");

        // a failing hook aborts the rebalance and leaves the dataset usable
        let (mut cluster, ds) = loaded_cluster(2, Scheme::StaticHash { num_buckets: 16 }, 1000);
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        let err = cluster.rebalance(
            ds,
            &target,
            RebalanceOptions::none().with_hook(StepPoint::AfterWave(0), |_, _| {
                Err(ClusterError::RebalanceAborted("scenario abort".into()))
            }),
        );
        assert!(err.is_err());
        assert_eq!(cluster.dataset_len(ds).unwrap(), 1000);
        cluster.check_dataset_consistency(ds).unwrap();
        // a follow-up rebalance succeeds (splits were re-enabled, no pending
        // state was left behind)
        let report = cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        cluster
            .check_rebalance_integrity(ds, report.rebalance_id)
            .unwrap();
    }
}
