//! Keys, values and log-structured entries.
//!
//! Keys are order-preserving byte strings. Helpers are provided to encode
//! integer and composite keys in big-endian form so that the byte order
//! matches the natural key order, which the merge iterators rely on.

use crate::bytes::Bytes;
use std::fmt;

/// An order-preserving binary key.
///
/// Primary keys in the TPC-H workload are integers or pairs of integers; the
/// constructors [`Key::from_u64`] and [`Key::from_pair`] encode them
/// big-endian so that byte-wise ordering equals numeric ordering.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(pub Vec<u8>);

impl Key {
    /// Builds a key from raw bytes.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        Key(bytes.into())
    }

    /// Encodes a single `u64` as an 8-byte big-endian key.
    pub fn from_u64(v: u64) -> Self {
        Key(v.to_be_bytes().to_vec())
    }

    /// Encodes a pair of `u64`s (e.g. `(orderkey, linenumber)`) as a 16-byte
    /// big-endian composite key ordered lexicographically.
    pub fn from_pair(a: u64, b: u64) -> Self {
        let mut v = Vec::with_capacity(16);
        v.extend_from_slice(&a.to_be_bytes());
        v.extend_from_slice(&b.to_be_bytes());
        Key(v)
    }

    /// Decodes the first 8 bytes as a big-endian `u64`. Returns 0 for shorter keys.
    pub fn as_u64(&self) -> u64 {
        if self.0.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&self.0[..8]);
            u64::from_be_bytes(buf)
        } else {
            let mut buf = [0u8; 8];
            buf[8 - self.0.len()..].copy_from_slice(&self.0);
            u64::from_be_bytes(buf)
        }
    }

    /// Decodes the key as a pair of big-endian `u64`s.
    pub fn as_pair(&self) -> (u64, u64) {
        let a = self.as_u64();
        let b = if self.0.len() >= 16 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&self.0[8..16]);
            u64::from_be_bytes(buf)
        } else {
            0
        };
        (a, b)
    }

    /// Length of the encoded key in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the key is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Raw byte view.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.len() == 8 {
            write!(f, "Key({})", self.as_u64())
        } else if self.0.len() == 16 {
            let (a, b) = self.as_pair();
            write!(f, "Key({a},{b})")
        } else {
            write!(f, "Key({:?})", self.0)
        }
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Self {
        Key::from_u64(v)
    }
}

impl From<(u64, u64)> for Key {
    fn from(v: (u64, u64)) -> Self {
        Key::from_pair(v.0, v.1)
    }
}

/// Record payload stored in the primary index.
pub type Value = Bytes;

/// A single mutation: either an upsert carrying a value or a delete tombstone.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// Insert or update the record with the given payload.
    Put(Value),
    /// Delete the record (tombstone). Tombstones are kept until a merge that
    /// includes the oldest component drops them.
    Delete,
}

impl Op {
    /// Size in bytes charged for this operation's payload.
    pub fn value_len(&self) -> usize {
        match self {
            Op::Put(v) => v.len(),
            Op::Delete => 0,
        }
    }

    /// True if this is a tombstone.
    pub fn is_delete(&self) -> bool {
        matches!(self, Op::Delete)
    }

    /// Returns the payload for puts, `None` for deletes.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Op::Put(v) => Some(v),
            Op::Delete => None,
        }
    }
}

/// A key/operation pair as stored inside memory and disk components.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Entry {
    /// The record's key.
    pub key: Key,
    /// The mutation applied to that key.
    pub op: Op,
}

impl Entry {
    /// Creates an upsert entry.
    pub fn put(key: impl Into<Key>, value: impl Into<Value>) -> Self {
        Entry {
            key: key.into(),
            op: Op::Put(value.into()),
        }
    }

    /// Creates a tombstone entry.
    pub fn delete(key: impl Into<Key>) -> Self {
        Entry {
            key: key.into(),
            op: Op::Delete,
        }
    }

    /// Approximate on-disk size of the entry in bytes.
    pub fn size_bytes(&self) -> usize {
        self.key.len() + self.op.value_len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_keys_order_like_integers() {
        let ks: Vec<Key> = [0u64, 1, 255, 256, 1 << 40, u64::MAX]
            .iter()
            .map(|&v| Key::from_u64(v))
            .collect();
        for w in ks.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn pair_keys_order_lexicographically() {
        assert!(Key::from_pair(1, 99) < Key::from_pair(2, 0));
        assert!(Key::from_pair(2, 1) < Key::from_pair(2, 2));
        assert_eq!(Key::from_pair(7, 9).as_pair(), (7, 9));
    }

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 1, 42, u64::MAX] {
            assert_eq!(Key::from_u64(v).as_u64(), v);
        }
    }

    #[test]
    fn entry_size_accounts_for_key_and_value() {
        let e = Entry::put(Key::from_u64(1), Bytes::from(vec![0u8; 100]));
        assert_eq!(e.size_bytes(), 8 + 100 + 1);
        let d = Entry::delete(Key::from_u64(1));
        assert_eq!(d.size_bytes(), 9);
    }

    #[test]
    fn op_helpers() {
        let p = Op::Put(Bytes::from_static(b"x"));
        assert!(!p.is_delete());
        assert_eq!(p.value().unwrap().as_ref(), b"x");
        assert!(Op::Delete.is_delete());
        assert!(Op::Delete.value().is_none());
    }
}
