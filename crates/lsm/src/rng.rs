//! A small deterministic pseudo-random number generator.
//!
//! The repository must build with zero external dependencies, so this module
//! replaces the `rand` crate for the two places randomness is needed: the
//! seeded TPC-H data generator and the seeded randomized-property test
//! harnesses. The generator is **xoshiro256++** seeded via **SplitMix64**
//! (Blackman & Vigna), which passes statistical test batteries and is more
//! than adequate for workload generation and test-case sampling.
//!
//! The API mirrors the subset of `rand::Rng` the codebase uses
//! ([`SplitMix64::gen_range`], [`SplitMix64::gen_ratio`]) so call sites read
//! identically to their `rand` equivalents.

use std::ops::{Bound, RangeBounds};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded deterministic PRNG (xoshiro256++ seeded via SplitMix64).
///
/// The name reflects the seeding procedure, which is what callers interact
/// with: `SplitMix64::seed_from_u64(seed)` always yields the same stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    s: [u64; 4],
}

impl SplitMix64 {
    /// Creates a generator whose entire stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SplitMix64 { s }
    }

    /// Returns the next 64 uniformly distributed bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed `u64` in the given range
    /// (`a..b` or `a..=b`), like `rand::Rng::gen_range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: impl RangeBounds<u64>) -> u64 {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi_inclusive = match range.end_bound() {
            Bound::Included(&n) => n,
            // dhlint: allow(panic) — documented API contract: gen_range panics on an empty range
            Bound::Excluded(&n) => n.checked_sub(1).expect("empty range"),
            Bound::Unbounded => u64::MAX,
        };
        assert!(lo <= hi_inclusive, "empty range {lo}..={hi_inclusive}");
        let span = hi_inclusive - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Rejection sampling over the largest multiple of span+1 to avoid
        // modulo bias.
        let n = span + 1;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % n;
            }
        }
    }

    /// Returns `true` with probability `numerator / denominator`,
    /// like `rand::Rng::gen_ratio`.
    pub fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be non-zero");
        assert!(numerator <= denominator);
        self.gen_range(0..denominator as u64) < numerator as u64
    }

    /// Returns a uniformly distributed `usize` in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(0..n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let x = rng.gen_range(0..=3);
            assert!(x <= 3);
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_ratio_is_roughly_calibrated() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "got {hits}/10000 at p=0.25");
    }
}
