use std::sync::Mutex;

pub struct S {
    inner: Mutex<u32>,
}
