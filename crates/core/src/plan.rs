//! Rebalance planning: deciding which buckets move where.
//!
//! During the initialization phase the Cluster Controller refreshes the
//! global directory from the partitions' local directories, runs Algorithm 2
//! against the target topology, and derives the set of bucket moves. The
//! plan also carries the byte cost of each move, which the experiments use
//! to report the rebalance data-movement cost.

use std::collections::{BTreeMap, VecDeque};

use dynahash_lsm::wal::RebalanceId;
use dynahash_lsm::BucketId;

use crate::balance::{balance_assignment, BalanceInput, BucketLoad};
use crate::directory::GlobalDirectory;
use crate::topology::{ClusterTopology, NodeId, PartitionId};
use crate::{CoreError, Result};

/// One bucket move from a source partition to a destination partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketMove {
    /// The bucket being moved.
    pub bucket: BucketId,
    /// The partition currently holding the bucket.
    pub from: PartitionId,
    /// The partition that will hold the bucket after the rebalance.
    pub to: PartitionId,
    /// The bucket's size in bytes (what must be scanned and shipped).
    pub bytes: u64,
}

/// The complete plan of a rebalance operation.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalancePlan {
    /// The rebalance operation id (metadata transaction id).
    pub rebalance_id: RebalanceId,
    /// The directory before the rebalance (refreshed from local directories).
    pub old_directory: GlobalDirectory,
    /// The directory after the rebalance commits.
    pub new_directory: GlobalDirectory,
    /// The bucket moves to perform.
    pub moves: Vec<BucketMove>,
    /// The target topology.
    pub target: ClusterTopology,
}

impl RebalancePlan {
    /// Computes a plan.
    ///
    /// * `old_directory` — the refreshed global directory (bucket → current
    ///   partition);
    /// * `bucket_bytes` — the actual size of each bucket in bytes (reported
    ///   by the NCs); buckets missing from the map fall back to their
    ///   normalized size so the balancing still works;
    /// * `target` — the topology after scaling in/out.
    pub fn compute(
        rebalance_id: RebalanceId,
        old_directory: &GlobalDirectory,
        bucket_bytes: &BTreeMap<BucketId, u64>,
        target: &ClusterTopology,
    ) -> Result<RebalancePlan> {
        let global_depth = old_directory.global_depth();
        let buckets: Vec<BucketLoad> = old_directory
            .iter()
            .map(|(bucket, partition)| {
                // Clamp to at least 1 so that empty buckets (common for small
                // datasets under StaticHash's 256 buckets) still participate
                // in the greedy refinement instead of stalling it.
                let size = bucket_bytes
                    .get(&bucket)
                    .copied()
                    .unwrap_or_else(|| bucket.normalized_size(global_depth))
                    .max(1);
                let current = if target.node_of(partition).is_some() {
                    Some(partition)
                } else {
                    None
                };
                BucketLoad {
                    bucket,
                    size,
                    current,
                }
            })
            .collect();

        let assignment = balance_assignment(&BalanceInput {
            buckets,
            target: target.clone(),
        })?;

        let mut moves = Vec::new();
        for (bucket, to) in &assignment {
            let from = old_directory
                .partition_of_bucket(bucket)
                .ok_or(CoreError::UnassignedBucket(*bucket))?;
            if from != *to {
                moves.push(BucketMove {
                    bucket: *bucket,
                    from,
                    to: *to,
                    bytes: bucket_bytes.get(bucket).copied().unwrap_or(0),
                });
            }
        }
        moves.sort_by_key(|m| m.bucket);

        let new_directory = GlobalDirectory::from_assignment(assignment)?;
        Ok(RebalancePlan {
            rebalance_id,
            old_directory: old_directory.clone(),
            new_directory,
            moves,
            target: target.clone(),
        })
    }

    /// Total bytes that must be scanned and shipped.
    pub fn total_bytes_moved(&self) -> u64 {
        self.moves.iter().map(|m| m.bytes).sum()
    }

    /// Number of buckets that move.
    pub fn num_moves(&self) -> usize {
        self.moves.len()
    }

    /// True if nothing needs to move.
    pub fn is_noop(&self) -> bool {
        self.moves.is_empty()
    }

    /// The moves whose source is the given partition.
    pub fn moves_from(&self, partition: PartitionId) -> Vec<&BucketMove> {
        self.moves.iter().filter(|m| m.from == partition).collect()
    }

    /// The moves whose destination is the given partition.
    pub fn moves_to(&self, partition: PartitionId) -> Vec<&BucketMove> {
        self.moves.iter().filter(|m| m.to == partition).collect()
    }

    /// The partitions that participate in the rebalance (as source or
    /// destination of at least one move).
    pub fn participating_partitions(&self) -> Vec<PartitionId> {
        let mut v: Vec<PartitionId> = self.moves.iter().flat_map(|m| [m.from, m.to]).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Groups the moves into execution *waves* of at most
    /// `max_concurrent_moves` moves each, for the step-driven rebalance
    /// executor. Each wave runs its moves in parallel and is charged the
    /// slowest participating node (its makespan), so the scheduler
    /// interleaves moves round-robin across (destination node, source node)
    /// pairs: consecutive moves land on distinct node pairs whenever
    /// possible, maximising the hardware a wave keeps busy.
    ///
    /// `source_node_of` maps a source partition to its node in the *current*
    /// (pre-rebalance) topology; destinations are resolved against the plan's
    /// target topology. A `max_concurrent_moves` of 1 reproduces the fully
    /// serial schedule. Every move appears in exactly one wave.
    pub fn schedule_waves<F>(
        &self,
        max_concurrent_moves: usize,
        source_node_of: F,
    ) -> Vec<Vec<BucketMove>>
    where
        F: Fn(PartitionId) -> Option<NodeId>,
    {
        Self::schedule_moves(
            &self.moves,
            &self.target,
            max_concurrent_moves,
            source_node_of,
        )
    }

    /// [`RebalancePlan::schedule_waves`] over an arbitrary subset of moves:
    /// the rebalance executor's `replan_wave` reschedules the still-pending
    /// moves (reroutes and re-ships included) after amending the plan around
    /// a permanently lost node. Destinations resolve against `target`.
    pub fn schedule_moves<F>(
        moves: &[BucketMove],
        target: &ClusterTopology,
        max_concurrent_moves: usize,
        source_node_of: F,
    ) -> Vec<Vec<BucketMove>>
    where
        F: Fn(PartitionId) -> Option<NodeId>,
    {
        let cap = max_concurrent_moves.max(1);
        type PairKey = (Option<NodeId>, Option<NodeId>);
        let mut groups: BTreeMap<PairKey, VecDeque<BucketMove>> = BTreeMap::new();
        for m in moves {
            let key = (target.node_of(m.to), source_node_of(m.from));
            groups.entry(key).or_default().push_back(*m);
        }
        let mut interleaved = Vec::with_capacity(moves.len());
        while !groups.is_empty() {
            let keys: Vec<PairKey> = groups.keys().copied().collect();
            for key in keys {
                if let Some(queue) = groups.get_mut(&key) {
                    if let Some(m) = queue.pop_front() {
                        interleaved.push(m);
                    }
                    if queue.is_empty() {
                        groups.remove(&key);
                    }
                }
            }
        }
        interleaved
            .chunks(cap)
            .map(<[BucketMove]>::to_vec)
            .collect()
    }

    /// The fraction of the dataset (by bytes) that moves, given the total
    /// dataset size. This is the paper's headline metric: global rebalancing
    /// moves ≈ 100 % of the data, bucketing schemes move far less.
    pub fn moved_fraction(&self, total_dataset_bytes: u64) -> f64 {
        if total_dataset_bytes == 0 {
            0.0
        } else {
            self.total_bytes_moved() as f64 / total_dataset_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeId;

    fn sizes_uniform(dir: &GlobalDirectory, per_bucket: u64) -> BTreeMap<BucketId, u64> {
        dir.iter().map(|(b, _)| (b, per_bucket)).collect()
    }

    #[test]
    fn removing_a_node_moves_only_its_buckets() {
        let topo = ClusterTopology::uniform(4, 2);
        let dir = GlobalDirectory::initial(5, &topo.partitions()).unwrap(); // 32 buckets
        let sizes = sizes_uniform(&dir, 1000);
        let target = topo.without_node(NodeId(3));
        let plan = RebalancePlan::compute(1, &dir, &sizes, &target).unwrap();
        // node 3 had 2 partitions * 4 buckets = 8 buckets
        assert_eq!(plan.num_moves(), 8);
        assert_eq!(plan.total_bytes_moved(), 8 * 1000);
        assert!(plan.moved_fraction(32 * 1000) < 0.3);
        // everything lands on surviving nodes
        for m in &plan.moves {
            assert!(target.node_of(m.to).is_some());
            assert_eq!(topo.node_of(m.from), Some(NodeId(3)));
        }
        assert!(plan.new_directory.covers_full_space());
    }

    #[test]
    fn adding_a_node_moves_a_small_fraction() {
        let topo = ClusterTopology::uniform(4, 2);
        let dir = GlobalDirectory::initial(5, &topo.partitions()).unwrap();
        let sizes = sizes_uniform(&dir, 1000);
        let target = topo.with_added_node(2);
        let plan = RebalancePlan::compute(2, &dir, &sizes, &target).unwrap();
        assert!(!plan.is_noop());
        let frac = plan.moved_fraction(32 * 1000);
        assert!(
            frac < 0.5,
            "local rebalancing must not move most data: {frac}"
        );
        // the new node's partitions receive all moves
        for m in &plan.moves {
            assert_eq!(target.node_of(m.to), Some(NodeId(4)));
        }
    }

    #[test]
    fn unchanged_topology_is_a_noop() {
        let topo = ClusterTopology::uniform(2, 2);
        let dir = GlobalDirectory::initial(4, &topo.partitions()).unwrap();
        let sizes = sizes_uniform(&dir, 10);
        let plan = RebalancePlan::compute(3, &dir, &sizes, &topo).unwrap();
        assert!(plan.is_noop());
        assert_eq!(plan.new_directory, dir);
        assert_eq!(plan.total_bytes_moved(), 0);
        assert!(plan.participating_partitions().is_empty());
    }

    #[test]
    fn serial_schedule_is_one_move_per_wave() {
        let topo = ClusterTopology::uniform(4, 2);
        let dir = GlobalDirectory::initial(5, &topo.partitions()).unwrap();
        let sizes = sizes_uniform(&dir, 1000);
        let target = topo.without_node(NodeId(3));
        let plan = RebalancePlan::compute(7, &dir, &sizes, &target).unwrap();
        let waves = plan.schedule_waves(1, |p| topo.node_of(p));
        assert_eq!(waves.len(), plan.num_moves());
        assert!(waves.iter().all(|w| w.len() == 1));
    }

    #[test]
    fn waves_cover_every_move_exactly_once_and_spread_nodes() {
        let topo = ClusterTopology::uniform(4, 2);
        let dir = GlobalDirectory::initial(5, &topo.partitions()).unwrap();
        let sizes = sizes_uniform(&dir, 1000);
        let target = topo.without_node(NodeId(3));
        let plan = RebalancePlan::compute(8, &dir, &sizes, &target).unwrap();
        let waves = plan.schedule_waves(4, |p| topo.node_of(p));
        // 8 moves in waves of <= 4
        assert!(waves.iter().all(|w| !w.is_empty() && w.len() <= 4));
        let mut flattened: Vec<BucketId> = waves
            .iter()
            .flat_map(|w| w.iter().map(|m| m.bucket))
            .collect();
        flattened.sort();
        let mut expected: Vec<BucketId> = plan.moves.iter().map(|m| m.bucket).collect();
        expected.sort();
        assert_eq!(flattened, expected);
        // a full wave spreads its moves over more than one destination node
        let first = &waves[0];
        let dst_nodes: std::collections::BTreeSet<_> =
            first.iter().filter_map(|m| target.node_of(m.to)).collect();
        assert!(
            dst_nodes.len() > 1,
            "wave should span multiple destination nodes: {dst_nodes:?}"
        );
    }

    #[test]
    fn zero_concurrency_is_clamped_to_serial() {
        let topo = ClusterTopology::uniform(3, 2);
        let dir = GlobalDirectory::initial(4, &topo.partitions()).unwrap();
        let sizes = sizes_uniform(&dir, 5);
        let target = topo.without_node(NodeId(2));
        let plan = RebalancePlan::compute(9, &dir, &sizes, &target).unwrap();
        let waves = plan.schedule_waves(0, |p| topo.node_of(p));
        assert_eq!(waves.len(), plan.num_moves());
    }

    #[test]
    fn moves_from_and_to_are_consistent() {
        let topo = ClusterTopology::uniform(3, 2);
        let dir = GlobalDirectory::initial(5, &topo.partitions()).unwrap();
        let sizes = sizes_uniform(&dir, 7);
        let target = topo.without_node(NodeId(0));
        let plan = RebalancePlan::compute(4, &dir, &sizes, &target).unwrap();
        let total_from: usize = topo
            .partitions()
            .iter()
            .map(|p| plan.moves_from(*p).len())
            .sum();
        let total_to: usize = target
            .partitions()
            .iter()
            .map(|p| plan.moves_to(*p).len())
            .sum();
        assert_eq!(total_from, plan.num_moves());
        assert_eq!(total_to, plan.num_moves());
    }
}
