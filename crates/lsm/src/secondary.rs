//! Secondary LSM indexes.
//!
//! Secondary indexes store the composition of the secondary key and the
//! primary key as their index keys (AsterixDB convention). Unlike the primary
//! index, secondary indexes store **all buckets together** in one LSM-tree
//! (storage Option 1, Section IV): they never have to be read during a
//! rebalance because they are rebuilt on the fly at the destination.
//!
//! After a committed rebalance the entries of moved buckets become obsolete.
//! They are removed with **lazy cleanup** (Section V-C): the moved bucket's
//! `(hash, depth)` is recorded in the index metadata, queries validate
//! results against this list (skipping entries whose *primary key* belongs to
//! a moved bucket), and the physical cleanup happens at the next compaction.

use std::sync::Arc;

use crate::bucket::BucketId;
use crate::component::{Component, ComponentSource};
use crate::entry::{Entry, Key};
use crate::metrics::StorageMetrics;
use crate::tree::{LsmConfig, LsmTree};

/// A decoded secondary-index entry: the secondary key plus the primary key of
/// the record it points at.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SecondaryEntry {
    /// The secondary (indexed) key.
    pub secondary: Key,
    /// The primary key of the indexed record.
    pub primary: Key,
}

impl SecondaryEntry {
    /// Encodes the entry as a single composite index key:
    /// `secondary || primary || len(primary) as u16 BE`.
    pub fn encode(&self) -> Key {
        let mut v = Vec::with_capacity(self.secondary.len() + self.primary.len() + 2);
        v.extend_from_slice(self.secondary.as_slice());
        v.extend_from_slice(self.primary.as_slice());
        v.extend_from_slice(&(self.primary.len() as u16).to_be_bytes());
        Key::from_bytes(v)
    }

    /// Decodes a composite index key produced by [`SecondaryEntry::encode`].
    /// Returns `None` for malformed keys.
    pub fn decode(key: &Key) -> Option<SecondaryEntry> {
        let raw = key.as_slice();
        if raw.len() < 2 {
            return None;
        }
        let plen = u16::from_be_bytes([raw[raw.len() - 2], raw[raw.len() - 1]]) as usize;
        if raw.len() < plen + 2 {
            return None;
        }
        let split = raw.len() - 2 - plen;
        Some(SecondaryEntry {
            secondary: Key::from_bytes(raw[..split].to_vec()),
            primary: Key::from_bytes(raw[split..raw.len() - 2].to_vec()),
        })
    }
}

/// A secondary index over one dataset partition.
#[derive(Debug)]
pub struct SecondaryIndex {
    /// Human-readable index name (e.g. `idx_lineitem_shipdate`).
    pub name: String,
    tree: LsmTree,
    /// Buckets whose entries are obsolete; the actual filtering lives in the
    /// per-component metadata (so that a bucket received back later is not
    /// affected), this list is kept for reporting and compaction.
    invalid_buckets: Vec<BucketId>,
    /// Pending component list receiving rebalanced data, invisible to queries.
    pending: Option<LsmTree>,
    lsm_config: LsmConfig,
    metrics: Arc<StorageMetrics>,
    /// Number of obsolete entries still physically present (estimated at
    /// mark time, cleared by compaction).
    obsolete_remaining: u64,
    /// Cumulative obsolete-entry validation work performed by queries since
    /// the last compaction (quantifies the lazy-cleanup overhead).
    obsolete_skipped: u64,
}

impl SecondaryIndex {
    /// Creates an empty secondary index.
    pub fn new(name: impl Into<String>, config: LsmConfig, metrics: Arc<StorageMetrics>) -> Self {
        SecondaryIndex {
            name: name.into(),
            tree: LsmTree::new(config.clone(), Arc::clone(&metrics)),
            invalid_buckets: Vec::new(),
            pending: None,
            lsm_config: config,
            metrics,
            obsolete_remaining: 0,
            obsolete_skipped: 0,
        }
    }

    /// Inserts a secondary-index entry.
    pub fn insert(&mut self, secondary: Key, primary: Key) {
        let composite = SecondaryEntry { secondary, primary }.encode();
        self.tree.put(composite, crate::Bytes::new());
    }

    /// Deletes a secondary-index entry (requires knowing the old secondary key).
    pub fn delete(&mut self, secondary: Key, primary: Key) {
        let composite = SecondaryEntry { secondary, primary }.encode();
        self.tree.delete(composite);
    }

    /// Searches for all primary keys whose secondary key is in
    /// `[lo, hi)` (unbounded when `None`). Obsolete entries of moved buckets
    /// are filtered by the per-component lazy-cleanup metadata; the
    /// validation work they cause is accounted in
    /// [`SecondaryIndex::obsolete_entries_skipped`].
    pub fn search_range(&mut self, lo: Option<&Key>, hi: Option<&Key>) -> Vec<SecondaryEntry> {
        // The composite keys are ordered by secondary key first, so prefix
        // bounds on the secondary key translate directly.
        let entries = self.tree.scan(lo, hi);
        let mut out = Vec::with_capacity(entries.len());
        for e in entries {
            if let Some(se) = SecondaryEntry::decode(&e.key) {
                // An encoded composite >= hi can slip in when hi is a bare
                // secondary-key prefix; filter exactly on the decoded key.
                if let Some(h) = hi {
                    if &se.secondary >= h {
                        continue;
                    }
                }
                if let Some(l) = lo {
                    if &se.secondary < l {
                        continue;
                    }
                }
                out.push(se);
            }
        }
        // Every query over an index with pending lazy cleanup has to validate
        // (and discard) the still-present obsolete entries; account that work.
        self.obsolete_skipped += self.obsolete_remaining;
        out
    }

    /// Searches for the primary keys with exactly this secondary key.
    pub fn search_exact(&mut self, secondary: &Key) -> Vec<Key> {
        let mut hi = secondary.as_slice().to_vec();
        hi.push(0xff);
        hi.push(0xff);
        hi.push(0xff);
        let hi = Key::from_bytes(hi);
        self.search_range(Some(secondary), Some(&hi))
            .into_iter()
            .filter(|se| &se.secondary == secondary)
            .map(|se| se.primary)
            .collect()
    }

    // ------------------------------------------------------------ rebalancing

    /// Records a moved bucket for lazy cleanup: the bucket's `(hash, depth)`
    /// is added to the metadata of every **current** component, so its
    /// entries disappear from queries immediately while the physical removal
    /// waits for the next merge or [`SecondaryIndex::compact`]. Components
    /// added later (e.g. the same bucket received back by a future rebalance)
    /// are unaffected.
    pub fn mark_bucket_moved(&mut self, bucket: BucketId) {
        if self.invalid_buckets.contains(&bucket) {
            return;
        }
        // Flush first so all current entries live in (markable) components.
        self.tree.flush();
        let newly_obsolete = self.entries_in_bucket(bucket).len() as u64;
        self.tree.mark_bucket_invalid_secondary(bucket);
        self.invalid_buckets.push(bucket);
        self.obsolete_remaining += newly_obsolete;
    }

    /// The buckets currently marked for lazy cleanup.
    pub fn invalid_buckets(&self) -> &[BucketId] {
        &self.invalid_buckets
    }

    /// Number of obsolete entries that queries had to skip since the last
    /// compaction (the lazy-cleanup overhead reported in the experiments).
    pub fn obsolete_entries_skipped(&self) -> u64 {
        self.obsolete_skipped
    }

    /// Ensures the pending component list exists (destination side of a
    /// rebalance). Received entries go into a single list regardless of how
    /// many buckets are being received (the paper's optimization to limit
    /// the number of components).
    fn pending_tree(&mut self) -> &mut LsmTree {
        self.pending
            .get_or_insert_with(|| LsmTree::new(self.lsm_config.clone(), Arc::clone(&self.metrics)))
    }

    /// Bulk-loads received secondary entries into the invisible pending list.
    pub fn load_into_pending(&mut self, entries: Vec<SecondaryEntry>) {
        let raw: Vec<Entry> = entries
            .into_iter()
            .map(|se| Entry::put(se.encode(), crate::Bytes::new()))
            .collect();
        let comp = Component::from_unsorted(raw, ComponentSource::Loaded);
        StorageMetrics::add(
            &self.metrics.bytes_rebalance_loaded,
            comp.size_bytes() as u64,
        );
        self.pending_tree().append_oldest_components(vec![comp]);
    }

    /// Bulk-loads lazily rebuilt base entries of a received bucket as the
    /// **oldest** data of the visible tree (deferred secondary rebuild: the
    /// bucket was installed without its base entries, which are derived from
    /// the shipped primary components on first query). Appending oldest
    /// keeps replicated writes — installed at commit time, and therefore
    /// already in the tree — newer than the base data they supersede,
    /// exactly as the eager path orders its bulk-loaded pending component.
    pub fn load_deferred_base(&mut self, entries: Vec<SecondaryEntry>) {
        if entries.is_empty() {
            return;
        }
        let raw: Vec<Entry> = entries
            .into_iter()
            .map(|se| Entry::put(se.encode(), crate::Bytes::new()))
            .collect();
        let comp = Component::from_unsorted(raw, ComponentSource::Loaded);
        StorageMetrics::add(
            &self.metrics.bytes_rebalance_loaded,
            comp.size_bytes() as u64,
        );
        self.tree.append_oldest_components(vec![comp]);
    }

    /// Applies a replicated concurrent write to the pending list.
    pub fn apply_replicated(&mut self, secondary: Key, primary: Key, op_is_delete: bool) {
        let composite = SecondaryEntry { secondary, primary }.encode();
        let entry = if op_is_delete {
            Entry::delete(composite)
        } else {
            Entry::put(composite, crate::Bytes::new())
        };
        self.pending_tree().apply(entry);
    }

    /// Flushes the pending list's memory component (prepare phase).
    pub fn flush_pending(&mut self) {
        if let Some(p) = self.pending.as_mut() {
            p.flush();
        }
    }

    /// Installs the pending component list, making received entries visible
    /// (commit phase). Idempotent when there is nothing pending.
    pub fn install_pending(&mut self) {
        if let Some(mut p) = self.pending.take() {
            p.flush();
            let comps = p.components().to_vec();
            // Received data is disjoint (by bucket) from local data, so the
            // position in the list does not affect reconciliation with local
            // writes; within the received list, replicated records are
            // already newer than loaded ones.
            self.tree.append_oldest_components(comps);
        }
    }

    /// Discards the pending component list (abort path). Idempotent.
    pub fn drop_pending(&mut self) {
        self.pending = None;
    }

    /// True if a pending component list exists.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    // ------------------------------------------------------------ maintenance

    /// Flushes the in-memory component.
    pub fn flush(&mut self) {
        self.tree.flush();
    }

    /// Compacts the index, physically removing obsolete entries of moved
    /// buckets and clearing the lazy-cleanup metadata.
    pub fn compact(&mut self) {
        self.tree.flush();
        // The scan already applies the per-component lazy-cleanup filters, so
        // rewriting its output is exactly the physical cleanup.
        let retained = self.tree.scan_all();
        let read_bytes = self.tree.disk_size_bytes();
        StorageMetrics::add(&self.metrics.bytes_merge_read, read_bytes as u64);
        let comp = Component::from_unsorted(retained, ComponentSource::Merge);
        StorageMetrics::add(&self.metrics.bytes_merged, comp.size_bytes() as u64);
        StorageMetrics::add(&self.metrics.merge_count, 1);
        self.tree.set_components(vec![comp]);
        self.invalid_buckets.clear();
        self.obsolete_remaining = 0;
        self.obsolete_skipped = 0;
    }

    /// Runs the regular merge policy.
    pub fn run_merges(&mut self) -> usize {
        self.tree.run_merges()
    }

    /// Number of live index entries **including** obsolete ones that lazy
    /// cleanup has not yet removed.
    pub fn raw_len(&self) -> usize {
        self.tree.live_len()
    }

    /// Storage bytes used by the index (visible plus pending).
    pub fn storage_bytes(&self) -> usize {
        self.tree.storage_bytes()
            + self
                .pending
                .as_ref()
                .map(|p| p.storage_bytes())
                .unwrap_or(0)
    }

    /// Iterates every live, valid entry (used for rebuilding and tests).
    pub fn all_valid_entries(&mut self) -> Vec<SecondaryEntry> {
        self.search_range(None, None)
    }

    /// Scans entries that belong to a set of moved buckets — the source side
    /// of a rebalance uses the *primary* index for this instead (secondary
    /// indexes are rebuilt from the moved records), but tests use it to
    /// verify lazy cleanup.
    pub fn entries_in_bucket(&mut self, bucket: BucketId) -> Vec<SecondaryEntry> {
        self.tree
            .scan_all()
            .into_iter()
            .filter_map(|e| SecondaryEntry::decode(&e.key))
            .filter(|se| bucket.contains_key(&se.primary))
            .collect()
    }
}

/// Builds the secondary-index entries for a record given an extractor from
/// the record payload to the secondary key. Shared by ingestion and by the
/// rebalance destination, which rebuilds secondary indexes on the fly.
pub fn index_record<F>(primary: &Key, payload: &[u8], extract: F) -> Option<SecondaryEntry>
where
    F: Fn(&[u8]) -> Option<Key>,
{
    extract(payload).map(|secondary| SecondaryEntry {
        secondary,
        primary: primary.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> SecondaryIndex {
        SecondaryIndex::new(
            "idx_test",
            LsmConfig::with_memtable_budget(1 << 14),
            StorageMetrics::new_shared(),
        )
    }

    #[test]
    fn encode_decode_roundtrip() {
        let se = SecondaryEntry {
            secondary: Key::from_u64(20240101),
            primary: Key::from_pair(7, 3),
        };
        let enc = se.encode();
        assert_eq!(SecondaryEntry::decode(&enc).unwrap(), se);
    }

    #[test]
    fn search_by_secondary_range() {
        let mut i = idx();
        for pk in 0..100u64 {
            // secondary key = pk / 10 (10 records per secondary value)
            i.insert(Key::from_u64(pk / 10), Key::from_u64(pk));
        }
        let lo = Key::from_u64(3);
        let hi = Key::from_u64(5);
        let hits = i.search_range(Some(&lo), Some(&hi));
        assert_eq!(hits.len(), 20);
        assert!(hits
            .iter()
            .all(|se| (3..5).contains(&se.secondary.as_u64())));
        let exact = i.search_exact(&Key::from_u64(7));
        assert_eq!(exact.len(), 10);
        assert!(exact.iter().all(|pk| pk.as_u64() / 10 == 7));
    }

    #[test]
    fn lazy_cleanup_hides_moved_bucket_entries() {
        let mut i = idx();
        for pk in 0..200u64 {
            i.insert(Key::from_u64(pk % 13), Key::from_u64(pk));
        }
        let moved = BucketId::new(1, 1);
        let moved_count = i.entries_in_bucket(moved).len();
        assert!(moved_count > 0);
        let total_before = i.all_valid_entries().len();
        assert_eq!(total_before, 200);

        i.mark_bucket_moved(moved);
        let valid = i.all_valid_entries();
        assert_eq!(valid.len(), 200 - moved_count);
        assert!(valid.iter().all(|se| !moved.contains_key(&se.primary)));
        assert!(i.obsolete_entries_skipped() > 0);

        // physical cleanup
        i.compact();
        assert!(i.invalid_buckets().is_empty());
        assert_eq!(i.raw_len(), 200 - moved_count);
    }

    #[test]
    fn pending_entries_invisible_until_installed() {
        let mut i = idx();
        i.insert(Key::from_u64(1), Key::from_u64(100));
        let received: Vec<SecondaryEntry> = (0..50u64)
            .map(|pk| SecondaryEntry {
                secondary: Key::from_u64(pk % 5),
                primary: Key::from_u64(1000 + pk),
            })
            .collect();
        i.load_into_pending(received);
        i.apply_replicated(Key::from_u64(2), Key::from_u64(2000), false);
        assert_eq!(i.all_valid_entries().len(), 1);
        assert!(i.has_pending());

        i.flush_pending();
        i.install_pending();
        assert!(!i.has_pending());
        assert_eq!(i.all_valid_entries().len(), 1 + 50 + 1);
        // abort path on a fresh index: dropping nothing is fine
        i.drop_pending();
    }

    #[test]
    fn drop_pending_discards_received_data() {
        let mut i = idx();
        i.load_into_pending(vec![SecondaryEntry {
            secondary: Key::from_u64(1),
            primary: Key::from_u64(2),
        }]);
        i.drop_pending();
        i.install_pending(); // nothing to install
        assert_eq!(i.all_valid_entries().len(), 0);
    }

    #[test]
    fn index_record_extracts_secondary_key() {
        let payload = 42u64.to_be_bytes();
        let se = index_record(&Key::from_u64(7), &payload, |p| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&p[..8]);
            Some(Key::from_u64(u64::from_be_bytes(b)))
        })
        .unwrap();
        assert_eq!(se.secondary.as_u64(), 42);
        assert_eq!(se.primary.as_u64(), 7);
    }
}
