//! A TPC-H-like workload for evaluating DynaHash.
//!
//! The paper's evaluation (Section VI) loads the TPC-H benchmark at scale
//! factor `100 × #nodes`, builds two covering secondary indexes (on LineItem
//! and Orders), and runs the 22 TPC-H queries. This crate provides a
//! scaled-down, deterministic equivalent:
//!
//! * [`schema`] — the eight TPC-H tables encoded as fixed-layout binary
//!   records with typed accessors;
//! * [`generator`] — a seeded data generator preserving the TPC-H table
//!   cardinality ratios and foreign-key relationships;
//! * [`loader`] — creates the datasets (with the paper's secondary indexes)
//!   on a [`dynahash_cluster::Cluster`] and ingests the generated data;
//! * [`queries`] — the 22 analytical queries expressed against the cluster's
//!   query-execution API, preserving each query's access pattern (full scans,
//!   index-only plans, primary-key-ordered scans, join structure).

pub mod generator;
pub mod loader;
pub mod queries;
pub mod schema;

pub use generator::{TpchData, TpchScale};
pub use loader::{load_tpch, TpchTables};
pub use queries::{query_traits, run_query, QueryTraits, NUM_QUERIES};
