//! Degraded-dataset repair: restoring buckets lost with a dead node.
//!
//! A permanently lost node takes the only copy of its resident buckets with
//! it. The rebalance replan path keeps the *cluster* converging — routing is
//! reassigned to survivors and the job commits — but the reassigned buckets
//! come up **empty**, and the dataset serves degraded: reads and writes
//! touching a lost bucket get the typed [`ClusterError::BucketDegraded`]
//! instead of silently-empty data, and
//! [`crate::fault::ClusterHealth::degraded_datasets`] names the damage.
//!
//! [`RepairJob`] closes the loop. It is a rebalance-job variant running under
//! the same machinery as [`crate::job::RebalanceJob`] — a forced BEGIN record,
//! the pure [`RebalanceCoordinator`] 2PC state machine, pending buckets that
//! stay invisible until commit, a brief write-blocked prepare window — but
//! instead of shipping buckets between partitions it **re-ingests the lost
//! buckets from an operator-supplied feed** (a backup, an upstream source, or
//! a scenario's model snapshot):
//!
//! ```text
//! plan -> load(feed) -> prepare -> decide -> commit -> finalize
//!            |                        |
//!            +-- replan (node lost) --+-> abort ------> finalize
//! ```
//!
//! * **plan** fixes the repair scope (the dataset's currently-degraded
//!   buckets), reassigns any bucket whose owner itself is dead to the
//!   least-loaded surviving partition, and forces BEGIN.
//! * **load** routes the feed through the repair's directory snapshot and
//!   bulk-loads each lost bucket's records into a pending bucket on its
//!   owner. A pending copy that already holds base data — left by an
//!   interrupted earlier repair attempt — is *re-used* instead of re-loaded,
//!   so resuming never double-applies records.
//! * **replan** absorbs a node lost *during* the repair: its in-scope
//!   pending copies are re-assigned (and re-loaded), and its resident
//!   buckets join the repair scope as newly-degraded.
//! * **commit** installs every pending bucket, clears the repaired buckets
//!   from the degraded set, installs the (possibly reassigned) directory,
//!   and pushes the routing update to subscribed sessions.
//!
//! The one-shot driver is [`crate::cluster::Admin::repair_dataset`]; the
//! control plane auto-triggers it on a health tick when an operator has
//! registered a repair feed (see [`crate::control::ControlPlane`]).

use std::collections::{BTreeMap, BTreeSet};

use dynahash_core::{
    BucketId, GlobalDirectory, NodeId, NodeVote, PartitionId, RebalanceCoordinator,
    RebalanceOutcome,
};
use dynahash_lsm::entry::{Key, Value};
use dynahash_lsm::wal::{LogRecordBody, RebalanceId};
use dynahash_lsm::Entry;

use crate::cluster::Cluster;
use crate::dataset::DatasetId;
use crate::sim::{NodeTimeline, SimDuration};
use crate::{ClusterError, Result};

/// The observable state of a [`RepairJob`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairState {
    /// The scope is fixed and BEGIN is forced; nothing is loaded yet.
    Planned,
    /// Every in-scope bucket has a loaded (or re-used) pending copy.
    Loaded,
    /// Pending state is flushed and every alive participant voted.
    Prepared,
    /// The commit/abort decision is durable.
    Decided(RebalanceOutcome),
    /// The job is finished (DONE is forced) with the recorded outcome.
    Finalized(RebalanceOutcome),
}

impl RepairState {
    fn name(&self) -> &'static str {
        match self {
            RepairState::Planned => "Planned",
            RepairState::Loaded => "Loaded",
            RepairState::Prepared => "Prepared",
            RepairState::Decided(RebalanceOutcome::Committed) => "Decided(Committed)",
            RepairState::Decided(RebalanceOutcome::Aborted) => "Decided(Aborted)",
            RepairState::Finalized(_) => "Finalized",
        }
    }
}

/// Outcome summary of a repair, produced by [`RepairJob::finalize`] (or
/// directly by [`crate::cluster::Admin::repair_dataset`] when there was
/// nothing to repair).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// The repaired dataset.
    pub dataset: DatasetId,
    /// The rebalance-operation id the repair ran under (`None` for the
    /// nothing-to-repair no-op, which forces no log records).
    pub rebalance: Option<RebalanceId>,
    /// Committed or aborted.
    pub outcome: RebalanceOutcome,
    /// The buckets the repair restored (sorted).
    pub buckets: Vec<BucketId>,
    /// In-scope buckets whose surviving pending copy was re-used instead of
    /// re-loaded from the feed (resumed repairs).
    pub reused: Vec<BucketId>,
    /// Records restored from the feed.
    pub records_restored: u64,
    /// Primary bytes restored from the feed.
    pub bytes_restored: u64,
    /// Times the repair re-planned around a node lost mid-repair.
    pub replans: u64,
    /// Simulated time the repair took.
    pub elapsed: SimDuration,
}

impl RepairReport {
    /// The report for a dataset with nothing to repair.
    pub fn noop(dataset: DatasetId) -> Self {
        RepairReport {
            dataset,
            rebalance: None,
            outcome: RebalanceOutcome::Committed,
            buckets: Vec::new(),
            reused: Vec::new(),
            records_restored: 0,
            bytes_restored: 0,
            replans: 0,
            elapsed: SimDuration::ZERO,
        }
    }

    /// True when the repair had nothing to do.
    pub fn is_noop(&self) -> bool {
        self.rebalance.is_none()
    }
}

/// The step-driven degraded-dataset repair job (see the module docs).
///
/// Like [`crate::job::RebalanceJob`], the job holds no borrow of the cluster
/// between steps, and a planned job must always be driven to
/// [`RepairJob::finalize`] (via commit or abort) — abandoning one mid-flight
/// leaves bucket splits disabled and the write-blocking state registered.
pub struct RepairJob {
    dataset: DatasetId,
    rebalance_id: RebalanceId,
    /// Lost bucket -> the partition that will serve it after the repair.
    scope: BTreeMap<BucketId, PartitionId>,
    /// The routing the repair loads and commits under: the CC directory at
    /// plan time with dead owners reassigned to survivors.
    routing: GlobalDirectory,
    participants: Vec<NodeId>,
    coordinator: RebalanceCoordinator,
    loaded: BTreeSet<BucketId>,
    reused: BTreeSet<BucketId>,
    state: RepairState,
    tl: NodeTimeline,
    records_restored: u64,
    bytes_restored: u64,
    replans: u64,
}

impl RepairJob {
    /// Plans a repair of the dataset's currently-degraded buckets: fixes the
    /// scope, reassigns buckets owned by dead nodes to the least-loaded
    /// surviving partition, forces BEGIN, disables bucket splits, and
    /// registers the write-blocking state. The scope may be empty (the
    /// resulting job commits trivially); callers that want a cheap no-op
    /// should check [`crate::fault::FaultStats::degraded_buckets`] first,
    /// as [`crate::cluster::Admin::repair_dataset`] does.
    pub fn plan(cluster: &mut Cluster, dataset: DatasetId) -> Result<Self> {
        if !cluster.scheme_of(dataset)?.is_bucketed() {
            return Err(ClusterError::RebalanceAborted(
                "repair requires a bucketed scheme".to_string(),
            ));
        }
        if cluster.active_rebalances.contains_key(&dataset) {
            return Err(ClusterError::RebalanceAborted(
                "dataset has an in-flight rebalance; finalize it before repairing".to_string(),
            ));
        }
        let buckets = cluster.faults.stats.degraded_buckets(dataset);
        let rebalance_id = cluster.controller.next_rebalance_id();
        cluster
            .controller
            .metadata_log
            .append_forced(LogRecordBody::RebalanceBegin {
                rebalance: rebalance_id,
                dataset,
            });

        let mut routing = cluster
            .controller
            .dataset(dataset)?
            .directory
            .clone()
            .ok_or_else(|| {
                ClusterError::RebalanceAborted("bucketed dataset has no directory".to_string())
            })?;
        let mut scope = BTreeMap::new();
        for bucket in buckets {
            let owner = assign_owner(cluster, &mut routing, bucket)?;
            scope.insert(bucket, owner);
        }

        // Every alive node participates: owners must ack their installs and
        // the rest must ack the (possibly reassigned) directory.
        let participants: Vec<NodeId> = cluster
            .topology()
            .nodes()
            .into_iter()
            .filter(|n| cluster.node_is_alive(*n))
            .collect();
        let mut coordinator = RebalanceCoordinator::new(rebalance_id, participants.clone());
        coordinator
            .start_data_movement()
            .map_err(ClusterError::Core)?;

        cluster.set_splits_enabled(dataset, false)?;
        cluster.active_rebalances.insert(
            dataset,
            crate::cluster::ActiveRebalance {
                routing: routing.clone(),
                target: cluster.topology().clone(),
                shipped: BTreeMap::new(),
                write_blocked: false,
            },
        );

        let cost = cluster.cost_model();
        let mut tl = NodeTimeline::new();
        for n in &participants {
            tl.charge(*n, SimDuration::from_nanos(cost.network_latency_ns));
        }
        tl.charge_coordinator(SimDuration::from_nanos(cost.job_overhead_ns));

        Ok(RepairJob {
            dataset,
            rebalance_id,
            scope,
            routing,
            participants,
            coordinator,
            loaded: BTreeSet::new(),
            reused: BTreeSet::new(),
            state: RepairState::Planned,
            tl,
            records_restored: 0,
            bytes_restored: 0,
            replans: 0,
        })
    }

    /// Loads every not-yet-loaded in-scope bucket from the operator feed:
    /// the feed is routed through the repair's directory snapshot, and each
    /// bucket's records are bulk-loaded into a pending bucket on its owner.
    /// An owner partition that already holds a pending copy with base data —
    /// a surviving copy from an interrupted earlier attempt — is re-used
    /// as-is, so resuming a repair never double-applies records.
    ///
    /// Fails with [`ClusterError::NodeLost`] when an owner died since the
    /// plan; call [`RepairJob::replan`] and load again.
    pub fn load(&mut self, cluster: &mut Cluster, feed: &[(Key, Value)]) -> Result<()> {
        self.require(matches!(self.state, RepairState::Planned), "load")?;
        let cost = cluster.cost_model();
        for (&bucket, &owner) in self.scope.clone().iter() {
            if self.loaded.contains(&bucket) {
                continue;
            }
            let node = cluster
                .topology()
                .node_of(owner)
                .ok_or(ClusterError::UnknownPartition(owner))?;
            if cluster.node_is_lost(node) {
                return Err(ClusterError::NodeLost(node));
            }
            if !cluster.node_is_alive(node) {
                return Err(ClusterError::NodeDown(node));
            }
            let ds = cluster.partition_mut(owner)?.dataset_mut(self.dataset)?;
            if ds.primary.pending_has_base_data(&bucket) {
                self.reused.insert(bucket);
                self.loaded.insert(bucket);
                continue;
            }
            let mut entries = Vec::new();
            let mut bytes = 0u64;
            for (key, value) in feed {
                if self.routing.lookup_key(key).map(|(b, _)| b) == Some(bucket) {
                    bytes += (key.len() + value.len()) as u64;
                    entries.push(Entry::put(key.clone(), value.clone()));
                }
            }
            let records = entries.len() as u64;
            ds.ensure_pending_bucket(bucket)?;
            ds.load_pending(bucket, entries)?;
            self.tl.charge(
                node,
                cost.network(bytes) + cost.ingest_cpu(records) + cost.disk_write(bytes),
            );
            self.records_restored += records;
            self.bytes_restored += bytes;
            self.loaded.insert(bucket);
        }
        self.tl
            .charge_coordinator(SimDuration::from_nanos(cost.job_overhead_ns));
        self.state = RepairState::Loaded;
        Ok(())
    }

    /// Absorbs nodes permanently lost since the plan (or mid-load): dead
    /// participants leave the 2PC vote set, their in-scope pending copies
    /// are reassigned to survivors (and marked for re-loading), and their
    /// resident buckets join the repair scope as newly-degraded — exactly
    /// what [`crate::cluster::Cluster::lose_node`] recorded. Returns the
    /// number of buckets whose owner changed.
    pub fn replan(&mut self, cluster: &mut Cluster) -> Result<usize> {
        self.require(
            matches!(self.state, RepairState::Planned | RepairState::Loaded),
            "replan",
        )?;
        let dead: Vec<NodeId> = self
            .participants
            .iter()
            .copied()
            .filter(|n| !cluster.node_is_alive(*n))
            .collect();
        let mut moved = 0usize;
        for n in &dead {
            self.coordinator.remove_participant(*n);
        }
        self.participants.retain(|n| !dead.contains(n));
        // Newly-degraded buckets recorded by lose_node join the scope; the
        // set also covers in-scope buckets whose owner died (their routing
        // entry still names the dead partition).
        for bucket in cluster.faults.stats.degraded_buckets(self.dataset) {
            let owner_alive = self
                .scope
                .get(&bucket)
                .and_then(|p| cluster.topology().node_of(*p))
                .is_some_and(|n| cluster.node_is_alive(n));
            if owner_alive {
                continue;
            }
            let owner = assign_owner(cluster, &mut self.routing, bucket)?;
            self.scope.insert(bucket, owner);
            // The previous pending copy (if any) died with its node; load
            // again on the new owner.
            self.loaded.remove(&bucket);
            self.reused.remove(&bucket);
            moved += 1;
        }
        if let Some(active) = cluster.active_rebalances.get_mut(&self.dataset) {
            active.routing = self.routing.clone();
        }
        self.replans += 1;
        if !self.scope.keys().all(|b| self.loaded.contains(b)) {
            self.state = RepairState::Planned;
        }
        Ok(moved)
    }

    /// Prepare phase: flushes every owner's pending state, blocks writes
    /// until the decision, and collects the alive participants' yes votes.
    pub fn prepare(&mut self, cluster: &mut Cluster) -> Result<()> {
        self.require(matches!(self.state, RepairState::Loaded), "prepare")?;
        let cost = cluster.cost_model();
        self.coordinator
            .start_prepare()
            .map_err(ClusterError::Core)?;
        let owners: BTreeSet<PartitionId> = self.scope.values().copied().collect();
        for owner in owners {
            let Some(node) = cluster.topology().node_of(owner) else {
                continue;
            };
            if !cluster.node_is_alive(node) {
                continue;
            }
            let pending_bytes = cluster
                .partition(owner)?
                .dataset(self.dataset)?
                .primary
                .pending_storage_bytes() as u64;
            cluster
                .partition_mut(owner)?
                .dataset_mut(self.dataset)?
                .flush_pending();
            self.tl.charge(node, cost.disk_write(pending_bytes / 8));
        }
        if let Some(active) = cluster.active_rebalances.get_mut(&self.dataset) {
            active.write_blocked = true;
        }
        for n in &self.participants {
            if cluster.node_is_alive(*n) {
                self.coordinator
                    .record_vote(*n, NodeVote::Yes)
                    .map_err(ClusterError::Core)?;
            }
        }
        self.tl.charge_coordinator(SimDuration::from_nanos(
            cost.network_latency_ns * self.participants.len() as u64,
        ));
        self.state = RepairState::Prepared;
        Ok(())
    }

    /// Decides the outcome from the collected votes: a unanimous yes forces
    /// the COMMIT record; any missing vote aborts and discards all pending
    /// copies.
    pub fn decide(&mut self, cluster: &mut Cluster) -> Result<RebalanceOutcome> {
        self.require(matches!(self.state, RepairState::Prepared), "decide")?;
        if self.coordinator.unanimous_yes() {
            cluster
                .controller
                .metadata_log
                .append_forced(LogRecordBody::RebalanceCommit {
                    rebalance: self.rebalance_id,
                });
            self.coordinator.decide().map_err(ClusterError::Core)?;
            self.state = RepairState::Decided(RebalanceOutcome::Committed);
            Ok(RebalanceOutcome::Committed)
        } else {
            self.coordinator.decide().map_err(ClusterError::Core)?;
            self.abort_cleanup(cluster)?;
            self.state = RepairState::Decided(RebalanceOutcome::Aborted);
            Ok(RebalanceOutcome::Aborted)
        }
    }

    /// Aborts the repair from any step before the commit decision; the
    /// pending copies are discarded and the dataset stays degraded.
    /// Idempotent once already aborted.
    pub fn abort(&mut self, cluster: &mut Cluster) -> Result<()> {
        match self.state {
            RepairState::Planned | RepairState::Loaded | RepairState::Prepared => {}
            RepairState::Decided(RebalanceOutcome::Aborted) => return Ok(()),
            _ => return Err(self.invalid_step("abort")),
        }
        self.coordinator.abort().map_err(ClusterError::Core)?;
        self.abort_cleanup(cluster)?;
        self.state = RepairState::Decided(RebalanceOutcome::Aborted);
        Ok(())
    }

    /// Commit tasks: every owner installs its pending bucket (an empty
    /// replacement bucket installed by an earlier replan is dropped first),
    /// the repaired buckets leave the degraded set, the CC installs the
    /// (possibly reassigned) directory, and subscribed sessions get the
    /// routing push.
    pub fn commit(&mut self, cluster: &mut Cluster) -> Result<()> {
        self.require(
            matches!(
                self.state,
                RepairState::Decided(RebalanceOutcome::Committed)
            ),
            "commit",
        )?;
        let cost = cluster.cost_model();
        for (&bucket, &owner) in &self.scope {
            let node = cluster
                .topology()
                .node_of(owner)
                .ok_or(ClusterError::UnknownPartition(owner))?;
            if !cluster.node_is_alive(node) {
                continue;
            }
            let ds = cluster.partition_mut(owner)?.dataset_mut(self.dataset)?;
            // A rebalance replan that routed around the loss installed an
            // *empty* replacement bucket on the survivor; the restored copy
            // replaces it.
            ds.primary
                .drop_bucket(bucket)
                .map_err(ClusterError::Storage)?;
            ds.install_pending(bucket)?;
            self.tl
                .charge(node, SimDuration::from_nanos(cost.network_latency_ns));
        }
        for n in &self.participants.clone() {
            if cluster.node_is_alive(*n) {
                self.coordinator
                    .record_committed(*n)
                    .map_err(ClusterError::Core)?;
            }
        }
        let repaired: Vec<BucketId> = self.scope.keys().copied().collect();
        if let Some(lost) = cluster.faults.stats.lost_buckets.get_mut(&self.dataset) {
            lost.retain(|b| !repaired.contains(b));
            if lost.is_empty() {
                cluster.faults.stats.lost_buckets.remove(&self.dataset);
            }
        }
        cluster.faults.stats.repaired_buckets += repaired.len() as u64;
        let meta = cluster.controller.dataset_mut(self.dataset)?;
        match meta.directory.as_mut() {
            Some(dir) => dir.install(&self.routing),
            None => meta.directory = Some(self.routing.clone()),
        }
        cluster.active_rebalances.remove(&self.dataset);
        cluster.push_routing_update(self.dataset);
        Ok(())
    }

    /// Finalization: forces DONE, re-enables bucket splits, drops any
    /// leftover write-blocking state, and produces the report.
    pub fn finalize(&mut self, cluster: &mut Cluster) -> Result<RepairReport> {
        let outcome = match self.state {
            RepairState::Decided(outcome) => outcome,
            _ => return Err(self.invalid_step("finalize")),
        };
        cluster
            .controller
            .metadata_log
            .append_forced(LogRecordBody::RebalanceDone {
                rebalance: self.rebalance_id,
            });
        self.coordinator.finish().map_err(ClusterError::Core)?;
        cluster.active_rebalances.remove(&self.dataset);
        cluster.set_splits_enabled(self.dataset, true)?;
        self.state = RepairState::Finalized(outcome);
        Ok(RepairReport {
            dataset: self.dataset,
            rebalance: Some(self.rebalance_id),
            outcome,
            buckets: match outcome {
                RebalanceOutcome::Committed => self.scope.keys().copied().collect(),
                RebalanceOutcome::Aborted => Vec::new(),
            },
            reused: self.reused.iter().copied().collect(),
            records_restored: self.records_restored,
            bytes_restored: self.bytes_restored,
            replans: self.replans,
            elapsed: self.tl.elapsed(),
        })
    }

    // ------------------------------------------------------------ accessors

    /// The rebalance-operation id the repair runs under.
    pub fn rebalance_id(&self) -> RebalanceId {
        self.rebalance_id
    }

    /// The dataset being repaired.
    pub fn dataset(&self) -> DatasetId {
        self.dataset
    }

    /// The current job state.
    pub fn state(&self) -> RepairState {
        self.state
    }

    /// The in-scope buckets and their post-repair owners.
    pub fn scope(&self) -> &BTreeMap<BucketId, PartitionId> {
        &self.scope
    }

    // ------------------------------------------------------------- internal

    fn abort_cleanup(&mut self, cluster: &mut Cluster) -> Result<()> {
        cluster
            .controller
            .metadata_log
            .append_forced(LogRecordBody::RebalanceAbort {
                rebalance: self.rebalance_id,
            });
        for (&bucket, &owner) in &self.scope {
            if let Ok(p) = cluster.partition_mut(owner) {
                if let Ok(ds) = p.dataset_mut(self.dataset) {
                    ds.drop_pending(bucket);
                }
            }
        }
        if let Some(active) = cluster.active_rebalances.get_mut(&self.dataset) {
            active.write_blocked = false;
        }
        Ok(())
    }

    fn require(&self, ok: bool, action: &'static str) -> Result<()> {
        if ok {
            Ok(())
        } else {
            Err(self.invalid_step(action))
        }
    }

    fn invalid_step(&self, action: &'static str) -> ClusterError {
        ClusterError::InvalidJobStep {
            action,
            state: self.state.name(),
        }
    }
}

/// The partition that will serve `bucket` after the repair: its current
/// owner when that node is alive, otherwise the least-loaded (fewest
/// directory slots, then lowest id) partition on an alive node, with the
/// routing reassigned accordingly.
fn assign_owner(
    cluster: &Cluster,
    routing: &mut GlobalDirectory,
    bucket: BucketId,
) -> Result<PartitionId> {
    if let Some(owner) = routing.partition_of_bucket(&bucket) {
        let alive = cluster
            .topology()
            .node_of(owner)
            .is_some_and(|n| cluster.node_is_alive(n));
        if alive {
            return Ok(owner);
        }
    }
    let mut best: Option<(u64, PartitionId)> = None;
    for p in cluster.topology().partitions() {
        let Some(n) = cluster.topology().node_of(p) else {
            continue;
        };
        if !cluster.node_is_alive(n) {
            continue;
        }
        let load = routing.partition_load(p);
        if best.map(|b| (load, p) < b).unwrap_or(true) {
            best = Some((load, p));
        }
    }
    let (_, to) = best.ok_or_else(|| {
        ClusterError::RebalanceAborted("no surviving partition to repair onto".to_string())
    })?;
    routing.reassign(bucket, to);
    Ok(to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::dataset::DatasetSpec;
    use dynahash_core::Scheme;
    use dynahash_lsm::Bytes;

    fn key(i: u64) -> Key {
        Key::from(i)
    }

    fn value(i: u64) -> Value {
        Bytes::from(format!("v{i:06}").into_bytes())
    }

    fn seeded_cluster() -> (Cluster, DatasetId, Vec<(Key, Value)>) {
        let mut cluster = Cluster::new(4);
        let ds = cluster
            .create_dataset(DatasetSpec::new(
                "repairable",
                Scheme::dynahash(1 << 30, 16),
            ))
            .unwrap();
        let records: Vec<(Key, Value)> = (0..400).map(|i| (key(i), value(i))).collect();
        cluster.admin().ingest(ds, records.clone()).unwrap();
        (cluster, ds, records)
    }

    #[test]
    fn direct_loss_degrades_then_repair_restores() {
        let (mut cluster, ds, records) = seeded_cluster();
        let victim = cluster.topology().nodes()[1];
        cluster.lose_node(victim).unwrap();
        let degraded = cluster.fault_stats().degraded_buckets(ds);
        assert!(!degraded.is_empty(), "losing a data node degrades buckets");

        // Reads and writes on a lost bucket get the typed error.
        let mut session = cluster.session(ds).unwrap();
        let lost_key = records
            .iter()
            .map(|(k, _)| k.clone())
            .find(|k| cluster.lost_bucket_of(ds, k).is_some())
            .expect("some key routes to a lost bucket");
        assert!(matches!(
            session.get(&cluster, &lost_key),
            Err(ClusterError::BucketDegraded { .. })
        ));
        assert!(matches!(
            session.put(&mut cluster, lost_key.clone(), value(9999)),
            Err(ClusterError::BucketDegraded { .. })
        ));

        let report = cluster.admin().repair_dataset(ds, &records).unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        assert_eq!(report.buckets, degraded);
        assert!(report.records_restored > 0);
        assert!(cluster.fault_stats().degraded_datasets().is_empty());
        assert_eq!(
            cluster.fault_stats().repaired_buckets,
            degraded.len() as u64
        );

        // Every record — lost-bucket ones included — reads back, and once
        // the dead node is removed the cluster is globally consistent.
        let mut session = cluster.session(ds).unwrap();
        for (k, v) in &records {
            assert_eq!(session.get(&cluster, k).unwrap().as_ref(), Some(v));
        }
        cluster.remove_lost_node(victim).unwrap();
        cluster.check_dataset_consistency(ds).unwrap();
    }

    #[test]
    fn double_repair_is_a_noop() {
        let (mut cluster, ds, records) = seeded_cluster();
        let victim = cluster.topology().nodes()[2];
        cluster.lose_node(victim).unwrap();
        let first = cluster.admin().repair_dataset(ds, &records).unwrap();
        assert!(!first.is_noop());
        let wal_len = cluster.controller.metadata_log.len();
        let second = cluster.admin().repair_dataset(ds, &records).unwrap();
        assert!(second.is_noop());
        assert_eq!(second.records_restored, 0);
        // The no-op forces no log records and bumps no counters.
        assert_eq!(cluster.controller.metadata_log.len(), wal_len);
        assert_eq!(
            cluster.fault_stats().repaired_buckets,
            first.buckets.len() as u64
        );
    }

    #[test]
    fn repair_reassigns_buckets_owned_by_the_dead_node() {
        let (mut cluster, ds, records) = seeded_cluster();
        let victim = cluster.topology().nodes()[0];
        let victim_partitions = cluster.topology().partitions_of_node(victim);
        cluster.lose_node(victim).unwrap();
        let report = cluster.admin().repair_dataset(ds, &records).unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        // No repaired bucket may still route to the dead node's partitions.
        let meta = cluster.controller.dataset(ds).unwrap();
        let dir = meta.directory.as_ref().unwrap();
        for b in &report.buckets {
            let owner = dir.partition_of_bucket(b).unwrap();
            assert!(!victim_partitions.contains(&owner));
        }
        let mut session = cluster.session(ds).unwrap();
        for (k, v) in &records {
            assert_eq!(session.get(&cluster, k).unwrap().as_ref(), Some(v));
        }
    }

    #[test]
    fn repair_noop_when_nothing_lost() {
        let (mut cluster, ds, records) = seeded_cluster();
        let report = cluster.admin().repair_dataset(ds, &records).unwrap();
        assert!(report.is_noop());
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
    }
}
