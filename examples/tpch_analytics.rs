//! TPC-H analytics scenario: load the scaled-down TPC-H database, run a few
//! representative queries, shrink the cluster by one node, and show how the
//! query times change (the paper's Figure 8/9 scenario in miniature).
//!
//! Run with `cargo run --example tpch_analytics --release`.

use dynahash::cluster::{Cluster, RebalanceOptions};
use dynahash::core::{NodeId, Scheme};
use dynahash::tpch::{load_tpch, query_traits, run_query, TpchScale};

fn main() {
    let mut cluster = Cluster::new(4);
    let scheme = Scheme::dynahash(128 * 1024, 16);
    let (tables, data, ingest) =
        load_tpch(&mut cluster, scheme, TpchScale::per_node(200, 4)).expect("load TPC-H");
    println!(
        "loaded {} TPC-H rows ({} lineitems) in {:.2} simulated minutes\n",
        data.total_rows(),
        data.lineitem.len(),
        ingest.elapsed.as_minutes_f64()
    );

    // A representative mix: q1 (scan-heavy), q6 (index-only), q18 (needs
    // primary-key order), q21 (most scan-heavy).
    let queries = [1usize, 6, 18, 21];

    println!("query times on the original 4-node cluster:");
    let mut before = Vec::new();
    for &q in &queries {
        let mut exec = cluster.query();
        let answer = run_query(q, &mut exec, &tables).expect("query");
        let report = exec.finish();
        println!(
            "  q{:<2} {:>8.3} sim s   (answer {:>14.2}, scan-heavy: {})",
            q,
            report.elapsed.as_secs_f64(),
            answer,
            query_traits(q).scan_heavy
        );
        before.push((q, report.elapsed.as_secs_f64(), answer));
    }

    // Shrink the cluster: rebalance every table down to 3 nodes.
    let victim = NodeId(3);
    let target = cluster.topology_without(victim);
    let datasets = [
        tables.lineitem,
        tables.orders,
        tables.customer,
        tables.part,
        tables.supplier,
        tables.partsupp,
        tables.nation,
        tables.region,
    ];
    let mut rebalance_minutes = 0.0;
    for ds in datasets {
        let report = cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .expect("rebalance");
        rebalance_minutes += report.elapsed.as_minutes_f64();
    }
    cluster.decommission_node(victim).expect("decommission");
    println!(
        "\nrebalanced all 8 tables from 4 to 3 nodes in {rebalance_minutes:.2} simulated minutes\n"
    );

    println!("query times on the downsized 3-node cluster:");
    for (q, before_secs, before_answer) in before {
        let mut exec = cluster.query();
        let answer = run_query(q, &mut exec, &tables).expect("query");
        let report = exec.finish();
        let after = report.elapsed.as_secs_f64();
        assert!((answer - before_answer).abs() < 1e-6 * before_answer.abs().max(1.0));
        println!(
            "  q{:<2} {:>8.3} sim s   ({:+.1}% vs 4 nodes, same answer)",
            q,
            after,
            (after / before_secs - 1.0) * 100.0
        );
    }
    println!("\nscan-heavy queries slow down roughly in proportion to the lost node;");
    println!("answers are identical before and after the rebalance.");
}
