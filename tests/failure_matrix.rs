//! Exhaustive failure-point matrix (Section V-D).
//!
//! Every `FailurePoint` variant is crossed with every bucketed scheme and
//! with both rebalance directions (scale-out and scale-in). For each cell
//! the rebalance must either commit fully or abort cleanly: afterwards the
//! record count is unchanged, every record routes to the partition that
//! stores it, the CC's global directory agrees with the partitions' local
//! directories, no pending rebalance state is left anywhere, and the
//! metadata WAL shows the terminal `Done` status
//! ([`Cluster::check_rebalance_integrity`]).

use dynahash::cluster::{Cluster, ClusterConfig, CostModel, DatasetSpec, RebalanceOptions};
use dynahash::core::{FailurePoint, NodeId, RebalanceOutcome, Scheme};
use dynahash::lsm::entry::Key;
use dynahash::lsm::Bytes;

const RECORDS: u64 = 1500;

fn schemes() -> Vec<(&'static str, Scheme)> {
    vec![
        ("StaticHash", Scheme::StaticHash { num_buckets: 32 }),
        ("DynaHash", Scheme::dynahash(16 * 1024, 8)),
    ]
}

/// Every failure case with its expected outcome. `new_node` is the node
/// added by a scale-out (or removed by a scale-in); `old_node` survives in
/// both directions.
fn failure_cases(
    new_node: NodeId,
    old_node: NodeId,
) -> Vec<(&'static str, FailurePoint, RebalanceOutcome)> {
    use FailurePoint::*;
    use RebalanceOutcome::*;
    vec![
        // Case 1: a missing prepare vote aborts the rebalance.
        (
            "nc_before_prepared/new",
            NcBeforePrepared(new_node),
            Aborted,
        ),
        (
            "nc_before_prepared/old",
            NcBeforePrepared(old_node),
            Aborted,
        ),
        // Case 2: the vote is already in; the commit goes through and the
        // recovered NC re-runs its commit tasks.
        (
            "nc_after_prepared/new",
            NcAfterPrepared(new_node),
            Committed,
        ),
        (
            "nc_after_prepared/old",
            NcAfterPrepared(old_node),
            Committed,
        ),
        // Case 3: BEGIN without COMMIT found on CC recovery -> abort.
        ("cc_before_commit_log", CcBeforeCommitLog, Aborted),
        // Case 4: COMMIT is durable; the recovered NC finishes its tasks.
        (
            "nc_before_committed/new",
            NcBeforeCommitted(new_node),
            Committed,
        ),
        (
            "nc_before_committed/old",
            NcBeforeCommitted(old_node),
            Committed,
        ),
        // Case 5: COMMIT without DONE -> the commit tasks are re-driven.
        (
            "cc_after_commit_before_done",
            CcAfterCommitBeforeDone,
            Committed,
        ),
        // Case 6: DONE is durable; recovery has nothing to do.
        ("cc_after_done", CcAfterDone, Committed),
    ]
}

fn loaded_cluster(nodes: u32, scheme: Scheme) -> (Cluster, u32) {
    let mut cluster = Cluster::with_config(
        nodes,
        ClusterConfig {
            partitions_per_node: 2,
            cost_model: CostModel::default(),
        },
    );
    let ds = cluster
        .create_dataset(DatasetSpec::new("events", scheme))
        .unwrap();
    let records: Vec<(Key, Bytes)> = (0..RECORDS)
        .map(|i| (Key::from_u64(i), Bytes::from(vec![(i % 249) as u8; 48])))
        .collect();
    let mut session = cluster.session(ds).unwrap();
    session.ingest(&mut cluster, records).unwrap();
    (cluster, ds)
}

/// Runs one matrix cell and asserts the full integrity contract.
fn run_cell(
    cluster: &mut Cluster,
    ds: u32,
    target: &dynahash::core::ClusterTopology,
    label: &str,
    scheme_name: &str,
    failure: FailurePoint,
    expected: RebalanceOutcome,
) {
    let report = cluster
        .rebalance(ds, target, RebalanceOptions::none().with_failure(failure))
        .unwrap_or_else(|e| panic!("[{scheme_name}/{label}] rebalance errored: {e}"));
    assert_eq!(
        report.outcome, expected,
        "[{scheme_name}/{label}] unexpected outcome"
    );
    assert_eq!(
        cluster.dataset_len(ds).unwrap(),
        RECORDS as usize,
        "[{scheme_name}/{label}] records lost or duplicated"
    );
    cluster
        .check_rebalance_integrity(ds, report.rebalance_id)
        .unwrap_or_else(|e| panic!("[{scheme_name}/{label}] integrity violated: {e}"));
    // every crashed node is back up by the time the rebalance returns
    for n in cluster.topology().nodes() {
        assert!(
            cluster.node_is_alive(n),
            "[{scheme_name}/{label}] node {n} left down"
        );
    }
}

#[test]
fn failure_matrix_scale_out() {
    for (scheme_name, scheme) in schemes() {
        for (label, failure, expected) in failure_cases(NodeId(2), NodeId(0)) {
            let (mut cluster, ds) = loaded_cluster(2, scheme);
            cluster.add_node().unwrap();
            let target = cluster.topology().clone();
            run_cell(
                &mut cluster,
                ds,
                &target,
                label,
                scheme_name,
                failure,
                expected,
            );
            // direction-specific posture: an abort leaves the new node
            // empty, a commit lands data on it (white-box placement check)
            let parts = cluster.topology().partitions_of_node(NodeId(2));
            let admin = cluster.admin();
            let on_new: usize = parts
                .iter()
                .map(|p| admin.partition(*p).unwrap().dataset(ds).unwrap().live_len())
                .sum();
            match expected {
                RebalanceOutcome::Aborted => assert_eq!(
                    on_new, 0,
                    "[{scheme_name}/{label}] aborted rebalance leaked data onto the new node"
                ),
                RebalanceOutcome::Committed => assert!(
                    on_new > 0,
                    "[{scheme_name}/{label}] committed rebalance left the new node empty"
                ),
            }
        }
    }
}

#[test]
fn failure_matrix_scale_in() {
    for (scheme_name, scheme) in schemes() {
        for (label, failure, expected) in failure_cases(NodeId(2), NodeId(0)) {
            let (mut cluster, ds) = loaded_cluster(3, scheme);
            let victim = NodeId(2);
            let target = cluster.topology_without(victim);
            run_cell(
                &mut cluster,
                ds,
                &target,
                label,
                scheme_name,
                failure,
                expected,
            );
            // a committed scale-in empties the victim so it can be removed
            if expected == RebalanceOutcome::Committed {
                cluster
                    .decommission_node(victim)
                    .unwrap_or_else(|e| panic!("[{scheme_name}/{label}] decommission failed: {e}"));
                assert_eq!(cluster.topology().num_nodes(), 2);
                cluster.check_dataset_consistency(ds).unwrap();
            }
        }
    }
}
