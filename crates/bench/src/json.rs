//! Minimal JSON rendering for the machine-readable experiment output.
//!
//! The workspace is offline and zero-dependency by design (see README.md),
//! so this hand-rolls the tiny subset the experiments bin needs — objects,
//! arrays, strings, numbers, booleans — instead of pulling in `serde_json`.
//! Output is deterministic: object fields render in insertion order.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (kept exact; not routed through f64).
    Int(u64),
    /// A floating-point number. Non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with fields in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from `(name, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Appends a field to an object value. Panics on non-objects (programmer
    /// error in the experiments bin).
    pub fn push_field(&mut self, name: &str, value: Json) {
        match self {
            Json::Obj(fields) => fields.push((name.to_string(), value)),
            _ => panic!("push_field on a non-object JSON value"),
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(f) => {
                if f.is_finite() {
                    out.push_str(&format!("{f}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values_compactly() {
        let v = Json::obj([
            ("name", Json::str("move_policy")),
            ("rows", Json::Arr(vec![Json::Int(3), Json::Num(1.5)])),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"move_policy","rows":[3,1.5],"ok":true,"none":null}"#
        );
    }

    #[test]
    fn escapes_strings_and_preserves_large_ints() {
        let v = Json::Arr(vec![
            Json::str("a\"b\\c\nd"),
            Json::Int(u64::MAX),
            Json::Num(f64::NAN),
        ]);
        assert_eq!(v.render(), format!(r#"["a\"b\\c\nd",{},null]"#, u64::MAX));
    }

    #[test]
    fn push_field_appends_in_order() {
        let mut v = Json::obj([("a", Json::Int(1))]);
        v.push_field("b", Json::Int(2));
        assert_eq!(v.render(), r#"{"a":1,"b":2}"#);
    }
}
