//! Figure 9: TPC-H query performance on the downsized cluster (4 -> 3 nodes).

use criterion::{criterion_group, criterion_main, Criterion};
use dynahash_bench::{fig9_queries, ExperimentConfig};

fn bench_query_downsized(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let mut group = c.benchmark_group("fig9_query_downsized_cluster");
    group.sample_size(10);
    group.bench_function("all_queries_4_to_3_nodes", |b| {
        b.iter(|| fig9_queries(&cfg, 4));
    });
    group.finish();
}

criterion_group!(benches, bench_query_downsized);
criterion_main!(benches);
