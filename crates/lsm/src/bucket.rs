//! Extendible-hashing buckets.
//!
//! A bucket is identified by the `depth` low-order bits of a key's hash
//! value (Section III of the paper). A bucket of depth `d` covers the hash
//! values `h` such that `h mod 2^d == bits`. Splitting a bucket takes one
//! more hash bit, producing the two children `bits` and `bits + 2^d` with
//! depth `d + 1`.

use std::fmt;

use crate::entry::Key;

/// Maximum supported bucket depth (bits of the hash value used).
pub const MAX_DEPTH: u8 = 32;

/// 64-bit hash of a key used for hash partitioning and bucket assignment.
///
/// This is a seeded FNV-1a style hash followed by a 64-bit finalizer
/// (splitmix64). It is deterministic across runs and platforms, which the
/// experiments rely on.
pub fn hash_key(key: &Key) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_slice() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer to scramble the low-order bits, which extendible
    // hashing consumes first.
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A bucket of the extendible-hash key space: the `depth` low-order bits of
/// the hash equal `bits`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BucketId {
    /// The low-order bits identifying the bucket (`bits < 2^depth`).
    pub bits: u32,
    /// Number of hash bits used (the bucket's depth).
    pub depth: u8,
}

impl BucketId {
    /// Creates a bucket id, masking `bits` to the given depth.
    pub fn new(bits: u32, depth: u8) -> Self {
        assert!(depth <= MAX_DEPTH, "bucket depth {depth} exceeds maximum");
        let mask = if depth == 32 {
            u32::MAX
        } else {
            (1u32 << depth) - 1
        };
        BucketId {
            bits: bits & mask,
            depth,
        }
    }

    /// The root bucket covering the whole hash space (depth 0).
    pub fn root() -> Self {
        BucketId { bits: 0, depth: 0 }
    }

    /// Returns the bucket of depth `depth` that a hash value falls into.
    pub fn of_hash(hash: u64, depth: u8) -> Self {
        let mask = if depth >= 32 {
            u32::MAX as u64
        } else {
            (1u64 << depth) - 1
        };
        BucketId::new((hash & mask) as u32, depth)
    }

    /// Returns the bucket of depth `depth` that `key` falls into.
    pub fn of_key(key: &Key, depth: u8) -> Self {
        Self::of_hash(hash_key(key), depth)
    }

    /// True if the given hash value belongs to this bucket.
    pub fn contains_hash(&self, hash: u64) -> bool {
        let mask = if self.depth >= 32 {
            u32::MAX as u64
        } else {
            (1u64 << self.depth) - 1
        };
        (hash & mask) == self.bits as u64
    }

    /// True if the given key belongs to this bucket.
    pub fn contains_key(&self, key: &Key) -> bool {
        self.contains_hash(hash_key(key))
    }

    /// The two children obtained by taking one more hash bit.
    ///
    /// Splitting bucket `b` of depth `d` produces `(b, d+1)` and
    /// `(b + 2^d, d+1)`.
    pub fn split(&self) -> (BucketId, BucketId) {
        assert!(self.depth < MAX_DEPTH, "cannot split beyond max depth");
        let low = BucketId::new(self.bits, self.depth + 1);
        let high = BucketId::new(self.bits | (1u32 << self.depth), self.depth + 1);
        (low, high)
    }

    /// The parent bucket one level up (or `None` for the root).
    pub fn parent(&self) -> Option<BucketId> {
        if self.depth == 0 {
            None
        } else {
            Some(BucketId::new(self.bits, self.depth - 1))
        }
    }

    /// True if `self` covers `other`, i.e. `other` is `self` or one of its
    /// descendants in the split tree.
    pub fn covers(&self, other: &BucketId) -> bool {
        if other.depth < self.depth {
            return false;
        }
        let mask = if self.depth >= 32 {
            u32::MAX
        } else {
            (1u32 << self.depth) - 1
        };
        (other.bits & mask) == self.bits
    }

    /// The normalized size of the bucket relative to a directory of global
    /// depth `global_depth`: `2^(D - d)` (Section V-A of the paper).
    ///
    /// A bucket of smaller depth covers more of the hash space and therefore
    /// has a larger normalized size.
    pub fn normalized_size(&self, global_depth: u8) -> u64 {
        assert!(
            global_depth >= self.depth,
            "global depth {global_depth} smaller than bucket depth {}",
            self.depth
        );
        1u64 << (global_depth - self.depth)
    }

    /// All directory slots of a directory with `global_depth` bits that map
    /// to this bucket, i.e. all `h < 2^D` with `h mod 2^d == bits`.
    pub fn directory_slots(&self, global_depth: u8) -> Vec<u32> {
        assert!(global_depth >= self.depth);
        let n = 1u64 << (global_depth - self.depth);
        (0..n)
            .map(|i| self.bits | ((i as u32) << self.depth))
            .collect()
    }
}

impl fmt::Display for BucketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.depth == 0 {
            write!(f, "b[*]")
        } else {
            write!(f, "b[{:0width$b}]", self.bits, width = self.depth as usize)
        }
    }
}

impl fmt::Debug for BucketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn split_children_partition_the_parent() {
        let b = BucketId::new(0b11, 2);
        let (lo, hi) = b.split();
        assert_eq!(lo, BucketId::new(0b011, 3));
        assert_eq!(hi, BucketId::new(0b111, 3));
        assert!(b.covers(&lo));
        assert!(b.covers(&hi));
        assert!(!lo.covers(&hi));
        assert_eq!(lo.parent(), Some(b));
        assert_eq!(hi.parent(), Some(b));
    }

    #[test]
    fn root_covers_everything() {
        let root = BucketId::root();
        assert!(root.contains_hash(0));
        assert!(root.contains_hash(u64::MAX));
        assert!(root.covers(&BucketId::new(5, 4)));
        assert_eq!(root.parent(), None);
    }

    #[test]
    fn normalized_size_follows_depth() {
        let b = BucketId::new(1, 2);
        assert_eq!(b.normalized_size(2), 1);
        assert_eq!(b.normalized_size(3), 2);
        assert_eq!(b.normalized_size(5), 8);
    }

    #[test]
    fn directory_slots_enumerate_matching_hashes() {
        let b = BucketId::new(0b11, 2);
        let slots = b.directory_slots(3);
        assert_eq!(slots, vec![0b011, 0b111]);
        let all = b.directory_slots(4);
        assert_eq!(all, vec![0b0011, 0b0111, 0b1011, 0b1111]);
    }

    #[test]
    fn hash_is_deterministic() {
        let k = Key::from_u64(123456);
        assert_eq!(hash_key(&k), hash_key(&k));
        assert_ne!(hash_key(&Key::from_u64(1)), hash_key(&Key::from_u64(2)));
    }

    #[test]
    fn of_key_respects_depth_masking() {
        let k = Key::from_u64(99);
        let d3 = BucketId::of_key(&k, 3);
        let d5 = BucketId::of_key(&k, 5);
        assert!(d3.covers(&d5));
        assert!(d3.contains_key(&k));
        assert!(d5.contains_key(&k));
    }

    #[test]
    fn prop_children_cover_exactly_parent_hashes() {
        for case in 0..32u64 {
            let seed = 0xbcc0_0000 + case;
            let mut rng = SplitMix64::seed_from_u64(seed);
            let hash = rng.next_u64();
            let bits = rng.gen_range(0..16) as u32;
            let depth = rng.gen_range(1..16) as u8;
            let b = BucketId::new(bits, depth);
            let (lo, hi) = b.split();
            let in_parent = b.contains_hash(hash);
            let in_children = lo.contains_hash(hash) || hi.contains_hash(hash);
            assert_eq!(in_parent, in_children, "seed {seed}: {b} vs {lo}/{hi}");
            // children are disjoint
            assert!(
                !(lo.contains_hash(hash) && hi.contains_hash(hash)),
                "seed {seed}: children overlap on hash {hash:#x}"
            );
        }
    }

    #[test]
    fn prop_every_hash_has_one_bucket_per_depth() {
        for case in 0..32u64 {
            let seed = 0xbcc1_0000 + case;
            let mut rng = SplitMix64::seed_from_u64(seed);
            let hash = rng.next_u64();
            let depth = rng.gen_range(0..20) as u8;
            let b = BucketId::of_hash(hash, depth);
            assert!(b.contains_hash(hash), "seed {seed}");
            assert_eq!(b.depth, depth, "seed {seed}");
        }
    }

    #[test]
    fn prop_normalized_sizes_sum_to_directory_size() {
        // A full split tree at uniform depth d has 2^d buckets of
        // normalized size 2^(D-d); their sum must be 2^D.
        for depth in 0u8..6 {
            let global = 8u8;
            let total: u64 = (0..(1u32 << depth))
                .map(|bits| BucketId::new(bits, depth).normalized_size(global))
                .sum();
            assert_eq!(total, 1u64 << global, "depth {depth}");
        }
    }
}
