//! Deterministic, scaled-down TPC-H data generation.
//!
//! The generator preserves the cardinality ratios of the TPC-H specification
//! (per scale unit: 150k customers, 1.5M orders, ~6M lineitems, 200k parts,
//! 10k suppliers, 800k partsupps) at a configurable, much smaller scale, and
//! keeps the foreign-key relationships and value distributions the queries
//! rely on. All randomness is driven by a seeded PRNG so that every run — and
//! every rebalancing scheme under comparison — sees identical data.

use dynahash_lsm::rng::SplitMix64;

use crate::schema::*;

/// The size of the generated database.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpchScale {
    /// Number of orders to generate. Other tables follow the TPC-H ratios:
    /// customers = orders/10, lineitems ≈ 4×orders, parts = orders/7.5,
    /// suppliers = orders/150, partsupp = 4×parts.
    pub orders: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl TpchScale {
    /// A tiny scale suitable for unit tests (a few hundred lineitems).
    pub fn tiny() -> Self {
        TpchScale {
            orders: 100,
            seed: 42,
        }
    }

    /// A small scale suitable for integration tests and examples.
    pub fn small() -> Self {
        TpchScale {
            orders: 1_000,
            seed: 42,
        }
    }

    /// The scale used by the benchmark harness: `orders_per_node × nodes`
    /// orders, mirroring the paper's "scale factor proportional to the
    /// cluster size" setup.
    pub fn per_node(orders_per_node: usize, nodes: usize) -> Self {
        TpchScale {
            orders: orders_per_node * nodes.max(1),
            seed: 42,
        }
    }

    /// Expected number of customers.
    pub fn customers(&self) -> usize {
        (self.orders / 10).max(10)
    }

    /// Expected number of parts.
    pub fn parts(&self) -> usize {
        (self.orders / 8).max(20)
    }

    /// Expected number of suppliers.
    pub fn suppliers(&self) -> usize {
        (self.orders / 100).max(5)
    }
}

/// A fully generated TPC-H database.
#[derive(Debug, Clone, Default)]
pub struct TpchData {
    /// REGION rows.
    pub region: Vec<Region>,
    /// NATION rows.
    pub nation: Vec<Nation>,
    /// SUPPLIER rows.
    pub supplier: Vec<Supplier>,
    /// CUSTOMER rows.
    pub customer: Vec<Customer>,
    /// PART rows.
    pub part: Vec<Part>,
    /// PARTSUPP rows.
    pub partsupp: Vec<PartSupp>,
    /// ORDERS rows.
    pub orders: Vec<Orders>,
    /// LINEITEM rows.
    pub lineitem: Vec<LineItem>,
}

impl TpchData {
    /// Generates the database at the given scale.
    pub fn generate(scale: TpchScale) -> TpchData {
        let mut rng = SplitMix64::seed_from_u64(scale.seed);
        let n_customers = scale.customers();
        let n_parts = scale.parts();
        let n_suppliers = scale.suppliers();
        let n_orders = scale.orders;

        let region: Vec<Region> = (0..5).map(|r| Region { r_regionkey: r }).collect();
        let nation: Vec<Nation> = (0..25)
            .map(|n| Nation {
                n_nationkey: n,
                n_regionkey: n % 5,
            })
            .collect();

        let supplier: Vec<Supplier> = (1..=n_suppliers as u64)
            .map(|k| Supplier {
                s_suppkey: k,
                s_nationkey: rng.gen_range(0..25),
                s_acctbal: rng.gen_range(0..2_000_000),
                s_complaint: u64::from(rng.gen_ratio(1, 20)),
            })
            .collect();

        let customer: Vec<Customer> = (1..=n_customers as u64)
            .map(|k| Customer {
                c_custkey: k,
                c_nationkey: rng.gen_range(0..25),
                c_mktsegment: rng.gen_range(0..5),
                c_acctbal: rng.gen_range(0..2_000_000),
                c_phone_cc: 10 + rng.gen_range(0..25),
            })
            .collect();

        let part: Vec<Part> = (1..=n_parts as u64)
            .map(|k| Part {
                p_partkey: k,
                p_brand: rng.gen_range(0..25),
                p_type: rng.gen_range(0..150),
                p_size: rng.gen_range(1..=50),
                p_container: rng.gen_range(0..40),
                p_retailprice: 90_000 + rng.gen_range(0..20_000),
                p_mfgr: rng.gen_range(0..5),
            })
            .collect();

        // Each part is supplied by 4 suppliers (TPC-H convention).
        let mut partsupp = Vec::with_capacity(n_parts * 4);
        for p in &part {
            for i in 0..4u64 {
                let supp =
                    1 + (p.p_partkey + i * (n_suppliers as u64 / 4).max(1)) % n_suppliers as u64;
                partsupp.push(PartSupp {
                    ps_partkey: p.p_partkey,
                    ps_suppkey: supp,
                    ps_availqty: rng.gen_range(1..10_000),
                    ps_supplycost: rng.gen_range(100..100_000),
                });
            }
        }

        let mut orders = Vec::with_capacity(n_orders);
        let mut lineitem = Vec::new();
        for k in 1..=n_orders as u64 {
            let orderdate = rng.gen_range(0..DATE_RANGE_DAYS - 180);
            let n_lines = rng.gen_range(1..=7u64);
            let mut total = 0u64;
            for line in 1..=n_lines {
                let quantity = rng.gen_range(1..=50u64);
                let partkey = rng.gen_range(1..=n_parts as u64);
                let price = quantity * (90_000 + rng.gen_range(0..20_000)) / 10;
                total += price;
                let shipdate = orderdate + rng.gen_range(1..=121);
                let commitdate = orderdate + rng.gen_range(30..=90);
                lineitem.push(LineItem {
                    l_orderkey: k,
                    l_linenumber: line,
                    l_partkey: partkey,
                    l_suppkey: 1 + (partkey % n_suppliers as u64),
                    l_quantity: quantity,
                    l_extendedprice: price,
                    l_discount: rng.gen_range(0..=10),
                    l_tax: rng.gen_range(0..=8),
                    l_returnflag: rng.gen_range(0..3),
                    l_linestatus: u64::from(shipdate > DATE_RANGE_DAYS / 2),
                    l_shipdate: shipdate,
                    l_commitdate: commitdate,
                    l_receiptdate: shipdate + rng.gen_range(1..=30),
                    l_shipmode: rng.gen_range(0..7),
                    l_shipinstruct: rng.gen_range(0..4),
                });
            }
            orders.push(Orders {
                o_orderkey: k,
                o_custkey: 1 + rng.gen_range(0..n_customers as u64),
                o_orderstatus: rng.gen_range(0..3),
                o_totalprice: total,
                o_orderdate: orderdate,
                o_orderpriority: rng.gen_range(0..5),
                o_shippriority: 0,
                o_clerk: rng.gen_range(0..1000),
            });
        }

        TpchData {
            region,
            nation,
            supplier,
            customer,
            part,
            partsupp,
            orders,
            lineitem,
        }
    }

    /// Total number of rows over all tables.
    pub fn total_rows(&self) -> usize {
        self.region.len()
            + self.nation.len()
            + self.supplier.len()
            + self.customer.len()
            + self.part.len()
            + self.partsupp.len()
            + self.orders.len()
            + self.lineitem.len()
    }
}

/// Generates additional LineItem rows (with fresh order keys above the
/// existing range) for concurrent-ingestion experiments (Figure 7c inserts
/// new records into LineItem while a rebalance is running).
pub fn extra_lineitems(start_orderkey: u64, count: usize, seed: u64) -> Vec<LineItem> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..count as u64)
        .map(|i| {
            let orderkey = start_orderkey + i / 4;
            let shipdate = rng.gen_range(0..DATE_RANGE_DAYS);
            LineItem {
                l_orderkey: orderkey,
                l_linenumber: 1 + (i % 4),
                l_partkey: 1 + rng.gen_range(0..1000),
                l_suppkey: 1 + rng.gen_range(0..100),
                l_quantity: rng.gen_range(1..=50),
                l_extendedprice: rng.gen_range(10_000..5_000_000),
                l_discount: rng.gen_range(0..=10),
                l_tax: rng.gen_range(0..=8),
                l_returnflag: rng.gen_range(0..3),
                l_linestatus: 0,
                l_shipdate: shipdate,
                l_commitdate: shipdate + 10,
                l_receiptdate: shipdate + 20,
                l_shipmode: rng.gen_range(0..7),
                l_shipinstruct: rng.gen_range(0..4),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn cardinality_ratios_follow_tpch() {
        let data = TpchData::generate(TpchScale::small());
        assert_eq!(data.orders.len(), 1000);
        assert_eq!(data.customer.len(), 100);
        assert_eq!(data.region.len(), 5);
        assert_eq!(data.nation.len(), 25);
        assert_eq!(data.partsupp.len(), data.part.len() * 4);
        // on average 4 lineitems per order
        assert!(data.lineitem.len() > 3 * data.orders.len());
        assert!(data.lineitem.len() < 5 * data.orders.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TpchData::generate(TpchScale::small());
        let b = TpchData::generate(TpchScale::small());
        assert_eq!(a.lineitem, b.lineitem);
        assert_eq!(a.orders, b.orders);
        let c = TpchData::generate(TpchScale {
            orders: 1000,
            seed: 43,
        });
        assert_ne!(a.lineitem, c.lineitem);
    }

    #[test]
    fn foreign_keys_are_valid() {
        let data = TpchData::generate(TpchScale::tiny());
        let custkeys: BTreeSet<u64> = data.customer.iter().map(|c| c.c_custkey).collect();
        let partkeys: BTreeSet<u64> = data.part.iter().map(|p| p.p_partkey).collect();
        let suppkeys: BTreeSet<u64> = data.supplier.iter().map(|s| s.s_suppkey).collect();
        let orderkeys: BTreeSet<u64> = data.orders.iter().map(|o| o.o_orderkey).collect();
        for o in &data.orders {
            assert!(custkeys.contains(&o.o_custkey));
        }
        for l in &data.lineitem {
            assert!(orderkeys.contains(&l.l_orderkey));
            assert!(partkeys.contains(&l.l_partkey));
            assert!(suppkeys.contains(&l.l_suppkey));
        }
        for ps in &data.partsupp {
            assert!(partkeys.contains(&ps.ps_partkey));
            assert!(suppkeys.contains(&ps.ps_suppkey));
        }
    }

    #[test]
    fn primary_keys_are_unique() {
        let data = TpchData::generate(TpchScale::tiny());
        let li_keys: BTreeSet<_> = data.lineitem.iter().map(|l| l.primary_key()).collect();
        assert_eq!(li_keys.len(), data.lineitem.len());
        let o_keys: BTreeSet<_> = data.orders.iter().map(|o| o.primary_key()).collect();
        assert_eq!(o_keys.len(), data.orders.len());
    }

    #[test]
    fn extra_lineitems_use_fresh_keys() {
        let extra = extra_lineitems(1_000_000, 100, 7);
        assert_eq!(extra.len(), 100);
        assert!(extra.iter().all(|l| l.l_orderkey >= 1_000_000));
        let keys: BTreeSet<_> = extra.iter().map(|l| l.primary_key()).collect();
        assert_eq!(keys.len(), 100);
    }
}
