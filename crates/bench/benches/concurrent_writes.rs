//! Figure 7c: DynaHash rebalance time under concurrent ingestion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynahash_bench::{fig7c_concurrent_writes, ExperimentConfig};

fn bench_concurrent_writes(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let mut group = c.benchmark_group("fig7c_concurrent_writes");
    group.sample_size(10);
    for rate in [0.0f64, 5.0] {
        group.bench_with_input(
            BenchmarkId::new("krecords_per_sec", rate as u64),
            &rate,
            |b, &r| {
                b.iter(|| fig7c_concurrent_writes(&cfg, &[r]));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent_writes);
criterion_main!(benches);
