//! The `dhlint` command-line entry point.
//!
//! ```text
//! dhlint --check <root> [--json <path>] [--quiet]
//! ```
//!
//! Exits 0 when the tree is finding-free (waived findings are allowed as
//! long as they match `LINT_BUDGET.toml`), 1 when any unwaived finding
//! remains, and 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use dynahash_lint::check_root;

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = None;
    let mut json = None;
    let mut quiet = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--check" => {
                let path = argv.next().ok_or("--check needs a path")?;
                root = Some(PathBuf::from(path));
            }
            "--json" => {
                let path = argv.next().ok_or("--json needs a path")?;
                json = Some(PathBuf::from(path));
            }
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                return Err("usage: dhlint --check <root> [--json <path>] [--quiet]".to_string())
            }
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        root: root.unwrap_or_else(|| PathBuf::from(".")),
        json,
        quiet,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let report = match check_root(&args.root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("dhlint: failed to scan {}: {err}", args.root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.json {
        if let Err(err) = std::fs::write(path, report.render_json()) {
            eprintln!("dhlint: failed to write {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if !args.quiet {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
