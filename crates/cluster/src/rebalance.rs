//! The online rebalance executor (Section V).
//!
//! [`Cluster::rebalance`] moves a dataset onto a target topology. For
//! bucketed schemes (StaticHash / DynaHash) it runs the paper's three-phase
//! protocol — initialization, data movement, finalization with two-phase
//! commit — moving only the buckets that Algorithm 2 reassigns, replicating
//! concurrent writes to their new partitions, and handling the six failure
//! cases of Section V-D through fault-injection hooks. For the Hashing
//! baseline it performs AsterixDB's original global rebalancing: a brand-new
//! hash-partitioned copy of the dataset is built on the target partitions and
//! swapped in, which moves nearly every record.

use std::collections::BTreeMap;

use dynahash_core::{
    ClusterTopology, FailurePoint, GlobalDirectory, NodeId, NodeVote, RebalanceCoordinator,
    RebalanceOutcome, RebalancePlan,
};
use dynahash_lsm::entry::{Entry, Key, Value};
use dynahash_lsm::wal::{LogRecordBody, RebalanceId, RebalanceLogStatus};

use crate::cluster::Cluster;
use crate::dataset::DatasetId;
use crate::sim::{NodeTimeline, SimDuration};
use crate::{ClusterError, Result};

/// Options controlling a rebalance operation.
#[derive(Debug, Clone, Default)]
pub struct RebalanceOptions {
    /// Records that arrive (through a data feed) while the rebalance is
    /// running. They are applied to their current partitions and, when they
    /// hit a moving bucket, replicated to the destination as log records.
    /// Only supported by bucketed schemes.
    pub concurrent_writes: Vec<(Key, Value)>,
    /// Inject a failure at one of the protocol points (Section V-D).
    pub failure: Option<FailurePoint>,
}

impl RebalanceOptions {
    /// No concurrent writes, no failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// With the given concurrent writes.
    pub fn with_concurrent_writes(writes: Vec<(Key, Value)>) -> Self {
        RebalanceOptions {
            concurrent_writes: writes,
            failure: None,
        }
    }

    /// With a failure injected at the given protocol point.
    pub fn with_failure(failure: FailurePoint) -> Self {
        RebalanceOptions {
            concurrent_writes: Vec::new(),
            failure: Some(failure),
        }
    }
}

/// Per-phase simulated times of a rebalance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimes {
    /// Initialization: directory refresh, planning, snapshot flushes.
    pub initialization: SimDuration,
    /// Data movement: scanning, shipping and loading buckets plus concurrent
    /// write replication.
    pub data_movement: SimDuration,
    /// Finalization: prepare + commit (or abort and cleanup).
    pub finalization: SimDuration,
}

/// The result of a rebalance operation.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceReport {
    /// The rebalance operation id.
    pub rebalance_id: RebalanceId,
    /// Committed or aborted.
    pub outcome: RebalanceOutcome,
    /// Total simulated elapsed time.
    pub elapsed: SimDuration,
    /// Per-phase breakdown.
    pub phases: PhaseTimes,
    /// Bytes of primary-index data scanned and shipped.
    pub bytes_moved: u64,
    /// Records moved.
    pub records_moved: u64,
    /// Buckets moved (0 for the Hashing scheme, which has no buckets).
    pub buckets_moved: usize,
    /// Fraction of the dataset's primary bytes that moved.
    pub moved_fraction: f64,
    /// Per-node busy time.
    pub per_node: Vec<(NodeId, SimDuration)>,
    /// Concurrent writes applied during the rebalance.
    pub concurrent_writes_applied: u64,
}

impl Cluster {
    /// Rebalances a dataset onto the target topology.
    pub fn rebalance(
        &mut self,
        dataset: DatasetId,
        target: &ClusterTopology,
        options: RebalanceOptions,
    ) -> Result<RebalanceReport> {
        if target.is_empty() {
            return Err(ClusterError::Core(dynahash_core::CoreError::EmptyTopology));
        }
        let scheme = self.scheme_of(dataset)?;
        if scheme.is_bucketed() {
            self.rebalance_bucketed(dataset, target, options)
        } else {
            self.rebalance_hashing(dataset, target, options)
        }
    }

    // =================================================== bucketed schemes ===

    fn rebalance_bucketed(
        &mut self,
        dataset: DatasetId,
        target: &ClusterTopology,
        options: RebalanceOptions,
    ) -> Result<RebalanceReport> {
        let cost = self.cost_model();
        let rebalance_id = self.controller.next_rebalance_id();
        let mut init_tl = NodeTimeline::new();
        let mut move_tl = NodeTimeline::new();
        let mut fin_tl = NodeTimeline::new();

        // ----------------------------------------------------- initialization
        // The CC forces a BEGIN log record before anything else (Section V-D).
        self.controller
            .metadata_log
            .append_forced(LogRecordBody::RebalanceBegin {
                rebalance: rebalance_id,
                dataset,
            });

        // Refresh the global directory from the local directories and disable
        // bucket splits for the duration of the rebalance.
        let locals = self.local_directories(dataset)?;
        self.set_splits_enabled(dataset, false)?;
        let refreshed =
            GlobalDirectory::refresh_from_locals(locals.clone()).map_err(ClusterError::Core)?;
        let sizes = self.dataset_bucket_sizes(dataset)?;
        let plan = RebalancePlan::compute(rebalance_id, &refreshed, &sizes, target)
            .map_err(ClusterError::Core)?;
        let total_bytes = self.dataset_primary_bytes(dataset)?;

        // Participants: every node that hosts a source or destination
        // partition of the plan (plus all target nodes, which must ack).
        let mut participants: Vec<NodeId> = target.nodes();
        for m in &plan.moves {
            if let Some(n) = self.topology().node_of(m.from) {
                if !participants.contains(&n) {
                    participants.push(n);
                }
            }
        }
        participants.sort_unstable();
        let mut coordinator = RebalanceCoordinator::new(rebalance_id, participants.clone());

        // CC contacts every participant to fetch directories / dispatch work.
        for n in &participants {
            init_tl.charge(*n, SimDuration::from_nanos(cost.network_latency_ns));
        }
        init_tl.charge_coordinator(SimDuration::from_nanos(cost.job_overhead_ns));

        // Snapshot flush of every moving bucket (its flush time is the
        // rebalance start time for the concurrency-control split).
        for m in &plan.moves {
            let node = self.node_of_partition(m.from)?;
            let before = self.partition(m.from)?.metrics().snapshot();
            self.partition_mut(m.from)?
                .dataset_mut(dataset)?
                .primary
                .snapshot_bucket(m.bucket)
                .map_err(ClusterError::Storage)?;
            let after = self.partition(m.from)?.metrics().snapshot();
            let delta = after.delta_since(&before);
            init_tl.charge(node, cost.disk_write(delta.bytes_flushed));
        }

        // -------------------------------------------------------- data movement
        coordinator
            .start_data_movement()
            .map_err(ClusterError::Core)?;
        let mut bytes_moved = 0u64;
        let mut records_moved = 0u64;

        for m in &plan.moves {
            let src_node = self.node_of_partition(m.from)?;
            let dst_node = target
                .node_of(m.to)
                .ok_or(ClusterError::UnknownPartition(m.to))?;
            let entries = self
                .partition_mut(m.from)?
                .dataset_mut(dataset)?
                .scan_bucket_for_move(m.bucket)?;
            let bucket_bytes: u64 = entries.iter().map(|e| e.size_bytes() as u64).sum();
            let bucket_records = entries.len() as u64;

            // Source reads the bucket; the network ships it; the destination
            // writes the loaded components and rebuilds secondary entries.
            // Empty buckets only need a directory update, which travels with
            // the commit message, so they incur no per-move transfer cost.
            if bucket_bytes > 0 {
                move_tl.charge(src_node, cost.disk_read(bucket_bytes));
                move_tl.charge(dst_node, cost.network(bucket_bytes));
                move_tl.charge(
                    dst_node,
                    cost.disk_write(bucket_bytes) + cost.index_rebuild_cpu(bucket_records),
                );
            }

            let dst = self.partition_mut(m.to)?.dataset_mut(dataset)?;
            dst.create_pending_bucket(m.bucket)?;
            dst.load_pending(m.bucket, entries)?;

            bytes_moved += bucket_bytes;
            records_moved += bucket_records;
        }

        // Concurrent writes: applied to their current partition and, when the
        // bucket is moving, replicated to the destination.
        let moving: BTreeMap<_, _> = plan.moves.iter().map(|m| (m.bucket, m.to)).collect();
        let mut applied = 0u64;
        for (key, value) in &options.concurrent_writes {
            let Some((bucket, src_partition)) = refreshed.lookup_key(key) else {
                return Err(ClusterError::RoutingFailed(dataset));
            };
            let src_node = self.node_of_partition(src_partition)?;
            // Normal write path at the current partition.
            {
                let node = self.node_mut(src_node)?;
                node.log.append(LogRecordBody::Insert {
                    dataset,
                    key: key.as_slice().to_vec(),
                    value: value.to_vec(),
                });
            }
            self.partition_mut(src_partition)?
                .dataset_mut(dataset)?
                .ingest(key.clone(), value.clone())?;
            move_tl.charge(src_node, cost.ingest_cpu(1));
            // Replication of writes to moving buckets.
            if let Some(&dst_partition) = moving.get(&bucket) {
                let dst_node = target
                    .node_of(dst_partition)
                    .ok_or(ClusterError::UnknownPartition(dst_partition))?;
                let record_bytes = (key.len() + value.len()) as u64;
                move_tl.charge(dst_node, cost.network(record_bytes));
                move_tl.charge(dst_node, cost.ingest_cpu(1));
                self.partition_mut(dst_partition)?
                    .dataset_mut(dataset)?
                    .apply_replicated(bucket, Entry::put(key.clone(), value.clone()))?;
            }
            applied += 1;
        }

        // Failure Case 1: an NC dies before it can vote "prepared".
        if let Some(FailurePoint::NcBeforePrepared(victim)) = options.failure {
            if let Ok(node) = self.node_mut(victim) {
                node.crash();
            }
        }

        // -------------------------------------------------------- finalization
        coordinator.start_prepare().map_err(ClusterError::Core)?;
        // Destinations flush the memory components holding replicated writes.
        for m in &plan.moves {
            let dst_node = target
                .node_of(m.to)
                .ok_or(ClusterError::UnknownPartition(m.to))?;
            if self.node(dst_node).map(|n| n.is_alive()).unwrap_or(false) {
                let pending_bytes = self
                    .partition(m.to)?
                    .dataset(dataset)?
                    .primary
                    .pending_storage_bytes() as u64;
                self.partition_mut(m.to)?
                    .dataset_mut(dataset)?
                    .flush_pending();
                fin_tl.charge(dst_node, cost.disk_write(pending_bytes / 8));
            }
        }
        // Collect votes: alive participants vote yes; dead ones cannot vote.
        for n in &participants {
            if self.node(*n).map(|nc| nc.is_alive()).unwrap_or(false) {
                coordinator
                    .record_vote(*n, NodeVote::Yes)
                    .map_err(ClusterError::Core)?;
            }
        }
        fin_tl.charge_coordinator(SimDuration::from_nanos(
            cost.network_latency_ns * participants.len() as u64,
        ));

        // Failure Case 2: an NC dies right after voting.
        if let Some(FailurePoint::NcAfterPrepared(victim)) = options.failure {
            if let Ok(node) = self.node_mut(victim) {
                node.crash();
            }
        }

        // Failure Case 3: the CC dies before forcing COMMIT. On recovery it
        // sees BEGIN without COMMIT and aborts.
        let mut force_abort = false;
        if matches!(options.failure, Some(FailurePoint::CcBeforeCommitLog)) {
            self.controller.crash();
            self.controller.recover();
            let status = self.controller.metadata_log.rebalance_status(rebalance_id);
            debug_assert_eq!(status, RebalanceLogStatus::InFlight);
            force_abort = status != RebalanceLogStatus::CommittedNotDone
                && status != RebalanceLogStatus::Done;
        }

        let decision = if force_abort {
            coordinator.abort().map_err(ClusterError::Core)?;
            RebalanceOutcome::Aborted
        } else {
            coordinator.decide().map_err(ClusterError::Core)?
        };

        let outcome = match decision {
            RebalanceOutcome::Aborted => {
                // Cleanup: every partition discards its received buckets;
                // discarding is idempotent, so recovered nodes repeat it safely.
                self.controller
                    .metadata_log
                    .append_forced(LogRecordBody::RebalanceAbort {
                        rebalance: rebalance_id,
                    });
                for m in &plan.moves {
                    if self.topology().node_of(m.to).is_some() {
                        self.partition_mut(m.to)?
                            .dataset_mut(dataset)?
                            .drop_pending(m.bucket);
                    }
                }
                // Recover any node we crashed, then have it clean up as well
                // (a no-op here because pending state was already dropped).
                self.recover_all_nodes();
                self.controller
                    .metadata_log
                    .append_forced(LogRecordBody::RebalanceDone {
                        rebalance: rebalance_id,
                    });
                coordinator.finish().map_err(ClusterError::Core)?;
                RebalanceOutcome::Aborted
            }
            RebalanceOutcome::Committed => {
                // The outcome is determined by forcing the COMMIT record.
                self.controller
                    .metadata_log
                    .append_forced(LogRecordBody::RebalanceCommit {
                        rebalance: rebalance_id,
                    });

                // Failure Case 4: an NC dies before acking its commit tasks.
                if let Some(FailurePoint::NcBeforeCommitted(victim)) = options.failure {
                    if let Ok(node) = self.node_mut(victim) {
                        node.crash();
                    }
                }

                // Commit tasks on every alive node: install received buckets,
                // clean up moved buckets.
                self.run_commit_tasks(dataset, &plan, target, &mut fin_tl)?;
                for n in &participants {
                    if self.node(*n).map(|nc| nc.is_alive()).unwrap_or(false) {
                        coordinator
                            .record_committed(*n)
                            .map_err(ClusterError::Core)?;
                    }
                }

                // Install the new routing state at the CC.
                {
                    let meta = self.controller.dataset_mut(dataset)?;
                    meta.directory = Some(plan.new_directory.clone());
                    meta.partitions = target.partitions();
                }

                // Failure Case 5: the CC dies after COMMIT but before DONE.
                // On recovery it re-drives the (idempotent) commit tasks.
                if matches!(options.failure, Some(FailurePoint::CcAfterCommitBeforeDone)) {
                    self.controller.crash();
                    self.controller.recover();
                    let status = self.controller.metadata_log.rebalance_status(rebalance_id);
                    debug_assert_eq!(status, RebalanceLogStatus::CommittedNotDone);
                    self.recover_all_nodes();
                    self.run_commit_tasks(dataset, &plan, target, &mut fin_tl)?;
                }

                // Recovered NCs (Cases 2 and 4) contact the CC and perform
                // their commit tasks; installation and cleanup are idempotent.
                self.recover_all_nodes();
                self.run_commit_tasks(dataset, &plan, target, &mut fin_tl)?;

                self.controller
                    .metadata_log
                    .append_forced(LogRecordBody::RebalanceDone {
                        rebalance: rebalance_id,
                    });
                coordinator.finish().map_err(ClusterError::Core)?;

                // Failure Case 6: the CC dies after DONE — nothing to do.
                if matches!(options.failure, Some(FailurePoint::CcAfterDone)) {
                    self.controller.crash();
                    self.controller.recover();
                    let status = self.controller.metadata_log.rebalance_status(rebalance_id);
                    debug_assert_eq!(status, RebalanceLogStatus::Done);
                }
                RebalanceOutcome::Committed
            }
        };

        // Splits resume after the rebalance completes, whatever the outcome.
        self.set_splits_enabled(dataset, true)?;

        let mut total_tl = NodeTimeline::new();
        total_tl.extend(&init_tl);
        total_tl.extend(&move_tl);
        total_tl.extend(&fin_tl);

        Ok(RebalanceReport {
            rebalance_id,
            outcome,
            elapsed: total_tl.elapsed(),
            phases: PhaseTimes {
                initialization: init_tl.elapsed(),
                data_movement: move_tl.elapsed(),
                finalization: fin_tl.elapsed(),
            },
            bytes_moved,
            records_moved,
            buckets_moved: plan.num_moves(),
            moved_fraction: if total_bytes == 0 {
                0.0
            } else {
                bytes_moved as f64 / total_bytes as f64
            },
            per_node: total_tl.breakdown(),
            concurrent_writes_applied: applied,
        })
    }

    fn run_commit_tasks(
        &mut self,
        dataset: DatasetId,
        plan: &RebalancePlan,
        target: &ClusterTopology,
        fin_tl: &mut NodeTimeline,
    ) -> Result<()> {
        let cost = self.cost_model();
        // One commit message per participating node covers all of its bucket
        // installs and cleanups.
        for n in plan
            .participating_partitions()
            .iter()
            .filter_map(|p| target.node_of(*p).or_else(|| self.topology().node_of(*p)))
        {
            fin_tl.charge(n, SimDuration::from_nanos(cost.network_latency_ns));
        }
        for m in &plan.moves {
            // Destination: install the received bucket.
            if let Some(dst_node) = target.node_of(m.to) {
                if self.node(dst_node).map(|n| n.is_alive()).unwrap_or(false) {
                    self.partition_mut(m.to)?
                        .dataset_mut(dataset)?
                        .install_pending(m.bucket)?;
                }
            }
            // Source: drop the moved bucket and mark secondary indexes for
            // lazy cleanup.
            if let Some(src_node) = self.topology().node_of(m.from) {
                if self.node(src_node).map(|n| n.is_alive()).unwrap_or(false) {
                    self.partition_mut(m.from)?
                        .dataset_mut(dataset)?
                        .cleanup_moved_bucket(m.bucket)?;
                }
            }
        }
        Ok(())
    }

    fn set_splits_enabled(&mut self, dataset: DatasetId, enabled: bool) -> Result<()> {
        for p in self.topology().partitions() {
            let part = self.partition_mut(p)?;
            if part.dataset_ids().contains(&dataset) {
                part.dataset_mut(dataset)?
                    .primary
                    .set_splits_enabled(enabled);
            }
        }
        Ok(())
    }

    fn recover_all_nodes(&mut self) {
        let nodes: Vec<NodeId> = self.topology().nodes();
        for n in nodes {
            if let Ok(nc) = self.node_mut(n) {
                if !nc.is_alive() {
                    nc.recover();
                }
            }
        }
    }

    // ================================================= Hashing (global) ====

    fn rebalance_hashing(
        &mut self,
        dataset: DatasetId,
        target: &ClusterTopology,
        options: RebalanceOptions,
    ) -> Result<RebalanceReport> {
        if !options.concurrent_writes.is_empty() {
            return Err(ClusterError::RebalanceAborted(
                "the Hashing scheme rebuilds the dataset and does not support concurrent writes"
                    .to_string(),
            ));
        }
        let cost = self.cost_model();
        let rebalance_id = self.controller.next_rebalance_id();
        let mut tl = NodeTimeline::new();
        self.controller
            .metadata_log
            .append_forced(LogRecordBody::RebalanceBegin {
                rebalance: rebalance_id,
                dataset,
            });
        tl.charge_coordinator(SimDuration::from_nanos(cost.job_overhead_ns));

        let spec = self.controller.dataset(dataset)?.spec.clone();
        let old_partitions = self.controller.dataset(dataset)?.partitions.clone();
        let new_partitions = target.partitions();
        let total_bytes = self.dataset_primary_bytes(dataset)?;

        // Scan every partition and route every record to its new partition.
        let mut routed: BTreeMap<_, Vec<(Key, Value)>> =
            new_partitions.iter().map(|p| (*p, Vec::new())).collect();
        let mut bytes_moved = 0u64;
        let mut records_moved = 0u64;
        // Cross-node traffic is shipped in batches (Hyracks frames); charge
        // the network per (source partition, destination node) batch.
        let mut inbound_bytes: BTreeMap<NodeId, u64> = BTreeMap::new();
        for p in &old_partitions {
            let src_node = self.node_of_partition(*p)?;
            let part = self.partition(*p)?;
            if !part.dataset_ids().contains(&dataset) {
                continue;
            }
            let entries = part
                .dataset(dataset)?
                .scan(dynahash_lsm::ScanOrder::Unordered);
            let scan_bytes: u64 = entries.iter().map(|e| e.size_bytes() as u64).sum();
            tl.charge(src_node, cost.disk_read(scan_bytes));
            for e in entries {
                let Some(value) = e.op.value().cloned() else {
                    continue;
                };
                let dst = dynahash_core::Scheme::modulo_partition(&e.key, &new_partitions);
                let dst_node = target
                    .node_of(dst)
                    .ok_or(ClusterError::UnknownPartition(dst))?;
                let record_bytes = e.size_bytes() as u64;
                bytes_moved += record_bytes;
                records_moved += 1;
                if dst_node != src_node {
                    *inbound_bytes.entry(dst_node).or_default() += record_bytes;
                }
                routed
                    .get_mut(&dst)
                    .expect("destination exists")
                    .push((e.key, value));
            }
        }
        for (node, bytes) in &inbound_bytes {
            tl.charge(*node, cost.network(*bytes));
        }

        // Injected failure: discard the half-built copy and abort; the
        // original dataset is left unchanged.
        if options.failure.is_some() {
            self.controller
                .metadata_log
                .append_forced(LogRecordBody::RebalanceAbort {
                    rebalance: rebalance_id,
                });
            self.controller
                .metadata_log
                .append_forced(LogRecordBody::RebalanceDone {
                    rebalance: rebalance_id,
                });
            return Ok(RebalanceReport {
                rebalance_id,
                outcome: RebalanceOutcome::Aborted,
                elapsed: tl.elapsed(),
                phases: PhaseTimes {
                    data_movement: tl.elapsed(),
                    ..Default::default()
                },
                bytes_moved: 0,
                records_moved: 0,
                buckets_moved: 0,
                moved_fraction: 0.0,
                per_node: tl.breakdown(),
                concurrent_writes_applied: 0,
            });
        }

        // Drop the old storage and build the new hash-partitioned dataset.
        for p in self.topology().partitions() {
            self.partition_mut(p)?.drop_dataset(dataset);
        }
        for p in &new_partitions {
            self.partition_mut(*p)?.create_dataset(
                dataset,
                &spec,
                vec![dynahash_lsm::BucketId::root()],
            );
        }
        for (p, records) in routed {
            let dst_node = target.node_of(p).ok_or(ClusterError::UnknownPartition(p))?;
            let load_bytes: u64 = records
                .iter()
                .map(|(k, v)| (k.len() + v.len()) as u64)
                .sum();
            let n_records = records.len() as u64;
            // The Hashing baseline re-inserts every record through the full
            // ingestion pipeline of the new dataset (parse, primary-key and
            // secondary index maintenance), which is what makes global
            // rebalancing so much more expensive than shipping sealed bucket
            // components.
            tl.charge(
                dst_node,
                cost.disk_write(load_bytes) + cost.ingest_cpu(n_records),
            );
            let ds = self.partition_mut(p)?.dataset_mut(dataset)?;
            for (k, v) in records {
                ds.ingest(k, v)?;
            }
        }

        // Swap the routing metadata and finish.
        {
            let meta = self.controller.dataset_mut(dataset)?;
            meta.partitions = new_partitions;
            meta.directory = None;
        }
        self.controller
            .metadata_log
            .append_forced(LogRecordBody::RebalanceCommit {
                rebalance: rebalance_id,
            });
        self.controller
            .metadata_log
            .append_forced(LogRecordBody::RebalanceDone {
                rebalance: rebalance_id,
            });

        Ok(RebalanceReport {
            rebalance_id,
            outcome: RebalanceOutcome::Committed,
            elapsed: tl.elapsed(),
            phases: PhaseTimes {
                data_movement: tl.elapsed(),
                ..Default::default()
            },
            bytes_moved,
            records_moved,
            buckets_moved: 0,
            moved_fraction: if total_bytes == 0 {
                0.0
            } else {
                (bytes_moved as f64 / total_bytes as f64).min(1.0)
            },
            per_node: tl.breakdown(),
            concurrent_writes_applied: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetSpec, SecondaryIndexDef};
    use dynahash_core::Scheme;
    use dynahash_lsm::Bytes;

    fn payload(tag: u64) -> Bytes {
        let mut v = tag.to_be_bytes().to_vec();
        v.extend_from_slice(&[9u8; 56]);
        Bytes::from(v)
    }

    fn records(n: u64) -> Vec<(Key, Value)> {
        (0..n)
            .map(|i| (Key::from_u64(i), payload(i % 50)))
            .collect()
    }

    fn spec(scheme: Scheme) -> DatasetSpec {
        DatasetSpec::new("orders", scheme).with_secondary_index(SecondaryIndexDef::new(
            "idx_tag",
            |p: &[u8]| {
                if p.len() >= 8 {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&p[..8]);
                    Some(Key::from_u64(u64::from_be_bytes(b)))
                } else {
                    None
                }
            },
        ))
    }

    fn loaded_cluster(nodes: u32, scheme: Scheme, n_records: u64) -> (Cluster, DatasetId) {
        let mut cluster = Cluster::with_config(
            nodes,
            crate::ClusterConfig {
                partitions_per_node: 2,
                cost_model: crate::CostModel::default(),
            },
        );
        let ds = cluster.create_dataset(spec(scheme)).unwrap();
        cluster.ingest(ds, records(n_records)).unwrap();
        (cluster, ds)
    }

    #[test]
    fn bucketed_scale_out_moves_a_fraction_and_stays_consistent() {
        let (mut cluster, ds) = loaded_cluster(2, Scheme::StaticHash { num_buckets: 32 }, 3000);
        let before = cluster.dataset_len(ds).unwrap();
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        let report = cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        assert!(report.buckets_moved > 0);
        assert!(
            report.moved_fraction < 0.6,
            "moved {}",
            report.moved_fraction
        );
        assert_eq!(cluster.dataset_len(ds).unwrap(), before);
        cluster.check_dataset_consistency(ds).unwrap();
        // the new node now holds data
        let new_node_parts = cluster.topology().partitions_of_node(NodeId(2));
        let on_new: usize = new_node_parts
            .iter()
            .map(|p| {
                cluster
                    .partition(*p)
                    .unwrap()
                    .dataset(ds)
                    .unwrap()
                    .live_len()
            })
            .sum();
        assert!(on_new > 0);
    }

    #[test]
    fn bucketed_scale_in_empties_the_removed_node() {
        let (mut cluster, ds) = loaded_cluster(3, Scheme::StaticHash { num_buckets: 32 }, 3000);
        let before = cluster.dataset_len(ds).unwrap();
        let victim = NodeId(2);
        let target = cluster.topology_without(victim);
        let report = cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        assert_eq!(cluster.dataset_len(ds).unwrap(), before);
        cluster.decommission_node(victim).unwrap();
        cluster.check_dataset_consistency(ds).unwrap();
        assert_eq!(cluster.topology().num_nodes(), 2);
    }

    #[test]
    fn hashing_rebalance_moves_nearly_everything() {
        let (mut cluster, ds) = loaded_cluster(2, Scheme::Hashing, 2000);
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        let report = cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        assert!(
            report.moved_fraction > 0.8,
            "global rebalancing must move most data"
        );
        assert_eq!(cluster.dataset_len(ds).unwrap(), 2000);
        cluster.check_dataset_consistency(ds).unwrap();
    }

    #[test]
    fn bucketed_rebalance_is_cheaper_than_hashing() {
        let (mut c1, d1) = loaded_cluster(2, Scheme::StaticHash { num_buckets: 32 }, 2000);
        c1.add_node().unwrap();
        let t1 = c1.topology().clone();
        let r1 = c1.rebalance(d1, &t1, RebalanceOptions::none()).unwrap();

        let (mut c2, d2) = loaded_cluster(2, Scheme::Hashing, 2000);
        c2.add_node().unwrap();
        let t2 = c2.topology().clone();
        let r2 = c2.rebalance(d2, &t2, RebalanceOptions::none()).unwrap();

        assert!(r1.bytes_moved < r2.bytes_moved);
        assert!(r1.elapsed < r2.elapsed, "bucketed rebalance must be faster");
    }

    #[test]
    fn concurrent_writes_are_preserved_and_replicated() {
        let (mut cluster, ds) = loaded_cluster(2, Scheme::StaticHash { num_buckets: 16 }, 1500);
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        // new records arriving during the rebalance (keys beyond the loaded range)
        let concurrent: Vec<(Key, Value)> = (10_000..10_300u64)
            .map(|i| (Key::from_u64(i), payload(i % 50)))
            .collect();
        let report = cluster
            .rebalance(
                ds,
                &target,
                RebalanceOptions::with_concurrent_writes(concurrent.clone()),
            )
            .unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        assert_eq!(report.concurrent_writes_applied, 300);
        assert_eq!(cluster.dataset_len(ds).unwrap(), 1500 + 300);
        cluster.check_dataset_consistency(ds).unwrap();
        // every concurrent write is readable after the rebalance
        for (k, _) in &concurrent {
            let p = cluster.route_key(ds, k).unwrap();
            assert!(cluster
                .partition(p)
                .unwrap()
                .dataset(ds)
                .unwrap()
                .get(k)
                .is_some());
        }
    }

    #[test]
    fn noop_rebalance_commits_without_moving() {
        let (mut cluster, ds) = loaded_cluster(2, Scheme::StaticHash { num_buckets: 16 }, 500);
        let target = cluster.topology().clone();
        let report = cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        assert_eq!(report.buckets_moved, 0);
        assert_eq!(report.bytes_moved, 0);
        cluster.check_dataset_consistency(ds).unwrap();
    }
}
