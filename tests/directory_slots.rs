//! PR 5 gates: the slot-array directory and the deferred secondary rebuild.
//!
//! Two seeded property harnesses (same style as `rebalance_invariants.rs`:
//! the failing seed is printed on panic):
//!
//! * the slot-array `GlobalDirectory` lookups must agree with the old
//!   O(#buckets) linear scan — kept here as a `#[cfg(test)]` oracle — over
//!   arbitrary valid split/merge/reassign sequences, including delta
//!   catch-up of a stale snapshot;
//! * a rebalance whose destinations defer their secondary-index rebuild
//!   must answer `index_scan` byte-identically to the eager baseline,
//!   across mid-flight feeds and a destination crash between the ship and
//!   the install.

use std::collections::BTreeMap;

use dynahash::cluster::{
    Cluster, ClusterConfig, CostModel, DatasetSpec, RebalanceJob, RebalanceOptions,
    SecondaryIndexDef,
};
use dynahash::core::{
    BucketId, GlobalDirectory, NodeId, PartitionId, RebalanceOutcome, Scheme, SecondaryRebuild,
};
use dynahash::lsm::entry::{Key, Value};
use dynahash::lsm::rng::SplitMix64;
use dynahash::lsm::{Bytes, SecondaryEntry};

// ===================================================== slot-array directory

/// The pre-PR 5 lookup: a linear scan over the assignment. The slot array
/// must never disagree with it on a valid (disjoint, covering) directory.
fn scan_lookup(dir: &GlobalDirectory, hash: u64) -> Option<(BucketId, PartitionId)> {
    dir.iter().find(|(b, _)| b.contains_hash(hash))
}

/// The pre-PR 5 `partition_of_bucket`: exact match, then an ancestor scan.
fn scan_partition_of_bucket(dir: &GlobalDirectory, bucket: &BucketId) -> Option<PartitionId> {
    dir.iter()
        .find(|(b, _)| b == bucket)
        .or_else(|| dir.iter().find(|(b, _)| b.covers(bucket)))
        .map(|(_, p)| p)
}

fn check_against_oracle(dir: &GlobalDirectory, rng: &mut SplitMix64, seed: u64) {
    for _ in 0..32 {
        let h = rng.next_u64();
        assert_eq!(
            dir.lookup_hash(h),
            scan_lookup(dir, h),
            "seed {seed}: slot lookup diverged from the scan oracle on {h:#x}"
        );
    }
    // partition_of_bucket: probe existing buckets, their children (the
    // locally-split case), their parents, and random unrelated buckets.
    let buckets: Vec<BucketId> = dir.iter().map(|(b, _)| b).collect();
    for b in &buckets {
        assert_eq!(
            dir.partition_of_bucket(b),
            scan_partition_of_bucket(dir, b),
            "seed {seed}: exact bucket {b}"
        );
        if b.depth < 30 {
            let (lo, hi) = b.split();
            for child in [lo, hi] {
                assert_eq!(
                    dir.partition_of_bucket(&child),
                    scan_partition_of_bucket(dir, &child),
                    "seed {seed}: split child {child} of {b}"
                );
            }
        }
        if let Some(parent) = b.parent() {
            assert_eq!(
                dir.partition_of_bucket(&parent),
                scan_partition_of_bucket(dir, &parent),
                "seed {seed}: parent {parent} of {b}"
            );
        }
    }
    let probe = BucketId::new(rng.next_u64() as u32, (rng.gen_range(0..12)) as u8);
    assert_eq!(
        dir.partition_of_bucket(&probe),
        scan_partition_of_bucket(dir, &probe),
        "seed {seed}: random bucket {probe}"
    );
    // cached depth and slot count vs recomputation
    let depth = dir.iter().map(|(b, _)| b.depth).max().unwrap_or(0);
    assert_eq!(dir.global_depth(), depth, "seed {seed}: depth cache");
    assert_eq!(dir.num_slots(), 1u64 << depth, "seed {seed}: slot count");
    assert!(dir.covers_full_space(), "seed {seed}: coverage lost");
}

/// One random mutation keeping the directory valid (disjoint + covering):
/// reassign an existing bucket, split one (remove parent, assign children),
/// or merge a sibling pair back into its parent.
fn mutate(dir: &mut GlobalDirectory, rng: &mut SplitMix64, nparts: u32) {
    let buckets: Vec<BucketId> = dir.iter().map(|(b, _)| b).collect();
    let pick = buckets[rng.gen_range(0..buckets.len() as u64) as usize];
    match rng.gen_range(0..3) {
        0 => {
            dir.reassign(pick, PartitionId(rng.gen_range(0..nparts as u64) as u32));
        }
        1 if pick.depth < 10 => {
            let to = dir.partition_of_bucket(&pick).unwrap();
            let (lo, hi) = pick.split();
            dir.remove(&pick);
            dir.reassign(lo, to);
            dir.reassign(hi, PartitionId(rng.gen_range(0..nparts as u64) as u32));
        }
        _ => {
            let Some(parent) = pick.parent() else { return };
            let (lo, hi) = parent.split();
            let (Some(plo), Some(phi)) = (
                dir.iter().find(|(b, _)| *b == lo).map(|(_, p)| p),
                dir.iter().find(|(b, _)| *b == hi).map(|(_, p)| p),
            ) else {
                return;
            };
            let _ = phi;
            dir.remove(&lo);
            dir.remove(&hi);
            dir.reassign(parent, plo);
        }
    }
}

#[test]
fn prop_slot_lookups_match_the_linear_scan_oracle() {
    for case in 0..12u64 {
        let seed = 0x5107_0000 + case;
        let mut rng = SplitMix64::seed_from_u64(seed);
        let depth = rng.gen_range(0..5) as u8;
        let nparts = rng.gen_range(1..8) as u32;
        let parts: Vec<PartitionId> = (0..nparts).map(PartitionId).collect();
        let mut dir = GlobalDirectory::initial(depth, &parts).unwrap();
        let snapshot = dir.clone();
        let ops = rng.gen_range(10..50);
        for _ in 0..ops {
            mutate(&mut dir, &mut rng, nparts);
            check_against_oracle(&dir, &mut rng, seed);
        }
        // Delta catch-up: a snapshot taken before all mutations converges to
        // the same assignment AND the same slot array behaviour.
        let delta = dir
            .delta_since(snapshot.version())
            .expect("change log long enough for this harness");
        let mut cached = snapshot;
        cached.apply_delta(&delta).unwrap();
        assert_eq!(cached, dir, "seed {seed}: delta catch-up diverged");
        check_against_oracle(&cached, &mut rng, seed);
    }
}

/// Regression for the `partition_of_bucket` ancestor fallback: a bucket that
/// split *locally* (so the CC still holds the unsplit parent) must resolve
/// to the parent's partition through the slot array — at any extra depth —
/// while a bucket in an unassigned hash range resolves to nothing.
#[test]
fn locally_split_buckets_resolve_through_their_cc_owned_ancestor() {
    let parts: Vec<PartitionId> = (0..3).map(PartitionId).collect();
    let mut dir = GlobalDirectory::initial(2, &parts).unwrap();
    let parent = BucketId::new(0b01, 2);
    let owner = dir.partition_of_bucket(&parent).unwrap();
    // grandchildren and deeper descendants of a CC-owned bucket
    for extra in 1..=6u8 {
        let child = BucketId::new(0b01, 2 + extra);
        assert_eq!(
            dir.partition_of_bucket(&child),
            Some(owner),
            "descendant at depth {} must resolve to the parent's partition",
            2 + extra
        );
    }
    // a descendant of a *different* bucket resolves to that bucket's owner
    let other = BucketId::new(0b10, 2);
    let other_owner = dir.partition_of_bucket(&other).unwrap();
    assert_eq!(
        dir.partition_of_bucket(&BucketId::new(0b1110, 4)),
        Some(other_owner)
    );
    // remove a bucket: its descendants no longer resolve, siblings still do
    dir.remove(&parent);
    assert_eq!(dir.partition_of_bucket(&BucketId::new(0b01, 3)), None);
    assert_eq!(dir.partition_of_bucket(&BucketId::new(0b101, 3)), None);
    assert_eq!(dir.partition_of_bucket(&other), Some(other_owner));
    // an ancestor of existing buckets is NOT resolved (children do not
    // cover their parent) — same answer the old scan gave
    assert_eq!(dir.partition_of_bucket(&BucketId::new(0, 1)), None);
}

// ================================================= deferred secondary rebuild

fn payload(i: u64) -> Bytes {
    let mut v = (i % 37).to_be_bytes().to_vec();
    v.extend_from_slice(&[(i % 251) as u8; 48]);
    Bytes::from(v)
}

fn record(i: u64) -> (Key, Value) {
    (Key::from_u64(i), payload(i))
}

fn spec(scheme: Scheme) -> DatasetSpec {
    DatasetSpec::new("events", scheme).with_secondary_index(SecondaryIndexDef::new(
        "idx_tag",
        |p: &[u8]| {
            if p.len() >= 8 {
                let mut b = [0u8; 8];
                b.copy_from_slice(&p[..8]);
                Some(Key::from_u64(u64::from_be_bytes(b)))
            } else {
                None
            }
        },
    ))
}

fn cluster_with(nodes: u32, scheme: Scheme, n: u64) -> (Cluster, u32) {
    let mut cluster = Cluster::with_config(
        nodes,
        ClusterConfig {
            partitions_per_node: 2,
            cost_model: CostModel::default(),
        },
    );
    let ds = cluster.create_dataset(spec(scheme)).unwrap();
    cluster
        .session(ds)
        .unwrap()
        .ingest(&mut cluster, (0..n).map(record))
        .unwrap();
    (cluster, ds)
}

#[derive(Debug, PartialEq, Eq)]
struct Observation {
    contents: BTreeMap<Key, Value>,
    distribution: BTreeMap<PartitionId, usize>,
    index_hits: Vec<(PartitionId, Vec<SecondaryEntry>)>,
}

fn observe(cluster: &mut Cluster, ds: u32) -> Observation {
    let (contents, raw) = cluster.query().collect_records(ds).unwrap();
    assert_eq!(raw, contents.len(), "a record is visible on two partitions");
    let distribution = cluster.dataset_distribution(ds).unwrap();
    let index_hits = cluster
        .query()
        .index_scan(ds, "idx_tag", None, None)
        .unwrap();
    Observation {
        contents,
        distribution,
        index_hits,
    }
}

/// One scenario: load, scale out or in, rebalance under `rebuild` with a
/// mid-flight feed, and return what the cluster then looks like.
fn run_scenario(
    rebuild: SecondaryRebuild,
    scheme: Scheme,
    grow: bool,
    n_records: u64,
    n_writes: u64,
    max_moves: usize,
) -> Observation {
    let (mut cluster, ds) = cluster_with(3, scheme, n_records);
    let target = if grow {
        cluster.add_node().unwrap();
        cluster.topology().clone()
    } else {
        cluster.topology_without(NodeId(2))
    };
    let writes: Vec<(Key, Value)> = (500_000..500_000 + n_writes).map(record).collect();
    let report = cluster
        .rebalance(
            ds,
            &target,
            RebalanceOptions::none()
                .with_max_concurrent_moves(max_moves)
                .with_secondary_rebuild(rebuild)
                .with_concurrent_writes(writes),
        )
        .unwrap();
    assert_eq!(report.outcome, RebalanceOutcome::Committed);
    cluster
        .check_rebalance_integrity(ds, report.rebalance_id)
        .unwrap();
    observe(&mut cluster, ds)
}

#[test]
fn prop_deferred_and_eager_secondary_rebuilds_are_byte_identical() {
    for case in 0..8u64 {
        let seed = 0x5107_1000 + case;
        let mut rng = SplitMix64::seed_from_u64(seed);
        let scheme = match rng.gen_range(0..3) {
            0 => Scheme::StaticHash { num_buckets: 16 },
            1 => Scheme::StaticHash { num_buckets: 32 },
            _ => Scheme::dynahash(16 * 1024, 8),
        };
        let grow = rng.gen_range(0..2) == 0;
        let n_records = rng.gen_range(400..1000);
        let n_writes = rng.gen_range(0..250);
        let max_moves = rng.gen_range(1..5) as usize;
        let result = std::panic::catch_unwind(|| {
            let eager = run_scenario(
                SecondaryRebuild::Eager,
                scheme,
                grow,
                n_records,
                n_writes,
                max_moves,
            );
            let deferred = run_scenario(
                SecondaryRebuild::Deferred,
                scheme,
                grow,
                n_records,
                n_writes,
                max_moves,
            );
            assert_eq!(
                eager.contents, deferred.contents,
                "post-rebalance contents differ between rebuild modes"
            );
            assert_eq!(
                eager.distribution, deferred.distribution,
                "record placement differs between rebuild modes"
            );
            assert_eq!(
                eager.index_hits, deferred.index_hits,
                "secondary-index answers differ between rebuild modes"
            );
        });
        if let Err(panic) = result {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "rebuild equivalence failed\n  seed: {seed}\n  scheme: {scheme:?} grow: {grow} \
                 records: {n_records} writes: {n_writes} max_moves: {max_moves}\n  cause: {msg}"
            );
        }
    }
}

/// The deferral is real: after a committed Components rebalance no index
/// scan has run, so some destination still holds `SecondaryState::Deferred`
/// buckets; an explicit `warm_indexes` materializes them all, and the wave
/// makespan is strictly smaller than the eager baseline's.
#[test]
fn deferred_install_defers_and_warm_indexes_materializes() {
    let run = |rebuild: SecondaryRebuild| {
        let (mut cluster, ds) = cluster_with(3, Scheme::StaticHash { num_buckets: 32 }, 2500);
        let target = cluster.topology_without(NodeId(2));
        let report = cluster
            .rebalance(
                ds,
                &target,
                RebalanceOptions::none()
                    .with_max_concurrent_moves(4)
                    .with_secondary_rebuild(rebuild),
            )
            .unwrap();
        assert_eq!(report.outcome, RebalanceOutcome::Committed);
        (cluster, ds, report)
    };

    let (mut eager_cluster, eager_ds, eager_report) = run(SecondaryRebuild::Eager);
    let (mut cluster, ds, report) = run(SecondaryRebuild::Deferred);
    assert!(
        report.phases.data_movement < eager_report.phases.data_movement,
        "deferred rebuild must shrink the wave makespan: {:?} !< {:?}",
        report.phases.data_movement,
        eager_report.phases.data_movement
    );

    // the rebuild really was deferred...
    let partitions = cluster.topology().partitions();
    let deferred: usize = {
        let admin = cluster.admin();
        partitions
            .iter()
            .filter(|p| {
                admin
                    .partition(**p)
                    .ok()
                    .and_then(|part| part.dataset(ds).ok())
                    .map(|d| d.has_deferred_secondary())
                    .unwrap_or(false)
            })
            .count()
    };
    assert!(deferred > 0, "no partition holds deferred secondary state");

    // ...until the admin warms it, after which a second warm is a no-op
    let warmed = cluster.admin().warm_indexes(ds).unwrap();
    assert!(warmed > 0, "warm_indexes must materialize deferred entries");
    assert_eq!(cluster.admin().warm_indexes(ds).unwrap(), 0);

    // and the answers match the eager cluster's, byte for byte
    assert_eq!(
        observe(&mut cluster, ds),
        observe(&mut eager_cluster, eager_ds)
    );
}

/// Crash/recovery: a destination crash between the ship and the install
/// wipes the pending buckets *and* their deferred stashes; the commit
/// re-ships from the metadata log and the deferred rebuild still answers
/// index scans exactly like the eager baseline.
#[test]
fn deferred_rebuild_survives_a_destination_crash_between_ship_and_install() {
    let run = |rebuild: SecondaryRebuild| {
        let (mut cluster, ds) = cluster_with(3, Scheme::StaticHash { num_buckets: 32 }, 2400);
        let new_node = cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 2).unwrap();
        job.set_secondary_rebuild(rebuild);
        assert_eq!(job.secondary_rebuild(), rebuild);
        job.init(&mut cluster).unwrap();
        let mut next_key = 700_000u64;
        let mut crashed = false;
        while job.has_remaining_waves() {
            let wave = job.run_wave(&mut cluster).unwrap();
            if !crashed && wave.components > 0 {
                crashed = true;
                cluster.crash_node(new_node).unwrap();
                cluster.recover_node(new_node).unwrap();
            }
            let batch: Vec<_> = (next_key..next_key + 40).map(record).collect();
            job.apply_feed_batch(&mut cluster, batch).unwrap();
            next_key += 40;
        }
        assert!(crashed, "scenario requires a post-ship crash");
        job.prepare(&mut cluster).unwrap();
        assert_eq!(
            job.decide(&mut cluster).unwrap(),
            RebalanceOutcome::Committed
        );
        job.commit(&mut cluster).unwrap();
        let report = job.finalize(&mut cluster).unwrap();
        cluster
            .check_rebalance_integrity(ds, report.rebalance_id)
            .unwrap();
        observe(&mut cluster, ds)
    };
    let eager = run(SecondaryRebuild::Eager);
    let deferred = run(SecondaryRebuild::Deferred);
    assert_eq!(eager, deferred, "crash recovery broke rebuild equivalence");
}
