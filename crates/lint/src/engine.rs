//! The check driver: walks a root, runs every rule family, applies waivers,
//! and enforces the lock-order manifest and the waiver budget.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::LexedFile;
use crate::manifest;
use crate::report::{Finding, Report, Rule};
use crate::rules::{self, FileScope, LockUse};
use crate::waivers;

/// Directory names the walker never descends into. `fixtures` holds the
/// lint's own negative test inputs — intentionally dirty files that must
/// not count against the real tree.
const SKIP_DIRS: [&str; 5] = ["target", ".git", ".github", ".claude", "fixtures"];

/// The committed waiver-budget file at the checked root.
pub const BUDGET_FILE: &str = "LINT_BUDGET.toml";
/// The committed lock-order manifest at the checked root.
pub const LOCK_ORDER_FILE: &str = "LOCK_ORDER.md";

/// Runs the full check rooted at `root` and returns the report.
pub fn check_root(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut lock_uses: Vec<LockUse> = Vec::new();
    let mut used_waivers: Vec<(Rule, usize)> = Vec::new();

    let mut rs_files = Vec::new();
    let mut manifests = Vec::new();
    walk(root, root, &mut rs_files, &mut manifests)?;
    rs_files.sort();
    manifests.sort();

    for rel in &rs_files {
        let text = fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let (mut findings, uses, used) = check_source(&rel_str, &text);
        report.files_scanned += 1;
        lock_uses.extend(uses);
        merge_counts(&mut used_waivers, used);
        report.findings.append(&mut findings);
    }

    for rel in &manifests {
        let text = fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if rel_str == "Cargo.toml" {
            report
                .findings
                .extend(manifest::check_workspace_manifest(&text));
        } else {
            report
                .findings
                .extend(manifest::check_crate_manifest(&rel_str, &text));
        }
    }

    lock_uses.sort();
    let lock_manifest = manifest::read_optional(&root.join(LOCK_ORDER_FILE));
    report.findings.extend(manifest::check_lock_order(
        lock_manifest.as_deref(),
        &lock_uses,
    ));

    let budget = manifest::read_optional(&root.join(BUDGET_FILE));
    report
        .findings
        .extend(manifest::check_budget(budget.as_deref(), &used_waivers));
    report.waivers_used = used_waivers;

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Runs every source-level rule family on one file, applies its waivers,
/// and returns `(findings, lock uses, used waiver counts)`. Exposed so
/// fixture tests can drive single files without a filesystem tree.
pub fn check_source(
    rel_path: &str,
    text: &str,
) -> (Vec<Finding>, Vec<LockUse>, Vec<(Rule, usize)>) {
    let lexed = LexedFile::lex(text);
    let scope = FileScope::of(rel_path);

    let mut findings = Vec::new();
    findings.extend(rules::layering_use(rel_path, &scope, &lexed));
    findings.extend(rules::session_discipline(rel_path, &scope, &lexed));
    findings.extend(rules::panic_audit(rel_path, &scope, &lexed));
    findings.extend(rules::determinism(rel_path, &lexed));
    let lock_uses = rules::collect_lock_uses(rel_path, &lexed);

    let file_waivers = waivers::collect_waivers(rel_path, &lexed);
    let (unused, used) = waivers::apply_waivers(rel_path, &file_waivers, &mut findings);
    findings.extend(unused);
    findings.extend(file_waivers.malformed);
    (findings, lock_uses, used)
}

fn merge_counts(into: &mut Vec<(Rule, usize)>, from: Vec<(Rule, usize)>) {
    for (rule, n) in from {
        match into.iter_mut().find(|(r, _)| *r == rule) {
            Some((_, total)) => *total += n,
            None => into.push((rule, n)),
        }
    }
}

/// Recursively collects `.rs` files and `Cargo.toml` manifests under
/// `dir`, as paths relative to `root`.
fn walk(
    root: &Path,
    dir: &Path,
    rs_files: &mut Vec<PathBuf>,
    manifests: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, rs_files, manifests)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            if name == "Cargo.toml" {
                manifests.push(rel);
            } else {
                rs_files.push(rel);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_source_waives_and_counts() {
        let src =
            "fn f() {\n    x.unwrap() // dhlint: allow(panic) — key inserted two lines up\n}\n";
        let (findings, _, used) = check_source("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].waived);
        assert_eq!(used, vec![(Rule::Panic, 1)]);
    }

    #[test]
    fn check_source_reports_unwaived() {
        let src = "fn f() { x.unwrap() }\n";
        let (findings, _, used) = check_source("crates/lsm/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].waived);
        assert!(used.is_empty());
    }
}
