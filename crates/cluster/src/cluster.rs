//! The simulated shared-nothing cluster.
//!
//! [`Cluster`] wires together the Cluster Controller, the Node Controllers
//! with their storage partitions, and the hardware cost model. It exposes the
//! operations the experiments need: creating datasets, ingesting records
//! through data feeds, running queries (see [`crate::query`]), scaling the
//! cluster in or out, and rebalancing datasets (see [`crate::rebalance`]).

use std::collections::BTreeMap;

use dynahash_core::{
    BucketHeat, ClusterTopology, GlobalDirectory, NodeId, PartitionId, RebalanceOutcome, Scheme,
};
use dynahash_lsm::bucket::BucketId;
use dynahash_lsm::entry::{Key, StorageFootprint, Value};
use dynahash_lsm::metrics::MetricsSnapshot;
use dynahash_lsm::wal::{LogRecordBody, RebalanceId, RebalanceLogStatus};

use crate::control::{HeatCell, HeatReport, JobProgress, PushedUpdate, SessionRegistry};
use crate::controller::ClusterController;
use crate::dataset::{DatasetId, DatasetSpec};
use crate::fault::{ClusterHealth, FaultSchedule, FaultStats, WaveFault};
use crate::feed::IngestReport;
use crate::node::NodeController;
use crate::partition::Partition;
use crate::sim::{CostModel, NodeTimeline, SimDuration};
use crate::ClusterError;

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of storage partitions per node (the paper uses 4).
    pub partitions_per_node: u32,
    /// The hardware cost model.
    pub cost_model: CostModel,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            partitions_per_node: 4,
            cost_model: CostModel::default(),
        }
    }
}

/// Replication state of one in-flight step-driven rebalance, registered by
/// the [`crate::job::RebalanceJob`] so the *normal* ingestion path stays
/// online during data movement: writes routed to a bucket whose wave has
/// already shipped it are transparently replicated to the destination's
/// pending copy (Section V-C), and writes are briefly blocked once the
/// prepare phase has flushed the pending components.
pub(crate) struct ActiveRebalance {
    /// The pre-rebalance directory every write routes through until commit.
    pub routing: GlobalDirectory,
    /// The rebalance target topology (destination partitions live here).
    pub target: ClusterTopology,
    /// Shipped bucket -> destination partition (grows wave by wave).
    pub shipped: BTreeMap<BucketId, PartitionId>,
    /// True from the prepare phase until commit/abort: writes are blocked.
    pub write_blocked: bool,
}

/// The cluster's fault-plane state: the (optional) installed schedule and
/// the counters accumulated while consuming it.
#[derive(Default)]
pub(crate) struct FaultState {
    /// The installed schedule; `None` (or an empty schedule) means the
    /// fault-free path, byte-identical to pre-fault-plane behaviour.
    pub(crate) plane: Option<FaultSchedule>,
    /// Accumulated counters (retries, reroutes, lost nodes/buckets).
    pub(crate) stats: FaultStats,
}

/// The simulated cluster.
pub struct Cluster {
    config: ClusterConfig,
    topology: ClusterTopology,
    nodes: BTreeMap<NodeId, NodeController>,
    /// The Cluster Controller.
    pub controller: ClusterController,
    /// In-flight step-driven rebalances, by dataset (see [`ActiveRebalance`]).
    pub(crate) active_rebalances: BTreeMap<DatasetId, ActiveRebalance>,
    /// The deterministic fault plane (see [`crate::fault`]).
    pub(crate) faults: FaultState,
    /// The (optional) armed per-bucket heat counters (see [`crate::control`]).
    /// Disarmed (`None` inside), every data path takes its pre-control-plane
    /// code path — the same arming shape as the fault plane.
    pub(crate) heat: HeatCell,
    /// Sessions subscribed to commit-time directory pushes.
    pub(crate) subscribers: SessionRegistry,
    /// Progress of in-flight rebalance jobs, published by the job steps and
    /// surfaced through [`Admin::health`].
    pub(crate) job_progress: BTreeMap<DatasetId, JobProgress>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("partitions", &self.topology.num_partitions())
            .finish()
    }
}

impl Cluster {
    /// Creates a cluster of `num_nodes` nodes with the default configuration.
    pub fn new(num_nodes: u32) -> Self {
        Self::with_config(num_nodes, ClusterConfig::default())
    }

    /// Creates a cluster with an explicit configuration.
    pub fn with_config(num_nodes: u32, config: ClusterConfig) -> Self {
        let topology = ClusterTopology::uniform(num_nodes, config.partitions_per_node);
        let nodes = topology
            .nodes()
            .into_iter()
            .map(|n| (n, NodeController::new(n, topology.partitions_of_node(n))))
            .collect();
        Cluster {
            config,
            topology,
            nodes,
            controller: ClusterController::new(),
            active_rebalances: BTreeMap::new(),
            faults: FaultState::default(),
            heat: HeatCell::default(),
            subscribers: SessionRegistry::default(),
            job_progress: BTreeMap::new(),
        }
    }

    // -------------------------------------------------------- control plane

    /// Arms or disarms per-bucket heat tracking. Armed, every session read
    /// and routed write feeds the heat counters the control plane's
    /// decisions run on (one local-directory probe per operation); disarmed
    /// — the default — the data paths are byte-identical to a cluster
    /// without the control plane, which the `control` experiments figure
    /// gates. Disarming drops all counters.
    pub fn set_heat_tracking(&mut self, enabled: bool) {
        if enabled {
            self.heat.arm();
        } else {
            self.heat.disarm();
        }
    }

    /// True when heat tracking is armed.
    pub fn heat_tracking_enabled(&self) -> bool {
        self.heat.armed()
    }

    /// A copy of a dataset's decayed per-bucket op counters (empty when heat
    /// tracking is disarmed). The merged view — ops joined with storage
    /// residency — is [`Admin::heat`].
    pub fn heat_ops_snapshot(&self, dataset: DatasetId) -> BTreeMap<BucketId, BucketHeat> {
        self.heat.ops_snapshot(dataset)
    }

    /// One heat decay step (the control plane calls this every tick).
    pub(crate) fn decay_heat(&self) {
        self.heat.decay();
    }

    /// Folds a bucket split into the heat counters.
    pub(crate) fn on_heat_split(
        &self,
        dataset: DatasetId,
        parent: BucketId,
        lo: BucketId,
        hi: BucketId,
    ) {
        self.heat.on_split(dataset, parent, lo, hi);
    }

    /// The local bucket a key lives in on `partition`, probed only while
    /// heat tracking is armed (`None` otherwise, and for non-bucketed
    /// datasets). Keying heat by the *local* directory keeps read heat,
    /// write heat, bucket sizes, and the planner's load map on the same
    /// bucket granularity even before the CC absorbs local splits.
    fn heat_bucket_of(
        &self,
        dataset: DatasetId,
        partition: PartitionId,
        key: &Key,
    ) -> Option<BucketId> {
        if !self.heat.armed() {
            return None;
        }
        let ds = self.partition(partition).ok()?.dataset(dataset).ok()?;
        ds.primary.directory().lookup_key(key)
    }

    /// Records one read against the bucket's heat (no-op while disarmed).
    pub(crate) fn note_read_heat(&self, dataset: DatasetId, bucket: BucketId) {
        self.heat.note_read(dataset, bucket);
    }

    /// Registers a session for commit-time directory pushes; returns its
    /// subscription id.
    pub(crate) fn register_subscriber(&self, dataset: DatasetId, directory_version: u64) -> u64 {
        self.subscribers.register(dataset, directory_version)
    }

    /// Drains the pushed updates buffered for a subscription.
    pub(crate) fn take_pushed(&self, subscription: u64) -> Vec<PushedUpdate> {
        self.subscribers.take(subscription)
    }

    /// Pushes the dataset's current routing state (as a
    /// [`dynahash_core::DirectoryDelta`] where possible) to every subscribed
    /// session. Called by the rebalance commit path and by control-plane
    /// hot-bucket splits.
    pub(crate) fn push_routing_update(&self, dataset: DatasetId) {
        if let Ok(meta) = self.controller.dataset(dataset) {
            self.subscribers.push(dataset, meta);
        }
    }

    /// Publishes (or updates) a job's progress in the health surface.
    pub(crate) fn publish_job_progress(&mut self, progress: JobProgress) {
        self.job_progress.insert(progress.dataset, progress);
    }

    /// Clears a finalized job's progress from the health surface.
    pub(crate) fn clear_job_progress(&mut self, dataset: DatasetId) {
        self.job_progress.remove(&dataset);
    }

    // ---------------------------------------------------------- fault plane

    /// Installs a seeded fault schedule. Transfers consult it per attempt;
    /// drivers consume its wave faults between waves. Replaces any schedule
    /// already installed (counters are kept).
    pub fn set_fault_plane(&mut self, schedule: FaultSchedule) {
        self.faults.plane = Some(schedule);
    }

    /// Removes the installed fault schedule (counters are kept).
    pub fn clear_fault_plane(&mut self) {
        self.faults.plane = None;
    }

    /// The installed fault schedule, if any.
    pub fn fault_plane(&self) -> Option<&FaultSchedule> {
        self.faults.plane.as_ref()
    }

    /// The fault-plane counters accumulated so far.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.faults.stats
    }

    /// The lost bucket `key` routes to, when the dataset is serving degraded
    /// and the key's bucket died with a lost node (`None` on the healthy
    /// path — the first map probe is the only cost then). Reads and writes
    /// touching such a bucket get the typed
    /// [`ClusterError::BucketDegraded`] instead of silently-empty data.
    pub(crate) fn lost_bucket_of(&self, dataset: DatasetId, key: &Key) -> Option<BucketId> {
        let lost = self.faults.stats.lost_buckets.get(&dataset)?;
        if lost.is_empty() {
            return None;
        }
        let meta = self.controller.dataset(dataset).ok()?;
        let (bucket, _) = meta.directory.as_ref()?.lookup_key(key)?;
        lost.contains(&bucket).then_some(bucket)
    }

    /// Removes and returns the fault scheduled after wave `wave` (one-shot;
    /// `None` with no schedule installed or nothing scheduled there).
    /// Drivers call this between rebalance waves.
    pub fn take_wave_fault(&mut self, wave: u64) -> Option<WaveFault> {
        self.faults.plane.as_mut()?.take_wave_fault(wave)
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The cost model.
    pub fn cost_model(&self) -> CostModel {
        self.config.cost_model
    }

    /// The current topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// The node hosting a partition.
    pub fn node_of_partition(&self, partition: PartitionId) -> Result<NodeId, ClusterError> {
        self.topology
            .node_of(partition)
            .ok_or(ClusterError::UnknownPartition(partition))
    }

    /// Access a node.
    pub fn node(&self, id: NodeId) -> Result<&NodeController, ClusterError> {
        self.nodes.get(&id).ok_or(ClusterError::UnknownNode(id))
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut NodeController, ClusterError> {
        self.nodes.get_mut(&id).ok_or(ClusterError::UnknownNode(id))
    }

    /// Access a partition (through its node). Crate-internal: clients go
    /// through [`crate::session::Session`]; tests and operators that need
    /// white-box access use [`Cluster::admin`].
    pub(crate) fn partition(&self, id: PartitionId) -> Result<&Partition, ClusterError> {
        let node = self.node_of_partition(id)?;
        self.node(node)?.partition(id)
    }

    /// Mutable access to a partition (crate-internal, see
    /// [`Cluster::partition`]).
    pub(crate) fn partition_mut(
        &mut self,
        id: PartitionId,
    ) -> Result<&mut Partition, ClusterError> {
        let node = self.node_of_partition(id)?;
        self.node_mut(node)?.partition_mut(id)
    }

    /// The white-box escape hatch around the session API: direct partition
    /// access, omniscient routing, and unrouted ingestion. For tests,
    /// benchmarks, and operational tooling that must inspect or seed
    /// physical state; everything on the data path belongs on
    /// [`Cluster::session`] instead.
    pub fn admin(&mut self) -> Admin<'_> {
        Admin { cluster: self }
    }

    // ------------------------------------------------------------- datasets

    /// Creates a dataset across all current partitions. For bucketed schemes
    /// the initial buckets are assigned round-robin; for the Hashing scheme
    /// each partition owns the whole hash space locally and routing uses
    /// `hash(K) mod N`.
    pub fn create_dataset(&mut self, spec: DatasetSpec) -> Result<DatasetId, ClusterError> {
        let partitions = self.topology.partitions();
        let id = self
            .controller
            .register_dataset(spec.clone(), partitions.clone())?;
        let meta = self.controller.dataset(id)?.clone();
        for p in &partitions {
            let initial_buckets: Vec<BucketId> = match &meta.directory {
                Some(dir) => dir.buckets_of_partition(*p),
                None => vec![BucketId::root()],
            };
            self.partition_mut(*p)?
                .create_dataset(id, &spec, initial_buckets);
        }
        Ok(id)
    }

    /// Routes a key of a dataset to its partition using the CC's current
    /// routing state. Crate-internal: clients route through their cached
    /// [`crate::session::Session`] snapshot; white-box code uses
    /// [`crate::cluster::Admin::route_key`].
    pub(crate) fn route_key(
        &self,
        dataset: DatasetId,
        key: &Key,
    ) -> Result<PartitionId, ClusterError> {
        let meta = self.controller.dataset(dataset)?;
        meta.route_key(key)
            .ok_or(ClusterError::RoutingFailed(dataset))
    }

    // ------------------------------------------------------------ ingestion

    /// Ingests a batch of records through a data feed: each record is routed
    /// with an immutable copy of the routing state taken at feed start,
    /// appended to the owning node's transaction log, and inserted into the
    /// primary, primary-key, and secondary indexes.
    ///
    /// Returns an [`IngestReport`] with the simulated elapsed time (the
    /// slowest node bounds the feed, as in the paper's ingestion experiment).
    ///
    /// Crate-internal: the public feed path is
    /// [`crate::session::Session::ingest`], which routes from the client's
    /// cached directory and participates in the stale-directory redirect
    /// protocol; unrouted seeding for tests goes through
    /// [`crate::cluster::Admin::ingest`].
    pub(crate) fn ingest(
        &mut self,
        dataset: DatasetId,
        records: impl IntoIterator<Item = (Key, Value)>,
    ) -> Result<IngestReport, ClusterError> {
        // A step-driven rebalance keeps the feed online during data movement
        // by replicating writes to already-shipped buckets; only the brief
        // prepare-to-commit window blocks writes (Section V-C).
        if let Some(active) = self.active_rebalances.get(&dataset) {
            if active.write_blocked {
                return Err(ClusterError::DatasetWriteBlocked(dataset));
            }
        }
        // Degraded datasets reject writes to lost buckets *atomically*: the
        // whole batch is validated before any record applies, so a feed never
        // half-applies against a bucket awaiting repair. Healthy datasets pay
        // only the (empty) lost-bucket map probe.
        let batch: Vec<(Key, Value)> = records.into_iter().collect();
        if self
            .faults
            .stats
            .lost_buckets
            .get(&dataset)
            .is_some_and(|b| !b.is_empty())
        {
            for (key, _) in &batch {
                if let Some(bucket) = self.lost_bucket_of(dataset, key) {
                    return Err(ClusterError::BucketDegraded { dataset, bucket });
                }
            }
        }
        let routing = self.controller.routing_snapshot(dataset)?;
        let cost_model = self.config.cost_model;

        // Per-partition metric snapshots to charge IO costs ex post.
        let before: BTreeMap<PartitionId, MetricsSnapshot> = self
            .topology
            .partitions()
            .iter()
            .map(|p| {
                (
                    *p,
                    self.partition(*p)
                        .map(|x| x.metrics().snapshot())
                        .unwrap_or_default(),
                )
            })
            .collect();

        let mut per_node_records: BTreeMap<NodeId, u64> = BTreeMap::new();
        // Per-node replication traffic (records, bytes) to pending buckets.
        let mut replicated: BTreeMap<NodeId, (u64, u64)> = BTreeMap::new();
        let mut total = 0u64;
        for (key, value) in batch {
            let partition = routing
                .route_key(&key)
                .ok_or(ClusterError::RoutingFailed(dataset))?;
            let heat_bucket = self.heat_bucket_of(dataset, partition, &key);
            let node_id = self.node_of_partition(partition)?;
            // Writes hitting a bucket whose wave already shipped it must
            // also reach the destination's pending copy, or the commit-time
            // cleanup of the source bucket would drop them.
            let replica = self.active_rebalances.get(&dataset).and_then(|active| {
                let (bucket, _) = active.routing.lookup_key(&key)?;
                let dst_partition = *active.shipped.get(&bucket)?;
                let dst_node = active.target.node_of(dst_partition);
                Some((bucket, dst_partition, dst_node, key.clone(), value.clone()))
            });
            let node = self.node_mut(node_id)?;
            if !node.is_alive() {
                return Err(ClusterError::NodeDown(node_id));
            }
            node.log.append(LogRecordBody::Insert {
                dataset,
                key: key.as_slice().to_vec(),
                value: value.to_vec(),
            });
            node.partition_mut(partition)?
                .dataset_mut(dataset)?
                .ingest(key, value)?;
            *per_node_records.entry(node_id).or_default() += 1;
            total += 1;
            if let Some(bucket) = heat_bucket {
                self.heat.note_write(dataset, bucket);
            }
            if let Some((bucket, dst_partition, dst_node, key, value)) = replica {
                let dst_node = dst_node.ok_or(ClusterError::UnknownPartition(dst_partition))?;
                // A write to an already-shipped bucket must reach the
                // destination's pending copy or be lost by the commit-time
                // source cleanup — a dead destination fails the feed loudly,
                // exactly like a dead source partition.
                if !self.node_is_alive(dst_node) {
                    return Err(ClusterError::NodeDown(dst_node));
                }
                let entry = replicated.entry(dst_node).or_default();
                entry.0 += 1;
                entry.1 += (key.len() + value.len()) as u64;
                let ds = self.partition_mut(dst_partition)?.dataset_mut(dataset)?;
                // The bucket is in the active rebalance's shipped set, so a
                // missing pending copy means a destination crash wiped the
                // uncommitted transfer: re-create it here so replication
                // keeps flowing, and the commit re-ships the lost base data
                // from the metadata log.
                ds.ensure_pending_bucket(bucket)?;
                ds.apply_replicated(bucket, dynahash_lsm::Entry::put(key, value))?;
            }
        }

        // Cost accounting: CPU for parsing/routing plus the IO the storage
        // engine performed (flushes and merges), per node.
        let mut timeline = NodeTimeline::new();
        timeline.charge_coordinator(SimDuration::from_nanos(cost_model.job_overhead_ns));
        for (node_id, records) in &per_node_records {
            timeline.charge(*node_id, cost_model.ingest_cpu(*records));
        }
        for (node_id, (records, bytes)) in &replicated {
            timeline.charge(
                *node_id,
                cost_model.network(*bytes) + cost_model.ingest_cpu(*records),
            );
        }
        for p in self.topology.partitions() {
            let node_id = self.node_of_partition(p)?;
            let after = self.partition(p)?.metrics().snapshot();
            let delta = after.delta_since(before.get(&p).unwrap_or(&MetricsSnapshot::default()));
            let io = cost_model.disk_write(delta.bytes_flushed)
                + cost_model.merge_cost(delta.bytes_merge_read, delta.bytes_merged);
            timeline.charge(node_id, io);
        }

        Ok(IngestReport {
            records: total,
            elapsed: timeline.elapsed(),
            per_node: timeline.breakdown(),
        })
    }

    /// Inserts one record through the routed write path — the slim
    /// single-record form of [`Cluster::ingest`] backing
    /// [`crate::session::Session::put`]: WAL append, index maintenance, and
    /// replication to an already-shipped bucket, without the batch path's
    /// cluster-wide metrics sweeps (a point write's cost report is discarded
    /// anyway).
    pub(crate) fn put_routed(
        &mut self,
        dataset: DatasetId,
        key: Key,
        value: Value,
    ) -> Result<(), ClusterError> {
        if let Some(active) = self.active_rebalances.get(&dataset) {
            if active.write_blocked {
                return Err(ClusterError::DatasetWriteBlocked(dataset));
            }
        }
        if let Some(bucket) = self.lost_bucket_of(dataset, &key) {
            return Err(ClusterError::BucketDegraded { dataset, bucket });
        }
        let partition = self.route_key(dataset, &key)?;
        if let Some(bucket) = self.heat_bucket_of(dataset, partition, &key) {
            self.heat.note_write(dataset, bucket);
        }
        let node_id = self.node_of_partition(partition)?;
        let replica = self.active_rebalances.get(&dataset).and_then(|active| {
            let (bucket, _) = active.routing.lookup_key(&key)?;
            let dst_partition = *active.shipped.get(&bucket)?;
            let dst_node = active.target.node_of(dst_partition);
            Some((bucket, dst_partition, dst_node, key.clone(), value.clone()))
        });
        let node = self.node_mut(node_id)?;
        if !node.is_alive() {
            return Err(ClusterError::NodeDown(node_id));
        }
        node.log.append(LogRecordBody::Insert {
            dataset,
            key: key.as_slice().to_vec(),
            value: value.to_vec(),
        });
        node.partition_mut(partition)?
            .dataset_mut(dataset)?
            .ingest(key, value)?;
        if let Some((bucket, dst_partition, dst_node, key, value)) = replica {
            let dst_node = dst_node.ok_or(ClusterError::UnknownPartition(dst_partition))?;
            if !self.node_is_alive(dst_node) {
                return Err(ClusterError::NodeDown(dst_node));
            }
            let ds = self.partition_mut(dst_partition)?.dataset_mut(dataset)?;
            ds.ensure_pending_bucket(bucket)?;
            ds.apply_replicated(bucket, dynahash_lsm::Entry::put(key, value))?;
        }
        Ok(())
    }

    /// Deletes one record through the routed write path: a tombstone is
    /// appended to the owning node's log and applied to the primary,
    /// primary-key, and secondary indexes (the old payload drives the
    /// secondary extractors, so index scans never return phantom hits for
    /// deleted records). While a rebalance is mid-flight the tombstone —
    /// secondary deletions included — is replicated to the destination's
    /// pending bucket, exactly like an insert. Returns whether the key was
    /// live.
    pub(crate) fn delete_routed(
        &mut self,
        dataset: DatasetId,
        key: &Key,
    ) -> Result<bool, ClusterError> {
        if let Some(active) = self.active_rebalances.get(&dataset) {
            if active.write_blocked {
                return Err(ClusterError::DatasetWriteBlocked(dataset));
            }
        }
        if let Some(bucket) = self.lost_bucket_of(dataset, key) {
            return Err(ClusterError::BucketDegraded { dataset, bucket });
        }
        let partition = self.route_key(dataset, key)?;
        if let Some(bucket) = self.heat_bucket_of(dataset, partition, key) {
            self.heat.note_write(dataset, bucket);
        }
        let node_id = self.node_of_partition(partition)?;
        let replica = self.active_rebalances.get(&dataset).and_then(|active| {
            let (bucket, _) = active.routing.lookup_key(key)?;
            let dst_partition = *active.shipped.get(&bucket)?;
            let dst_node = active.target.node_of(dst_partition);
            Some((bucket, dst_partition, dst_node))
        });
        let node = self.node_mut(node_id)?;
        if !node.is_alive() {
            return Err(ClusterError::NodeDown(node_id));
        }
        node.log.append(LogRecordBody::Delete {
            dataset,
            key: key.as_slice().to_vec(),
        });
        let ds = node.partition_mut(partition)?.dataset_mut(dataset)?;
        let old_value = ds.delete(key)?;
        if let Some((bucket, dst_partition, dst_node)) = replica {
            let dst_node = dst_node.ok_or(ClusterError::UnknownPartition(dst_partition))?;
            if !self.node_is_alive(dst_node) {
                return Err(ClusterError::NodeDown(dst_node));
            }
            let ds = self.partition_mut(dst_partition)?.dataset_mut(dataset)?;
            ds.ensure_pending_bucket(bucket)?;
            ds.apply_replicated_delete(bucket, key.clone(), old_value.as_ref())?;
        }
        Ok(old_value.is_some())
    }

    // -------------------------------------------------------------- scaling

    /// Adds a node with the configured number of partitions. The new node is
    /// empty until datasets are rebalanced onto it. Existing datasets get
    /// empty local storage created on the new partitions so that rebalanced
    /// buckets have somewhere to land.
    pub fn add_node(&mut self) -> Result<NodeId, ClusterError> {
        let new_topology = self
            .topology
            .with_added_node(self.config.partitions_per_node);
        // dhlint: allow(panic) — with_added_node always appends exactly one node
        let new_node_id = *new_topology.nodes().last().expect("node added");
        let new_partitions = new_topology.partitions_of_node(new_node_id);
        let mut node = NodeController::new(new_node_id, new_partitions.clone());
        for dataset in self.controller.dataset_ids() {
            let spec = self.controller.dataset(dataset)?.spec.clone();
            for p in &new_partitions {
                node.partition_mut(*p)?
                    .create_dataset(dataset, &spec, vec![]);
            }
        }
        self.nodes.insert(new_node_id, node);
        self.topology = new_topology;
        Ok(new_node_id)
    }

    /// Removes a node from the cluster. All datasets must have been
    /// rebalanced away from it first; the call fails if any partition on the
    /// node still holds data.
    pub fn decommission_node(&mut self, node: NodeId) -> Result<(), ClusterError> {
        let nc = self.node(node)?;
        let remaining: usize = nc
            .partitions()
            .map(|p| {
                p.dataset_ids()
                    .iter()
                    .map(|d| p.dataset(*d).map(|ds| ds.live_len()).unwrap_or(0))
                    .sum::<usize>()
            })
            .sum();
        if remaining > 0 {
            return Err(ClusterError::NodeNotEmpty(node, remaining));
        }
        self.nodes.remove(&node);
        self.topology = self.topology.without_node(node);
        // Drop the removed partitions from every dataset's partition list,
        // bumping the routing version so cached sessions stop dispatching
        // scans to partitions that no longer exist.
        for dataset in self.controller.dataset_ids() {
            let topo = self.topology.clone();
            let meta = self.controller.dataset_mut(dataset)?;
            let before = meta.partitions.len();
            meta.partitions.retain(|p| topo.node_of(*p).is_some());
            if meta.partitions.len() != before {
                meta.bump_partitions_version();
            }
        }
        Ok(())
    }

    /// Removes a permanently lost node from the topology. Unlike
    /// [`Cluster::decommission_node`] this does not require the node to be
    /// empty — its data is unreachable either way — but it does require
    /// that no dataset's global directory still routes to its partitions
    /// (i.e. every in-flight rebalance has re-planned around the loss and
    /// committed).
    pub fn remove_lost_node(&mut self, node: NodeId) -> Result<(), ClusterError> {
        if !self.node(node)?.is_lost() {
            return Err(ClusterError::Inconsistent(format!(
                "node {node} is not lost; use decommission_node"
            )));
        }
        let partitions = self.topology.partitions_of_node(node);
        for dataset in self.controller.dataset_ids() {
            let meta = self.controller.dataset(dataset)?;
            if let Some(dir) = &meta.directory {
                for p in &partitions {
                    if !dir.buckets_of_partition(*p).is_empty() {
                        return Err(ClusterError::Inconsistent(format!(
                            "dataset {dataset} still routes buckets to lost partition {p}"
                        )));
                    }
                }
            }
        }
        self.nodes.remove(&node);
        self.topology = self.topology.without_node(node);
        for dataset in self.controller.dataset_ids() {
            let topo = self.topology.clone();
            let meta = self.controller.dataset_mut(dataset)?;
            let before = meta.partitions.len();
            meta.partitions.retain(|p| topo.node_of(*p).is_some());
            if meta.partitions.len() != before {
                meta.bump_partitions_version();
            }
        }
        Ok(())
    }

    /// The topology that would result from removing a node (used to plan a
    /// scale-in rebalance before actually decommissioning the node).
    pub fn topology_without(&self, node: NodeId) -> ClusterTopology {
        self.topology.without_node(node)
    }

    // ------------------------------------------------------------- reporting

    /// Number of live records of a dataset on each partition.
    pub fn dataset_distribution(
        &self,
        dataset: DatasetId,
    ) -> Result<BTreeMap<PartitionId, usize>, ClusterError> {
        let mut out = BTreeMap::new();
        for p in self.topology.partitions() {
            let part = self.partition(p)?;
            if part.dataset_ids().contains(&dataset) {
                out.insert(p, part.dataset(dataset)?.live_len());
            }
        }
        Ok(out)
    }

    /// Total live records of a dataset.
    pub fn dataset_len(&self, dataset: DatasetId) -> Result<usize, ClusterError> {
        Ok(self.dataset_distribution(dataset)?.values().sum())
    }

    /// Total primary-index bytes of a dataset (what a global rebalance would
    /// have to move).
    pub fn dataset_primary_bytes(&self, dataset: DatasetId) -> Result<u64, ClusterError> {
        let mut total = 0u64;
        for p in self.topology.partitions() {
            let part = self.partition(p)?;
            if part.dataset_ids().contains(&dataset) {
                total += part.dataset(dataset)?.primary_storage_bytes() as u64;
            }
        }
        Ok(total)
    }

    /// Per-bucket byte sizes of a bucketed dataset across the whole cluster
    /// (reported by the NCs to the CC during rebalance initialization).
    pub fn dataset_bucket_sizes(
        &self,
        dataset: DatasetId,
    ) -> Result<BTreeMap<BucketId, u64>, ClusterError> {
        let mut out = BTreeMap::new();
        for p in self.topology.partitions() {
            let part = self.partition(p)?;
            if part.dataset_ids().contains(&dataset) {
                for (b, s) in part.dataset(dataset)?.bucket_sizes() {
                    *out.entry(b).or_default() += s;
                }
            }
        }
        Ok(out)
    }

    /// The partitions' local directories for a dataset (partition → buckets),
    /// used by the CC to refresh the global directory.
    pub fn local_directories(
        &self,
        dataset: DatasetId,
    ) -> Result<Vec<(PartitionId, Vec<BucketId>)>, ClusterError> {
        let mut out = Vec::new();
        for p in self.topology.partitions() {
            let part = self.partition(p)?;
            if part.dataset_ids().contains(&dataset) {
                let buckets = part.dataset(dataset)?.primary.bucket_ids();
                out.push((p, buckets));
            }
        }
        Ok(out)
    }

    /// Convenience: the scheme of a dataset.
    pub fn scheme_of(&self, dataset: DatasetId) -> Result<Scheme, ClusterError> {
        self.controller.scheme_of(dataset)
    }

    /// Enables or disables bucket splits for a dataset on every partition
    /// (splits are suspended for the duration of a rebalance).
    pub(crate) fn set_splits_enabled(
        &mut self,
        dataset: DatasetId,
        enabled: bool,
    ) -> Result<(), ClusterError> {
        for p in self.topology().partitions() {
            let part = self.partition_mut(p)?;
            if part.dataset_ids().contains(&dataset) {
                part.dataset_mut(dataset)?
                    .primary
                    .set_splits_enabled(enabled);
            }
        }
        Ok(())
    }

    /// Checks global consistency for a dataset: every record is stored on the
    /// partition its key routes to, and partitions' local directories are
    /// internally consistent. Used by integration and property tests.
    pub fn check_dataset_consistency(&self, dataset: DatasetId) -> Result<(), ClusterError> {
        let meta = self.controller.dataset(dataset)?;
        for p in self.topology.partitions() {
            let part = self.partition(p)?;
            if !part.dataset_ids().contains(&dataset) {
                continue;
            }
            let ds = part.dataset(dataset)?;
            if !ds.primary.is_consistent() {
                return Err(ClusterError::Inconsistent(format!(
                    "partition {p} local directory inconsistent"
                )));
            }
            for entry in ds.scan(dynahash_lsm::ScanOrder::Unordered) {
                let expected = meta
                    .route_key(&entry.key)
                    .ok_or(ClusterError::RoutingFailed(dataset))?;
                if expected != p {
                    return Err(ClusterError::Inconsistent(format!(
                        "key {:?} stored on {p} but routes to {expected}",
                        entry.key
                    )));
                }
            }
        }
        Ok(())
    }

    /// The full post-rebalance integrity contract, used by the failure-point
    /// matrix tests: whatever happened during the rebalance, after it reaches
    /// a terminal state the cluster must satisfy, all at once:
    ///
    /// 1. every record is stored on the partition its key routes to and the
    ///    local directories are internally consistent
    ///    ([`Cluster::check_dataset_consistency`]);
    /// 2. for bucketed schemes, the CC's global directory covers the whole
    ///    hash space **and** equals the directory rebuilt from the
    ///    partitions' local directories (directory agreement);
    /// 3. no partition holds leftover pending rebalance state (received
    ///    buckets were either installed or discarded);
    /// 4. the metadata log reached the terminal `Done` status for the
    ///    operation (WAL agreement).
    pub fn check_rebalance_integrity(
        &self,
        dataset: DatasetId,
        rebalance: RebalanceId,
    ) -> Result<(), ClusterError> {
        self.check_dataset_consistency(dataset)?;
        let meta = self.controller.dataset(dataset)?;
        if let Some(dir) = &meta.directory {
            if !dir.covers_full_space() {
                return Err(ClusterError::Inconsistent(
                    "global directory does not cover the hash space".to_string(),
                ));
            }
            let refreshed = GlobalDirectory::refresh_from_locals(self.local_directories(dataset)?)
                .map_err(ClusterError::Core)?;
            if &refreshed != dir {
                return Err(ClusterError::Inconsistent(
                    "local directories disagree with the CC's global directory".to_string(),
                ));
            }
        }
        for p in self.topology.partitions() {
            let part = self.partition(p)?;
            if !part.dataset_ids().contains(&dataset) {
                continue;
            }
            let ds = part.dataset(dataset)?;
            if !ds.primary.pending_bucket_ids().is_empty() || ds.primary.pending_storage_bytes() > 0
            {
                return Err(ClusterError::Inconsistent(format!(
                    "partition {p} still holds pending rebalance state"
                )));
            }
        }
        match self.controller.metadata_log.rebalance_status(rebalance) {
            RebalanceLogStatus::Done => Ok(()),
            status => Err(ClusterError::Inconsistent(format!(
                "rebalance {rebalance} has non-terminal log status {status:?}"
            ))),
        }
    }
}

/// White-box access to a cluster, handed out by [`Cluster::admin`].
///
/// This is the clearly named escape hatch around the [`Cluster::session`]
/// API: it routes with the CC's live state and touches partitions directly,
/// bypassing the versioned-directory redirect protocol. Integration tests
/// use it to verify *physical* placement ("is the record stored where its
/// key routes?"); nothing on the data path should.
pub struct Admin<'a> {
    cluster: &'a mut Cluster,
}

impl Admin<'_> {
    /// Routes a key with the CC's current (always-fresh) routing state.
    pub fn route_key(&self, dataset: DatasetId, key: &Key) -> Result<PartitionId, ClusterError> {
        self.cluster.route_key(dataset, key)
    }

    /// Direct read access to a partition.
    pub fn partition(&self, id: PartitionId) -> Result<&Partition, ClusterError> {
        self.cluster.partition(id)
    }

    /// Direct mutable access to a partition.
    pub fn partition_mut(&mut self, id: PartitionId) -> Result<&mut Partition, ClusterError> {
        self.cluster.partition_mut(id)
    }

    /// Unrouted batch ingestion with the CC's live routing state (test
    /// seeding; the sanctioned feed path is
    /// [`crate::session::Session::ingest`]).
    pub fn ingest(
        &mut self,
        dataset: DatasetId,
        records: impl IntoIterator<Item = (Key, Value)>,
    ) -> Result<IngestReport, ClusterError> {
        self.cluster.ingest(dataset, records)
    }

    /// Memory accounting over every resident primary-index entry of a
    /// dataset across the cluster: records, logical bytes, and the
    /// inline/heap key split. Shared disk runs (reference components from
    /// splits) are deduplicated per partition, so the totals reflect actual
    /// residency. The `scale` experiments figure derives bytes-per-record
    /// from this.
    pub fn storage_stats(&self, dataset: DatasetId) -> Result<StorageFootprint, ClusterError> {
        let mut acc = StorageFootprint::default();
        for p in self.cluster.topology().partitions() {
            let part = self.cluster.partition(p)?;
            if part.dataset_ids().contains(&dataset) {
                acc.absorb(&part.dataset(dataset)?.primary.storage_footprint());
            }
        }
        Ok(acc)
    }

    /// Cheap structural directory probe for continuous soak invariants:
    /// checks the CC's global directory covers the full hash space and its
    /// O(1) slot array agrees with the bucket assignment
    /// ([`GlobalDirectory::check_invariants`]). `O(2^D)` — no record scans —
    /// so harnesses can call it between *every* step; the full
    /// route-every-record [`Cluster::check_rebalance_integrity`] stays
    /// reserved for rebalance boundaries.
    pub fn check_directory_invariants(&self, dataset: DatasetId) -> Result<(), ClusterError> {
        let meta = self.cluster.controller.dataset(dataset)?;
        if let Some(dir) = &meta.directory {
            dir.check_invariants()
                .map_err(|e| ClusterError::Inconsistent(e.to_string()))?;
        }
        Ok(())
    }

    /// The cluster health surface: every node with its liveness state
    /// (alive / crashed / permanently lost) plus the fault-plane counters —
    /// transient faults absorbed, retries, reroutes, and the datasets
    /// serving in degraded mode because a bucket's only copy died with a
    /// lost node. This is how operators (and the chaos gates) observe
    /// degraded serving without scraping partitions.
    pub fn health(&self) -> ClusterHealth {
        ClusterHealth {
            nodes: self
                .cluster
                .topology()
                .nodes()
                .into_iter()
                .filter_map(|n| Some((n, self.cluster.node(n).ok()?.state())))
                .collect(),
            stats: self.cluster.fault_stats().clone(),
            jobs: self.cluster.job_progress.values().cloned().collect(),
        }
    }

    /// One-shot degraded-dataset repair: restores every currently-lost
    /// bucket of the dataset from the operator-supplied feed by driving a
    /// [`crate::repair::RepairJob`] end to end — plan, load, prepare,
    /// commit, finalize — re-planning around nodes lost mid-repair. Returns
    /// a no-op report (no log records forced) when nothing is degraded, so
    /// repeating a repair is free and idempotent.
    pub fn repair_dataset(
        &mut self,
        dataset: DatasetId,
        feed: &[(Key, Value)],
    ) -> Result<crate::repair::RepairReport, ClusterError> {
        if self
            .cluster
            .fault_stats()
            .degraded_buckets(dataset)
            .is_empty()
        {
            return Ok(crate::repair::RepairReport::noop(dataset));
        }
        let mut job = crate::repair::RepairJob::plan(self.cluster, dataset)?;
        // Each replan removes at least one dead participant, so the loop is
        // bounded by the cluster size.
        let max_replans = self.cluster.topology().nodes().len() + 1;
        let mut replans = 0usize;
        loop {
            match job.load(self.cluster, feed) {
                Ok(()) => break,
                Err(ClusterError::NodeLost(_) | ClusterError::NodeDown(_))
                    if replans < max_replans =>
                {
                    job.replan(self.cluster)?;
                    replans += 1;
                }
                Err(e) => {
                    job.abort(self.cluster)?;
                    job.finalize(self.cluster)?;
                    return Err(e);
                }
            }
        }
        job.prepare(self.cluster)?;
        match job.decide(self.cluster)? {
            RebalanceOutcome::Committed => job.commit(self.cluster)?,
            RebalanceOutcome::Aborted => {}
        }
        job.finalize(self.cluster)
    }

    /// The merged heat snapshot of a dataset: the decayed per-bucket op
    /// counters (zero while heat tracking is disarmed) joined with current
    /// storage residency — record counts and resident bytes per bucket —
    /// aggregated per partition. This is the monitor half of the control
    /// plane's monitor→decide→act loop, and an operator's view of where a
    /// dataset's traffic concentrates.
    pub fn heat(&self, dataset: DatasetId) -> Result<HeatReport, ClusterError> {
        let ops = self.cluster.heat.ops_snapshot(dataset);
        let mut report = HeatReport::default();
        for (p, buckets) in self.cluster.local_directories(dataset)? {
            let ds = self.cluster.partition(p)?.dataset(dataset)?;
            let sizes: BTreeMap<BucketId, u64> = ds.bucket_sizes().into_iter().collect();
            let records: BTreeMap<BucketId, u64> = ds
                .primary
                .bucket_record_counts()
                .into_iter()
                .map(|(b, n)| (b, n as u64))
                .collect();
            let mut agg = BucketHeat::default();
            for b in buckets {
                let mut h = ops.get(&b).copied().unwrap_or_default();
                h.records = records.get(&b).copied().unwrap_or(0);
                h.resident_bytes = sizes.get(&b).copied().unwrap_or(0);
                report.per_bucket.entry(b).or_default().absorb(&h);
                agg.absorb(&h);
            }
            report.per_partition.insert(p, agg);
        }
        Ok(report)
    }

    /// Materializes every deferred secondary rebuild of a dataset across the
    /// cluster — the operator's way to pre-pay the lazy rebuild (e.g. before
    /// a query burst) instead of letting the first `index_scan` do it.
    /// Returns the number of records whose secondary entries were rebuilt.
    pub fn warm_indexes(&mut self, dataset: DatasetId) -> Result<u64, ClusterError> {
        let mut records = 0u64;
        for p in self.cluster.topology().partitions() {
            let part = self.cluster.partition_mut(p)?;
            if !part.dataset_ids().contains(&dataset) {
                continue;
            }
            records += part.dataset_mut(dataset)?.warm_secondary_indexes();
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynahash_lsm::Bytes;

    fn records(n: u64) -> Vec<(Key, Value)> {
        (0..n)
            .map(|i| (Key::from_u64(i), Bytes::from(vec![(i % 251) as u8; 64])))
            .collect()
    }

    #[test]
    fn create_and_ingest_bucketed_dataset() {
        let mut cluster = Cluster::new(2);
        let ds = cluster
            .create_dataset(DatasetSpec::new("orders", Scheme::static_hash_256()))
            .unwrap();
        let report = cluster.ingest(ds, records(2000)).unwrap();
        assert_eq!(report.records, 2000);
        assert!(report.elapsed > SimDuration::ZERO);
        assert_eq!(cluster.dataset_len(ds).unwrap(), 2000);
        cluster.check_dataset_consistency(ds).unwrap();
        // hash partitioning spreads records across all 8 partitions
        let dist = cluster.dataset_distribution(ds).unwrap();
        assert_eq!(dist.len(), 8);
        assert!(dist.values().all(|&n| n > 100));
    }

    #[test]
    fn create_and_ingest_hashing_dataset() {
        let mut cluster = Cluster::new(2);
        let ds = cluster
            .create_dataset(DatasetSpec::new("orders", Scheme::Hashing))
            .unwrap();
        cluster.ingest(ds, records(1000)).unwrap();
        assert_eq!(cluster.dataset_len(ds).unwrap(), 1000);
        cluster.check_dataset_consistency(ds).unwrap();
    }

    #[test]
    fn dynahash_dataset_splits_buckets_during_ingestion() {
        let mut cluster = Cluster::with_config(
            2,
            ClusterConfig {
                partitions_per_node: 2,
                cost_model: CostModel::default(),
            },
        );
        let ds = cluster
            .create_dataset(
                DatasetSpec::new("lineitem", Scheme::dynahash(8 * 1024, 4))
                    .with_memtable_budget(2 * 1024),
            )
            .unwrap();
        cluster.ingest(ds, records(4000)).unwrap();
        cluster.check_dataset_consistency(ds).unwrap();
        let locals = cluster.local_directories(ds).unwrap();
        let total_buckets: usize = locals.iter().map(|(_, b)| b.len()).sum();
        assert!(
            total_buckets > 4,
            "ingestion should have split buckets: {total_buckets}"
        );
    }

    #[test]
    fn add_node_creates_empty_storage_for_existing_datasets() {
        let mut cluster = Cluster::new(2);
        let ds = cluster
            .create_dataset(DatasetSpec::new("orders", Scheme::static_hash_256()))
            .unwrap();
        cluster.ingest(ds, records(500)).unwrap();
        let new_node = cluster.add_node().unwrap();
        assert_eq!(cluster.topology().num_nodes(), 3);
        // the new node's partitions exist and are empty for the dataset
        for p in cluster.topology().partitions_of_node(new_node) {
            assert_eq!(
                cluster
                    .partition(p)
                    .unwrap()
                    .dataset(ds)
                    .unwrap()
                    .live_len(),
                0
            );
        }
        // routing is unchanged until a rebalance updates the directory
        cluster.check_dataset_consistency(ds).unwrap();
    }

    #[test]
    fn decommission_requires_empty_node() {
        let mut cluster = Cluster::new(2);
        let ds = cluster
            .create_dataset(DatasetSpec::new("orders", Scheme::static_hash_256()))
            .unwrap();
        cluster.ingest(ds, records(500)).unwrap();
        let victim = NodeId(1);
        let err = cluster.decommission_node(victim);
        assert!(matches!(err, Err(ClusterError::NodeNotEmpty(_, _))));
        // an empty cluster node can be removed
        let fresh = cluster.add_node().unwrap();
        cluster.decommission_node(fresh).unwrap();
        assert_eq!(cluster.topology().num_nodes(), 2);
    }

    #[test]
    fn bucket_sizes_and_local_directories_cover_dataset() {
        let mut cluster = Cluster::new(2);
        let ds = cluster
            .create_dataset(DatasetSpec::new(
                "orders",
                Scheme::StaticHash { num_buckets: 16 },
            ))
            .unwrap();
        cluster.ingest(ds, records(1000)).unwrap();
        let sizes = cluster.dataset_bucket_sizes(ds).unwrap();
        assert_eq!(sizes.len(), 16);
        let locals = cluster.local_directories(ds).unwrap();
        let total: usize = locals.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 16);
        assert!(cluster.dataset_primary_bytes(ds).unwrap() > 0);
    }
}
