//! The global directory kept at the Cluster Controller.
//!
//! The global directory maps every bucket of a dataset to the storage
//! partition that owns it (Section III). Its global depth `D` is the maximum
//! depth over all buckets, so a lookup uses the `D` low-order bits of a key's
//! hash. The directory may be *stale* with respect to local bucket splits —
//! routing stays correct because a split bucket's children cover exactly the
//! parent's hash range — and is refreshed from the partitions' local
//! directories when a rebalance starts.
//!
//! The directory is **versioned**: every mutation (a [`GlobalDirectory::reassign`],
//! a [`GlobalDirectory::remove`], or an [`GlobalDirectory::install`]/refresh
//! absorbing local splits or a rebalance commit) bumps a monotonically
//! increasing version and appends the changed buckets to a bounded change
//! log. Clients (query coordinators and `Session` handles in the cluster
//! crate) cache a snapshot of the directory together with its version; when
//! a partition rejects a stale-routed request, the client catches up either
//! with a cheap [`DirectoryDelta`] ([`GlobalDirectory::delta_since`]) or — if
//! the log no longer reaches back far enough — a full snapshot.
//!
//! Lookups are **O(1)**: alongside the assignment map the directory
//! materializes the textbook extendible-hashing slot array — `2^D` entries
//! indexed by the `D` low-order bits of a key's hash, each pointing at the
//! bucket covering that slot. A bucket of depth `d` owns the `2^(D-d)` slots
//! of its lattice (`bits + k·2^d`). The array is maintained incrementally:
//! it doubles when a mutation raises the global depth, halves when the last
//! deepest bucket disappears, and split/merge/reassign rewrite only the
//! affected slot lattices — delta catch-up never rebuilds the whole table.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use dynahash_lsm::bucket::{hash_key, BucketId};
use dynahash_lsm::entry::Key;
use dynahash_lsm::slots::SlotArray;

use crate::topology::PartitionId;
use crate::{CoreError, Result};

/// How many directory changes are retained for delta catch-up. Sessions that
/// fall further behind than this fall back to a full snapshot refresh.
const MAX_CHANGE_LOG: usize = 1024;

/// One logged directory change: the bucket now maps to `Some(partition)`, or
/// was removed from the directory (`None`).
type DirectoryChange = (u64, BucketId, Option<PartitionId>);

/// The changes between two directory versions, applied by a client to bring
/// a cached snapshot up to date without re-fetching the whole directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectoryDelta {
    /// The version the delta starts from (the client's cached version).
    pub from_version: u64,
    /// The version the delta brings the client to.
    pub to_version: u64,
    /// Per-bucket changes, already deduplicated to the latest state:
    /// `Some(partition)` assigns (or re-assigns) the bucket, `None` removes
    /// it (e.g. a split parent superseded by its children).
    pub changes: Vec<(BucketId, Option<PartitionId>)>,
}

impl DirectoryDelta {
    /// True if the delta carries no changes (the client was already current).
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

/// The CC's mapping from buckets to partitions.
///
/// Equality compares the *assignment only*: two directories with the same
/// bucket-to-partition mapping are equal even if they reached it at
/// different versions (integrity checks rebuild a fresh directory from the
/// partitions' local views and compare it against the CC's copy).
#[derive(Clone)]
pub struct GlobalDirectory {
    assignment: BTreeMap<BucketId, PartitionId>,
    /// The extendible-hashing slot array (shared implementation with the
    /// partitions' `LocalDirectory`): `2^D` entries indexed by the low-order
    /// `D` bits of a key's hash, `D` being the cached global depth. `None`
    /// marks a hash range no bucket currently covers (transient mid-delta
    /// state).
    slots: SlotArray<(BucketId, PartitionId)>,
    /// Monotonic version, bumped by every mutation.
    version: u64,
    /// Bounded log of recent changes, each tagged with the version it
    /// produced. Multiple entries may share a version (a refresh or a
    /// rebalance commit installs all of its changes under one bump).
    log: VecDeque<DirectoryChange>,
    /// The oldest version `delta_since` can still serve: requests for
    /// anything older must fall back to a full snapshot.
    oldest_delta_base: u64,
}

impl PartialEq for GlobalDirectory {
    fn eq(&self, other: &Self) -> bool {
        self.assignment == other.assignment
    }
}

impl Eq for GlobalDirectory {}

impl fmt::Debug for GlobalDirectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobalDirectory")
            .field("assignment", &self.assignment)
            .field("global_depth", &self.slots.depth())
            .field("version", &self.version)
            .finish()
    }
}

impl Default for GlobalDirectory {
    fn default() -> Self {
        GlobalDirectory {
            assignment: BTreeMap::new(),
            slots: SlotArray::new(),
            version: 1,
            log: VecDeque::new(),
            oldest_delta_base: 1,
        }
    }
}

impl GlobalDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_assignment(assignment: BTreeMap<BucketId, PartitionId>) -> Self {
        let mut dir = GlobalDirectory {
            assignment,
            ..Self::default()
        };
        dir.rebuild_slots();
        dir
    }

    // ------------------------------------------------ slot-array maintenance

    /// Rebuilds the slot array from the assignment. Only construction paths
    /// use this; incremental mutations go through
    /// [`GlobalDirectory::insert_bucket`] /
    /// [`GlobalDirectory::remove_bucket`].
    fn rebuild_slots(&mut self) {
        let entries: Vec<(BucketId, (BucketId, PartitionId))> = self
            .assignment
            .iter()
            .map(|(b, p)| (*b, (*b, *p)))
            .collect();
        self.slots.rebuild(&entries);
    }

    /// Assigns (or re-assigns) a bucket, keeping the slot array in sync.
    /// Returns the previous owner.
    fn insert_bucket(&mut self, bucket: BucketId, to: PartitionId) -> Option<PartitionId> {
        let prev = self.assignment.insert(bucket, to);
        if prev.is_none() {
            self.slots.insert(bucket, (bucket, to));
        } else {
            self.slots.update(bucket, (bucket, to));
        }
        self.debug_validate_caches();
        prev
    }

    /// Removes a bucket, clearing its slots and shrinking the array if it
    /// was the last bucket at the global depth.
    fn remove_bucket(&mut self, bucket: &BucketId) -> Option<PartitionId> {
        let removed = self.assignment.remove(bucket)?;
        self.slots.remove(*bucket, |(b, _)| b == bucket);
        self.debug_validate_caches();
        Some(removed)
    }

    /// Debug-build check that the cached depth (and thus `num_slots`) agrees
    /// with a recomputation over the assignment keys.
    #[inline]
    fn debug_validate_caches(&self) {
        #[cfg(debug_assertions)]
        {
            let recomputed = self.assignment.keys().map(|b| b.depth).max().unwrap_or(0);
            self.slots.debug_validate(recomputed);
        }
    }

    /// Creates a directory with `2^depth` buckets assigned round-robin over
    /// the given partitions — the initial layout when a dataset is created.
    pub fn initial(depth: u8, partitions: &[PartitionId]) -> Result<Self> {
        if partitions.is_empty() {
            return Err(CoreError::EmptyTopology);
        }
        let mut assignment = BTreeMap::new();
        for bits in 0..(1u64 << depth) as u32 {
            let bucket = BucketId::new(bits, depth);
            let partition = partitions[(bits as usize) % partitions.len()];
            assignment.insert(bucket, partition);
        }
        Ok(GlobalDirectory::with_assignment(assignment))
    }

    /// Builds a directory from an explicit assignment.
    pub fn from_assignment(
        assignment: impl IntoIterator<Item = (BucketId, PartitionId)>,
    ) -> Result<Self> {
        let dir = GlobalDirectory::with_assignment(assignment.into_iter().collect());
        dir.check_consistency()?;
        Ok(dir)
    }

    fn check_consistency(&self) -> Result<()> {
        let buckets: Vec<BucketId> = self.assignment.keys().copied().collect();
        for (i, a) in buckets.iter().enumerate() {
            for b in buckets.iter().skip(i + 1) {
                if a.covers(b) || b.covers(a) {
                    return Err(CoreError::InconsistentDirectory(format!(
                        "buckets {a} and {b} overlap"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The global depth `D`: the maximum bucket depth. Cached by the slot
    /// array and maintained incrementally (no key scan).
    pub fn global_depth(&self) -> u8 {
        self.slots.depth()
    }

    /// Number of directory slots, `2^D`.
    pub fn num_slots(&self) -> u64 {
        self.slots.num_slots() as u64
    }

    /// Number of distinct buckets.
    pub fn num_buckets(&self) -> usize {
        self.assignment.len()
    }

    /// Looks up the bucket and partition for a hash value: one slot-array
    /// probe on the hash's low-order `D` bits, independent of the number of
    /// buckets.
    pub fn lookup_hash(&self, hash: u64) -> Option<(BucketId, PartitionId)> {
        self.slots.lookup(hash)
    }

    /// Looks up the bucket and partition for a key.
    pub fn lookup_key(&self, key: &Key) -> Option<(BucketId, PartitionId)> {
        self.lookup_hash(hash_key(key))
    }

    /// The partition owning a key; errors if the directory does not cover the
    /// key's hash (which means the directory was built incorrectly).
    pub fn partition_of_key(&self, key: &Key) -> Result<PartitionId> {
        self.lookup_key(key)
            .map(|(_, p)| p)
            .ok_or_else(|| CoreError::UnassignedBucket(BucketId::of_key(key, 0)))
    }

    /// The partition a bucket is assigned to.
    ///
    /// Exact match first; otherwise the covering ancestor is resolved through
    /// the slot array (the CC may still hold the unsplit parent of a locally
    /// split bucket): any of the bucket's slots points either at that
    /// ancestor or at an unrelated bucket, so one probe plus one `covers`
    /// check replaces the old O(#buckets) ancestor scan.
    pub fn partition_of_bucket(&self, bucket: &BucketId) -> Option<PartitionId> {
        if let Some(p) = self.assignment.get(bucket) {
            return Some(*p);
        }
        match self.slots.probe_bits(bucket.bits) {
            Some((owner, p)) if owner.covers(bucket) => Some(p),
            _ => None,
        }
    }

    /// All buckets assigned to a partition.
    pub fn buckets_of_partition(&self, partition: PartitionId) -> Vec<BucketId> {
        self.assignment
            .iter()
            .filter(|(_, p)| **p == partition)
            .map(|(b, _)| *b)
            .collect()
    }

    /// All distinct partitions referenced by the directory.
    pub fn partitions(&self) -> Vec<PartitionId> {
        let mut v: Vec<PartitionId> = self.assignment.values().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Iterates (bucket, partition) pairs in bucket order.
    pub fn iter(&self) -> impl Iterator<Item = (BucketId, PartitionId)> + '_ {
        self.assignment.iter().map(|(b, p)| (*b, *p))
    }

    /// The normalized size of a partition: the sum of `2^(D-d)` over its
    /// buckets (Section V-A). Partitions with no buckets have load 0.
    pub fn partition_load(&self, partition: PartitionId) -> u64 {
        let d = self.global_depth();
        self.assignment
            .iter()
            .filter(|(_, p)| **p == partition)
            .map(|(b, _)| b.normalized_size(d))
            .sum()
    }

    /// The load-balance factor over the given partitions: the maximum
    /// partition load divided by the average load. 1.0 is a perfect balance.
    pub fn load_balance_factor(&self, partitions: &[PartitionId]) -> f64 {
        if partitions.is_empty() {
            return 1.0;
        }
        let loads: Vec<u64> = partitions.iter().map(|p| self.partition_load(*p)).collect();
        let max = *loads.iter().max().unwrap_or(&0) as f64;
        let avg = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }

    /// Refreshes the directory from the partitions' local directories
    /// (the initialization phase of a rebalance: the CC contacts all NCs to
    /// get their latest local directories). Each entry of `local_views` is a
    /// partition and the buckets its local directory currently holds; the
    /// refreshed directory keeps each bucket assigned to the partition that
    /// reported it.
    pub fn refresh_from_locals(
        local_views: impl IntoIterator<Item = (PartitionId, Vec<BucketId>)>,
    ) -> Result<GlobalDirectory> {
        let mut assignment = BTreeMap::new();
        for (partition, buckets) in local_views {
            for b in buckets {
                if assignment.insert(b, partition).is_some() {
                    return Err(CoreError::InconsistentDirectory(format!(
                        "bucket {b} reported by two partitions"
                    )));
                }
            }
        }
        let dir = GlobalDirectory::with_assignment(assignment);
        dir.check_consistency()?;
        Ok(dir)
    }

    // ------------------------------------------------- versioned mutations

    /// The directory version. Bumped by every mutation; cached client
    /// snapshots carry the version they were taken at.
    pub fn version(&self) -> u64 {
        self.version
    }

    fn push_change(&mut self, bucket: BucketId, to: Option<PartitionId>) {
        self.log.push_back((self.version, bucket, to));
        while self.log.len() > MAX_CHANGE_LOG {
            if let Some((v, _, _)) = self.log.pop_front() {
                // Changes up to and including version `v` may now be missing
                // from the log, so `v` is the oldest base a delta can serve.
                self.oldest_delta_base = self.oldest_delta_base.max(v);
            }
        }
    }

    /// Reassigns a bucket to a new partition (used when applying a rebalance
    /// plan at commit time). Bumps the version when the ownership actually
    /// changes; a no-op reassignment leaves the version untouched so clients
    /// are not forced through spurious refreshes.
    pub fn reassign(&mut self, bucket: BucketId, to: PartitionId) {
        if self.assignment.get(&bucket) == Some(&to) {
            return;
        }
        self.insert_bucket(bucket, to);
        self.version += 1;
        self.push_change(bucket, Some(to));
    }

    /// Removes a bucket from the directory, bumping the version.
    ///
    /// Removal *must* bump: before versioning, `remove` and
    /// `refresh_from_locals` could silently diverge — a bucket dropped
    /// mid-refresh left the directory with a different assignment under what
    /// looked like the same routing state, so cached clients had no way to
    /// notice (see the `removal_bumps_version_*` regression test).
    pub fn remove(&mut self, bucket: &BucketId) -> Option<PartitionId> {
        let removed = self.remove_bucket(bucket);
        if removed.is_some() {
            self.version += 1;
            self.push_change(*bucket, None);
        }
        removed
    }

    /// Replaces this directory's assignment with `new`'s, recording the
    /// per-bucket differences in the change log under a single version bump.
    /// Used by the rebalance commit (installing the planned directory) and by
    /// the initialization-phase refresh (absorbing local bucket splits).
    /// Leaves the version untouched when nothing changed.
    ///
    /// Only the differing buckets' slot lattices are rewritten: removals are
    /// applied first (a split's parent vanishes before its children land, a
    /// merge's children before the parent), so the slot array transitions
    /// through disjoint intermediate states and never needs a full rebuild.
    pub fn install(&mut self, new: &GlobalDirectory) {
        let mut changes: Vec<(BucketId, Option<PartitionId>)> = Vec::new();
        for bucket in self.assignment.keys() {
            if !new.assignment.contains_key(bucket) {
                changes.push((*bucket, None));
            }
        }
        for (bucket, partition) in &new.assignment {
            if self.assignment.get(bucket) != Some(partition) {
                changes.push((*bucket, Some(*partition)));
            }
        }
        if changes.is_empty() {
            return;
        }
        self.version += 1;
        for (bucket, to) in changes {
            match to {
                Some(p) => {
                    self.insert_bucket(bucket, p);
                }
                None => {
                    self.remove_bucket(&bucket);
                }
            }
            self.push_change(bucket, to);
        }
    }

    /// Refreshes this directory in place from the partitions' local
    /// directories, bumping the version if any bucket changed (a split
    /// replaced a parent with its children, a bucket moved, or one vanished).
    pub fn refresh(
        &mut self,
        local_views: impl IntoIterator<Item = (PartitionId, Vec<BucketId>)>,
    ) -> Result<()> {
        let fresh = GlobalDirectory::refresh_from_locals(local_views)?;
        self.install(&fresh);
        Ok(())
    }

    /// The changes needed to bring a snapshot taken at `since` up to the
    /// current version, or `None` when the change log no longer reaches back
    /// that far (the client must take a full snapshot instead). A client that
    /// is already current gets an empty delta.
    pub fn delta_since(&self, since: u64) -> Option<DirectoryDelta> {
        if since > self.version || since < self.oldest_delta_base {
            return None;
        }
        // Later entries supersede earlier ones for the same bucket.
        let mut latest: BTreeMap<BucketId, Option<PartitionId>> = BTreeMap::new();
        for (v, bucket, to) in &self.log {
            if *v > since {
                latest.insert(*bucket, *to);
            }
        }
        Some(DirectoryDelta {
            from_version: since,
            to_version: self.version,
            changes: latest.into_iter().collect(),
        })
    }

    /// Applies a delta produced by [`GlobalDirectory::delta_since`] to this
    /// (cached) directory, bringing it to the delta's target version. Errors
    /// if the delta does not start at this directory's version.
    ///
    /// Like [`GlobalDirectory::install`], catch-up is incremental: removals
    /// first, then assignments, each rewriting only its own slot lattice —
    /// a stale cache never rebuilds its whole slot array.
    pub fn apply_delta(&mut self, delta: &DirectoryDelta) -> Result<()> {
        if delta.from_version != self.version {
            return Err(CoreError::InconsistentDirectory(format!(
                "delta starts at version {} but the cached directory is at {}",
                delta.from_version, self.version
            )));
        }
        for (bucket, to) in &delta.changes {
            if to.is_none() {
                self.remove_bucket(bucket);
            }
        }
        for (bucket, to) in &delta.changes {
            if let Some(p) = to {
                self.insert_bucket(*bucket, *p);
            }
        }
        self.version = delta.to_version;
        Ok(())
    }

    /// The total number of hash-space slots (at global depth) covered — used
    /// by property tests to check full coverage: must equal `2^D`.
    pub fn covered_slots(&self) -> u64 {
        let d = self.global_depth();
        self.assignment.keys().map(|b| b.normalized_size(d)).sum()
    }

    /// True if every hash value maps to exactly one bucket.
    pub fn covers_full_space(&self) -> bool {
        !self.assignment.is_empty() && self.covered_slots() == self.num_slots()
    }

    /// Cheap structural self-check: full hash-space coverage plus agreement
    /// between the O(1) slot array and the assignment map — every slot must
    /// resolve to a bucket that covers it and is assigned to the partition
    /// the slot reports. `O(2^D + #buckets)`, no record scans, so soak
    /// harnesses can run it *continuously between steps* (the full
    /// route-every-record integrity check stays reserved for rebalance
    /// boundaries).
    pub fn check_invariants(&self) -> Result<()> {
        if !self.covers_full_space() {
            return Err(CoreError::InconsistentDirectory(format!(
                "directory covers {}/{} slots",
                self.covered_slots(),
                self.num_slots()
            )));
        }
        for slot in 0..self.num_slots() {
            let Some((bucket, partition)) = self.lookup_hash(slot) else {
                return Err(CoreError::InconsistentDirectory(format!(
                    "slot {slot:#x} resolves to no bucket"
                )));
            };
            let mask = (1u64 << bucket.depth) - 1;
            if u64::from(bucket.bits) != slot & mask {
                return Err(CoreError::InconsistentDirectory(format!(
                    "slot {slot:#x} resolves to non-covering bucket {bucket}"
                )));
            }
            if self.assignment.get(&bucket) != Some(&partition) {
                return Err(CoreError::InconsistentDirectory(format!(
                    "slot {slot:#x} maps {bucket} to {partition:?} but the \
                     assignment disagrees"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynahash_lsm::rng::SplitMix64;

    fn parts(n: u32) -> Vec<PartitionId> {
        (0..n).map(PartitionId).collect()
    }

    #[test]
    fn initial_directory_covers_space_and_balances() {
        let dir = GlobalDirectory::initial(4, &parts(4)).unwrap();
        assert_eq!(dir.num_buckets(), 16);
        assert_eq!(dir.global_depth(), 4);
        assert!(dir.covers_full_space());
        for p in parts(4) {
            assert_eq!(dir.buckets_of_partition(p).len(), 4);
            assert_eq!(dir.partition_load(p), 4);
        }
        assert!((dir.load_balance_factor(&parts(4)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn initial_requires_partitions() {
        assert!(matches!(
            GlobalDirectory::initial(4, &[]),
            Err(CoreError::EmptyTopology)
        ));
    }

    #[test]
    fn lookup_routes_keys_to_owning_bucket() {
        let dir = GlobalDirectory::initial(3, &parts(2)).unwrap();
        for i in 0..1000u64 {
            let k = Key::from_u64(i);
            let (b, p) = dir.lookup_key(&k).unwrap();
            assert!(b.contains_key(&k));
            assert_eq!(dir.partition_of_key(&k).unwrap(), p);
        }
    }

    #[test]
    fn stale_directory_still_routes_split_buckets() {
        // CC holds bucket 00 (depth 2); locally it split into 000 and 100.
        let dir = GlobalDirectory::initial(2, &parts(2)).unwrap();
        let child = BucketId::new(0b100, 3);
        // partition_of_bucket falls back to the covering ancestor
        let p = dir.partition_of_bucket(&child).unwrap();
        assert_eq!(p, dir.partition_of_bucket(&BucketId::new(0, 2)).unwrap());
    }

    #[test]
    fn refresh_from_locals_rejects_duplicates() {
        let err = GlobalDirectory::refresh_from_locals(vec![
            (PartitionId(0), vec![BucketId::new(0, 1)]),
            (PartitionId(1), vec![BucketId::new(0, 1)]),
        ]);
        assert!(err.is_err());
        let err2 = GlobalDirectory::refresh_from_locals(vec![
            (PartitionId(0), vec![BucketId::new(0, 1)]),
            (PartitionId(1), vec![BucketId::new(0, 2)]),
        ]);
        assert!(err2.is_err(), "overlapping buckets must be rejected");
    }

    #[test]
    fn refresh_from_locals_reflects_splits() {
        let dir = GlobalDirectory::refresh_from_locals(vec![
            (
                PartitionId(0),
                vec![BucketId::new(0b000, 3), BucketId::new(0b100, 3)],
            ),
            (PartitionId(1), vec![BucketId::new(0b01, 2)]),
            (PartitionId(2), vec![BucketId::new(0b10, 2)]),
            (PartitionId(3), vec![BucketId::new(0b11, 2)]),
        ])
        .unwrap();
        assert_eq!(dir.global_depth(), 3);
        assert!(dir.covers_full_space());
        assert_eq!(dir.partition_load(PartitionId(0)), 2);
        assert_eq!(dir.partition_load(PartitionId(1)), 2);
    }

    #[test]
    fn mixed_depth_loads_follow_normalized_sizes() {
        let dir = GlobalDirectory::from_assignment(vec![
            (BucketId::new(0, 1), PartitionId(0)),     // size 4 at D=3
            (BucketId::new(0b01, 2), PartitionId(1)),  // size 2
            (BucketId::new(0b011, 3), PartitionId(1)), // size 1
            (BucketId::new(0b111, 3), PartitionId(2)), // size 1
        ])
        .unwrap();
        assert_eq!(dir.global_depth(), 3);
        assert_eq!(dir.partition_load(PartitionId(0)), 4);
        assert_eq!(dir.partition_load(PartitionId(1)), 3);
        assert_eq!(dir.partition_load(PartitionId(2)), 1);
        assert!(dir.covers_full_space());
        let f = dir.load_balance_factor(&parts(3));
        assert!(f > 1.0);
    }

    #[test]
    fn prop_initial_directories_route_every_key() {
        for case in 0..16u64 {
            let seed = 0x61d0_0000 + case;
            let mut rng = SplitMix64::seed_from_u64(seed);
            let depth = rng.gen_range(0..8) as u8;
            let nparts = rng.gen_range(1..16) as u32;
            let nkeys = rng.gen_range(1..50) as usize;
            let dir = GlobalDirectory::initial(depth, &parts(nparts)).unwrap();
            assert!(
                dir.covers_full_space(),
                "seed {seed}: depth {depth}, {nparts} parts"
            );
            for _ in 0..nkeys {
                let key = Key::from_u64(rng.next_u64());
                assert!(
                    dir.lookup_key(&key).is_some(),
                    "seed {seed}: {key:?} unrouted"
                );
            }
        }
    }

    #[test]
    fn reassign_bumps_version_and_logs_the_change() {
        let mut dir = GlobalDirectory::initial(2, &parts(2)).unwrap();
        let v0 = dir.version();
        dir.reassign(BucketId::new(0, 2), PartitionId(1));
        assert_eq!(dir.version(), v0 + 1);
        // a no-op reassignment does not churn the version
        dir.reassign(BucketId::new(0, 2), PartitionId(1));
        assert_eq!(dir.version(), v0 + 1);
        let delta = dir.delta_since(v0).unwrap();
        assert_eq!(delta.to_version, v0 + 1);
        assert_eq!(
            delta.changes,
            vec![(BucketId::new(0, 2), Some(PartitionId(1)))]
        );
    }

    /// Regression: `remove` used to leave the version untouched, so a
    /// directory that dropped a bucket mid-refresh (e.g. a split parent
    /// superseded by its children) was indistinguishable from the unchanged
    /// one — cached clients kept routing through the removed bucket with no
    /// way to detect the divergence from a refreshed copy.
    #[test]
    fn removal_bumps_version_and_appears_in_deltas() {
        let mut dir = GlobalDirectory::initial(2, &parts(2)).unwrap();
        let v0 = dir.version();
        let parent = BucketId::new(0, 2);
        assert_eq!(dir.remove(&parent), Some(PartitionId(0)));
        assert!(
            dir.version() > v0,
            "removing a bucket must bump the version"
        );
        // removing a bucket that is not there is a no-op
        let v1 = dir.version();
        assert_eq!(dir.remove(&parent), None);
        assert_eq!(dir.version(), v1);
        // the removal is visible to delta catch-up, so a cached client
        // converges to the same assignment instead of silently diverging
        let mut cached = GlobalDirectory::initial(2, &parts(2)).unwrap();
        cached.apply_delta(&dir.delta_since(v0).unwrap()).unwrap();
        assert_eq!(cached, dir);
        assert_eq!(cached.version(), dir.version());
        // ...and refresh-from-locals of the same post-removal state agrees
        let refreshed =
            GlobalDirectory::refresh_from_locals(dir.iter().map(|(b, p)| (p, vec![b])).fold(
                std::collections::BTreeMap::<PartitionId, Vec<BucketId>>::new(),
                |mut acc, (p, bs)| {
                    acc.entry(p).or_default().extend(bs);
                    acc
                },
            ))
            .unwrap();
        assert_eq!(refreshed, dir);
    }

    #[test]
    fn install_diffs_and_delta_catches_a_stale_snapshot_up() {
        let mut dir = GlobalDirectory::initial(2, &parts(2)).unwrap();
        let snapshot = dir.clone();
        let v0 = dir.version();
        // absorb a local split of bucket 00 and move bucket 01
        let mut fresh = dir.clone();
        fresh.remove(&BucketId::new(0b00, 2));
        fresh.reassign(BucketId::new(0b000, 3), PartitionId(0));
        fresh.reassign(BucketId::new(0b100, 3), PartitionId(0));
        fresh.reassign(BucketId::new(0b01, 2), PartitionId(0));
        dir.install(&fresh);
        assert_eq!(dir.version(), v0 + 1, "install bumps once");
        assert!(dir.covers_full_space());
        // installing the same assignment again is a no-op
        dir.install(&fresh);
        assert_eq!(dir.version(), v0 + 1);

        let delta = dir.delta_since(snapshot.version()).unwrap();
        assert_eq!(delta.changes.len(), 4);
        let mut cached = snapshot;
        cached.apply_delta(&delta).unwrap();
        assert_eq!(cached, dir);
        assert_eq!(cached.version(), dir.version());
        // a delta from the wrong base is rejected
        let bad = dir.delta_since(dir.version()).unwrap();
        assert!(bad.is_empty());
        let mut stale = GlobalDirectory::initial(2, &parts(2)).unwrap();
        assert!(stale.apply_delta(&delta).is_ok() || delta.from_version != stale.version());
    }

    #[test]
    fn delta_since_refuses_versions_outside_the_log() {
        let mut dir = GlobalDirectory::initial(1, &parts(2)).unwrap();
        // ahead of the server: impossible to serve
        assert!(dir.delta_since(dir.version() + 1).is_none());
        // push enough changes to truncate the log
        for i in 0..(super::MAX_CHANGE_LOG as u32 + 50) {
            let p = PartitionId(i % 2);
            let other = PartitionId((i + 1) % 2);
            dir.reassign(BucketId::new(0, 1), p);
            dir.reassign(BucketId::new(1, 1), other);
        }
        assert!(
            dir.delta_since(1).is_none(),
            "truncated history must force a full refresh"
        );
        assert!(dir.delta_since(dir.version()).is_some());
    }

    #[test]
    fn refresh_in_place_bumps_only_on_change() {
        let mut dir = GlobalDirectory::initial(2, &parts(2)).unwrap();
        let v0 = dir.version();
        // identical local views: no version churn
        let same: Vec<(PartitionId, Vec<BucketId>)> = (0..2)
            .map(|p| (PartitionId(p), dir.buckets_of_partition(PartitionId(p))))
            .collect();
        dir.refresh(same).unwrap();
        assert_eq!(dir.version(), v0);
        // partition 0's bucket 00 split locally into 000/100
        let split: Vec<(PartitionId, Vec<BucketId>)> = vec![
            (
                PartitionId(0),
                vec![
                    BucketId::new(0b000, 3),
                    BucketId::new(0b100, 3),
                    BucketId::new(0b10, 2),
                ],
            ),
            (
                PartitionId(1),
                vec![BucketId::new(0b01, 2), BucketId::new(0b11, 2)],
            ),
        ];
        dir.refresh(split).unwrap();
        assert_eq!(dir.version(), v0 + 1);
        assert!(dir.covers_full_space());
        assert_eq!(dir.global_depth(), 3);
    }

    #[test]
    fn check_invariants_accepts_healthy_and_rejects_gaps() {
        let mut dir = GlobalDirectory::initial(3, &parts(3)).unwrap();
        dir.check_invariants().unwrap();
        // Splits and moves keep the invariants.
        dir.remove(&BucketId::new(0b000, 3));
        assert!(dir.check_invariants().is_err(), "uncovered slot accepted");
        dir.reassign(BucketId::new(0b0000, 4), PartitionId(0));
        dir.reassign(BucketId::new(0b1000, 4), PartitionId(2));
        dir.check_invariants().unwrap();
    }

    #[test]
    fn prop_partition_loads_sum_to_slots() {
        for case in 0..16u64 {
            let seed = 0x61d1_0000 + case;
            let mut rng = SplitMix64::seed_from_u64(seed);
            let depth = rng.gen_range(0..8) as u8;
            let nparts = rng.gen_range(1..16) as u32;
            let dir = GlobalDirectory::initial(depth, &parts(nparts)).unwrap();
            let total: u64 = parts(nparts).iter().map(|p| dir.partition_load(*p)).sum();
            assert_eq!(
                total,
                dir.num_slots(),
                "seed {seed}: depth {depth}, {nparts} parts"
            );
        }
    }
}
