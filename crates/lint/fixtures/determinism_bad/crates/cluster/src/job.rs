use std::collections::HashMap;

pub fn f() -> HashMap<u32, u32> {
    HashMap::new()
}
