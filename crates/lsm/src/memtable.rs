//! The in-memory (write) component of an LSM-tree.
//!
//! AsterixDB buffers all writes in a memory component and flushes it to an
//! immutable disk component when it fills up (a *no-steal* policy: a memory
//! component is only flushed once all active writers have finished). The
//! simulation keeps the same structure: a sorted map from key to the latest
//! operation applied to it.

use std::collections::BTreeMap;
use std::ops::Bound;

use crate::entry::{Entry, Key, Op};

/// An in-memory sorted write buffer.
#[derive(Debug, Default, Clone)]
pub struct MemTable {
    map: BTreeMap<Key, Op>,
    size_bytes: usize,
}

impl MemTable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        MemTable {
            map: BTreeMap::new(),
            size_bytes: 0,
        }
    }

    /// Applies an upsert.
    pub fn put(&mut self, key: Key, value: crate::entry::Value) {
        self.apply(Entry {
            key,
            op: Op::Put(value),
        });
    }

    /// Applies a delete (tombstone).
    pub fn delete(&mut self, key: Key) {
        self.apply(Entry {
            key,
            op: Op::Delete,
        });
    }

    /// Applies an arbitrary entry, replacing any previous operation on the key.
    pub fn apply(&mut self, entry: Entry) {
        let new_size = entry.size_bytes();
        if let Some(old) = self.map.insert(entry.key.clone(), entry.op) {
            let old_size = Entry::size_of_parts(&entry.key, &old);
            self.size_bytes = self.size_bytes - old_size + new_size;
        } else {
            self.size_bytes += new_size;
        }
    }

    /// Looks up the latest operation for `key`, if any.
    pub fn get(&self, key: &Key) -> Option<&Op> {
        self.map.get(key)
    }

    /// Number of distinct keys buffered.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Full memory accounting over the buffered entries (records, logical
    /// bytes, inline/heap key split) for the `scale` experiments figure.
    pub fn footprint(&self) -> crate::entry::StorageFootprint {
        let mut fp = crate::entry::StorageFootprint::default();
        for (k, op) in &self.map {
            fp.add_key_op(k, op);
        }
        fp
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Iterates over all buffered entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Op)> {
        self.map.iter()
    }

    /// Iterates over buffered entries within `[lo, hi)` in key order.
    /// `None` bounds are unbounded.
    pub fn range<'a>(
        &'a self,
        lo: Option<&Key>,
        hi: Option<&Key>,
    ) -> impl Iterator<Item = (&'a Key, &'a Op)> + 'a {
        let lo_bound = match lo {
            Some(k) => Bound::Included(k.clone()),
            None => Bound::Unbounded,
        };
        let hi_bound = match hi {
            Some(k) => Bound::Excluded(k.clone()),
            None => Bound::Unbounded,
        };
        self.map.range((lo_bound, hi_bound))
    }

    /// Drains the memtable into a sorted entry vector (used by flushes),
    /// leaving it empty.
    pub fn drain_sorted(&mut self) -> Vec<Entry> {
        self.size_bytes = 0;
        std::mem::take(&mut self.map)
            .into_iter()
            .map(|(key, op)| Entry { key, op })
            .collect()
    }

    /// Returns the sorted entries without clearing the memtable.
    pub fn snapshot_sorted(&self) -> Vec<Entry> {
        self.map
            .iter()
            .map(|(k, op)| Entry {
                key: k.clone(),
                op: op.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::Bytes;

    fn val(n: usize) -> Bytes {
        Bytes::from(vec![7u8; n])
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let mut m = MemTable::new();
        m.put(Key::from_u64(1), val(4));
        assert!(matches!(m.get(&Key::from_u64(1)), Some(Op::Put(_))));
        m.delete(Key::from_u64(1));
        assert!(matches!(m.get(&Key::from_u64(1)), Some(Op::Delete)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn size_tracks_overwrites() {
        let mut m = MemTable::new();
        m.put(Key::from_u64(1), val(100));
        let s1 = m.size_bytes();
        m.put(Key::from_u64(1), val(10));
        let s2 = m.size_bytes();
        assert!(s2 < s1);
        m.put(Key::from_u64(2), val(10));
        assert!(m.size_bytes() > s2);
    }

    #[test]
    fn drain_returns_sorted_entries_and_clears() {
        let mut m = MemTable::new();
        for k in [5u64, 1, 3, 2, 4] {
            m.put(Key::from_u64(k), val(1));
        }
        let drained = m.drain_sorted();
        let keys: Vec<u64> = drained.iter().map(|e| e.key.as_u64()).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
        assert!(m.is_empty());
        assert_eq!(m.size_bytes(), 0);
    }

    #[test]
    fn range_respects_bounds() {
        let mut m = MemTable::new();
        for k in 0..10u64 {
            m.put(Key::from_u64(k), val(1));
        }
        let lo = Key::from_u64(3);
        let hi = Key::from_u64(7);
        let got: Vec<u64> = m
            .range(Some(&lo), Some(&hi))
            .map(|(k, _)| k.as_u64())
            .collect();
        assert_eq!(got, vec![3, 4, 5, 6]);
        let all: Vec<u64> = m.range(None, None).map(|(k, _)| k.as_u64()).collect();
        assert_eq!(all.len(), 10);
    }
}
