//! LSM-tree storage substrate for DynaHash.
//!
//! This crate implements the storage layer that the DynaHash rebalancing
//! design (Luo & Carey, ICDE 2022) builds on:
//!
//! * a classic **LSM-tree** ([`tree::LsmTree`]) with an in-memory component,
//!   immutable disk components, Bloom filters, and a size-tiered merge
//!   policy, mirroring AsterixDB's storage engine;
//! * **extendible-hashing buckets** ([`bucket::BucketId`]) and a per-partition
//!   **local directory** ([`directory::LocalDirectory`]);
//! * the **bucketed LSM-tree** ([`bucketed::BucketedLsmTree`]) used for
//!   primary indexes (Option 3 of Section IV of the paper), including the
//!   efficient bucket-split of Algorithm 1 based on *reference components*;
//! * **secondary LSM indexes** ([`secondary::SecondaryIndex`]) that store all
//!   buckets together (Option 1) and support lazy cleanup of moved buckets;
//! * a simple **transaction log** ([`wal::TransactionLog`]) whose records can
//!   be replicated to other partitions during a rebalance.
//!
//! Everything is an in-process, deterministic simulation of the disk: "disk
//! components" live in memory but their sizes are tracked byte-accurately so
//! that the cost model of the `dynahash-cluster` crate can charge realistic
//! I/O costs.

pub mod bloom;
pub mod bucket;
pub mod bucketed;
pub mod bytes;
pub mod component;
pub mod directory;
pub mod entry;
pub mod iterator;
pub mod memtable;
pub mod merge_policy;
pub mod metrics;
pub mod rng;
pub mod secondary;
pub mod slots;
pub mod tree;
pub mod wal;

pub use crate::bytes::Bytes;
pub use bloom::BloomFilter;
pub use bucket::{hash_key, BucketId};
pub use bucketed::{BucketedConfig, BucketedLsmTree, ScanOrder};
pub use component::{Component, ComponentId, ComponentSource};
pub use directory::LocalDirectory;
pub use entry::{Entry, Key, Op, StorageFootprint, Value, KEY_INLINE_CAP, OP_TAG_BYTES};
pub use iterator::{kmerge_disjoint, LazyMergeIter, RefSource};
pub use memtable::MemTable;
pub use merge_policy::{MergePolicy, SizeTieredPolicy};
pub use metrics::StorageMetrics;
pub use rng::{scramble, SplitMix64, Zipfian};
pub use secondary::{SecondaryEntry, SecondaryIndex};
pub use slots::SlotArray;
pub use tree::{LsmConfig, LsmTree};
pub use wal::{LogRecord, LogRecordBody, ShippedMove, TransactionLog};

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The requested bucket does not exist in the local directory.
    UnknownBucket(BucketId),
    /// A bucket with the same identifier already exists.
    BucketExists(BucketId),
    /// The bucket cannot be split further (maximum depth reached).
    MaxDepthReached(BucketId),
    /// A received (loaded) bucket with this identifier already exists.
    PendingBucketExists(BucketId),
    /// There is no pending received bucket with this identifier.
    UnknownPendingBucket(BucketId),
    /// The operation requires a non-empty component set.
    EmptyComponentSet,
    /// Splits are currently disabled (e.g. during a rebalance).
    SplitsDisabled,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::UnknownBucket(b) => write!(f, "unknown bucket {b}"),
            StorageError::BucketExists(b) => write!(f, "bucket {b} already exists"),
            StorageError::MaxDepthReached(b) => {
                write!(f, "bucket {b} cannot be split: maximum depth reached")
            }
            StorageError::PendingBucketExists(b) => {
                write!(f, "pending received bucket {b} already exists")
            }
            StorageError::UnknownPendingBucket(b) => {
                write!(f, "no pending received bucket {b}")
            }
            StorageError::EmptyComponentSet => write!(f, "operation requires components"),
            StorageError::SplitsDisabled => write!(f, "bucket splits are currently disabled"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenient result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
