//! The global directory kept at the Cluster Controller.
//!
//! The global directory maps every bucket of a dataset to the storage
//! partition that owns it (Section III). Its global depth `D` is the maximum
//! depth over all buckets, so a lookup uses the `D` low-order bits of a key's
//! hash. The directory may be *stale* with respect to local bucket splits —
//! routing stays correct because a split bucket's children cover exactly the
//! parent's hash range — and is refreshed from the partitions' local
//! directories when a rebalance starts.

use std::collections::BTreeMap;

use dynahash_lsm::bucket::{hash_key, BucketId};
use dynahash_lsm::entry::Key;

use crate::topology::PartitionId;
use crate::{CoreError, Result};

/// The CC's mapping from buckets to partitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GlobalDirectory {
    assignment: BTreeMap<BucketId, PartitionId>,
}

impl GlobalDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a directory with `2^depth` buckets assigned round-robin over
    /// the given partitions — the initial layout when a dataset is created.
    pub fn initial(depth: u8, partitions: &[PartitionId]) -> Result<Self> {
        if partitions.is_empty() {
            return Err(CoreError::EmptyTopology);
        }
        let mut assignment = BTreeMap::new();
        for bits in 0..(1u64 << depth) as u32 {
            let bucket = BucketId::new(bits, depth);
            let partition = partitions[(bits as usize) % partitions.len()];
            assignment.insert(bucket, partition);
        }
        Ok(GlobalDirectory { assignment })
    }

    /// Builds a directory from an explicit assignment.
    pub fn from_assignment(
        assignment: impl IntoIterator<Item = (BucketId, PartitionId)>,
    ) -> Result<Self> {
        let dir = GlobalDirectory {
            assignment: assignment.into_iter().collect(),
        };
        dir.check_consistency()?;
        Ok(dir)
    }

    fn check_consistency(&self) -> Result<()> {
        let buckets: Vec<BucketId> = self.assignment.keys().copied().collect();
        for (i, a) in buckets.iter().enumerate() {
            for b in buckets.iter().skip(i + 1) {
                if a.covers(b) || b.covers(a) {
                    return Err(CoreError::InconsistentDirectory(format!(
                        "buckets {a} and {b} overlap"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The global depth `D`: the maximum bucket depth.
    pub fn global_depth(&self) -> u8 {
        self.assignment.keys().map(|b| b.depth).max().unwrap_or(0)
    }

    /// Number of directory slots, `2^D`.
    pub fn num_slots(&self) -> u64 {
        1u64 << self.global_depth()
    }

    /// Number of distinct buckets.
    pub fn num_buckets(&self) -> usize {
        self.assignment.len()
    }

    /// Looks up the bucket and partition for a hash value.
    pub fn lookup_hash(&self, hash: u64) -> Option<(BucketId, PartitionId)> {
        self.assignment
            .iter()
            .find(|(b, _)| b.contains_hash(hash))
            .map(|(b, p)| (*b, *p))
    }

    /// Looks up the bucket and partition for a key.
    pub fn lookup_key(&self, key: &Key) -> Option<(BucketId, PartitionId)> {
        self.lookup_hash(hash_key(key))
    }

    /// The partition owning a key; errors if the directory does not cover the
    /// key's hash (which means the directory was built incorrectly).
    pub fn partition_of_key(&self, key: &Key) -> Result<PartitionId> {
        self.lookup_key(key)
            .map(|(_, p)| p)
            .ok_or_else(|| CoreError::UnassignedBucket(BucketId::of_key(key, 0)))
    }

    /// The partition a bucket is assigned to.
    pub fn partition_of_bucket(&self, bucket: &BucketId) -> Option<PartitionId> {
        // Exact match first; otherwise find an ancestor that covers it (the
        // CC may still hold the unsplit parent of a locally split bucket).
        if let Some(p) = self.assignment.get(bucket) {
            return Some(*p);
        }
        self.assignment
            .iter()
            .find(|(b, _)| b.covers(bucket))
            .map(|(_, p)| *p)
    }

    /// All buckets assigned to a partition.
    pub fn buckets_of_partition(&self, partition: PartitionId) -> Vec<BucketId> {
        self.assignment
            .iter()
            .filter(|(_, p)| **p == partition)
            .map(|(b, _)| *b)
            .collect()
    }

    /// All distinct partitions referenced by the directory.
    pub fn partitions(&self) -> Vec<PartitionId> {
        let mut v: Vec<PartitionId> = self.assignment.values().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Iterates (bucket, partition) pairs in bucket order.
    pub fn iter(&self) -> impl Iterator<Item = (BucketId, PartitionId)> + '_ {
        self.assignment.iter().map(|(b, p)| (*b, *p))
    }

    /// The normalized size of a partition: the sum of `2^(D-d)` over its
    /// buckets (Section V-A). Partitions with no buckets have load 0.
    pub fn partition_load(&self, partition: PartitionId) -> u64 {
        let d = self.global_depth();
        self.assignment
            .iter()
            .filter(|(_, p)| **p == partition)
            .map(|(b, _)| b.normalized_size(d))
            .sum()
    }

    /// The load-balance factor over the given partitions: the maximum
    /// partition load divided by the average load. 1.0 is a perfect balance.
    pub fn load_balance_factor(&self, partitions: &[PartitionId]) -> f64 {
        if partitions.is_empty() {
            return 1.0;
        }
        let loads: Vec<u64> = partitions.iter().map(|p| self.partition_load(*p)).collect();
        let max = *loads.iter().max().unwrap_or(&0) as f64;
        let avg = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }

    /// Refreshes the directory from the partitions' local directories
    /// (the initialization phase of a rebalance: the CC contacts all NCs to
    /// get their latest local directories). Each entry of `local_views` is a
    /// partition and the buckets its local directory currently holds; the
    /// refreshed directory keeps each bucket assigned to the partition that
    /// reported it.
    pub fn refresh_from_locals(
        local_views: impl IntoIterator<Item = (PartitionId, Vec<BucketId>)>,
    ) -> Result<GlobalDirectory> {
        let mut assignment = BTreeMap::new();
        for (partition, buckets) in local_views {
            for b in buckets {
                if assignment.insert(b, partition).is_some() {
                    return Err(CoreError::InconsistentDirectory(format!(
                        "bucket {b} reported by two partitions"
                    )));
                }
            }
        }
        let dir = GlobalDirectory { assignment };
        dir.check_consistency()?;
        Ok(dir)
    }

    /// Reassigns a bucket to a new partition (used when applying a rebalance
    /// plan at commit time).
    pub fn reassign(&mut self, bucket: BucketId, to: PartitionId) {
        self.assignment.insert(bucket, to);
    }

    /// Removes a bucket from the directory.
    pub fn remove(&mut self, bucket: &BucketId) -> Option<PartitionId> {
        self.assignment.remove(bucket)
    }

    /// The total number of hash-space slots (at global depth) covered — used
    /// by property tests to check full coverage: must equal `2^D`.
    pub fn covered_slots(&self) -> u64 {
        let d = self.global_depth();
        self.assignment.keys().map(|b| b.normalized_size(d)).sum()
    }

    /// True if every hash value maps to exactly one bucket.
    pub fn covers_full_space(&self) -> bool {
        !self.assignment.is_empty() && self.covered_slots() == self.num_slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynahash_lsm::rng::SplitMix64;

    fn parts(n: u32) -> Vec<PartitionId> {
        (0..n).map(PartitionId).collect()
    }

    #[test]
    fn initial_directory_covers_space_and_balances() {
        let dir = GlobalDirectory::initial(4, &parts(4)).unwrap();
        assert_eq!(dir.num_buckets(), 16);
        assert_eq!(dir.global_depth(), 4);
        assert!(dir.covers_full_space());
        for p in parts(4) {
            assert_eq!(dir.buckets_of_partition(p).len(), 4);
            assert_eq!(dir.partition_load(p), 4);
        }
        assert!((dir.load_balance_factor(&parts(4)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn initial_requires_partitions() {
        assert!(matches!(
            GlobalDirectory::initial(4, &[]),
            Err(CoreError::EmptyTopology)
        ));
    }

    #[test]
    fn lookup_routes_keys_to_owning_bucket() {
        let dir = GlobalDirectory::initial(3, &parts(2)).unwrap();
        for i in 0..1000u64 {
            let k = Key::from_u64(i);
            let (b, p) = dir.lookup_key(&k).unwrap();
            assert!(b.contains_key(&k));
            assert_eq!(dir.partition_of_key(&k).unwrap(), p);
        }
    }

    #[test]
    fn stale_directory_still_routes_split_buckets() {
        // CC holds bucket 00 (depth 2); locally it split into 000 and 100.
        let dir = GlobalDirectory::initial(2, &parts(2)).unwrap();
        let child = BucketId::new(0b100, 3);
        // partition_of_bucket falls back to the covering ancestor
        let p = dir.partition_of_bucket(&child).unwrap();
        assert_eq!(p, dir.partition_of_bucket(&BucketId::new(0, 2)).unwrap());
    }

    #[test]
    fn refresh_from_locals_rejects_duplicates() {
        let err = GlobalDirectory::refresh_from_locals(vec![
            (PartitionId(0), vec![BucketId::new(0, 1)]),
            (PartitionId(1), vec![BucketId::new(0, 1)]),
        ]);
        assert!(err.is_err());
        let err2 = GlobalDirectory::refresh_from_locals(vec![
            (PartitionId(0), vec![BucketId::new(0, 1)]),
            (PartitionId(1), vec![BucketId::new(0, 2)]),
        ]);
        assert!(err2.is_err(), "overlapping buckets must be rejected");
    }

    #[test]
    fn refresh_from_locals_reflects_splits() {
        let dir = GlobalDirectory::refresh_from_locals(vec![
            (
                PartitionId(0),
                vec![BucketId::new(0b000, 3), BucketId::new(0b100, 3)],
            ),
            (PartitionId(1), vec![BucketId::new(0b01, 2)]),
            (PartitionId(2), vec![BucketId::new(0b10, 2)]),
            (PartitionId(3), vec![BucketId::new(0b11, 2)]),
        ])
        .unwrap();
        assert_eq!(dir.global_depth(), 3);
        assert!(dir.covers_full_space());
        assert_eq!(dir.partition_load(PartitionId(0)), 2);
        assert_eq!(dir.partition_load(PartitionId(1)), 2);
    }

    #[test]
    fn mixed_depth_loads_follow_normalized_sizes() {
        let dir = GlobalDirectory::from_assignment(vec![
            (BucketId::new(0, 1), PartitionId(0)),     // size 4 at D=3
            (BucketId::new(0b01, 2), PartitionId(1)),  // size 2
            (BucketId::new(0b011, 3), PartitionId(1)), // size 1
            (BucketId::new(0b111, 3), PartitionId(2)), // size 1
        ])
        .unwrap();
        assert_eq!(dir.global_depth(), 3);
        assert_eq!(dir.partition_load(PartitionId(0)), 4);
        assert_eq!(dir.partition_load(PartitionId(1)), 3);
        assert_eq!(dir.partition_load(PartitionId(2)), 1);
        assert!(dir.covers_full_space());
        let f = dir.load_balance_factor(&parts(3));
        assert!(f > 1.0);
    }

    #[test]
    fn prop_initial_directories_route_every_key() {
        for case in 0..16u64 {
            let seed = 0x61d0_0000 + case;
            let mut rng = SplitMix64::seed_from_u64(seed);
            let depth = rng.gen_range(0..8) as u8;
            let nparts = rng.gen_range(1..16) as u32;
            let nkeys = rng.gen_range(1..50) as usize;
            let dir = GlobalDirectory::initial(depth, &parts(nparts)).unwrap();
            assert!(
                dir.covers_full_space(),
                "seed {seed}: depth {depth}, {nparts} parts"
            );
            for _ in 0..nkeys {
                let key = Key::from_u64(rng.next_u64());
                assert!(
                    dir.lookup_key(&key).is_some(),
                    "seed {seed}: {key:?} unrouted"
                );
            }
        }
    }

    #[test]
    fn prop_partition_loads_sum_to_slots() {
        for case in 0..16u64 {
            let seed = 0x61d1_0000 + case;
            let mut rng = SplitMix64::seed_from_u64(seed);
            let depth = rng.gen_range(0..8) as u8;
            let nparts = rng.gen_range(1..16) as u32;
            let dir = GlobalDirectory::initial(depth, &parts(nparts)).unwrap();
            let total: u64 = parts(nparts).iter().map(|p| dir.partition_load(*p)).sum();
            assert_eq!(
                total,
                dir.num_slots(),
                "seed {seed}: depth {depth}, {nparts} parts"
            );
        }
    }
}
