//! The extendible-hashing slot array shared by every directory.
//!
//! Both the per-partition [`crate::directory::LocalDirectory`] and the
//! Cluster Controller's `GlobalDirectory` (in `dynahash-core`) route through
//! the same structure: a `2^D`-entry table indexed by the `D` low-order bits
//! of a key's hash, where a bucket of depth `d` owns the `2^(D-d)` slots of
//! its lattice (`bits + k·2^d`). This module implements that table once,
//! generic over the slot payload — a bare [`BucketId`] locally, a
//! `(BucketId, PartitionId)` pair at the CC — so the subtle
//! doubling/halving/lattice-rewrite logic cannot diverge between the two.

use crate::bucket::{BucketId, MAX_DEPTH};

/// A `2^depth`-entry extendible-hashing slot table, maintained incrementally:
/// it doubles when an insert raises the depth, halves when the last
/// deepest bucket disappears, and inserts/removes rewrite only the affected
/// bucket's slot lattice. `None` marks hash ranges no bucket covers (a
/// partition that owns part of the hash space, or a transient mid-delta
/// state at the CC).
///
/// Correctness relies on the caller keeping its bucket set disjoint (no
/// bucket covers another) — the invariant both directories already enforce.
#[derive(Clone)]
pub struct SlotArray<T> {
    slots: Vec<Option<T>>,
    depth: u8,
    /// Number of buckets at each depth, driving doubling and shrinking
    /// without rescanning the bucket set.
    depth_counts: [u32; MAX_DEPTH as usize + 1],
}

impl<T: Copy + PartialEq + std::fmt::Debug> Default for SlotArray<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + PartialEq + std::fmt::Debug> SlotArray<T> {
    /// Creates an empty table: depth 0, one uncovered slot.
    pub fn new() -> Self {
        SlotArray {
            slots: vec![None],
            depth: 0,
            depth_counts: [0; MAX_DEPTH as usize + 1],
        }
    }

    /// The table's depth `D` (the maximum bucket depth seen).
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Number of slots, `2^D`.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// O(1) lookup: the slot for the hash's low-order `D` bits.
    pub fn lookup(&self, hash: u64) -> Option<T> {
        self.slots[(hash as usize) & (self.slots.len() - 1)]
    }

    /// O(1) probe by bucket bits (masked to the table depth) — resolves a
    /// bucket's covering ancestor without scanning.
    pub fn probe_bits(&self, bits: u32) -> Option<T> {
        self.slots[(bits as usize) & (self.slots.len() - 1)]
    }

    /// Read access to the raw slots (consistency checks in tests).
    pub fn slots(&self) -> &[Option<T>] {
        &self.slots
    }

    /// True if any slot a bucket would occupy is already taken. Because
    /// disjoint buckets' hash sets intersect exactly when one covers the
    /// other, this is a complete O(lattice) overlap test: a deeper (or
    /// equally deep) probe finds a covering ancestor in one slot, a
    /// shallower one finds any covered bucket in its lattice.
    pub fn lattice_occupied(&self, bucket: &BucketId) -> bool {
        if bucket.depth >= self.depth {
            return self.probe_bits(bucket.bits).is_some();
        }
        let stride = 1usize << bucket.depth;
        let mut idx = bucket.bits as usize;
        while idx < self.slots.len() {
            if self.slots[idx].is_some() {
                return true;
            }
            idx += stride;
        }
        false
    }

    /// Registers a **new** bucket: bumps its depth count, doubles the table
    /// if the bucket is deeper than the current depth, and writes its slot
    /// lattice. For a bucket already registered use
    /// [`SlotArray::update`] instead.
    pub fn insert(&mut self, bucket: BucketId, value: T) {
        self.depth_counts[bucket.depth as usize] += 1;
        self.grow_to(bucket.depth);
        self.write_lattice(bucket, value);
    }

    /// Rewrites the lattice of an already-registered bucket (its payload
    /// changed — e.g. a reassignment to another partition). Depth counts are
    /// untouched.
    pub fn update(&mut self, bucket: BucketId, value: T) {
        self.write_lattice(bucket, value);
    }

    /// Unregisters a bucket: clears the slots of its lattice that still
    /// satisfy `owned_by` (a slot already overwritten by a newer covering
    /// bucket is left alone), then halves the table while no bucket of the
    /// current depth remains.
    pub fn remove(&mut self, bucket: BucketId, owned_by: impl Fn(&T) -> bool) {
        self.depth_counts[bucket.depth as usize] -= 1;
        let stride = 1usize << bucket.depth.min(self.depth);
        let mut idx = (bucket.bits as usize) & (self.slots.len() - 1);
        while idx < self.slots.len() {
            if matches!(&self.slots[idx], Some(v) if owned_by(v)) {
                self.slots[idx] = None;
            }
            idx += stride;
        }
        self.maybe_shrink();
    }

    /// Rebuilds the table from scratch (construction paths only; mutations
    /// stay incremental).
    pub fn rebuild(&mut self, entries: &[(BucketId, T)]) {
        self.depth_counts = [0; MAX_DEPTH as usize + 1];
        for (b, _) in entries {
            self.depth_counts[b.depth as usize] += 1;
        }
        self.depth = self.depth_counts.iter().rposition(|&c| c > 0).unwrap_or(0) as u8;
        self.slots = vec![None; 1usize << self.depth];
        for (b, v) in entries {
            self.write_lattice(*b, *v);
        }
    }

    /// Debug-build check that the table agrees with the caller's cached
    /// depth (which the caller recomputes from its bucket set).
    #[inline]
    pub fn debug_validate(&self, expected_depth: u8) {
        debug_assert_eq!(
            self.depth, expected_depth,
            "slot-array depth diverged from the bucket set"
        );
        debug_assert_eq!(
            self.slots.len(),
            1usize << self.depth,
            "slot-array size diverged from its depth"
        );
    }

    /// Writes a bucket's slot lattice: the `2^(D-d)` entries at
    /// `bits + k·2^d`. The bucket's depth must not exceed the table depth.
    fn write_lattice(&mut self, bucket: BucketId, value: T) {
        let stride = 1usize << bucket.depth;
        let mut idx = bucket.bits as usize;
        while idx < self.slots.len() {
            self.slots[idx] = Some(value);
            idx += stride;
        }
    }

    /// Doubles until the table depth reaches `depth`. With low-bit indexing
    /// a doubling is a verbatim copy: slot `i` and slot `i + 2^D` cover the
    /// same hashes until a deeper bucket distinguishes them.
    fn grow_to(&mut self, depth: u8) {
        while self.depth < depth {
            let len = self.slots.len();
            self.slots.extend_from_within(0..len);
            self.depth += 1;
        }
    }

    /// Halves while no bucket of the current depth remains (the inverse of
    /// [`SlotArray::grow_to`], triggered by removals and merges).
    fn maybe_shrink(&mut self) {
        let target = self.depth_counts.iter().rposition(|&c| c > 0).unwrap_or(0) as u8;
        while self.depth > target {
            let half = self.slots.len() / 2;
            for i in 0..half {
                let lo = self.slots[i];
                let hi = self.slots[i + half];
                debug_assert!(
                    lo.is_none() || hi.is_none() || lo == hi,
                    "slot halves diverged at depth {}: {lo:?} vs {hi:?}",
                    self.depth
                );
                self.slots[i] = lo.or(hi);
            }
            self.slots.truncate(half);
            self.depth -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip_grows_and_shrinks() {
        let mut t: SlotArray<u32> = SlotArray::new();
        assert_eq!(t.depth(), 0);
        assert_eq!(t.num_slots(), 1);
        assert_eq!(t.lookup(42), None);
        t.insert(BucketId::new(0, 1), 10);
        t.insert(BucketId::new(1, 2), 11);
        t.insert(BucketId::new(3, 2), 12);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.num_slots(), 4);
        assert_eq!(t.lookup(0b100), Some(10));
        assert_eq!(t.lookup(0b101), Some(11));
        assert_eq!(t.lookup(0b111), Some(12));
        t.update(BucketId::new(0, 1), 20);
        assert_eq!(t.lookup(0b10), Some(20));
        t.remove(BucketId::new(1, 2), |v| *v == 11);
        assert_eq!(t.depth(), 2, "a depth-2 bucket remains");
        assert_eq!(t.lookup(0b01), None);
        t.remove(BucketId::new(3, 2), |v| *v == 12);
        assert_eq!(t.depth(), 1, "table must halve");
        assert_eq!(t.num_slots(), 2);
        assert_eq!(t.lookup(0b10), Some(20));
        t.debug_validate(1);
    }

    #[test]
    fn lattice_occupied_detects_overlap_in_both_directions() {
        let mut t: SlotArray<u32> = SlotArray::new();
        t.insert(BucketId::new(0b01, 2), 1);
        // deeper than an existing bucket: covered by it
        assert!(t.lattice_occupied(&BucketId::new(0b101, 3)));
        // shallower: covers it
        assert!(t.lattice_occupied(&BucketId::new(0b1, 1)));
        assert!(t.lattice_occupied(&BucketId::new(0, 0)));
        // disjoint hash ranges are free
        assert!(!t.lattice_occupied(&BucketId::new(0b00, 2)));
        assert!(!t.lattice_occupied(&BucketId::new(0b10, 2)));
        assert!(!t.lattice_occupied(&BucketId::new(0b110, 3)));
    }

    /// Halving cascades: removing the last deepest bucket must shrink the
    /// table through *multiple* depths in one step when the remaining
    /// buckets are much shallower.
    #[test]
    fn removal_cascades_halving_to_the_shallowest_survivor() {
        let mut t: SlotArray<u32> = SlotArray::new();
        t.insert(BucketId::new(0, 1), 1); // depth 1
        t.insert(BucketId::new(0b01, 2), 2); // depth 2
        t.insert(BucketId::new(0b011, 3), 3); // depth 3
        t.insert(BucketId::new(0b111, 3), 4); // depth 3
        assert_eq!(t.num_slots(), 8);
        // Dropping one depth-3 bucket keeps the table at depth 3.
        t.remove(BucketId::new(0b111, 3), |v| *v == 4);
        assert_eq!(t.depth(), 3);
        // Dropping the other cascades 8 -> 4 slots...
        t.remove(BucketId::new(0b011, 3), |v| *v == 3);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.lookup(0b00), Some(1));
        assert_eq!(t.lookup(0b01), Some(2));
        // ...and dropping the depth-2 bucket cascades straight to depth 1.
        t.remove(BucketId::new(0b01, 2), |v| *v == 2);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.num_slots(), 2);
        assert_eq!(t.lookup(0), Some(1));
        t.debug_validate(1);
    }

    /// Shrinking all the way back to the empty table: depth 0, one
    /// uncovered slot — the state a directory passes through mid-delta.
    #[test]
    fn removing_every_bucket_returns_to_the_empty_table() {
        let mut t: SlotArray<u32> = SlotArray::new();
        t.insert(BucketId::new(0, 2), 1);
        t.insert(BucketId::new(1, 2), 2);
        t.insert(BucketId::new(2, 2), 3);
        t.insert(BucketId::new(3, 2), 4);
        for (bits, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4)] {
            t.remove(BucketId::new(bits, 2), |x| *x == v);
        }
        assert_eq!(t.depth(), 0);
        assert_eq!(t.num_slots(), 1);
        assert_eq!(t.lookup(0), None);
        t.debug_validate(0);
        // The empty table accepts fresh inserts (re-grows cleanly).
        t.insert(BucketId::new(0, 1), 9);
        t.insert(BucketId::new(1, 1), 10);
        assert_eq!(t.lookup(2), Some(9));
        assert_eq!(t.lookup(3), Some(10));
    }

    /// `maybe_shrink` must NOT halve while a deepest bucket survives, even
    /// when a sibling removal leaves half the lattice empty — and repeated
    /// grow/shrink cycles must keep lookups exact.
    #[test]
    fn repeated_split_merge_cycles_keep_lookups_exact() {
        let mut t: SlotArray<u32> = SlotArray::new();
        t.insert(BucketId::new(0, 0), 100);
        for round in 0..4u32 {
            // "Split" the root: replace the depth-round bucket at bits 0 by
            // its two children, as a directory split would.
            let parent = BucketId::new(0, round as u8);
            t.remove(parent, |v| *v == 100 + round);
            let d = round as u8 + 1;
            t.insert(BucketId::new(0, d), 100 + round + 1);
            t.insert(BucketId::new(1 << round, d), 900 + round);
            assert_eq!(t.depth(), d);
            // Every hash routes somewhere after each reshape.
            for h in 0..t.num_slots() as u64 {
                assert!(t.lookup(h).is_some(), "hash {h} unrouted at depth {d}");
            }
        }
        // Merge everything back down, one level at a time.
        for round in (0..4u32).rev() {
            let d = round as u8 + 1;
            t.remove(BucketId::new(1 << round, d), |v| *v == 900 + round);
            t.remove(BucketId::new(0, d), |v| *v == 100 + round + 1);
            t.insert(BucketId::new(0, round as u8), 100 + round);
            assert_eq!(t.depth(), round as u8);
        }
        assert_eq!(t.num_slots(), 1);
        assert_eq!(t.lookup(7), Some(100));
    }

    #[test]
    fn rebuild_matches_incremental_construction() {
        let entries = [
            (BucketId::new(0, 1), 7u32),
            (BucketId::new(1, 2), 8),
            (BucketId::new(3, 2), 9),
        ];
        let mut rebuilt: SlotArray<u32> = SlotArray::new();
        rebuilt.rebuild(&entries);
        let mut incremental: SlotArray<u32> = SlotArray::new();
        for (b, v) in entries {
            incremental.insert(b, v);
        }
        assert_eq!(rebuilt.slots(), incremental.slots());
        assert_eq!(rebuilt.depth(), incremental.depth());
    }
}
