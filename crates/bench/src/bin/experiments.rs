//! Regenerates every figure of the DynaHash paper and prints the results as
//! markdown tables (the source of EXPERIMENTS.md).
//!
//! Usage:
//!
//! ```text
//! experiments                # run everything at the default scale
//! experiments --quick        # smaller scale, fewer cluster sizes
//! experiments --figure 7a    # run a single figure (6, 7a, 7b, 7c, 8, 9, ablations)
//! ```

use dynahash_bench::*;

struct Args {
    quick: bool,
    figure: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        figure: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--figure" => args.figure = iter.next(),
            "--help" | "-h" => {
                eprintln!("usage: experiments [--quick] [--figure 6|7a|7b|7c|waves|8|9|ablations]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn wants(figure: &Option<String>, name: &str) -> bool {
    match figure {
        None => true,
        Some(f) => f.eq_ignore_ascii_case(name),
    }
}

fn main() {
    let args = parse_args();
    let cfg = if args.quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let node_counts: Vec<u32> = if args.quick {
        vec![2, 4]
    } else {
        vec![2, 4, 8, 16]
    };
    let query_nodes: Vec<u32> = if args.quick { vec![4] } else { vec![4, 16] };

    println!("# DynaHash experiment results");
    println!();
    println!(
        "configuration: {} orders/node, {} partitions/node, node counts {:?} (simulated time)",
        cfg.orders_per_node, cfg.partitions_per_node, node_counts
    );
    println!();

    if wants(&args.figure, "6") {
        println!("## Figure 6 — Ingestion time");
        println!();
        let rows = fig6_ingestion(&cfg, &node_counts);
        println!("{}", format_fig6(&rows));
    }

    if wants(&args.figure, "7a") {
        println!("## Figure 7a — Rebalance time, removing one node");
        println!();
        let rows = fig7_rebalance(&cfg, &node_counts, RebalanceDirection::RemoveNode);
        println!("{}", format_fig7(&rows));
    }

    if wants(&args.figure, "7b") {
        println!("## Figure 7b — Rebalance time, adding one node");
        println!();
        let rows = fig7_rebalance(&cfg, &node_counts, RebalanceDirection::AddNode);
        println!("{}", format_fig7(&rows));
    }

    if wants(&args.figure, "7c") {
        println!(
            "## Figure 7c — Rebalance time under concurrent ingestion (DynaHash, 4 -> 3 nodes)"
        );
        println!();
        let rates = [0.0, 10.0, 20.0, 30.0, 40.0];
        let rows = fig7c_concurrent_writes(&cfg, &rates);
        println!("{}", format_fig7c(&rows));
    }

    if wants(&args.figure, "waves") {
        println!("## Wave parallelism — step-driven rebalance (DynaHash, 4 -> 3 nodes)");
        println!();
        let rows = rebalance_wave_scaling(&cfg, &[1, 2, 4, 8]);
        println!("{}", format_waves(&rows));
    }

    if wants(&args.figure, "8") {
        for &n in &query_nodes {
            println!("## Figure 8 — TPC-H query time on the original cluster ({n} nodes)");
            println!();
            let rows = fig8_queries(&cfg, n);
            let mismatches = answer_mismatches(&rows);
            println!("{}", format_query_rows(&rows));
            if mismatches.is_empty() {
                println!("(all schemes returned identical query answers)");
            } else {
                println!("WARNING: answer mismatches on queries {mismatches:?}");
            }
            println!();
        }
    }

    if wants(&args.figure, "9") {
        for &n in &query_nodes {
            println!(
                "## Figure 9 — TPC-H query time on the downsized cluster ({} -> {} nodes)",
                n,
                n - 1
            );
            println!();
            let rows = fig9_queries(&cfg, n);
            let mismatches = answer_mismatches(&rows);
            println!("{}", format_query_rows(&rows));
            if mismatches.is_empty() {
                println!("(all schemes returned identical query answers)");
            } else {
                println!("WARNING: answer mismatches on queries {mismatches:?}");
            }
            println!();
        }
    }

    if wants(&args.figure, "ablations") {
        println!("## Ablation A1 — Storage options for the primary index");
        println!();
        println!("| option | bucket-move read bytes | avg components per lookup |");
        println!("|---|---|---|");
        for r in ablation_storage_options(5000) {
            println!(
                "| {} | {} | {:.1} |",
                r.option, r.bucket_move_read_bytes, r.lookup_components
            );
        }
        println!();
        println!("## Ablation A2 — Balance quality of Algorithm 2 vs round-robin");
        println!();
        println!("| bucket size skew | Algorithm 2 (max/avg) | round-robin (max/avg) |");
        println!("|---|---|---|");
        for r in ablation_balance_quality(&[1, 2, 4, 8, 16]) {
            println!(
                "| {}x | {:.3} | {:.3} |",
                r.skew, r.algorithm2, r.round_robin
            );
        }
        println!();
    }
}
