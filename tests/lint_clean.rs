//! The tree must pass its own static analysis: `dhlint --check .` at HEAD
//! has zero unwaived findings, and every waiver is accounted for by the
//! committed `LINT_BUDGET.toml`.

use std::path::Path;

#[test]
fn workspace_passes_dhlint() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = dynahash_lint::check_root(root).expect("workspace readable");
    assert!(
        report.is_clean(),
        "dhlint found unwaived findings:\n{}",
        report.render_text()
    );
}
