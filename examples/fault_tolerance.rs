//! Fault-tolerance scenario: inject every failure case of Section V-D into a
//! rebalance operation and show that the dataset always ends up consistent —
//! either the rebalance commits everywhere or it aborts and leaves the data
//! untouched.
//!
//! Run with `cargo run --example fault_tolerance`.

use dynahash::cluster::{Cluster, DatasetSpec, RebalanceOptions};
use dynahash::core::{FailurePoint, NodeId, RebalanceOutcome, Scheme};
use dynahash::lsm::entry::Key;
use dynahash::lsm::Bytes;

fn build_cluster() -> (Cluster, dynahash::cluster::DatasetId) {
    let mut cluster = Cluster::new(3);
    let ds = cluster
        .create_dataset(DatasetSpec::new(
            "accounts",
            Scheme::StaticHash { num_buckets: 64 },
        ))
        .expect("create dataset");
    let records =
        (0..10_000u64).map(|i| (Key::from_u64(i), Bytes::from(vec![(i % 200) as u8; 80])));
    let mut session = cluster.session(ds).expect("open session");
    session.ingest(&mut cluster, records).expect("ingest");
    (cluster, ds)
}

fn main() {
    let cases: [(&str, FailurePoint); 6] = [
        (
            "case 1: NC fails before voting prepared",
            FailurePoint::NcBeforePrepared(NodeId(3)),
        ),
        (
            "case 2: NC fails after voting prepared",
            FailurePoint::NcAfterPrepared(NodeId(3)),
        ),
        (
            "case 3: CC fails before forcing COMMIT",
            FailurePoint::CcBeforeCommitLog,
        ),
        (
            "case 4: NC fails before acking commit",
            FailurePoint::NcBeforeCommitted(NodeId(0)),
        ),
        (
            "case 5: CC fails after COMMIT, before DONE",
            FailurePoint::CcAfterCommitBeforeDone,
        ),
        ("case 6: CC fails after DONE", FailurePoint::CcAfterDone),
    ];

    println!("injecting failures into a scale-out rebalance (3 -> 4 nodes, 10k records)\n");
    for (label, failure) in cases {
        let (mut cluster, ds) = build_cluster();
        cluster.add_node().expect("add node");
        let target = cluster.topology().clone();
        let report = cluster
            .rebalance(ds, &target, RebalanceOptions::none().with_failure(failure))
            .expect("rebalance executes");
        cluster
            .check_dataset_consistency(ds)
            .expect("dataset stays consistent");
        let records = cluster.dataset_len(ds).unwrap();
        // a client session opened before the failure still reads correctly,
        // redirecting if the rebalance committed under its feet
        let mut session = cluster.session(ds).expect("session");
        assert!(session
            .get(&cluster, &Key::from_u64(4_321))
            .expect("routed read")
            .is_some());
        assert_eq!(records, 10_000, "no record may be lost or duplicated");
        let verdict = match report.outcome {
            RebalanceOutcome::Committed => "committed (new directory installed)",
            RebalanceOutcome::Aborted => "aborted   (dataset left unchanged)",
        };
        println!("{label:<45} -> {verdict}, 10000 records intact");
    }

    println!("\nall six failure cases leave the dataset consistent, as required by Section V-D");
}
