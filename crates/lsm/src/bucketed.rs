//! The bucketed LSM-tree used for primary indexes (Section IV).
//!
//! Each extendible-hashing bucket is stored as a separate LSM-tree (storage
//! Option 3 of the paper): moving a bucket during a rebalance only touches
//! that bucket's components, and splitting/dropping buckets is cheap. The
//! buckets of a partition are coordinated by a [`LocalDirectory`].
//!
//! The type also implements the destination-side machinery of the rebalance
//! data-movement phase: *pending* (received) buckets hold bulk-loaded
//! components plus replicated log records and stay invisible to queries until
//! the rebalance commits.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::bucket::{hash_key, BucketId};
use crate::component::{Component, ComponentSource};
use crate::directory::LocalDirectory;
use crate::entry::{Entry, Key, Op, Value};
use crate::iterator::kmerge_disjoint;
use crate::metrics::StorageMetrics;
use crate::tree::{LsmConfig, LsmTree};
use crate::{Result, StorageError};

/// Configuration of a bucketed LSM-tree.
#[derive(Clone, Debug)]
pub struct BucketedConfig {
    /// Per-bucket LSM configuration.
    pub lsm: LsmConfig,
    /// Maximum bucket size in bytes before the bucket is split (DynaHash).
    /// `None` disables dynamic splitting (StaticHash behaviour).
    pub max_bucket_size_bytes: Option<usize>,
    /// Hard cap on bucket depth.
    pub max_depth: u8,
}

impl Default for BucketedConfig {
    fn default() -> Self {
        BucketedConfig {
            lsm: LsmConfig::default(),
            max_bucket_size_bytes: None,
            max_depth: 20,
        }
    }
}

/// How a primary-key range scan over all buckets should be executed
/// (Section IV, "Data Ingestion and Query Processing").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanOrder {
    /// Scan each bucket separately; results are not globally key-ordered.
    /// This is the default because it avoids the merge-sort overhead.
    Unordered,
    /// Merge-sort the per-bucket results with a priority queue so the output
    /// is ordered by primary key (needed when a downstream operator requires
    /// primary-key order, e.g. TPC-H q18's group-by on a key prefix).
    Ordered,
}

/// A primary index whose buckets are separate LSM-trees.
#[derive(Debug)]
pub struct BucketedLsmTree {
    config: BucketedConfig,
    directory: LocalDirectory,
    buckets: BTreeMap<BucketId, LsmTree>,
    /// Received buckets (rebalance destination), invisible to queries.
    pending: BTreeMap<BucketId, LsmTree>,
    metrics: Arc<StorageMetrics>,
    splits_enabled: bool,
}

impl BucketedLsmTree {
    /// Creates a bucketed tree owning the given initial buckets.
    pub fn new(
        config: BucketedConfig,
        initial_buckets: impl IntoIterator<Item = BucketId>,
        metrics: Arc<StorageMetrics>,
    ) -> Self {
        let mut directory = LocalDirectory::new();
        let mut buckets = BTreeMap::new();
        for b in initial_buckets {
            // dhlint: allow(panic) — constructor contract: initial buckets are disjoint
            directory.add(b).expect("initial buckets must not overlap");
            buckets.insert(b, LsmTree::new(config.lsm.clone(), Arc::clone(&metrics)));
        }
        BucketedLsmTree {
            config,
            directory,
            buckets,
            pending: BTreeMap::new(),
            metrics,
            splits_enabled: true,
        }
    }

    /// The shared metrics instance.
    pub fn metrics(&self) -> &Arc<StorageMetrics> {
        &self.metrics
    }

    /// The local directory of owned buckets.
    pub fn directory(&self) -> &LocalDirectory {
        &self.directory
    }

    /// The configuration.
    pub fn config(&self) -> &BucketedConfig {
        &self.config
    }

    /// Buckets owned by this partition (visible to queries).
    pub fn bucket_ids(&self) -> Vec<BucketId> {
        self.directory.buckets().collect()
    }

    /// Number of visible buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Pending (received but not yet installed) bucket ids.
    pub fn pending_bucket_ids(&self) -> Vec<BucketId> {
        self.pending.keys().copied().collect()
    }

    // ----------------------------------------------------------------- writes

    /// Routes a write to the bucket owning the key. Errors if this partition
    /// does not own a bucket for the key (a routing bug upstream).
    pub fn insert(&mut self, key: impl Into<Key>, value: impl Into<Value>) -> Result<()> {
        self.apply(Entry::put(key, value))
    }

    /// Deletes a key.
    pub fn delete(&mut self, key: impl Into<Key>) -> Result<()> {
        self.apply(Entry::delete(key))
    }

    /// Applies an entry to the owning bucket and splits the bucket afterwards
    /// if it exceeded its maximum size.
    pub fn apply(&mut self, entry: Entry) -> Result<()> {
        let bucket = self
            .directory
            .lookup_key(&entry.key)
            .ok_or_else(|| StorageError::UnknownBucket(BucketId::of_key(&entry.key, 0)))?;
        self.buckets
            .get_mut(&bucket)
            .ok_or(StorageError::UnknownBucket(bucket))?
            .apply(entry);
        self.maybe_split(bucket)?;
        Ok(())
    }

    // ------------------------------------------------------------------ reads

    /// Point lookup: only the target bucket (located via the local directory)
    /// is searched.
    pub fn get(&self, key: &Key) -> Option<Value> {
        let bucket = self.directory.lookup_key(key)?;
        self.buckets.get(&bucket)?.get(key)
    }

    /// Full scan of all buckets.
    ///
    /// * [`ScanOrder::Unordered`] concatenates per-bucket scans (each bucket
    ///   internally ordered).
    /// * [`ScanOrder::Ordered`] merge-sorts the per-bucket results.
    pub fn scan(&self, order: ScanOrder) -> Vec<Entry> {
        self.scan_range(None, None, order)
    }

    /// Range scan over `[lo, hi)` with the requested output order. The
    /// ordered path is a k-way merge over the buckets' lazy component
    /// iterators (bucket key sets are disjoint), so the globally ordered
    /// output is materialised exactly once instead of collecting a
    /// `Vec<Entry>` per bucket and merging the copies.
    pub fn scan_range(&self, lo: Option<&Key>, hi: Option<&Key>, order: ScanOrder) -> Vec<Entry> {
        match order {
            ScanOrder::Unordered => {
                let mut out = Vec::new();
                for tree in self.buckets.values() {
                    out.extend(tree.scan(lo, hi));
                }
                out
            }
            ScanOrder::Ordered => {
                let iters: Vec<_> = self.buckets.values().map(|t| t.iter_live(lo, hi)).collect();
                let out = kmerge_disjoint(iters);
                let bytes: usize = out.iter().map(|e| e.size_bytes()).sum();
                StorageMetrics::add(&self.metrics.bytes_query_read, bytes as u64);
                out
            }
        }
    }

    /// Total number of live records across all visible buckets.
    pub fn live_len(&self) -> usize {
        self.buckets.values().map(|t| t.live_len()).sum()
    }

    /// Total number of disk components across visible buckets (the quantity
    /// that grows after splits and drives merge-sort overhead for ordered
    /// scans).
    pub fn num_components(&self) -> usize {
        self.buckets.values().map(|t| t.num_components()).sum()
    }

    /// Per-bucket logical sizes in bytes (memtable + visible disk data).
    pub fn bucket_sizes(&self) -> Vec<(BucketId, usize)> {
        self.buckets
            .iter()
            .map(|(b, t)| (*b, t.logical_size_bytes()))
            .collect()
    }

    /// Live record count of every visible bucket (the residency half of the
    /// control plane's heat reports).
    pub fn bucket_record_counts(&self) -> Vec<(BucketId, usize)> {
        self.buckets
            .iter()
            .map(|(b, t)| (*b, t.live_len()))
            .collect()
    }

    /// Total storage bytes across visible buckets.
    pub fn storage_bytes(&self) -> usize {
        self.buckets.values().map(|t| t.storage_bytes()).sum()
    }

    /// Total logical bytes across visible buckets (reference components count
    /// their visible share; used by balancing and split decisions).
    pub fn logical_size_bytes(&self) -> usize {
        self.buckets.values().map(|t| t.logical_size_bytes()).sum()
    }

    // ------------------------------------------------------- flush/merge/split

    /// Flushes every bucket's memory component.
    pub fn flush_all(&mut self) {
        for tree in self.buckets.values_mut() {
            tree.flush();
        }
    }

    /// Runs the merge policy in every bucket. Returns total merges performed.
    pub fn run_merges(&mut self) -> usize {
        self.buckets.values_mut().map(|t| t.run_merges()).sum()
    }

    /// Memory accounting over every resident entry: all memtables plus each
    /// distinct underlying disk run. Reference components created by bucket
    /// splits share their parent's allocation, so runs are deduplicated on
    /// [`Component::data_token`] — the totals reflect what is actually held
    /// in memory, not the sum over handles.
    pub fn storage_footprint(&self) -> crate::entry::StorageFootprint {
        let mut seen = std::collections::BTreeSet::new();
        let mut acc = crate::entry::StorageFootprint::default();
        for tree in self.buckets.values() {
            acc.absorb(&tree.memtable().footprint());
            for c in tree.components() {
                if seen.insert(c.data_token()) {
                    acc.absorb(&c.raw_footprint());
                }
            }
        }
        acc
    }

    /// Enables or disables dynamic bucket splits (splits are disabled for the
    /// duration of a rebalance, Section V-A).
    pub fn set_splits_enabled(&mut self, enabled: bool) {
        self.splits_enabled = enabled;
    }

    /// True if dynamic splits are currently enabled.
    pub fn splits_enabled(&self) -> bool {
        self.splits_enabled
    }

    fn maybe_split(&mut self, bucket: BucketId) -> Result<()> {
        let Some(max) = self.config.max_bucket_size_bytes else {
            return Ok(());
        };
        if !self.splits_enabled {
            return Ok(());
        }
        // A single write can at most trigger one split of its own bucket, but
        // the children may immediately exceed the limit under heavy skew, so
        // loop until the owning bucket is within bounds or at max depth.
        let mut current = bucket;
        loop {
            let size = match self.buckets.get(&current) {
                Some(t) => t.logical_size_bytes(),
                None => return Ok(()),
            };
            if size <= max || current.depth >= self.config.max_depth {
                return Ok(());
            }
            let (lo, hi) = self.split_bucket(current)?;
            // Continue with whichever child is larger.
            let lo_size = self
                .buckets
                .get(&lo)
                .map(|t| t.logical_size_bytes())
                .unwrap_or(0);
            let hi_size = self
                .buckets
                .get(&hi)
                .map(|t| t.logical_size_bytes())
                .unwrap_or(0);
            current = if lo_size >= hi_size { lo } else { hi };
        }
    }

    /// Splits a bucket into its two children following Algorithm 1:
    ///
    /// 1. pause merges and flush the bucket's memory component,
    /// 2. create two child buckets whose disk components are *reference
    ///    components* pointing at the parent's components,
    /// 3. update the local directory (the metadata force-to-disk of the
    ///    paper) and drop the parent bucket.
    ///
    /// The data rewrite is postponed to the children's next merges.
    pub fn split_bucket(&mut self, bucket: BucketId) -> Result<(BucketId, BucketId)> {
        if !self.splits_enabled {
            return Err(StorageError::SplitsDisabled);
        }
        if bucket.depth >= self.config.max_depth {
            return Err(StorageError::MaxDepthReached(bucket));
        }
        let mut parent = self
            .buckets
            .remove(&bucket)
            .ok_or(StorageError::UnknownBucket(bucket))?;
        // Algorithm 1, lines 3-7: stop merges, flush the memory component so
        // that all data lives in immutable disk components.
        parent.pause_merges();
        parent.flush();
        let (lo, hi) = bucket.split();
        let mut lo_tree = LsmTree::new(self.config.lsm.clone(), Arc::clone(&self.metrics));
        let mut hi_tree = LsmTree::new(self.config.lsm.clone(), Arc::clone(&self.metrics));
        let lo_comps: Vec<Component> = parent
            .components()
            .iter()
            .map(|c| c.restrict_to_bucket(lo))
            .collect();
        let hi_comps: Vec<Component> = parent
            .components()
            .iter()
            .map(|c| c.restrict_to_bucket(hi))
            .collect();
        lo_tree.set_components(lo_comps);
        hi_tree.set_components(hi_comps);
        // Line 9: force the directory metadata; in the simulation this is the
        // in-memory directory update, which is the recovery point.
        self.directory.split(&bucket)?;
        self.buckets.insert(lo, lo_tree);
        self.buckets.insert(hi, hi_tree);
        StorageMetrics::add(&self.metrics.split_count, 1);
        Ok((lo, hi))
    }

    // ------------------------------------------------- rebalance source side

    /// Prepares a bucket for being moved: flushes its memory component so an
    /// immutable snapshot of all writes before the rebalance start exists
    /// ("the flush time is treated as the rebalance start time").
    /// Returns clones of the bucket's disk components.
    pub fn snapshot_bucket(&mut self, bucket: BucketId) -> Result<Vec<Component>> {
        let tree = self
            .buckets
            .get_mut(&bucket)
            .ok_or(StorageError::UnknownBucket(bucket))?;
        tree.flush();
        Ok(tree.components().to_vec())
    }

    /// Scans all live records of a bucket (the source-side data movement
    /// read). Charges the bytes to the rebalance-read metric.
    pub fn scan_bucket(&self, bucket: BucketId) -> Result<Vec<Entry>> {
        let tree = self
            .buckets
            .get(&bucket)
            .ok_or(StorageError::UnknownBucket(bucket))?;
        let entries = tree.scan_all();
        let bytes: usize = entries.iter().map(|e| e.size_bytes()).sum();
        StorageMetrics::add(&self.metrics.bytes_rebalance_read, bytes as u64);
        Ok(entries)
    }

    /// Ships a bucket as sealed components (Section IV: disk components are
    /// immutable, so moving a bucket is moving its component files). The
    /// bucket's memory component is flushed first, then every component is
    /// handed out as a cheap `Arc`-clone marked [`Component::is_shipped`] —
    /// Bloom filters, sorted runs, and any bucket/lazy-cleanup filters travel
    /// with the handle, and no `restrict_to_bucket` copy is made: every
    /// component of a bucket's tree already exposes only that bucket's
    /// entries. Components are returned newest first, the tree's own order.
    pub fn ship_bucket(&mut self, bucket: BucketId) -> Result<Vec<Component>> {
        let tree = self
            .buckets
            .get_mut(&bucket)
            .ok_or(StorageError::UnknownBucket(bucket))?;
        tree.flush();
        let comps: Vec<Component> = tree
            .components()
            .iter()
            .map(|c| c.clone_shipped())
            .collect();
        let bytes: usize = comps.iter().map(|c| c.visible_size_bytes()).sum();
        StorageMetrics::add(&self.metrics.bytes_rebalance_shipped, bytes as u64);
        StorageMetrics::add(&self.metrics.components_shipped, comps.len() as u64);
        Ok(comps)
    }

    /// Drops a moved bucket after a committed rebalance: it is removed from
    /// the local directory so new queries cannot see it. Reference counting
    /// (Arc) keeps the components alive for readers that still hold them.
    pub fn drop_bucket(&mut self, bucket: BucketId) -> Result<()> {
        if !self.directory.remove(&bucket) {
            // Idempotent: dropping a non-existent bucket is a no-op (Case 4).
            return Ok(());
        }
        self.buckets.remove(&bucket);
        Ok(())
    }

    // -------------------------------------------- rebalance destination side

    /// Registers a new pending (received) bucket at a destination partition.
    /// Pending buckets are invisible to queries until installed. Merges are
    /// paused on the pending tree until the install: the loaded/shipped base
    /// components and the replicated-write flushes must survive as-is so
    /// recovery can tell a healthy pending bucket from one whose transfer a
    /// crash wiped ([`BucketedLsmTree::pending_has_base_data`]).
    pub fn create_pending_bucket(&mut self, bucket: BucketId) -> Result<()> {
        if self.pending.contains_key(&bucket) {
            return Err(StorageError::PendingBucketExists(bucket));
        }
        let mut tree = LsmTree::new(self.config.lsm.clone(), Arc::clone(&self.metrics));
        tree.pause_merges();
        self.pending.insert(bucket, tree);
        Ok(())
    }

    /// Bulk-loads scanned records into a pending bucket as disk components
    /// that are strictly older than any replicated log records.
    pub fn load_into_pending(&mut self, bucket: BucketId, entries: Vec<Entry>) -> Result<()> {
        let tree = self
            .pending
            .get_mut(&bucket)
            .ok_or(StorageError::UnknownPendingBucket(bucket))?;
        let comp = Component::from_unsorted(entries, ComponentSource::Loaded);
        StorageMetrics::add(
            &self.metrics.bytes_rebalance_loaded,
            comp.size_bytes() as u64,
        );
        tree.append_oldest_components(vec![comp]);
        Ok(())
    }

    /// Installs components shipped whole from a source partition into a
    /// pending bucket. The handles are appended as the **oldest** data of the
    /// pending tree — replicated log records applied afterwards (or already
    /// sitting in the pending memory component) stay newer, exactly as the
    /// record-level `load_into_pending` path orders its bulk-loaded
    /// component. The components keep their internal newest-first order.
    pub fn install_shipped(&mut self, bucket: BucketId, comps: Vec<Component>) -> Result<()> {
        let tree = self
            .pending
            .get_mut(&bucket)
            .ok_or(StorageError::UnknownPendingBucket(bucket))?;
        let bytes: usize = comps.iter().map(|c| c.visible_size_bytes()).sum();
        StorageMetrics::add(&self.metrics.bytes_rebalance_loaded, bytes as u64);
        tree.append_oldest_components(comps);
        Ok(())
    }

    /// True if a pending (received, not yet installed) bucket exists.
    pub fn has_pending_bucket(&self, bucket: &BucketId) -> bool {
        self.pending.contains_key(bucket)
    }

    /// True if the pending bucket holds its base data — shipped or
    /// bulk-loaded components, as opposed to only replicated log records
    /// accumulated after a crash wiped the uncommitted transfer. Recovery
    /// re-ships the bucket from its source when this is false.
    pub fn pending_has_base_data(&self, bucket: &BucketId) -> bool {
        self.pending
            .get(bucket)
            .map(|t| {
                t.components()
                    .iter()
                    .any(|c| c.is_shipped() || c.source() == ComponentSource::Loaded)
            })
            .unwrap_or(false)
    }

    /// Applies a replicated log record (a concurrent write captured at the
    /// source) to a pending bucket's memory component. The pending bucket
    /// must exist — a replicated write to an unregistered bucket is a
    /// routing bug upstream. (After a destination crash wiped an uncommitted
    /// transfer, the cluster's replication path re-creates the pending
    /// bucket explicitly for buckets of the active rebalance before
    /// applying; see `Cluster::ingest`.)
    pub fn apply_replicated(&mut self, bucket: BucketId, entry: Entry) -> Result<()> {
        let tree = self
            .pending
            .get_mut(&bucket)
            .ok_or(StorageError::UnknownPendingBucket(bucket))?;
        tree.apply(entry);
        Ok(())
    }

    /// Flushes the memory components of pending buckets (the prepare-phase
    /// requirement that replicated writes are persisted before voting yes).
    pub fn flush_pending(&mut self) {
        for tree in self.pending.values_mut() {
            tree.flush();
        }
    }

    /// Installs a pending bucket, making it visible to queries (commit phase:
    /// "add the loaded disk components to the component lists").
    /// Idempotent if the bucket is already installed.
    pub fn install_pending(&mut self, bucket: BucketId) -> Result<()> {
        let Some(mut tree) = self.pending.remove(&bucket) else {
            if self.directory.contains(&bucket) {
                return Ok(()); // already installed (recovery retries are idempotent)
            }
            return Err(StorageError::UnknownPendingBucket(bucket));
        };
        // Merges were paused while the bucket was pending; the installed
        // bucket compacts normally again.
        tree.resume_merges();
        self.directory.add(bucket)?;
        self.buckets.insert(bucket, tree);
        Ok(())
    }

    /// Discards a pending bucket (abort path). Idempotent: discarding an
    /// unknown bucket is a no-op, as required by failure Case 1.
    pub fn drop_pending(&mut self, bucket: BucketId) {
        self.pending.remove(&bucket);
    }

    /// Discards all pending buckets (abort path).
    pub fn drop_all_pending(&mut self) {
        self.pending.clear();
    }

    /// Storage bytes held by pending buckets (intermediate rebalance state).
    pub fn pending_storage_bytes(&self) -> usize {
        self.pending.values().map(|t| t.storage_bytes()).sum()
    }

    /// Read-only access to a bucket's tree (for inspection in tests and the
    /// cost model).
    pub fn bucket_tree(&self, bucket: &BucketId) -> Option<&LsmTree> {
        self.buckets.get(bucket)
    }

    /// Checks internal consistency: directory and bucket map agree and the
    /// directory has no overlaps.
    pub fn is_consistent(&self) -> bool {
        self.directory.is_consistent()
            && self.directory.len() == self.buckets.len()
            && self
                .directory
                .buckets()
                .all(|b| self.buckets.contains_key(&b))
    }

    /// Looks up which visible bucket a key belongs to.
    pub fn bucket_of_key(&self, key: &Key) -> Option<BucketId> {
        self.directory.lookup_key(key)
    }

    /// Looks up which visible bucket a hash belongs to.
    pub fn bucket_of_hash(&self, hash: u64) -> Option<BucketId> {
        self.directory.lookup_hash(hash)
    }

    /// Convenience: the hash of a key (re-exported for callers that need to
    /// route without a directory).
    pub fn hash_of(key: &Key) -> u64 {
        hash_key(key)
    }

    /// Returns live entries of a bucket grouped for tests (bucket must exist).
    pub fn bucket_entries(&self, bucket: &BucketId) -> Result<Vec<Entry>> {
        self.buckets
            .get(bucket)
            .map(|t| t.scan_all())
            .ok_or(StorageError::UnknownBucket(*bucket))
    }

    /// Applies lazy-cleanup metadata to a bucket's components; used by
    /// secondary indexes through [`crate::secondary::SecondaryIndex`], and
    /// exposed here for ablation experiments on primary indexes.
    pub fn mark_bucket_invalid_everywhere(&mut self, moved: BucketId) {
        for tree in self.buckets.values_mut() {
            tree.mark_bucket_invalid(moved);
        }
    }

    /// Returns the latest operation for a key searching **only** the given
    /// bucket (used to validate routing in tests).
    pub fn get_in_bucket(&self, bucket: &BucketId, key: &Key) -> Option<Op> {
        let tree = self.buckets.get(bucket)?;
        let found = tree.scan_all().into_iter().find(|e| &e.key == key)?;
        Some(found.op)
    }

    // -------------------------------------------------------- bucket merging

    /// Merges the two children of `parent` back into a single bucket — the
    /// inverse of [`BucketedLsmTree::split_bucket`], used when deletions
    /// shrink the dataset (dynamic bucketing adjusts the bucket count in both
    /// directions, Section II-A).
    ///
    /// Both children must currently be owned by this partition. Their disk
    /// components are simply re-attached to the merged bucket: their key sets
    /// are disjoint by construction, so no data rewrite is needed.
    pub fn merge_buckets(&mut self, parent: BucketId) -> Result<BucketId> {
        if !self.splits_enabled {
            return Err(StorageError::SplitsDisabled);
        }
        let (lo, hi) = parent.split();
        if !self.directory.contains(&lo) || !self.directory.contains(&hi) {
            return Err(StorageError::UnknownBucket(parent));
        }
        let mut lo_tree = self
            .buckets
            .remove(&lo)
            .ok_or(StorageError::UnknownBucket(lo))?;
        let Some(mut hi_tree) = self.buckets.remove(&hi) else {
            // Undo the lo removal so a malformed call leaves state intact.
            self.buckets.insert(lo, lo_tree);
            return Err(StorageError::UnknownBucket(hi));
        };
        lo_tree.flush();
        hi_tree.flush();
        let mut merged = LsmTree::new(self.config.lsm.clone(), Arc::clone(&self.metrics));
        let mut comps = lo_tree.components().to_vec();
        comps.extend(hi_tree.components().iter().cloned());
        merged.set_components(comps);
        self.directory.remove(&lo);
        self.directory.remove(&hi);
        self.directory.add(parent)?;
        self.buckets.insert(parent, merged);
        Ok(parent)
    }

    /// Merges sibling buckets whose combined logical size has fallen below
    /// `min_combined_bytes` (e.g. half the dynamic-split threshold). Returns
    /// the number of merges performed. Splits/merges must be enabled.
    pub fn shrink_buckets(&mut self, min_combined_bytes: usize) -> usize {
        if !self.splits_enabled {
            return 0;
        }
        let mut merges = 0;
        loop {
            let mut candidate = None;
            for b in self.directory.buckets() {
                let Some(parent) = b.parent() else { continue };
                let (lo, hi) = parent.split();
                if !self.directory.contains(&lo) || !self.directory.contains(&hi) {
                    continue;
                }
                let combined = self
                    .buckets
                    .get(&lo)
                    .map(|t| t.logical_size_bytes())
                    .unwrap_or(0)
                    + self
                        .buckets
                        .get(&hi)
                        .map(|t| t.logical_size_bytes())
                        .unwrap_or(0);
                if combined < min_combined_bytes {
                    candidate = Some(parent);
                    break;
                }
            }
            match candidate {
                Some(parent) => {
                    if self.merge_buckets(parent).is_ok() {
                        merges += 1;
                    } else {
                        break;
                    }
                }
                None => break,
            }
        }
        merges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::Bytes;

    fn cfg(max_bucket: Option<usize>) -> BucketedConfig {
        BucketedConfig {
            lsm: LsmConfig::with_memtable_budget(1 << 14),
            max_bucket_size_bytes: max_bucket,
            max_depth: 16,
        }
    }

    fn tree_with_depth(depth: u8, max_bucket: Option<usize>) -> BucketedLsmTree {
        let buckets = (0..(1u32 << depth)).map(|b| BucketId::new(b, depth));
        BucketedLsmTree::new(cfg(max_bucket), buckets, StorageMetrics::new_shared())
    }

    fn val(n: usize) -> Bytes {
        Bytes::from(vec![3u8; n])
    }

    #[test]
    fn writes_route_to_owning_bucket() {
        let mut t = tree_with_depth(2, None);
        for i in 0..200u64 {
            t.insert(i, val(8)).unwrap();
        }
        assert_eq!(t.live_len(), 200);
        for i in 0..200u64 {
            let key = Key::from_u64(i);
            let b = t.bucket_of_key(&key).unwrap();
            assert!(b.contains_key(&key));
            assert!(t.get(&key).is_some());
        }
        assert!(t.is_consistent());
    }

    #[test]
    fn unowned_keys_are_rejected() {
        let mut t = BucketedLsmTree::new(
            cfg(None),
            [BucketId::new(0, 1)],
            StorageMetrics::new_shared(),
        );
        let mut rejected = 0;
        for i in 0..100u64 {
            if t.insert(i, val(4)).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "keys hashing to bucket 1 must be rejected");
    }

    #[test]
    fn ordered_scan_is_sorted_unordered_is_complete() {
        let mut t = tree_with_depth(3, None);
        for i in (0..500u64).rev() {
            t.insert(i, val(4)).unwrap();
        }
        let ordered = t.scan(ScanOrder::Ordered);
        let keys: Vec<u64> = ordered.iter().map(|e| e.key.as_u64()).collect();
        let expected: Vec<u64> = (0..500).collect();
        assert_eq!(keys, expected);
        let unordered = t.scan(ScanOrder::Unordered);
        assert_eq!(unordered.len(), 500);
        let mut un_keys: Vec<u64> = unordered.iter().map(|e| e.key.as_u64()).collect();
        un_keys.sort_unstable();
        assert_eq!(un_keys, expected);
    }

    #[test]
    fn split_preserves_data_and_routing() {
        let mut t = tree_with_depth(1, None);
        for i in 0..300u64 {
            t.insert(i, val(16)).unwrap();
        }
        let target = BucketId::new(0, 1);
        let before = t.live_len();
        let (lo, hi) = t.split_bucket(target).unwrap();
        assert!(t.is_consistent());
        assert_eq!(t.live_len(), before, "no records may be lost by a split");
        // children partition the parent's records
        let lo_entries = t.bucket_entries(&lo).unwrap();
        let hi_entries = t.bucket_entries(&hi).unwrap();
        assert!(lo_entries.iter().all(|e| lo.contains_key(&e.key)));
        assert!(hi_entries.iter().all(|e| hi.contains_key(&e.key)));
        assert!(!lo_entries.is_empty() && !hi_entries.is_empty());
        // reference components occupy no extra storage until merged
        assert!(t
            .bucket_tree(&lo)
            .unwrap()
            .components()
            .iter()
            .all(|c| c.is_reference()));
        assert_eq!(t.metrics().snapshot().split_count, 1);
        // reads still work after the split
        for i in 0..300u64 {
            assert!(t.get(&Key::from_u64(i)).is_some());
        }
    }

    #[test]
    fn dynamic_splits_trigger_on_max_bucket_size() {
        let mut t = BucketedLsmTree::new(
            BucketedConfig {
                lsm: LsmConfig::with_memtable_budget(1 << 12),
                max_bucket_size_bytes: Some(4 * 1024),
                max_depth: 10,
            },
            [BucketId::root()],
            StorageMetrics::new_shared(),
        );
        for i in 0..2000u64 {
            t.insert(i, val(32)).unwrap();
        }
        assert!(t.num_buckets() > 1, "bucket should have split dynamically");
        assert!(t.is_consistent());
        assert_eq!(t.live_len(), 2000);
        // every bucket respects the size bound reasonably (allow slack for
        // the memtable that has not flushed yet)
        for (b, _size) in t.bucket_sizes() {
            assert!(b.depth <= 10);
        }
    }

    #[test]
    fn splits_disabled_prevents_splitting() {
        let mut t = tree_with_depth(0, Some(128));
        t.set_splits_enabled(false);
        for i in 0..500u64 {
            t.insert(i, val(64)).unwrap();
        }
        assert_eq!(t.num_buckets(), 1);
        assert!(matches!(
            t.split_bucket(BucketId::root()),
            Err(StorageError::SplitsDisabled)
        ));
    }

    #[test]
    fn pending_buckets_are_invisible_until_installed() {
        let mut t = tree_with_depth(1, None);
        let incoming = BucketId::new(0, 1);
        // simulate a destination partition that owns bucket 1 and receives bucket 0
        let mut dest = BucketedLsmTree::new(
            cfg(None),
            [BucketId::new(1, 1)],
            StorageMetrics::new_shared(),
        );
        for i in 0..200u64 {
            t.insert(i, val(8)).unwrap();
        }
        let moved_entries = t.scan_bucket(incoming).unwrap();
        let moved_count = moved_entries.len();
        assert!(moved_count > 0);

        dest.create_pending_bucket(incoming).unwrap();
        dest.load_into_pending(incoming, moved_entries).unwrap();
        // a replicated concurrent write that updates a moved key
        let some_key = t
            .bucket_entries(&incoming)
            .unwrap()
            .first()
            .unwrap()
            .key
            .clone();
        dest.apply_replicated(
            incoming,
            Entry::put(some_key.clone(), Bytes::from_static(b"newer")),
        )
        .unwrap();

        // still invisible
        assert_eq!(dest.get(&some_key), None);
        assert_eq!(dest.live_len(), 0);

        dest.flush_pending();
        dest.install_pending(incoming).unwrap();
        assert!(dest.is_consistent());
        assert_eq!(dest.live_len(), moved_count);
        // the replicated write must win over the bulk-loaded record
        assert_eq!(dest.get(&some_key).unwrap(), Bytes::from_static(b"newer"));
        // idempotent install (Case 4/5 retries)
        dest.install_pending(incoming).unwrap();
        assert_eq!(dest.live_len(), moved_count);
    }

    #[test]
    fn drop_pending_and_drop_bucket_are_idempotent() {
        let mut t = tree_with_depth(1, None);
        for i in 0..50u64 {
            t.insert(i, val(8)).unwrap();
        }
        let b = BucketId::new(0, 1);
        t.drop_bucket(b).unwrap();
        t.drop_bucket(b).unwrap(); // no-op
        assert!(t.bucket_of_hash(0).is_none());
        t.drop_pending(b); // never existed: no-op
        assert!(t.is_consistent());
    }

    #[test]
    fn ship_bucket_moves_sealed_components_without_copying() {
        let mut src = tree_with_depth(1, None);
        let mut dst = BucketedLsmTree::new(
            cfg(None),
            [BucketId::new(1, 1)],
            StorageMetrics::new_shared(),
        );
        for i in 0..300u64 {
            src.insert(i, val(16)).unwrap();
        }
        let moving = BucketId::new(0, 1);
        let expected = src.bucket_entries(&moving).unwrap();
        let comps = src.ship_bucket(moving).unwrap();
        assert!(!comps.is_empty());
        assert!(comps.iter().all(|c| c.is_shipped()));
        // the shipped handles share the source's data (no copy was made)
        let src_ids: Vec<_> = src
            .bucket_tree(&moving)
            .unwrap()
            .components()
            .iter()
            .map(|c| c.id())
            .collect();
        assert_eq!(comps.iter().map(|c| c.id()).collect::<Vec<_>>(), src_ids);
        let snap = src.metrics().snapshot();
        assert_eq!(snap.components_shipped, comps.len() as u64);
        assert!(snap.bytes_rebalance_shipped > 0);

        dst.create_pending_bucket(moving).unwrap();
        // a replicated concurrent write applied before the transfer lands
        // must stay newer than the shipped base data
        let overwritten = expected[0].key.clone();
        dst.apply_replicated(moving, Entry::put(overwritten.clone(), val(1)))
            .unwrap();
        dst.flush_pending();
        dst.install_shipped(moving, comps).unwrap();
        assert!(dst.pending_has_base_data(&moving));
        assert_eq!(dst.live_len(), 0, "pending data must stay invisible");
        dst.install_pending(moving).unwrap();
        assert_eq!(dst.live_len(), expected.len());
        assert_eq!(dst.get(&overwritten).unwrap(), val(1));
        for e in &expected[1..] {
            assert_eq!(dst.get(&e.key).as_ref(), e.op.value());
        }
    }

    #[test]
    fn pending_merges_stay_paused_so_base_provenance_survives_heavy_feeds() {
        let mut src = tree_with_depth(1, None);
        for i in 0..200u64 {
            src.insert(i, val(16)).unwrap();
        }
        let moving = BucketId::new(0, 1);
        let comps = src.ship_bucket(moving).unwrap();
        let mut dst = BucketedLsmTree::new(
            cfg(None), // 16 KiB memtable budget, auto flush + merge on
            [BucketId::new(1, 1)],
            StorageMetrics::new_shared(),
        );
        dst.create_pending_bucket(moving).unwrap();
        dst.install_shipped(moving, comps).unwrap();
        // A replicated feed far above the memtable budget flushes the
        // pending tree repeatedly; without paused merges a size-tiered merge
        // would rewrite the shipped base components (erasing the provenance
        // that crash recovery checks) and force a spurious re-ship.
        for i in 0..600u64 {
            if moving.contains_key(&Key::from_u64(i)) {
                dst.apply_replicated(moving, Entry::put(Key::from_u64(i), val(64)))
                    .unwrap();
            }
        }
        assert!(
            dst.pending_has_base_data(&moving),
            "shipped base components must survive replicated-feed flushes"
        );
        dst.install_pending(moving).unwrap();
        assert!(!dst.bucket_tree(&moving).unwrap().merges_paused());
        assert_eq!(dst.live_len(), dst.bucket_entries(&moving).unwrap().len());
    }

    #[test]
    fn apply_replicated_requires_a_registered_pending_bucket() {
        let mut dst = tree_with_depth(1, None);
        let b = BucketId::new(0, 2);
        dst.create_pending_bucket(b).unwrap();
        dst.drop_pending(b); // crash wiped the uncommitted transfer
        assert!(!dst.has_pending_bucket(&b));
        // a misrouted replicated write surfaces as an error, not a silent
        // fresh pending tree
        assert!(matches!(
            dst.apply_replicated(b, Entry::put(Key::from_u64(8), val(4))),
            Err(StorageError::UnknownPendingBucket(_))
        ));
        // the recovery path re-creates the pending bucket explicitly; the
        // re-created bucket holds only replicated records until re-shipped
        dst.create_pending_bucket(b).unwrap();
        dst.apply_replicated(b, Entry::put(Key::from_u64(8), val(4)))
            .unwrap();
        assert!(
            !dst.pending_has_base_data(&b),
            "a recreated pending bucket holds only replicated records"
        );
    }

    #[test]
    fn snapshot_bucket_flushes_memtable_first() {
        let mut t = tree_with_depth(1, None);
        for i in 0..100u64 {
            t.insert(i, val(8)).unwrap();
        }
        let b = BucketId::new(1, 1);
        let comps = t.snapshot_bucket(b).unwrap();
        assert!(!comps.is_empty());
        // everything the bucket holds is now in immutable components
        assert!(t.bucket_tree(&b).unwrap().memtable().is_empty());
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;
    use crate::bytes::Bytes;

    fn tree(max_bucket: Option<usize>) -> BucketedLsmTree {
        BucketedLsmTree::new(
            BucketedConfig {
                lsm: LsmConfig::with_memtable_budget(4 * 1024),
                max_bucket_size_bytes: max_bucket,
                max_depth: 12,
            },
            [BucketId::new(0, 1), BucketId::new(1, 1)],
            StorageMetrics::new_shared(),
        )
    }

    #[test]
    fn split_then_merge_roundtrips_data_and_directory() {
        let mut t = tree(None);
        for i in 0..400u64 {
            t.insert(i, Bytes::from(vec![1u8; 32])).unwrap();
        }
        let before = t.live_len();
        let parent = BucketId::new(0, 1);
        t.split_bucket(parent).unwrap();
        assert_eq!(t.num_buckets(), 3);
        assert_eq!(t.live_len(), before);

        let merged = t.merge_buckets(parent).unwrap();
        assert_eq!(merged, parent);
        assert_eq!(t.num_buckets(), 2);
        assert!(t.is_consistent());
        assert_eq!(t.live_len(), before);
        for i in 0..400u64 {
            assert!(t.get(&Key::from_u64(i)).is_some());
        }
        // merging again fails: the children no longer exist
        assert!(t.merge_buckets(parent).is_err());
    }

    #[test]
    fn shrink_buckets_merges_small_siblings_after_deletions() {
        let mut t = tree(Some(2 * 1024));
        for i in 0..2000u64 {
            t.insert(i, Bytes::from(vec![2u8; 64])).unwrap();
        }
        let grown = t.num_buckets();
        assert!(grown > 2, "ingestion should have split buckets");
        // delete most of the data, then shrink
        for i in 0..2000u64 {
            if i % 10 != 0 {
                t.delete(Key::from_u64(i)).unwrap();
            }
        }
        let live = t.live_len();
        let merges = t.shrink_buckets(64 * 1024);
        assert!(merges > 0, "shrinking should merge some sibling buckets");
        assert!(t.num_buckets() < grown);
        assert!(t.is_consistent());
        assert_eq!(t.live_len(), live, "merging must not change the data");
    }

    #[test]
    fn merge_requires_both_children_and_enabled_splits() {
        let mut t = tree(None);
        // bucket (0,1) was never split, so its children do not exist and the
        // merge is rejected
        assert!(t.merge_buckets(BucketId::new(0, 1)).is_err());
        t.set_splits_enabled(false);
        assert!(matches!(
            t.merge_buckets(BucketId::root()),
            Err(StorageError::SplitsDisabled)
        ));
        assert_eq!(t.shrink_buckets(1 << 20), 0);
    }
}
