//! Ablation A2: load balance of Algorithm 2 vs. round-robin assignment under
//! bucket-size skew.

use criterion::{criterion_group, criterion_main, Criterion};
use dynahash_bench::ablation_balance_quality;

fn bench_balance_quality(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_balance_quality");
    group.sample_size(20);
    group.bench_function("skew_sweep", |b| {
        b.iter(|| ablation_balance_quality(&[1, 2, 4, 8, 16, 32]));
    });
    group.finish();
}

criterion_group!(benches, bench_balance_quality);
criterion_main!(benches);
