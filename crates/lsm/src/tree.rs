//! A single LSM-tree: one memory component plus a list of immutable disk
//! components ordered newest first.
//!
//! This is the building block used both for individual buckets of the
//! bucketed primary index and for secondary indexes. It follows the classic
//! out-of-place design: writes go to the memory component, flushes create
//! immutable disk components, and a merge policy periodically combines disk
//! components.

use std::sync::Arc;

use crate::component::{Component, ComponentSource};
use crate::entry::{Entry, Key, Value};
use crate::iterator::{reconcile_point, LazyMergeIter, RefSource};
use crate::memtable::MemTable;
use crate::merge_policy::{MergePolicy, SizeTieredPolicy};
use crate::metrics::StorageMetrics;

/// Configuration of a single LSM-tree.
#[derive(Clone)]
pub struct LsmConfig {
    /// Memory-component budget in bytes; exceeding it triggers a flush when
    /// `auto_flush` is set.
    pub memtable_budget_bytes: usize,
    /// The merge policy (AsterixDB default: size-tiered with ratio 1.2).
    pub merge_policy: Arc<dyn MergePolicy>,
    /// Automatically flush when the memory component exceeds its budget.
    pub auto_flush: bool,
    /// Automatically run merges after each flush.
    pub auto_merge: bool,
}

impl std::fmt::Debug for LsmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmConfig")
            .field("memtable_budget_bytes", &self.memtable_budget_bytes)
            .field("merge_policy", &self.merge_policy.name())
            .field("auto_flush", &self.auto_flush)
            .field("auto_merge", &self.auto_merge)
            .finish()
    }
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_budget_bytes: 4 * 1024 * 1024,
            merge_policy: Arc::new(SizeTieredPolicy::default()),
            auto_flush: true,
            auto_merge: true,
        }
    }
}

impl LsmConfig {
    /// Convenience constructor with a specific memtable budget.
    pub fn with_memtable_budget(budget: usize) -> Self {
        LsmConfig {
            memtable_budget_bytes: budget,
            ..Default::default()
        }
    }
}

/// A single LSM-tree index.
#[derive(Debug)]
pub struct LsmTree {
    config: LsmConfig,
    memtable: MemTable,
    /// Disk components ordered newest first.
    components: Vec<Component>,
    metrics: Arc<StorageMetrics>,
    /// When true, new merges are not scheduled (used while a bucket is being
    /// split or moved).
    merges_paused: bool,
}

impl LsmTree {
    /// Creates an empty tree.
    pub fn new(config: LsmConfig, metrics: Arc<StorageMetrics>) -> Self {
        LsmTree {
            config,
            memtable: MemTable::new(),
            components: Vec::new(),
            metrics,
            merges_paused: false,
        }
    }

    /// Creates an empty tree with default configuration and private metrics.
    pub fn new_default() -> Self {
        Self::new(LsmConfig::default(), StorageMetrics::new_shared())
    }

    /// The tree's configuration.
    pub fn config(&self) -> &LsmConfig {
        &self.config
    }

    /// The shared metrics instance.
    pub fn metrics(&self) -> &Arc<StorageMetrics> {
        &self.metrics
    }

    // ----------------------------------------------------------------- writes

    /// Inserts or updates a record.
    pub fn put(&mut self, key: impl Into<Key>, value: impl Into<Value>) {
        self.apply(Entry::put(key, value));
    }

    /// Deletes a record (writes a tombstone).
    pub fn delete(&mut self, key: impl Into<Key>) {
        self.apply(Entry::delete(key));
    }

    /// Applies an entry (used by log replay and replication).
    pub fn apply(&mut self, entry: Entry) {
        StorageMetrics::add(&self.metrics.records_written, 1);
        self.memtable.apply(entry);
        if self.config.auto_flush && self.memtable.size_bytes() >= self.config.memtable_budget_bytes
        {
            self.flush();
            if self.config.auto_merge {
                self.run_merges();
            }
        }
    }

    // ------------------------------------------------------------------ reads

    /// Point lookup: searches the memory component, then disk components from
    /// newest to oldest, stopping at the first match.
    pub fn get(&self, key: &Key) -> Option<Value> {
        let mem = self.memtable.get(key);
        let disk = self.components.iter().map(|c| c.get(key));
        let op = reconcile_point(std::iter::once(mem).chain(disk))?;
        StorageMetrics::add(
            &self.metrics.bytes_query_read,
            Entry::size_of_parts(key, op) as u64,
        );
        op.value().cloned()
    }

    /// A lazy, reconciling k-way merge over `[lo, hi)` of the memory
    /// component and every disk component's `range()` iterator, newest
    /// first. Tombstoned keys are skipped; nothing is materialised until the
    /// caller consumes the iterator.
    pub fn iter_live<'a>(&'a self, lo: Option<&'a Key>, hi: Option<&'a Key>) -> LazyMergeIter<'a> {
        let mut sources: Vec<RefSource<'a>> = Vec::with_capacity(self.components.len() + 1);
        sources.push(Box::new(self.memtable.range(lo, hi)));
        for c in &self.components {
            sources.push(Box::new(c.range(lo, hi).map(|e| (&e.key, &e.op))));
        }
        LazyMergeIter::new(sources, false)
    }

    /// Range scan over `[lo, hi)` returning live entries in key order. The
    /// merge pulls lazily from the component iterators and materialises the
    /// reconciled output exactly once.
    pub fn scan(&self, lo: Option<&Key>, hi: Option<&Key>) -> Vec<Entry> {
        let out: Vec<Entry> = self.iter_live(lo, hi).collect();
        let bytes: usize = out.iter().map(|e| e.size_bytes()).sum();
        StorageMetrics::add(&self.metrics.bytes_query_read, bytes as u64);
        out
    }

    /// Scans every live entry in key order.
    pub fn scan_all(&self) -> Vec<Entry> {
        self.scan(None, None)
    }

    /// Number of live records (reconciled). Linear in the data size.
    pub fn live_len(&self) -> usize {
        self.scan_all().len()
    }

    // ------------------------------------------------------- flush and merge

    /// Flushes the memory component into a new disk component (no-op when the
    /// memory component is empty). Returns the new component if one was made.
    pub fn flush(&mut self) -> Option<Component> {
        if self.memtable.is_empty() {
            return None;
        }
        let entries = self.memtable.drain_sorted();
        let comp = Component::from_sorted(entries, ComponentSource::Flush);
        StorageMetrics::add(&self.metrics.bytes_flushed, comp.size_bytes() as u64);
        StorageMetrics::add(&self.metrics.flush_count, 1);
        self.components.insert(0, comp.clone());
        Some(comp)
    }

    /// Pauses scheduling of new merges (Algorithm 1, line 3).
    pub fn pause_merges(&mut self) {
        self.merges_paused = true;
    }

    /// Resumes scheduling of merges (Algorithm 1, line 11).
    pub fn resume_merges(&mut self) {
        self.merges_paused = false;
    }

    /// True if merges are currently paused.
    pub fn merges_paused(&self) -> bool {
        self.merges_paused
    }

    /// Runs merges according to the policy until it no longer selects one.
    /// Returns the number of merge operations performed.
    pub fn run_merges(&mut self) -> usize {
        let mut merges = 0;
        while self.maybe_merge() {
            merges += 1;
        }
        merges
    }

    /// Performs one policy-selected merge if any. Returns true if a merge ran.
    pub fn maybe_merge(&mut self) -> bool {
        if self.merges_paused {
            return false;
        }
        let Some((start, end)) = self.config.merge_policy.select_merge(&self.components) else {
            return false;
        };
        self.merge_range(start, end);
        true
    }

    /// Merges every disk component into one (major compaction). No-op with
    /// fewer than two components unless a single component carries filters.
    pub fn force_merge_all(&mut self) {
        if self.components.len() >= 2 || self.components.iter().any(|c| c.needs_compaction()) {
            self.merge_range(0, self.components.len());
        }
    }

    fn merge_range(&mut self, start: usize, end: usize) {
        if start >= end || end > self.components.len() {
            return;
        }
        let merged_slice = &self.components[start..end];
        let includes_oldest = end == self.components.len();
        let read_bytes: usize = merged_slice.iter().map(|c| c.size_bytes()).sum();
        let sources: Vec<RefSource<'_>> = merged_slice
            .iter()
            .map(|c| Box::new(c.iter().map(|e| (&e.key, &e.op))) as RefSource<'_>)
            .collect();
        // A merge that does not include the oldest component must keep
        // tombstones so that deletes still shadow older data. Merges realise
        // reference-component filtering and lazy cleanup because they only
        // read *visible* entries.
        let merged_entries: Vec<Entry> = LazyMergeIter::new(sources, !includes_oldest).collect();
        let new_comp = Component::from_sorted(merged_entries, ComponentSource::Merge);
        StorageMetrics::add(&self.metrics.bytes_merge_read, read_bytes as u64);
        StorageMetrics::add(&self.metrics.bytes_merged, new_comp.size_bytes() as u64);
        StorageMetrics::add(&self.metrics.merge_count, 1);
        self.components.splice(start..end, [new_comp]);
    }

    // ----------------------------------------------------- component plumbing

    /// The disk components, newest first.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Replaces the component list (used by bucket splits and tests).
    pub fn set_components(&mut self, components: Vec<Component>) {
        self.components = components;
    }

    /// Registers already-built components as the **oldest** data of this tree
    /// (used to install loaded disk components during a rebalance: scanned
    /// records must be strictly older than replicated log records).
    pub fn append_oldest_components(&mut self, comps: Vec<Component>) {
        self.components.extend(comps);
    }

    /// Registers already-built components as the **newest** data of this tree.
    pub fn prepend_newest_components(&mut self, comps: Vec<Component>) {
        let mut new_list = comps;
        new_list.append(&mut self.components);
        self.components = new_list;
    }

    /// Marks a bucket invalid in every disk component (lazy cleanup of a
    /// moved bucket). Entries of that bucket disappear from reads immediately
    /// and are physically dropped by the next merge.
    pub fn mark_bucket_invalid(&mut self, bucket: crate::bucket::BucketId) {
        for c in self.components.iter_mut() {
            *c = c.mark_bucket_invalid(bucket);
        }
    }

    /// Marks a bucket invalid in every **current** disk component of a
    /// secondary index: keys are composite (secondary, primary) and the
    /// bucket of an entry is the bucket of its primary part. Components added
    /// later (e.g. buckets received back by a future rebalance) are not
    /// affected, exactly as the paper's per-component metadata behaves.
    pub fn mark_bucket_invalid_secondary(&mut self, bucket: crate::bucket::BucketId) {
        for c in self.components.iter_mut() {
            *c = c.mark_bucket_invalid_as(bucket, crate::component::KeyLayout::SecondaryComposite);
        }
    }

    /// Direct read access to the memory component.
    pub fn memtable(&self) -> &MemTable {
        &self.memtable
    }

    /// Number of disk components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Total bytes of all disk data reachable from this tree (reference
    /// components report their base size).
    pub fn disk_size_bytes(&self) -> usize {
        self.components.iter().map(|c| c.size_bytes()).sum()
    }

    /// Bytes of storage actually occupied (reference components count as 0).
    pub fn storage_bytes(&self) -> usize {
        self.components
            .iter()
            .map(|c| c.storage_bytes())
            .sum::<usize>()
            + self.memtable.size_bytes()
    }

    /// Logical bytes of data reachable through this tree: visible bytes of
    /// every component (reference components count their filtered share) plus
    /// the memory component. This is the size the balancing algorithm and the
    /// dynamic-split threshold reason about.
    pub fn logical_size_bytes(&self) -> usize {
        self.components
            .iter()
            .map(|c| c.visible_size_bytes())
            .sum::<usize>()
            + self.memtable.size_bytes()
    }

    /// True if the tree holds no data at all.
    pub fn is_empty(&self) -> bool {
        self.memtable.is_empty() && self.components.iter().all(|c| c.visible_len() == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::Bytes;
    use crate::merge_policy::NoMergePolicy;

    fn small_tree(budget: usize) -> LsmTree {
        LsmTree::new(
            LsmConfig::with_memtable_budget(budget),
            StorageMetrics::new_shared(),
        )
    }

    fn val(tag: &str) -> Bytes {
        Bytes::from(tag.as_bytes().to_vec())
    }

    #[test]
    fn put_get_across_flushes() {
        let mut t = small_tree(1 << 20);
        for i in 0..100u64 {
            t.put(i, val(&format!("v{i}")));
        }
        t.flush();
        for i in 100..200u64 {
            t.put(i, val(&format!("v{i}")));
        }
        for i in 0..200u64 {
            assert_eq!(t.get(&Key::from_u64(i)).unwrap(), val(&format!("v{i}")));
        }
        assert!(t.get(&Key::from_u64(999)).is_none());
    }

    #[test]
    fn updates_and_deletes_are_reconciled() {
        let mut t = small_tree(1 << 20);
        t.put(1u64, val("a"));
        t.flush();
        t.put(1u64, val("b"));
        t.flush();
        assert_eq!(t.get(&Key::from_u64(1)).unwrap(), val("b"));
        t.delete(1u64);
        assert_eq!(t.get(&Key::from_u64(1)), None);
        t.flush();
        assert_eq!(t.get(&Key::from_u64(1)), None);
        assert!(t.scan_all().is_empty());
    }

    /// Regression for the op-tag accounting: the memtable's running size,
    /// the flushed component's byte total, and the query-read metric must
    /// all agree with `Entry::size_bytes` (key + value + op tag) — including
    /// after overwrites and for tombstones, which the old hand-rolled
    /// `key + value` formulas silently under-charged.
    #[test]
    fn size_accounting_matches_component_totals() {
        let mut t = small_tree(1 << 20);
        for i in 0..50u64 {
            t.put(i, Bytes::from(vec![1u8; 10]));
        }
        // Overwrites with a different value length exercise the memtable's
        // replacement accounting; deletes leave op-tag-only tombstones.
        for i in 0..20u64 {
            t.put(i, Bytes::from(vec![2u8; 33]));
        }
        for i in 40..50u64 {
            t.delete(i);
        }
        let expected: usize = t
            .memtable()
            .range(None, None)
            .map(|(k, op)| Entry::size_of_parts(k, op))
            .sum();
        assert_eq!(t.memtable().size_bytes(), expected);
        let comp = t.flush().expect("non-empty memtable flushes");
        let from_entries: usize = comp.iter().map(|e| e.size_bytes()).sum();
        assert_eq!(comp.size_bytes(), from_entries);
        assert_eq!(comp.size_bytes(), expected);
        // A tombstone weighs key + op tag, never zero.
        let tomb = Entry::delete(Key::from_u64(40));
        assert_eq!(tomb.size_bytes(), 8 + crate::entry::OP_TAG_BYTES);
        // Point reads charge exactly size_of_parts: key + value + op tag.
        let before = t.metrics().snapshot().bytes_query_read;
        assert!(t.get(&Key::from_u64(3)).is_some());
        let after = t.metrics().snapshot().bytes_query_read;
        assert_eq!(after - before, (8 + 33 + crate::entry::OP_TAG_BYTES) as u64);
    }

    #[test]
    fn footprint_agrees_with_size_accounting() {
        let mut t = small_tree(1 << 20);
        for i in 0..100u64 {
            t.put(i, Bytes::from(vec![7u8; 24]));
        }
        t.delete(5u64);
        let mem_fp = t.memtable().footprint();
        assert_eq!(mem_fp.records, 100);
        assert_eq!(mem_fp.logical_bytes as usize, t.memtable().size_bytes());
        assert_eq!(mem_fp.inline_keys, 100, "u64 keys must stay inline");
        assert_eq!(mem_fp.key_heap_bytes, 0);
        let comp = t.flush().unwrap();
        let fp = comp.raw_footprint();
        assert_eq!(fp.records, 100);
        assert_eq!(fp.logical_bytes as usize, comp.size_bytes());
        assert!(fp.resident_bytes() < fp.legacy_resident_bytes());
        assert_eq!(
            fp.legacy_resident_bytes() - fp.resident_bytes(),
            fp.key_bytes,
            "inline keys save exactly their heap allocation"
        );
    }

    #[test]
    fn auto_flush_triggers_on_budget() {
        let mut t = small_tree(256);
        for i in 0..100u64 {
            t.put(i, Bytes::from(vec![0u8; 16]));
        }
        assert!(t.num_components() > 0, "expected at least one auto flush");
        let snap = t.metrics().snapshot();
        assert!(snap.flush_count > 0);
        assert_eq!(snap.records_written, 100);
    }

    #[test]
    fn scan_is_sorted_and_complete() {
        let mut t = small_tree(128);
        let mut keys: Vec<u64> = (0..500).map(|i| (i * 7919) % 1000).collect();
        for &k in &keys {
            t.put(k, val("x"));
        }
        keys.sort_unstable();
        keys.dedup();
        let scanned: Vec<u64> = t.scan_all().iter().map(|e| e.key.as_u64()).collect();
        assert_eq!(scanned, keys);
        let lo = Key::from_u64(100);
        let hi = Key::from_u64(200);
        let bounded = t.scan(Some(&lo), Some(&hi));
        assert!(bounded.iter().all(|e| {
            let k = e.key.as_u64();
            (100..200).contains(&k)
        }));
    }

    #[test]
    fn merges_reduce_component_count() {
        let mut t = LsmTree::new(
            LsmConfig {
                memtable_budget_bytes: 1 << 20,
                merge_policy: Arc::new(SizeTieredPolicy::new(1.2)),
                auto_flush: false,
                auto_merge: false,
            },
            StorageMetrics::new_shared(),
        );
        for round in 0..6u64 {
            for i in 0..50u64 {
                t.put(round * 1000 + i, val("x"));
            }
            t.flush();
        }
        assert_eq!(t.num_components(), 6);
        let merges = t.run_merges();
        assert!(merges > 0);
        assert!(t.num_components() < 6);
        assert_eq!(t.live_len(), 300);
        assert!(t.metrics().snapshot().bytes_merged > 0);
    }

    #[test]
    fn force_merge_all_collapses_to_one() {
        let mut t = small_tree(1 << 20);
        for round in 0..4u64 {
            t.put(round, val("x"));
            t.flush();
        }
        t.force_merge_all();
        assert_eq!(t.num_components(), 1);
        assert_eq!(t.live_len(), 4);
    }

    #[test]
    fn paused_merges_do_not_run() {
        let mut t = LsmTree::new(
            LsmConfig {
                memtable_budget_bytes: 64,
                merge_policy: Arc::new(SizeTieredPolicy::new(0.1)),
                auto_flush: true,
                auto_merge: true,
            },
            StorageMetrics::new_shared(),
        );
        t.pause_merges();
        for i in 0..200u64 {
            t.put(i, Bytes::from(vec![0u8; 32]));
        }
        assert_eq!(t.metrics().snapshot().merge_count, 0);
        t.resume_merges();
        t.run_merges();
        assert!(t.metrics().snapshot().merge_count > 0);
    }

    #[test]
    fn tombstones_survive_partial_merges() {
        // A merge that excludes the oldest component must keep the tombstone.
        let mut t = LsmTree::new(
            LsmConfig {
                memtable_budget_bytes: 1 << 20,
                merge_policy: Arc::new(NoMergePolicy),
                auto_flush: false,
                auto_merge: false,
            },
            StorageMetrics::new_shared(),
        );
        t.put(1u64, val("live"));
        t.flush(); // oldest component holds key 1
        t.delete(1u64);
        t.flush();
        t.put(2u64, val("x"));
        t.flush();
        assert_eq!(t.num_components(), 3);
        // merge only the two newest components
        t.merge_range(0, 2);
        assert_eq!(t.num_components(), 2);
        assert_eq!(
            t.get(&Key::from_u64(1)),
            None,
            "tombstone must still hide key 1"
        );
        // a full merge finally drops both tombstone and shadowed entry
        t.force_merge_all();
        assert_eq!(t.num_components(), 1);
        assert_eq!(t.live_len(), 1);
    }

    #[test]
    fn loaded_components_are_older_than_replicated_ones() {
        // Mirrors the rebalance data-movement rule: scanned records loaded as
        // the oldest components, replicated writes as newer data.
        let mut t = small_tree(1 << 20);
        let loaded = Component::from_unsorted(
            vec![Entry::put(Key::from_u64(1), val("scanned"))],
            ComponentSource::Loaded,
        );
        let replicated = Component::from_unsorted(
            vec![Entry::put(Key::from_u64(1), val("replicated"))],
            ComponentSource::Replicated,
        );
        t.prepend_newest_components(vec![replicated]);
        t.append_oldest_components(vec![loaded]);
        assert_eq!(t.get(&Key::from_u64(1)).unwrap(), val("replicated"));
    }

    #[test]
    fn mark_bucket_invalid_hides_and_merge_removes() {
        let mut t = small_tree(1 << 20);
        for i in 0..64u64 {
            t.put(i, val("x"));
        }
        t.flush();
        let moved = crate::bucket::BucketId::new(0, 1);
        t.mark_bucket_invalid(moved);
        let visible_before_merge = t.live_len();
        assert!(visible_before_merge < 64);
        t.force_merge_all();
        assert_eq!(t.live_len(), visible_before_merge);
        assert!(!t.components()[0].needs_compaction());
    }
}
