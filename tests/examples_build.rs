//! Regression test: the examples under `examples/` must keep compiling.
//!
//! The seed of this repository shipped examples that had never been built
//! (there were no Cargo manifests at all), so this test shells out to the
//! same `cargo` that is running the test suite and builds every example
//! offline in a single invocation — covering future examples too, with no
//! list to keep in sync. Cargo's target-directory locking makes the nested
//! invocation safe, and the build is incremental, so after the first run
//! this is cheap.

use std::process::Command;

#[test]
fn all_examples_compile() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");

    // The five examples the paper reproduction ships today; a rename or
    // removal should be a conscious decision, not silent drift.
    for expected in [
        "elastic_scaling",
        "fault_tolerance",
        "ingestion_feed",
        "quickstart",
        "tpch_analytics",
    ] {
        let path = format!("{manifest_dir}/examples/{expected}.rs");
        assert!(
            std::path::Path::new(&path).exists(),
            "expected example `{expected}` is missing"
        );
    }

    let status = Command::new(&cargo)
        .current_dir(manifest_dir)
        .args(["build", "--offline", "--examples"])
        .status()
        .expect("failed to spawn cargo");
    assert!(status.success(), "`cargo build --examples` failed");
}
