//! Quickstart: create a DynaHash-partitioned dataset, talk to it through a
//! client `Session`, scale the cluster out, and watch the session ride
//! through the rebalance via the stale-directory redirect protocol.
//!
//! Run with `cargo run --example quickstart`.

use dynahash::cluster::{Cluster, DatasetSpec, RebalanceOptions, SecondaryIndexDef};
use dynahash::core::Scheme;
use dynahash::lsm::entry::Key;
use dynahash::lsm::Bytes;

fn main() {
    // A 2-node cluster (4 storage partitions per node by default).
    let mut cluster = Cluster::new(2);
    println!(
        "created a cluster with {} nodes / {} partitions",
        cluster.topology().num_nodes(),
        cluster.topology().num_partitions()
    );

    // A dataset partitioned with DynaHash: buckets split automatically once
    // they exceed 64 KiB, and rebalancing moves whole buckets.
    let spec = DatasetSpec::new("events", Scheme::dynahash(64 * 1024, 8)).with_secondary_index(
        SecondaryIndexDef::new("idx_events_kind", |payload| {
            payload.first().map(|&b| Key::from_u64(b as u64))
        }),
    );
    let events = cluster.create_dataset(spec).expect("create dataset");

    // All reads and writes go through a client session, which caches a
    // versioned snapshot of the global directory and routes from it.
    let mut session = cluster.session(events).expect("open session");
    println!(
        "opened a session at directory version {}",
        session.cached_version()
    );

    // Ingest 20,000 small records through the session (the data-feed path).
    let records = (0..20_000u64).map(|i| {
        let mut payload = vec![(i % 8) as u8];
        payload.extend_from_slice(&i.to_be_bytes());
        payload.extend_from_slice(&[0u8; 55]);
        (Key::from_u64(i), Bytes::from(payload))
    });
    let ingest = session.ingest(&mut cluster, records).expect("ingest");
    println!(
        "ingested {} records in {:.2} simulated seconds ({:.0} rec/s)",
        ingest.records,
        ingest.elapsed.as_secs_f64(),
        ingest.records_per_sec()
    );
    println!(
        "dataset distribution across partitions: {:?}",
        cluster.dataset_distribution(events).unwrap()
    );

    // Point lookups route from the session's cached directory.
    let key = Key::from_u64(1234);
    let value = session
        .get(&cluster, &key)
        .expect("routed read")
        .expect("record present");
    println!("key 1234 read through the session ({} bytes)", value.len());

    // Scale out: add a node, then rebalance the dataset onto it online.
    // The session is NOT told about any of this.
    cluster.add_node().expect("add node");
    let target = cluster.topology().clone();
    let report = cluster
        .rebalance(events, &target, RebalanceOptions::none())
        .expect("rebalance");
    println!(
        "rebalance {:?}: moved {} buckets / {} records ({:.1}% of the data) in {:.2} simulated seconds",
        report.outcome,
        report.buckets_moved,
        report.records_moved,
        report.moved_fraction * 100.0,
        report.elapsed.as_secs_f64()
    );

    // The session's cached directory is now stale. Its next read of a moved
    // bucket is rejected by the old owner, the session refreshes (a cheap
    // directory delta) and retries — all transparent to the caller.
    let value = session
        .get(&cluster, &key)
        .expect("redirected read")
        .expect("record still present");
    let m = session.metrics();
    println!(
        "stale read served after {} redirect(s) and {} refresh(es) \
         (now at directory version {}, {} bytes)",
        m.redirects,
        m.refreshes(),
        session.cached_version(),
        value.len()
    );

    // The dataset stays complete and correctly routed.
    cluster
        .check_dataset_consistency(events)
        .expect("consistent");
    assert_eq!(cluster.dataset_len(events).unwrap(), 20_000);
    println!("consistency check passed: all 20000 records remain reachable");
}
