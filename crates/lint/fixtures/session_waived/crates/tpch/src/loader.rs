pub fn load(cluster: &mut Cluster, p: PartitionId) {
    // dhlint: allow(session) — fixture exercising the waiver path for raw access
    let part = cluster.partition(p);
    part.touch();
}
