//! A standard Bloom filter over keys, used to skip disk components during
//! point lookups (Section II-B of the paper).

use crate::bucket::hash_key;
use crate::entry::Key;

/// A Bloom filter sized for a target false-positive rate of roughly 1%.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    num_hashes: u32,
    num_items: usize,
}

/// Bits per key used when sizing filters (10 bits/key ≈ 1% false positives).
pub const BITS_PER_KEY: usize = 10;

impl BloomFilter {
    /// Creates a filter sized for `expected_items` keys.
    pub fn with_capacity(expected_items: usize) -> Self {
        let num_bits = (expected_items.max(1) * BITS_PER_KEY).max(64);
        let words = num_bits.div_ceil(64);
        BloomFilter {
            bits: vec![0u64; words],
            num_bits: words * 64,
            num_hashes: 7,
            num_items: 0,
        }
    }

    fn positions(&self, key: &Key) -> impl Iterator<Item = usize> + '_ {
        // Double hashing: derive k positions from two 32-bit halves of the
        // 64-bit key hash.
        let h = hash_key(key);
        let h1 = h & 0xffff_ffff;
        let h2 = h >> 32;
        let n = self.num_bits as u64;
        (0..self.num_hashes as u64)
            .map(move |i| ((h1.wrapping_add(i.wrapping_mul(h2))) % n) as usize)
    }

    /// Inserts a key into the filter.
    pub fn insert(&mut self, key: &Key) {
        let positions: Vec<usize> = self.positions(key).collect();
        for p in positions {
            self.bits[p / 64] |= 1u64 << (p % 64);
        }
        self.num_items += 1;
    }

    /// Returns `false` if the key is definitely absent, `true` if it may be
    /// present.
    pub fn may_contain(&self, key: &Key) -> bool {
        self.positions(key)
            .all(|p| self.bits[p / 64] & (1u64 << (p % 64)) != 0)
    }

    /// Number of keys inserted.
    pub fn len(&self) -> usize {
        self.num_items
    }

    /// True if no key has been inserted.
    pub fn is_empty(&self) -> bool {
        self.num_items == 0
    }

    /// Size of the filter in bytes (used by the storage cost accounting).
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn inserted_keys_are_found() {
        let mut f = BloomFilter::with_capacity(1000);
        for i in 0..1000u64 {
            f.insert(&Key::from_u64(i));
        }
        for i in 0..1000u64 {
            assert!(f.may_contain(&Key::from_u64(i)));
        }
        assert_eq!(f.len(), 1000);
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::with_capacity(10_000);
        for i in 0..10_000u64 {
            f.insert(&Key::from_u64(i));
        }
        let mut fp = 0usize;
        let probes = 10_000usize;
        for i in 0..probes as u64 {
            if f.may_contain(&Key::from_u64(1_000_000 + i)) {
                fp += 1;
            }
        }
        // 10 bits/key with 7 hashes should comfortably stay below 5%.
        assert!(
            fp < probes / 20,
            "false positive rate too high: {fp}/{probes}"
        );
    }

    #[test]
    fn empty_filter_rejects_everything_cheaply() {
        let f = BloomFilter::with_capacity(0);
        assert!(f.is_empty());
        assert!(!f.may_contain(&Key::from_u64(42)));
    }

    #[test]
    fn prop_no_false_negatives() {
        // Seeded randomized property: any set of inserted keys is reported
        // as possibly present.
        for case in 0..16u64 {
            let mut rng = SplitMix64::seed_from_u64(0xb100_0000 + case);
            let n = rng.gen_range(1..200) as usize;
            let keys: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
            let mut f = BloomFilter::with_capacity(keys.len());
            for &k in &keys {
                f.insert(&Key::from_u64(k));
            }
            for &k in &keys {
                assert!(
                    f.may_contain(&Key::from_u64(k)),
                    "false negative for key {k} (case seed {})",
                    0xb100_0000u64 + case
                );
            }
        }
    }
}
