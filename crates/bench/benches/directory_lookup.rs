//! The `directory_lookup` group: routing cost of the slot-array global
//! directory vs the pre-PR 5 linear bucket scan, at 16 / 256 / 4096
//! buckets. Extendible hashing promises O(1) routing; the scan was O(n) in
//! the bucket count, so its per-lookup cost grows with every split while
//! the slot array stays flat — the assertion at the end pins that down.

use dynahash_bench::timing::{bench_case, bench_group, DEFAULT_ITERS};
use dynahash_bench::{directory_lookup_study, format_lookup};

fn main() {
    bench_group("directory_lookup");
    for buckets in [16usize, 256, 4096] {
        bench_case(
            &format!("slots_vs_scan/{buckets}_buckets"),
            DEFAULT_ITERS,
            || directory_lookup_study(&[buckets]),
        );
    }

    let rows = directory_lookup_study(&[16, 256, 4096]);
    println!("per-lookup cost (best of interleaved reps):");
    print!("{}", format_lookup(&rows));
    for r in rows.iter().filter(|r| r.buckets >= 256) {
        assert!(
            r.slot_ns_per_lookup < r.scan_ns_per_lookup,
            "slot-array lookup must beat the linear scan at {} buckets: {:.1} !< {:.1}",
            r.buckets,
            r.slot_ns_per_lookup,
            r.scan_ns_per_lookup
        );
    }
}
