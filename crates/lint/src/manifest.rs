//! Manifest-level checks: `Cargo.toml` layering and metadata, the
//! `LOCK_ORDER.md` lock hierarchy, and the `LINT_BUDGET.toml` waiver ratchet.
//!
//! The TOML reader below is deliberately minimal — sections, `key = value`
//! pairs (dotted keys verbatim), inline tables as raw strings, and one-level
//! multi-line arrays. That subset covers every manifest in this workspace,
//! and keeping it in-tree preserves the zero-dependency constraint the
//! layering rule itself enforces.

use std::collections::BTreeMap;
use std::path::Path;

use crate::report::{Finding, Rule};
use crate::rules::{allowed_deps, LockUse};

/// A parsed (enough) TOML document: section name → key → raw value.
#[derive(Debug, Default)]
pub struct TomlDoc {
    sections: BTreeMap<String, Vec<(String, String)>>,
}

impl TomlDoc {
    /// Parses the TOML subset used by this workspace's manifests.
    pub fn parse(text: &str) -> TomlDoc {
        let mut doc = TomlDoc::default();
        let mut section = String::new();
        let mut lines = text.lines().peekable();
        while let Some(raw) = lines.next() {
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') && line.ends_with(']') {
                section = line.trim_matches(['[', ']']).trim().to_string();
                doc.sections.entry(section.clone()).or_default();
                continue;
            }
            let Some(eq) = line.find('=') else { continue };
            let key = line[..eq].trim().to_string();
            let mut value = line[eq + 1..].trim().to_string();
            // Multi-line array: keep consuming until brackets balance.
            while value.starts_with('[') && value.matches('[').count() > value.matches(']').count()
            {
                let Some(next) = lines.next() else { break };
                value.push(' ');
                value.push_str(strip_toml_comment(next).trim());
            }
            doc.sections
                .entry(section.clone())
                .or_default()
                .push((key, value));
        }
        doc
    }

    /// The raw value of `key` in `section`, if present.
    pub fn get(&self, section: &str, key: &str) -> Option<&str> {
        self.sections
            .get(section)?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// True when the section exists.
    pub fn has_section(&self, section: &str) -> bool {
        self.sections.contains_key(section)
    }

    /// All `(key, raw value)` pairs of a section.
    pub fn entries(&self, section: &str) -> &[(String, String)] {
        self.sections.get(section).map(Vec::as_slice).unwrap_or(&[])
    }
}

fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(v: &str) -> &str {
    v.trim().trim_matches('"')
}

/// Checks one member crate's `Cargo.toml`: layering of path dependencies,
/// the zero-registry-dependency constraint, and workspace metadata
/// inheritance.
pub fn check_crate_manifest(rel_path: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let doc = TomlDoc::parse(text);
    let crate_dir = rel_path.split('/').nth(1).unwrap_or_default().to_string();

    // Layering + no-registry on every dependency section.
    for section in ["dependencies", "dev-dependencies", "build-dependencies"] {
        for (name, value) in doc.entries(section) {
            findings.extend(check_dependency(rel_path, &crate_dir, name, value));
        }
    }

    // Workspace metadata inheritance (satellite: manifest consistency).
    for key in [
        "version.workspace",
        "edition.workspace",
        "license.workspace",
    ] {
        if doc.get("package", key).map(str::trim) != Some("true") {
            findings.push(Finding::file_level(
                Rule::Metadata,
                rel_path,
                format!("package must inherit `{key} = true` from the workspace"),
            ));
        }
    }
    if doc
        .get("package", "description")
        .map(unquote)
        .unwrap_or("")
        .is_empty()
    {
        findings.push(Finding::file_level(
            Rule::Metadata,
            rel_path,
            "package needs a non-empty `description`".to_string(),
        ));
    }
    if doc.get("lints", "workspace").map(str::trim) != Some("true") {
        findings.push(Finding::file_level(
            Rule::Metadata,
            rel_path,
            "package must inherit the workspace lint table (`[lints] workspace = true`)"
                .to_string(),
        ));
    }
    findings
}

/// Checks a single dependency entry against the layering and the
/// no-registry constraint. `crate_dir` is empty for the root package (which
/// may depend on every workspace crate).
fn check_dependency(rel_path: &str, crate_dir: &str, name: &str, value: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(dep_dir) = name.strip_prefix("dynahash-") else {
        findings.push(Finding::file_level(
            Rule::Layering,
            rel_path,
            format!(
                "registry dependency `{name}` — the workspace is zero-dependency/offline \
                 by construction; vendor an in-tree equivalent instead"
            ),
        ));
        return findings;
    };
    if !value.contains("path") {
        findings.push(Finding::file_level(
            Rule::Layering,
            rel_path,
            format!("dependency `{name}` must be a path dependency, not a registry version"),
        ));
    }
    if !crate_dir.is_empty() {
        match allowed_deps(crate_dir) {
            Some(allowed) if !allowed.contains(&dep_dir) => {
                findings.push(Finding::file_level(
                    Rule::Layering,
                    rel_path,
                    format!(
                        "crate `{crate_dir}` must not depend on `{name}` \
                         (layering is lsm ← core ← cluster ← {{tpch, bench}})"
                    ),
                ));
            }
            _ => {}
        }
    }
    findings
}

/// Checks the workspace root `Cargo.toml`: repository metadata and the root
/// package's own dependencies.
pub fn check_workspace_manifest(text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let doc = TomlDoc::parse(text);
    if !doc.has_section("workspace") {
        return findings; // not a workspace root — nothing to verify here
    }
    match doc.get("workspace.package", "repository").map(unquote) {
        None => findings.push(Finding::file_level(
            Rule::Metadata,
            "Cargo.toml",
            "workspace.package needs a `repository` URL".to_string(),
        )),
        Some(url) if !url.starts_with("https://") || url.contains("example.invalid") => {
            findings.push(Finding::file_level(
                Rule::Metadata,
                "Cargo.toml",
                format!("workspace.package repository `{url}` is a placeholder"),
            ));
        }
        Some(_) => {}
    }
    if doc.get("workspace.lints.rust", "unsafe_code").map(unquote) != Some("forbid") {
        findings.push(Finding::file_level(
            Rule::Metadata,
            "Cargo.toml",
            "workspace lint table must carry `unsafe_code = \"forbid\"`".to_string(),
        ));
    }
    for (name, value) in doc.entries("dependencies") {
        findings.extend(check_dependency("Cargo.toml", "", name, value));
    }
    if doc.has_section("package") && doc.get("lints", "workspace").map(str::trim) != Some("true") {
        findings.push(Finding::file_level(
            Rule::Metadata,
            "Cargo.toml",
            "the root package must inherit the workspace lint table".to_string(),
        ));
    }
    findings
}

/// One row of `LOCK_ORDER.md`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEntry {
    /// Acquisition rank — locks may only be taken in increasing rank order.
    pub rank: u32,
    /// Relative path of the file declaring the primitive.
    pub file: String,
    /// Primitive name (`Mutex`, `RwLock`, `RefCell`).
    pub primitive: String,
}

/// Parses the `LOCK_ORDER.md` manifest table. Rows look like
/// `| 10 | crates/cluster/src/node.rs | Mutex | guards node state |`.
pub fn parse_lock_order(text: &str) -> (Vec<LockEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut findings = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 3 {
            continue;
        }
        // Skip the header and separator rows.
        if cells[0].eq_ignore_ascii_case("rank") || cells[0].chars().all(|c| c == '-' || c == ':') {
            continue;
        }
        let Ok(rank) = cells[0].parse::<u32>() else {
            findings.push(Finding {
                rule: Rule::LockOrder,
                file: "LOCK_ORDER.md".to_string(),
                line: idx + 1,
                message: format!("rank `{}` is not an integer", cells[0]),
                waived: false,
            });
            continue;
        };
        entries.push(LockEntry {
            rank,
            file: cells[1].to_string(),
            primitive: cells[2].to_string(),
        });
    }
    findings.extend(duplicate_rank_findings(&entries));
    (entries, findings)
}

fn duplicate_rank_findings(entries: &[LockEntry]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, a) in entries.iter().enumerate() {
        if entries[..i].iter().any(|b| b.rank == a.rank) {
            findings.push(Finding::file_level(
                Rule::LockOrder,
                "LOCK_ORDER.md",
                format!("duplicate acquisition rank {} (`{}`)", a.rank, a.file),
            ));
        }
    }
    findings
}

/// Cross-checks collected lock uses against the manifest: every primitive a
/// file mentions needs a ranked entry, and every entry must still match
/// real code.
pub fn check_lock_order(manifest: Option<&str>, uses: &[LockUse]) -> Vec<Finding> {
    let (entries, mut findings) = match manifest {
        Some(text) => parse_lock_order(text),
        None if uses.is_empty() => return Vec::new(),
        None => {
            return uses
                .iter()
                .map(|u| Finding {
                    rule: Rule::LockOrder,
                    file: u.file.clone(),
                    line: u.line,
                    message: format!(
                        "`{}` declared but the workspace has no LOCK_ORDER.md — create the \
                         manifest and register an acquisition rank",
                        u.primitive
                    ),
                    waived: false,
                })
                .collect();
        }
    };
    for u in uses {
        let registered = entries
            .iter()
            .any(|e| e.file == u.file && e.primitive == u.primitive);
        if !registered {
            findings.push(Finding {
                rule: Rule::LockOrder,
                file: u.file.clone(),
                line: u.line,
                message: format!(
                    "`{}` is not registered in LOCK_ORDER.md — every lock/interior-mutability \
                     primitive needs an acquisition rank before the threaded runtime lands",
                    u.primitive
                ),
                waived: false,
            });
        }
    }
    for e in &entries {
        let live = uses
            .iter()
            .any(|u| u.file == e.file && u.primitive == e.primitive);
        if !live {
            findings.push(Finding::file_level(
                Rule::LockOrder,
                "LOCK_ORDER.md",
                format!(
                    "stale entry: `{}` in `{}` no longer appears in the code — remove the row",
                    e.primitive, e.file
                ),
            ));
        }
    }
    findings
}

/// Enforces the waiver-budget ratchet: the committed `LINT_BUDGET.toml`
/// must match the used-waiver counts exactly. Adding a waiver forces a
/// visible budget bump in the diff; removing one forces the budget down, so
/// drift in either direction fails the check.
pub fn check_budget(budget_text: Option<&str>, used: &[(Rule, usize)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let budget: BTreeMap<String, usize> = match budget_text {
        Some(text) => {
            let doc = TomlDoc::parse(text);
            doc.entries("waivers")
                .iter()
                .filter_map(|(k, v)| Some((k.clone(), v.trim().parse::<usize>().ok()?)))
                .collect()
        }
        None => {
            if used.iter().all(|(_, n)| *n == 0) {
                return findings;
            }
            findings.push(Finding::file_level(
                Rule::Waiver,
                "LINT_BUDGET.toml",
                "waivers are in use but LINT_BUDGET.toml is missing — commit the budget"
                    .to_string(),
            ));
            return findings;
        }
    };
    for rule in crate::report::Rule::all() {
        let actual = used
            .iter()
            .find(|(r, _)| *r == rule)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        let budgeted = budget.get(rule.name()).copied().unwrap_or(0);
        if actual != budgeted {
            findings.push(Finding::file_level(
                Rule::Waiver,
                "LINT_BUDGET.toml",
                format!(
                    "budget drift for `{rule}`: {actual} waiver(s) in use, budget says \
                     {budgeted} — the budget must track reality and may only ratchet down"
                ),
            ));
        }
    }
    for key in budget.keys() {
        if Rule::from_name(key).is_none() {
            findings.push(Finding::file_level(
                Rule::Waiver,
                "LINT_BUDGET.toml",
                format!("unknown rule `{key}` in budget"),
            ));
        }
    }
    findings
}

/// Reads a file as UTF-8, returning `None` when it does not exist.
pub fn read_optional(path: &Path) -> Option<String> {
    std::fs::read_to_string(path).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_subset_parses_sections_and_dotted_keys() {
        let doc = TomlDoc::parse(
            "[package]\nname = \"x\" # comment\nversion.workspace = true\n\n[deps]\na = { path = \"../a\" }\n",
        );
        assert_eq!(doc.get("package", "name"), Some("\"x\""));
        assert_eq!(doc.get("package", "version.workspace"), Some("true"));
        assert!(doc.get("deps", "a").unwrap().contains("path"));
    }

    #[test]
    fn toml_multiline_arrays_fold() {
        let doc = TomlDoc::parse("[workspace]\nmembers = [\n  \"a\",\n  \"b\",\n]\n");
        let members = doc.get("workspace", "members").unwrap();
        assert!(members.contains("\"a\"") && members.contains("\"b\""));
    }

    #[test]
    fn registry_dependency_is_flagged() {
        let text = "[package]\nname = \"dynahash-core\"\ndescription = \"d\"\nversion.workspace = true\nedition.workspace = true\nlicense.workspace = true\n[lints]\nworkspace = true\n[dependencies]\nserde = \"1\"\n";
        let findings = check_crate_manifest("crates/core/Cargo.toml", text);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == Rule::Layering
                    && f.message.contains("registry dependency `serde`"))
        );
    }

    #[test]
    fn layering_violation_in_manifest_is_flagged() {
        let text = "[package]\ndescription = \"d\"\nversion.workspace = true\nedition.workspace = true\nlicense.workspace = true\n[lints]\nworkspace = true\n[dependencies]\ndynahash-cluster = { path = \"../cluster\" }\n";
        let findings = check_crate_manifest("crates/core/Cargo.toml", text);
        assert!(findings
            .iter()
            .any(|f| f.rule == Rule::Layering && f.message.contains("dynahash-cluster")));
    }

    #[test]
    fn missing_metadata_inheritance_is_flagged() {
        let text = "[package]\nname = \"dynahash-core\"\nversion = \"0.1.0\"\n";
        let findings = check_crate_manifest("crates/core/Cargo.toml", text);
        assert!(findings.iter().filter(|f| f.rule == Rule::Metadata).count() >= 3);
    }

    #[test]
    fn placeholder_repository_is_flagged() {
        let text = "[workspace]\nmembers = []\n[workspace.package]\nrepository = \"https://example.invalid/x\"\n[workspace.lints.rust]\nunsafe_code = \"forbid\"\n";
        let findings = check_workspace_manifest(text);
        assert!(findings
            .iter()
            .any(|f| f.rule == Rule::Metadata && f.message.contains("placeholder")));
    }

    #[test]
    fn lock_order_round_trip() {
        let manifest = "# Locks\n| rank | file | primitive | guards |\n|---|---|---|---|\n| 1 | a.rs | Mutex | state |\n";
        let uses = vec![LockUse {
            file: "a.rs".into(),
            primitive: "Mutex".into(),
            line: 3,
        }];
        assert!(check_lock_order(Some(manifest), &uses).is_empty());
        // Unregistered use.
        let extra = vec![LockUse {
            file: "b.rs".into(),
            primitive: "RefCell".into(),
            line: 9,
        }];
        let findings = check_lock_order(Some(manifest), &extra);
        assert!(findings.iter().any(|f| f.file == "b.rs"));
        // Stale entry.
        assert!(check_lock_order(Some(manifest), &[])
            .iter()
            .any(|f| f.message.contains("stale")));
        // No manifest at all.
        assert!(check_lock_order(None, &extra)
            .iter()
            .any(|f| f.message.contains("no LOCK_ORDER.md")));
        assert!(check_lock_order(None, &[]).is_empty());
    }

    #[test]
    fn budget_ratchet_flags_drift_both_ways() {
        let budget = "[waivers]\npanic = 2\n";
        assert!(check_budget(Some(budget), &[(Rule::Panic, 2)]).is_empty());
        assert!(!check_budget(Some(budget), &[(Rule::Panic, 3)]).is_empty());
        assert!(!check_budget(Some(budget), &[(Rule::Panic, 1)]).is_empty());
        assert!(!check_budget(None, &[(Rule::Panic, 1)]).is_empty());
        assert!(check_budget(None, &[]).is_empty());
    }
}
