//! Transaction log.
//!
//! AsterixDB persists every write to a transaction log for durability, and
//! DynaHash's rebalance protocol reuses the log twice: concurrent writes to a
//! moving bucket are captured as log records and **replicated** to the
//! destination partition, and the Cluster Controller drives recovery from the
//! metadata records `BEGIN` / `COMMIT` / `DONE` (Section V).
//!
//! The simulated log is an in-memory append-only vector with explicit
//! `force()` points (records are only considered durable once forced), which
//! lets the fault-injection tests model "the node failed before the record
//! reached disk".

use crate::entry::{Entry, Key, Op, Value};

/// Log sequence number.
pub type Lsn = u64;

/// Identifier of a rebalance operation (metadata transaction id).
pub type RebalanceId = u64;

/// One bucket move executed by shipping sealed components, as recorded in
/// the metadata log. Identifiers are primitive so the log stays
/// storage-agnostic; `bucket_bits`/`bucket_depth` encode the
/// [`crate::bucket::BucketId`] and `from`/`to` are partition ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShippedMove {
    /// The moved bucket's hash bits.
    pub bucket_bits: u32,
    /// The moved bucket's depth.
    pub bucket_depth: u8,
    /// Source partition id.
    pub from: u32,
    /// Destination partition id.
    pub to: u32,
    /// Identifiers of the sealed components that were shipped whole (empty
    /// for a record-level move).
    pub component_ids: Vec<u64>,
    /// Visible bytes transferred.
    pub bytes: u64,
    /// Live records transferred.
    pub records: u64,
}

/// The payload of a log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecordBody {
    /// A record-level insert/update on a dataset partition.
    Insert {
        /// Dataset identifier.
        dataset: u32,
        /// Primary key.
        key: Vec<u8>,
        /// Record payload.
        value: Vec<u8>,
    },
    /// A record-level delete.
    Delete {
        /// Dataset identifier.
        dataset: u32,
        /// Primary key.
        key: Vec<u8>,
    },
    /// A rebalance operation has started (forced by the CC).
    RebalanceBegin {
        /// The rebalance operation id.
        rebalance: RebalanceId,
        /// The dataset being rebalanced.
        dataset: u32,
    },
    /// A wave of the rebalance shipped buckets to their destinations (forced
    /// by the CC after the wave completes). Recovery replays these moves: a
    /// destination that lost its uncommitted pending state is re-shipped the
    /// listed buckets from their sources before the commit installs them.
    RebalanceShip {
        /// The rebalance operation id.
        rebalance: RebalanceId,
        /// The dataset being rebalanced.
        dataset: u32,
        /// The wave index (0-based).
        wave: u32,
        /// The moves the wave executed.
        moves: Vec<ShippedMove>,
    },
    /// The rebalance operation committed (forced by the CC).
    RebalanceCommit {
        /// The rebalance operation id.
        rebalance: RebalanceId,
    },
    /// The rebalance operation aborted.
    RebalanceAbort {
        /// The rebalance operation id.
        rebalance: RebalanceId,
    },
    /// No more work is needed for this rebalance operation.
    RebalanceDone {
        /// The rebalance operation id.
        rebalance: RebalanceId,
    },
}

/// A log record with its sequence number and durability status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Sequence number, monotonically increasing per log.
    pub lsn: Lsn,
    /// The record body.
    pub body: LogRecordBody,
    /// Whether the record has been forced to (simulated) disk.
    pub durable: bool,
}

impl LogRecord {
    /// Size in bytes charged by the cost model for writing this record.
    pub fn size_bytes(&self) -> usize {
        16 + match &self.body {
            LogRecordBody::Insert { key, value, .. } => key.len() + value.len(),
            LogRecordBody::Delete { key, .. } => key.len(),
            LogRecordBody::RebalanceShip { moves, .. } => moves
                .iter()
                .map(|m| 32 + m.component_ids.len() * 8)
                .sum::<usize>(),
            _ => 8,
        }
    }

    /// Converts a data log record back into an LSM entry (used when applying
    /// replicated records at a rebalance destination).
    pub fn to_entry(&self) -> Option<Entry> {
        match &self.body {
            LogRecordBody::Insert { key, value, .. } => Some(Entry {
                key: Key::from_bytes(key.clone()),
                op: Op::Put(Value::from(value.clone())),
            }),
            LogRecordBody::Delete { key, .. } => Some(Entry {
                key: Key::from_bytes(key.clone()),
                op: Op::Delete,
            }),
            _ => None,
        }
    }

    /// The dataset a data record belongs to, if it is a data record.
    pub fn dataset(&self) -> Option<u32> {
        match &self.body {
            LogRecordBody::Insert { dataset, .. } | LogRecordBody::Delete { dataset, .. } => {
                Some(*dataset)
            }
            LogRecordBody::RebalanceBegin { dataset, .. } => Some(*dataset),
            LogRecordBody::RebalanceShip { dataset, .. } => Some(*dataset),
            _ => None,
        }
    }
}

/// An append-only transaction log.
#[derive(Debug, Default, Clone)]
pub struct TransactionLog {
    records: Vec<LogRecord>,
    next_lsn: Lsn,
    /// Total bytes appended (durable or not).
    bytes_appended: u64,
}

impl TransactionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record without forcing it. Returns its LSN.
    pub fn append(&mut self, body: LogRecordBody) -> Lsn {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let rec = LogRecord {
            lsn,
            body,
            durable: false,
        };
        self.bytes_appended += rec.size_bytes() as u64;
        self.records.push(rec);
        lsn
    }

    /// Appends a record and forces the log up to and including it.
    pub fn append_forced(&mut self, body: LogRecordBody) -> Lsn {
        let lsn = self.append(body);
        self.force();
        lsn
    }

    /// Forces all appended records to disk (they become durable).
    pub fn force(&mut self) {
        for r in self.records.iter_mut() {
            r.durable = true;
        }
    }

    /// Simulates a crash: non-durable records are lost.
    pub fn crash(&mut self) {
        self.records.retain(|r| r.durable);
        self.next_lsn = self.records.last().map(|r| r.lsn + 1).unwrap_or(0);
    }

    /// All records currently in the log.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Records with `lsn >= from` (used for replication catch-up).
    pub fn records_since(&self, from: Lsn) -> impl Iterator<Item = &LogRecord> {
        self.records.iter().filter(move |r| r.lsn >= from)
    }

    /// Durable data records of a dataset with `lsn >= from` whose key
    /// satisfies `filter` — the replication stream for a moving bucket.
    pub fn replication_stream<'a, F>(&'a self, dataset: u32, from: Lsn, filter: F) -> Vec<LogRecord>
    where
        F: Fn(&Key) -> bool + 'a,
    {
        self.records_since(from)
            .filter(|r| r.dataset() == Some(dataset))
            .filter(|r| r.to_entry().map(|e| filter(&e.key)).unwrap_or(false))
            .cloned()
            .collect()
    }

    /// The next LSN that will be assigned.
    pub fn next_lsn(&self) -> Lsn {
        self.next_lsn
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total bytes ever appended.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    /// Finds the status of a rebalance operation from the durable metadata
    /// records, as the CC does during recovery (Section V-D):
    /// `BEGIN` without `COMMIT` ⇒ must abort; `COMMIT` without `DONE` ⇒ must
    /// re-drive the commit; `DONE` ⇒ nothing to do.
    pub fn rebalance_status(&self, rebalance: RebalanceId) -> RebalanceLogStatus {
        let mut saw_begin = false;
        let mut saw_commit = false;
        let mut saw_abort = false;
        let mut saw_done = false;
        for r in self.records.iter().filter(|r| r.durable) {
            match r.body {
                LogRecordBody::RebalanceBegin { rebalance: id, .. } if id == rebalance => {
                    saw_begin = true
                }
                LogRecordBody::RebalanceCommit { rebalance: id } if id == rebalance => {
                    saw_commit = true
                }
                LogRecordBody::RebalanceAbort { rebalance: id } if id == rebalance => {
                    saw_abort = true
                }
                LogRecordBody::RebalanceDone { rebalance: id } if id == rebalance => {
                    saw_done = true
                }
                _ => {}
            }
        }
        if saw_done {
            RebalanceLogStatus::Done
        } else if saw_commit {
            RebalanceLogStatus::CommittedNotDone
        } else if saw_abort {
            RebalanceLogStatus::Aborted
        } else if saw_begin {
            RebalanceLogStatus::InFlight
        } else {
            RebalanceLogStatus::Unknown
        }
    }

    /// The durable component-level moves of a rebalance operation, in ship
    /// order. Recovery uses this to re-ship buckets whose destination lost
    /// its uncommitted pending state.
    pub fn shipped_moves(&self, rebalance: RebalanceId) -> Vec<&ShippedMove> {
        self.records
            .iter()
            .filter(|r| r.durable)
            .filter_map(|r| match &r.body {
                LogRecordBody::RebalanceShip {
                    rebalance: id,
                    moves,
                    ..
                } if *id == rebalance => Some(moves.iter()),
                _ => None,
            })
            .flatten()
            .collect()
    }
}

/// Status of a rebalance operation as reconstructed from the durable log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceLogStatus {
    /// No durable record of this rebalance exists.
    Unknown,
    /// BEGIN is durable but no outcome record is: the CC must abort it.
    InFlight,
    /// COMMIT is durable but DONE is not: the CC must re-drive commit tasks.
    CommittedNotDone,
    /// The rebalance aborted.
    Aborted,
    /// The rebalance fully completed.
    Done,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_increasing_lsns() {
        let mut log = TransactionLog::new();
        let a = log.append(LogRecordBody::Insert {
            dataset: 1,
            key: vec![1],
            value: vec![2],
        });
        let b = log.append(LogRecordBody::Delete {
            dataset: 1,
            key: vec![1],
        });
        assert!(b > a);
        assert_eq!(log.len(), 2);
        assert!(log.bytes_appended() > 0);
    }

    #[test]
    fn crash_loses_unforced_records() {
        let mut log = TransactionLog::new();
        log.append_forced(LogRecordBody::RebalanceBegin {
            rebalance: 1,
            dataset: 9,
        });
        log.append(LogRecordBody::RebalanceCommit { rebalance: 1 });
        log.crash();
        assert_eq!(log.len(), 1);
        assert_eq!(log.rebalance_status(1), RebalanceLogStatus::InFlight);
    }

    #[test]
    fn rebalance_status_progression() {
        let mut log = TransactionLog::new();
        assert_eq!(log.rebalance_status(5), RebalanceLogStatus::Unknown);
        log.append_forced(LogRecordBody::RebalanceBegin {
            rebalance: 5,
            dataset: 1,
        });
        assert_eq!(log.rebalance_status(5), RebalanceLogStatus::InFlight);
        log.append_forced(LogRecordBody::RebalanceCommit { rebalance: 5 });
        assert_eq!(
            log.rebalance_status(5),
            RebalanceLogStatus::CommittedNotDone
        );
        log.append_forced(LogRecordBody::RebalanceDone { rebalance: 5 });
        assert_eq!(log.rebalance_status(5), RebalanceLogStatus::Done);
    }

    #[test]
    fn aborted_status_reported() {
        let mut log = TransactionLog::new();
        log.append_forced(LogRecordBody::RebalanceBegin {
            rebalance: 2,
            dataset: 1,
        });
        log.append_forced(LogRecordBody::RebalanceAbort { rebalance: 2 });
        assert_eq!(log.rebalance_status(2), RebalanceLogStatus::Aborted);
    }

    #[test]
    fn replication_stream_filters_by_dataset_and_key() {
        let mut log = TransactionLog::new();
        for i in 0..20u64 {
            log.append(LogRecordBody::Insert {
                dataset: if i % 2 == 0 { 1 } else { 2 },
                key: Key::from_u64(i).into_vec(),
                value: vec![0u8; 4],
            });
        }
        let start = 10;
        let stream = log.replication_stream(1, start, |k| k.as_u64() >= 10);
        assert!(!stream.is_empty());
        for r in &stream {
            assert!(r.lsn >= start);
            assert_eq!(r.dataset(), Some(1));
            assert!(r.to_entry().unwrap().key.as_u64() >= 10);
        }
    }

    #[test]
    fn shipped_moves_survive_only_when_forced() {
        let mut log = TransactionLog::new();
        let mv = ShippedMove {
            bucket_bits: 3,
            bucket_depth: 2,
            from: 0,
            to: 5,
            component_ids: vec![11, 12],
            bytes: 4096,
            records: 32,
        };
        log.append_forced(LogRecordBody::RebalanceShip {
            rebalance: 9,
            dataset: 1,
            wave: 0,
            moves: vec![mv.clone()],
        });
        log.append(LogRecordBody::RebalanceShip {
            rebalance: 9,
            dataset: 1,
            wave: 1,
            moves: vec![mv.clone()],
        });
        log.crash();
        let shipped = log.shipped_moves(9);
        assert_eq!(shipped.len(), 1, "unforced ship record lost in the crash");
        assert_eq!(shipped[0], &mv);
        assert!(log.shipped_moves(8).is_empty());
    }

    #[test]
    fn to_entry_roundtrips_inserts_and_deletes() {
        let ins = LogRecord {
            lsn: 0,
            body: LogRecordBody::Insert {
                dataset: 1,
                key: Key::from_u64(7).into_vec(),
                value: b"abc".to_vec(),
            },
            durable: true,
        };
        let e = ins.to_entry().unwrap();
        assert_eq!(e.key.as_u64(), 7);
        assert!(!e.op.is_delete());
        let del = LogRecord {
            lsn: 1,
            body: LogRecordBody::Delete {
                dataset: 1,
                key: Key::from_u64(7).into_vec(),
            },
            durable: true,
        };
        assert!(del.to_entry().unwrap().op.is_delete());
        let meta = LogRecord {
            lsn: 2,
            body: LogRecordBody::RebalanceDone { rebalance: 1 },
            durable: true,
        };
        assert!(meta.to_entry().is_none());
    }
}
