//! A simulated shared-nothing parallel cluster for DynaHash.
//!
//! This crate is the distributed-systems substrate of the reproduction: a
//! single-process, deterministic simulation of an AsterixDB-style cluster
//! consisting of one Cluster Controller and multiple Node Controllers, each
//! hosting several storage partitions backed by the `dynahash-lsm` storage
//! engine.
//!
//! The main entry point is [`cluster::Cluster`]. The crate provides:
//!
//! * dataset creation with a [`dynahash_core::Scheme`] and local secondary
//!   indexes ([`dataset`]);
//! * the client-facing [`session::Session`] layer — the only sanctioned way
//!   to read and write data: sessions cache a versioned directory snapshot
//!   and handle stale-directory redirects transparently ([`session`]);
//! * data feeds for ingestion with cost accounting ([`feed`],
//!   [`session::Session::ingest`]);
//! * query execution primitives with a per-node cost model ([`query`]);
//! * the step-driven rebalance executor — the resumable
//!   [`job::RebalanceJob`] state machine implementing the paper's
//!   three-phase, two-phase-commit protocol wave by wave ([`job`]) — plus
//!   the one-shot driver loop over it and the global rebalancing baseline
//!   ([`rebalance`]);
//! * fault injection and recovery for the six failure cases ([`recovery`]),
//!   plus the deterministic fault plane — seeded, replayable
//!   [`fault::FaultSchedule`]s of transient ship failures, slow nodes, and
//!   crash/permanent-loss wave faults that
//!   [`job::RebalanceJob::replan_wave`] survives by rerouting the dead
//!   node's moves to survivors ([`fault`]);
//! * the recovery plane — speculative re-execution of straggling transfers
//!   under a [`dynahash_core::SpeculationPolicy`] (the wave takes the first
//!   finisher), and [`repair::RepairJob`]s that restore a degraded dataset's
//!   lost buckets from an operator-supplied feed under the same 2PC
//!   machinery ([`repair`]);
//! * the hardware cost model and simulated-time accounting ([`sim`]).

pub mod cluster;
pub mod control;
pub mod controller;
pub mod dataset;
pub mod fault;
pub mod feed;
pub mod job;
pub mod node;
pub mod partition;
pub mod query;
pub mod rebalance;
pub mod recovery;
pub mod repair;
pub mod session;
pub mod sim;

pub use cluster::{Admin, Cluster, ClusterConfig};
pub use control::{
    ControlConfig, ControlDecision, ControlPlane, ControlStatus, HeatMap, HeatReport, JobProgress,
    TickReport, WindowUsage,
};
pub use controller::ClusterController;
pub use dataset::{DatasetId, DatasetMeta, DatasetSpec, SecondaryIndexDef};
pub use fault::{ClusterHealth, FaultSchedule, FaultStats, NodeState, RetryPolicy, WaveFault};
pub use feed::{split_into_batches, ControlledRateFeed, IngestReport};
pub use job::{JobState, RebalanceJob, ReplanReport, StepPoint, WaveReport};
pub use node::NodeController;
pub use partition::{Partition, PartitionDataset, SecondaryState};
pub use query::{QueryExecutor, QueryReport};
pub use rebalance::{PhaseTimes, RebalanceOptions, RebalanceReport, StepHook};
pub use recovery::RecoveryReport;
pub use repair::{RepairJob, RepairReport, RepairState};
pub use session::{RouteError, Session, SessionMetrics};
pub use sim::{CostModel, NodeTimeline, SimDuration, WaveClock};

pub use dynahash_core::{MovePolicy, SecondaryRebuild, SpeculationPolicy};

use dynahash_core::{BucketId, CoreError, NodeId, PartitionId};
use dynahash_lsm::StorageError;

use crate::dataset::DatasetId as DsId;

/// Errors produced by the cluster simulation.
#[derive(Debug)]
pub enum ClusterError {
    /// The dataset does not exist.
    UnknownDataset(DsId),
    /// The partition does not exist in the current topology.
    UnknownPartition(PartitionId),
    /// The node does not exist.
    UnknownNode(NodeId),
    /// The node is down.
    NodeDown(NodeId),
    /// The node is permanently lost: it will never recover, and a rebalance
    /// job touching it must re-plan around it instead of waiting.
    NodeLost(NodeId),
    /// Writes to the dataset are briefly blocked while a rebalance runs its
    /// prepare/commit window (Section V-C).
    DatasetWriteBlocked(DsId),
    /// The key routes to a bucket whose only copy died with a lost node: the
    /// dataset serves degraded until a [`repair`] job restores the bucket.
    /// A typed result — not silently-empty data — so clients and invariant
    /// checkers can tell "lost" from "absent".
    BucketDegraded {
        /// The degraded dataset.
        dataset: DsId,
        /// The lost bucket the key routes to.
        bucket: BucketId,
    },
    /// The node still holds data and cannot be decommissioned.
    NodeNotEmpty(NodeId, usize),
    /// No partition could be determined for a key of this dataset.
    RoutingFailed(DsId),
    /// The requested secondary index does not exist.
    UnknownIndex(String),
    /// The rebalance operation aborted.
    RebalanceAborted(String),
    /// A rebalance job step was invoked from the wrong state.
    InvalidJobStep {
        /// The step that was attempted.
        action: &'static str,
        /// The state the job was in.
        state: &'static str,
    },
    /// A session-routing protocol error (a stale-directory rejection that
    /// escaped the session's bounded refresh-and-retry loop).
    Route(session::RouteError),
    /// A consistency check failed.
    Inconsistent(String),
    /// An underlying storage error.
    Storage(StorageError),
    /// An underlying core-algorithm error.
    Core(CoreError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownDataset(d) => write!(f, "unknown dataset {d}"),
            ClusterError::UnknownPartition(p) => write!(f, "unknown partition {p}"),
            ClusterError::UnknownNode(n) => write!(f, "unknown node {n}"),
            ClusterError::NodeDown(n) => write!(f, "node {n} is down"),
            ClusterError::NodeLost(n) => write!(f, "node {n} is permanently lost"),
            ClusterError::DatasetWriteBlocked(d) => write!(
                f,
                "dataset {d} writes are briefly blocked by a rebalance prepare phase"
            ),
            ClusterError::BucketDegraded { dataset, bucket } => write!(
                f,
                "bucket {bucket:?} of dataset {dataset} is degraded (lost with a dead node; awaiting repair)"
            ),
            ClusterError::NodeNotEmpty(n, records) => {
                write!(f, "node {n} still holds {records} records")
            }
            ClusterError::RoutingFailed(d) => write!(f, "routing failed for dataset {d}"),
            ClusterError::UnknownIndex(name) => write!(f, "unknown secondary index {name}"),
            ClusterError::RebalanceAborted(msg) => write!(f, "rebalance aborted: {msg}"),
            ClusterError::InvalidJobStep { action, state } => {
                write!(f, "invalid rebalance job step {action} from state {state}")
            }
            ClusterError::Route(e) => write!(f, "routing protocol error: {e}"),
            ClusterError::Inconsistent(msg) => write!(f, "inconsistency detected: {msg}"),
            ClusterError::Storage(e) => write!(f, "storage error: {e}"),
            ClusterError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<StorageError> for ClusterError {
    fn from(e: StorageError) -> Self {
        ClusterError::Storage(e)
    }
}

/// Result alias for cluster operations.
pub type Result<T> = std::result::Result<T, ClusterError>;
