//! Repeated-crash storms over the step-driven rebalance executor.
//!
//! The recovery unit tests walk the paper's six failure cases one at a
//! time; this harness is the blunt version: at *every* step boundary of the
//! driver loop it crashes a seeded-randomly chosen node **twice in a row**
//! (crash, recover, crash, recover), and separately injects a permanent
//! node loss after every wave boundary, asserting that
//!
//! * the job always reaches a terminal outcome (commit or abort — never a
//!   wedged state),
//! * commit/abort and `replan_wave` are idempotent under repetition, and
//! * `check_rebalance_integrity` finds zero violations afterwards.
//!
//! Everything is seeded: a failure replays exactly from the printed seed.

use dynahash_cluster::{
    Cluster, ClusterConfig, ClusterError, CostModel, DatasetId, DatasetSpec, FaultSchedule,
    RebalanceJob, RebalanceOptions, RebalanceReport, RepairJob, SpeculationPolicy, StepPoint,
    WaveFault,
};
use dynahash_core::{NodeId, RebalanceOutcome, Scheme};
use dynahash_lsm::entry::Key;
use dynahash_lsm::rng::SplitMix64;
use dynahash_lsm::Bytes;

const SEED: u64 = 0xfa57_2026;

fn record(i: u64) -> (Key, Bytes) {
    (Key::from_u64(i), Bytes::from(vec![(i % 249) as u8; 40]))
}

fn loaded(nodes: u32, n: u64) -> (Cluster, DatasetId) {
    let mut cluster = Cluster::with_config(
        nodes,
        ClusterConfig {
            partitions_per_node: 2,
            cost_model: CostModel::default(),
        },
    );
    let ds = cluster
        .create_dataset(DatasetSpec::new(
            "storm",
            Scheme::StaticHash { num_buckets: 32 },
        ))
        .unwrap();
    let records: Vec<(Key, Bytes)> = (0..n).map(record).collect();
    let mut session = cluster.session(ds).unwrap();
    session.ingest(&mut cluster, records).unwrap();
    (cluster, ds)
}

const POINTS: &[StepPoint] = &[
    StepPoint::AfterPlan,
    StepPoint::AfterInit,
    StepPoint::AfterEveryWave,
    StepPoint::BeforePrepare,
    StepPoint::AfterPrepare,
    StepPoint::AfterCommitLog,
    StepPoint::BeforeFinalize,
];

#[test]
fn double_crash_storm_at_every_step_point_commits_with_integrity() {
    let mut rng = SplitMix64::seed_from_u64(SEED);
    for &point in POINTS {
        for trial in 0..2u32 {
            let (mut cluster, ds) = loaded(3, 1500);
            cluster.add_node().unwrap();
            let target = cluster.topology().clone();
            let victim = NodeId(rng.gen_range(0..4) as u32);
            let ctx = format!("point {point:?}, trial {trial}, victim {victim}");
            let report = cluster
                .rebalance(
                    ds,
                    &target,
                    RebalanceOptions::none()
                        .with_max_concurrent_moves(2)
                        .with_hook(point, move |cluster, _job| {
                            // The same node dies twice in a row; the driver
                            // must absorb both (commit tasks and cleanups
                            // are idempotent; lost transfers re-ship from
                            // the metadata log).
                            for _ in 0..2 {
                                let _ = cluster.crash_node(victim);
                                cluster.recover_all_nodes();
                            }
                            Ok(())
                        }),
                )
                .unwrap_or_else(|e| panic!("storm must not wedge the job ({ctx}): {e}"));
            assert_eq!(report.outcome, RebalanceOutcome::Committed, "{ctx}");
            assert_eq!(cluster.dataset_len(ds).unwrap(), 1500, "{ctx}");
            cluster
                .check_rebalance_integrity(ds, report.rebalance_id)
                .unwrap_or_else(|e| panic!("integrity violation ({ctx}): {e}"));
        }
    }
}

#[test]
fn losing_the_new_node_after_every_wave_boundary_commits_without_abort() {
    // Serial waves so every wave boundary exists for every trial; the loss
    // hits the newly added node (a pure destination), so re-planning cancels
    // its moves and the job commits with zero data loss.
    for wave in 0..3u64 {
        let (mut cluster, ds) = loaded(3, 1500);
        let new_node = cluster.add_node().unwrap();
        cluster.set_fault_plane(
            FaultSchedule::seeded(SEED ^ wave).with_wave_fault(wave, WaveFault::Lose(new_node)),
        );
        let target = cluster.topology().clone();
        let report = cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap_or_else(|e| panic!("loss after wave {wave} must re-plan, not abort: {e}"));
        assert_eq!(report.outcome, RebalanceOutcome::Committed, "wave {wave}");
        assert!(report.reroutes > 0, "wave {wave}: loss must cause reroutes");
        assert!(
            cluster.fault_stats().lost_buckets.is_empty(),
            "wave {wave}: a pure destination holds no sole copies"
        );
        assert_eq!(cluster.dataset_len(ds).unwrap(), 1500, "wave {wave}");
        cluster.remove_lost_node(new_node).unwrap();
        cluster
            .check_rebalance_integrity(ds, report.rebalance_id)
            .unwrap_or_else(|e| panic!("integrity violation (wave {wave}): {e}"));
        assert!(cluster.admin().health().all_healthy(), "wave {wave}");
    }
}

#[test]
fn replanning_twice_in_a_row_is_idempotent() {
    let (mut cluster, ds) = loaded(3, 2000);
    let new_node = cluster.add_node().unwrap();
    let target = cluster.topology().clone();
    let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 2).unwrap();
    job.init(&mut cluster).unwrap();
    job.run_wave(&mut cluster).unwrap();
    cluster.lose_node(new_node).unwrap();
    let first = job.replan_wave(&mut cluster).unwrap();
    assert_eq!(first.lost_nodes, vec![new_node]);
    assert!(first.rerouted > 0);
    // The lost node left the participant set: a second re-plan (and a
    // third) finds nothing to do.
    let second = job.replan_wave(&mut cluster).unwrap();
    assert!(second.is_noop(), "second replan must be a noop: {second:?}");
    let third = job.replan_wave(&mut cluster).unwrap();
    assert!(third.is_noop());
    while job.has_remaining_waves() {
        job.run_wave(&mut cluster).unwrap();
    }
    job.prepare(&mut cluster).unwrap();
    assert_eq!(
        job.decide(&mut cluster).unwrap(),
        RebalanceOutcome::Committed
    );
    job.commit(&mut cluster).unwrap();
    let report = job.finalize(&mut cluster).unwrap();
    assert_eq!(report.outcome, RebalanceOutcome::Committed);
    assert_eq!(cluster.dataset_len(ds).unwrap(), 2000);
    cluster.remove_lost_node(new_node).unwrap();
    cluster
        .check_rebalance_integrity(ds, report.rebalance_id)
        .unwrap();
}

#[test]
fn double_loss_of_two_destinations_still_commits() {
    // Scale from 2 to 4 nodes, then lose *both* new nodes at different wave
    // boundaries. Every move cancels back to its live source and the job
    // commits as a (near-)noop instead of aborting.
    let (mut cluster, ds) = loaded(2, 1500);
    let n2 = cluster.add_node().unwrap();
    let n3 = cluster.add_node().unwrap();
    cluster.set_fault_plane(
        FaultSchedule::seeded(SEED)
            .with_wave_fault(0, WaveFault::Lose(n2))
            .with_wave_fault(1, WaveFault::Lose(n3)),
    );
    let target = cluster.topology().clone();
    let report = cluster
        .rebalance(ds, &target, RebalanceOptions::none())
        .expect("double loss must re-plan, not abort");
    assert_eq!(report.outcome, RebalanceOutcome::Committed);
    assert_eq!(cluster.dataset_len(ds).unwrap(), 1500);
    cluster.remove_lost_node(n2).unwrap();
    cluster.remove_lost_node(n3).unwrap();
    cluster
        .check_rebalance_integrity(ds, report.rebalance_id)
        .unwrap();
    assert_eq!(cluster.fault_stats().lost_nodes, vec![n2, n3]);
}

/// Drives a 3 -> 4 scale-out step by step with a slow-node fault pinned to a
/// node that actually sources a move of the first wave, so both twins of a
/// speculation race stall on the same leg whatever the planner chose.
fn scale_out_with_slow_source(
    factor: u32,
    policy: SpeculationPolicy,
) -> (Cluster, DatasetId, RebalanceReport, u64, u64) {
    let (mut cluster, ds) = loaded(3, 1500);
    cluster.add_node().unwrap();
    let target = cluster.topology().clone();
    let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 4).unwrap();
    let slow = cluster.node_of_partition(job.waves()[0][0].from).unwrap();
    cluster.set_fault_plane(FaultSchedule::seeded(SEED).with_slow_node(slow, factor));
    job.set_speculation(policy);
    job.init(&mut cluster).unwrap();
    while job.has_remaining_waves() {
        job.run_wave(&mut cluster).unwrap();
    }
    job.prepare(&mut cluster).unwrap();
    assert_eq!(
        job.decide(&mut cluster).unwrap(),
        RebalanceOutcome::Committed
    );
    job.commit(&mut cluster).unwrap();
    let speculated = job.speculated();
    let wins = job.speculation_wins();
    let report = job.finalize(&mut cluster).unwrap();
    (cluster, ds, report, speculated, wins)
}

fn assert_all_records_served(cluster: &Cluster, ds: DatasetId, n: u64) {
    let mut session = cluster.session(ds).unwrap();
    for i in 0..n {
        let (key, expected) = record(i);
        assert_eq!(
            session.get(cluster, &key).unwrap(),
            Some(expected),
            "key {i}"
        );
    }
}

#[test]
fn speculative_backup_beats_a_crippled_straggler_and_shortens_the_rebalance() {
    // A 50x stall on a source node stretches its legs far past twice the
    // wave median: the backup (launched two medians in, running at nominal
    // speed) must win the race, and the won race must strictly shorten the
    // rebalance relative to a twin with speculation switched off — with
    // byte-identical contents, since the data ships exactly once either way.
    let (slow_twin, ds_off, off, spec_off, wins_off) =
        scale_out_with_slow_source(50, SpeculationPolicy::disabled());
    let (fast_twin, ds_on, on, spec_on, wins_on) =
        scale_out_with_slow_source(50, SpeculationPolicy::default());
    assert_eq!((spec_off, wins_off), (0, 0));
    assert!(spec_on > 0, "a 50x stall must trip straggler detection");
    assert!(
        wins_on > 0,
        "a nominal-speed backup must beat a 50x straggler"
    );
    assert!(
        on.elapsed < off.elapsed,
        "a won race must strictly shorten the rebalance: {:?} vs {:?}",
        on.elapsed,
        off.elapsed
    );
    assert_eq!(on.bytes_moved, off.bytes_moved);
    assert_eq!(on.records_moved, off.records_moved);
    assert_eq!(fast_twin.fault_stats().speculation_wins, wins_on);
    for (cluster, ds, report) in [(&slow_twin, ds_off, &off), (&fast_twin, ds_on, &on)] {
        assert_all_records_served(cluster, ds, 1500);
        cluster
            .check_rebalance_integrity(ds, report.rebalance_id)
            .unwrap();
    }
}

#[test]
fn speculation_launched_on_a_mild_straggler_loses_the_race_and_costs_nothing() {
    // A 2x stall with an eager straggler multiple of 1 launches backups, but
    // the original finishes before a backup that only started a full median
    // in: zero wins, and — since a lost race leaves every leg's charges
    // untouched — a makespan byte-identical to the speculation-off twin.
    let eager = SpeculationPolicy {
        enabled: true,
        straggler_multiple: 1,
    };
    let (_, _, off, ..) = scale_out_with_slow_source(2, SpeculationPolicy::disabled());
    let (cluster, ds, on, spec_on, wins_on) = scale_out_with_slow_source(2, eager);
    assert!(
        spec_on > 0,
        "an eager multiple of 1 must launch at least one backup"
    );
    assert_eq!(
        wins_on, 0,
        "a 2x stall finishes before a backup launched a median in"
    );
    assert_eq!(
        on.elapsed, off.elapsed,
        "a lost race must leave the wave timeline untouched"
    );
    assert_all_records_served(&cluster, ds, 1500);
    cluster
        .check_rebalance_integrity(ds, on.rebalance_id)
        .unwrap();
}

#[test]
fn established_node_loss_mid_rebalance_degrades_reads_until_repair_is_done_once() {
    // Unlike the pure-destination losses above, this loss takes an
    // *established* node mid-rebalance: the job still commits (re-planning
    // installs empty replacements), but the sole copies die with the node —
    // reads get the typed degraded error until a repair restores them, and a
    // second repair of the healthy dataset is a pure no-op.
    let (mut cluster, ds) = loaded(3, 1500);
    cluster.add_node().unwrap();
    let victim = NodeId(0);
    cluster
        .set_fault_plane(FaultSchedule::seeded(SEED).with_wave_fault(0, WaveFault::Lose(victim)));
    let target = cluster.topology().clone();
    let report = cluster
        .rebalance(
            ds,
            &target,
            RebalanceOptions::none().with_max_concurrent_moves(2),
        )
        .expect("an established-node loss must re-plan, not abort");
    assert_eq!(report.outcome, RebalanceOutcome::Committed);
    let degraded = cluster.fault_stats().degraded_buckets(ds);
    assert!(
        !degraded.is_empty(),
        "an established node held sole bucket copies"
    );

    let mut session = cluster.session(ds).unwrap();
    let mut degraded_reads = 0u64;
    let mut served = 0u64;
    for i in 0..1500u64 {
        match session.get(&cluster, &Key::from_u64(i)) {
            Ok(Some(_)) => served += 1,
            Ok(None) => panic!("a degraded bucket must never read as silently empty"),
            Err(ClusterError::BucketDegraded { dataset, bucket }) => {
                assert_eq!(dataset, ds);
                assert!(degraded.contains(&bucket));
                degraded_reads += 1;
            }
            Err(e) => panic!("unexpected read error: {e}"),
        }
    }
    assert!(degraded_reads > 0, "some keys route to the lost buckets");
    assert_eq!(served + degraded_reads, 1500);

    let feed: Vec<(Key, Bytes)> = (0..1500).map(record).collect();
    let first = cluster.admin().repair_dataset(ds, &feed).unwrap();
    assert_eq!(first.outcome, RebalanceOutcome::Committed);
    assert_eq!(first.buckets, degraded);
    assert!(cluster.fault_stats().degraded_buckets(ds).is_empty());

    // Idempotence: repairing a healthy dataset forces no log records,
    // restores nothing, and bumps no counters.
    let wal_len = cluster.controller.metadata_log.len();
    let second = cluster.admin().repair_dataset(ds, &feed).unwrap();
    assert!(second.is_noop());
    assert_eq!(second.records_restored, 0);
    assert_eq!(cluster.controller.metadata_log.len(), wal_len);
    assert_eq!(
        cluster.fault_stats().repaired_buckets,
        degraded.len() as u64
    );

    assert_all_records_served(&cluster, ds, 1500);
    cluster.remove_lost_node(victim).unwrap();
    cluster.check_dataset_consistency(ds).unwrap();
}

#[test]
fn losing_a_second_node_mid_repair_replans_and_still_restores_everything() {
    let (mut cluster, ds) = loaded(4, 1500);
    let nodes = cluster.topology().nodes();
    cluster.lose_node(nodes[0]).unwrap();
    let initially_degraded = cluster.fault_stats().degraded_buckets(ds).len();
    assert!(initially_degraded > 0);
    let feed: Vec<(Key, Bytes)> = (0..1500).map(record).collect();

    let mut job = RepairJob::plan(&mut cluster, ds).unwrap();
    // A survivor that the plan repaired onto dies mid-repair, taking its
    // freshly loaded pending copies *and* its own resident buckets with it.
    cluster.lose_node(nodes[1]).unwrap();
    match job.load(&mut cluster, &feed) {
        Err(ClusterError::NodeLost(n)) => assert_eq!(n, nodes[1]),
        other => panic!("load must fail typed on a lost owner, got {other:?}"),
    }
    let moved = job.replan(&mut cluster).unwrap();
    assert!(moved > 0, "the replan must reassign dead owners");
    job.load(&mut cluster, &feed).unwrap();
    let scope = job.scope().len();
    assert!(
        scope > initially_degraded,
        "the second node's resident buckets join the repair scope"
    );
    job.prepare(&mut cluster).unwrap();
    assert_eq!(
        job.decide(&mut cluster).unwrap(),
        RebalanceOutcome::Committed
    );
    job.commit(&mut cluster).unwrap();
    let report = job.finalize(&mut cluster).unwrap();
    assert_eq!(report.outcome, RebalanceOutcome::Committed);
    assert_eq!(report.replans, 1);
    assert_eq!(report.buckets.len(), scope);
    assert!(cluster.fault_stats().degraded_buckets(ds).is_empty());

    assert_all_records_served(&cluster, ds, 1500);
    cluster.remove_lost_node(nodes[0]).unwrap();
    cluster.remove_lost_node(nodes[1]).unwrap();
    cluster.check_dataset_consistency(ds).unwrap();
}
