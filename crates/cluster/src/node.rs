//! Node Controllers.
//!
//! A Node Controller (NC) hosts several storage partitions, executes the data
//! processing tasks the Cluster Controller dispatches to it, and keeps a
//! transaction log for durability and for replicating concurrent writes
//! during a rebalance. Nodes can be killed and recovered by the
//! fault-injection tests.

use std::collections::BTreeMap;

use dynahash_core::{NodeId, PartitionId};
use dynahash_lsm::wal::TransactionLog;

use crate::fault::NodeState;
use crate::partition::Partition;
use crate::ClusterError;

/// A Node Controller and its partitions.
pub struct NodeController {
    /// The node id.
    pub id: NodeId,
    partitions: BTreeMap<PartitionId, Partition>,
    /// The node's transaction log (data log records + replication source).
    pub log: TransactionLog,
    alive: bool,
    lost: bool,
}

impl std::fmt::Debug for NodeController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeController")
            .field("id", &self.id)
            .field("partitions", &self.partitions.len())
            .field("alive", &self.alive)
            .field("lost", &self.lost)
            .finish()
    }
}

impl NodeController {
    /// Creates a node hosting the given partitions.
    pub fn new(id: NodeId, partitions: Vec<PartitionId>) -> Self {
        NodeController {
            id,
            partitions: partitions
                .into_iter()
                .map(|p| (p, Partition::new(p)))
                .collect(),
            log: TransactionLog::new(),
            alive: true,
            lost: false,
        }
    }

    /// The partitions hosted by this node.
    pub fn partition_ids(&self) -> Vec<PartitionId> {
        self.partitions.keys().copied().collect()
    }

    /// Access to a partition.
    pub fn partition(&self, id: PartitionId) -> Result<&Partition, ClusterError> {
        self.partitions
            .get(&id)
            .ok_or(ClusterError::UnknownPartition(id))
    }

    /// Mutable access to a partition.
    pub fn partition_mut(&mut self, id: PartitionId) -> Result<&mut Partition, ClusterError> {
        self.partitions
            .get_mut(&id)
            .ok_or(ClusterError::UnknownPartition(id))
    }

    /// Iterates the node's partitions.
    pub fn partitions(&self) -> impl Iterator<Item = &Partition> {
        self.partitions.values()
    }

    /// Iterates the node's partitions mutably.
    pub fn partitions_mut(&mut self) -> impl Iterator<Item = &mut Partition> {
        self.partitions.values_mut()
    }

    /// True if the node is up.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// True if the node is permanently lost (never recoverable).
    pub fn is_lost(&self) -> bool {
        self.lost
    }

    /// The node's liveness state for the health surface.
    pub fn state(&self) -> NodeState {
        if self.lost {
            NodeState::Lost
        } else if self.alive {
            NodeState::Alive
        } else {
            NodeState::Crashed
        }
    }

    /// Simulates a crash: the node stops responding and its non-durable log
    /// records are lost. Data in "disk" components survives (it is durable by
    /// construction); in-memory components survive too because AsterixDB
    /// replays the durable log on recovery — the simulation keeps them
    /// directly rather than replaying. Pending rebalance state does **not**
    /// survive: the metadata registering an in-flight transfer is only
    /// forced by the rebalance commit, so restart recovery discards the
    /// orphan received components and the rebalance executor re-ships them
    /// from the moves recorded in the CC's metadata log.
    pub fn crash(&mut self) {
        self.alive = false;
        self.log.crash();
        for p in self.partitions.values_mut() {
            p.drop_all_pending();
        }
    }

    /// Permanently loses the node: same immediate effect as a crash, but
    /// the node never recovers. Its durable data is gone with it — any
    /// bucket whose only copy lived here must be rerouted (if already
    /// shipped elsewhere) or declared lost (degraded mode).
    pub fn mark_lost(&mut self) {
        self.crash();
        self.lost = true;
    }

    /// Recovers a crashed node. The caller (the CC) is responsible for
    /// telling the node how to finish any in-flight rebalance, as described
    /// by failure Cases 1-5. A permanently lost node stays down.
    pub fn recover(&mut self) {
        if !self.lost {
            self.alive = true;
        }
    }

    /// Total storage bytes over all partitions.
    pub fn total_storage_bytes(&self) -> usize {
        self.partitions
            .values()
            .map(|p| p.total_storage_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynahash_lsm::wal::LogRecordBody;

    #[test]
    fn node_hosts_its_partitions() {
        let n = NodeController::new(NodeId(2), vec![PartitionId(8), PartitionId(9)]);
        assert_eq!(n.partition_ids(), vec![PartitionId(8), PartitionId(9)]);
        assert!(n.partition(PartitionId(8)).is_ok());
        assert!(n.partition(PartitionId(7)).is_err());
        assert!(n.is_alive());
    }

    #[test]
    fn crash_loses_unforced_log_records_and_recovery_restores_service() {
        let mut n = NodeController::new(NodeId(0), vec![PartitionId(0)]);
        n.log.append_forced(LogRecordBody::Insert {
            dataset: 1,
            key: vec![1],
            value: vec![1],
        });
        n.log.append(LogRecordBody::Insert {
            dataset: 1,
            key: vec![2],
            value: vec![2],
        });
        assert_eq!(n.log.len(), 2);
        n.crash();
        assert!(!n.is_alive());
        assert_eq!(n.log.len(), 1, "unforced record lost in the crash");
        n.recover();
        assert!(n.is_alive());
    }
}
